"""Table 2 — arithmetic operation counts: ZY (b=128) vs WY (nb=128..4096).

Counts come from exact summation over the algorithms' loop structures
(the symbolic GEMM traces, verified against the numeric drivers, plus the
standard panel formulas).  Paper reference at n = 32768: ZY 0.70e14; WY
0.93 → 1.31e14 as nb grows.
"""

from __future__ import annotations

from ..metrics.flops import sbr_wy_flops, sbr_zy_flops
from .runner import ExperimentResult

__all__ = ["run"]

#: Paper values (×1e14) for the notes column.
PAPER_ZY = 0.70
PAPER_WY = {128: 0.93, 256: 1.05, 512: 1.12, 1024: 1.17, 2048: 1.22, 4096: 1.31}


def run(*, n: int = 32768, b: int = 128, nb_values: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096)) -> ExperimentResult:
    """Reproduce Table 2 (operation counts of ZY- vs WY-based SBR)."""
    result = ExperimentResult(
        name="table2",
        title=f"Arithmetic operations of ZY-based (b={b}) and WY-based SBR, n={n}",
        columns=["algorithm", "blocksize", "flops_1e14", "paper_1e14"],
        notes=[
            "Our WY counts grow more slowly with nb than the paper's because "
            "the implementation caches OA·W incrementally (one (M×M)(M×b) "
            "product per panel); Algorithm 1 as prototyped recomputes larger "
            "products.  The qualitative message — WY trades extra flops, "
            "increasing with nb, for better GEMM shapes — is unchanged.",
        ],
    )
    result.add_row(
        algorithm="ZY",
        blocksize=b,
        flops_1e14=sbr_zy_flops(n, b) / 1e14,
        paper_1e14=PAPER_ZY if n == 32768 and b == 128 else float("nan"),
    )
    for nb in nb_values:
        result.add_row(
            algorithm="WY",
            blocksize=nb,
            flops_1e14=sbr_wy_flops(n, b, nb) / 1e14,
            paper_1e14=PAPER_WY.get(nb, float("nan")) if n == 32768 and b == 128 else float("nan"),
        )
    return result
