"""Figure 8 — total panel-factorization time over the whole SBR.

Compares the paper's TSQR panel (tree QR + Householder reconstruction)
against the cuSOLVER (``sgeqr``+``sorgqr``) and MAGMA (``ssytrd_sy2sb``
panel) baselines, summed over every panel of a bandwidth-b reduction, for
matrix sizes 4096..32768.  The paper reports roughly 5x advantage for
TSQR; the model's fitted panel constants land in that band.
"""

from __future__ import annotations

from ..device import PerfModel
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 8 (panel time totals per strategy)."""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="fig8",
        title=f"Total panel QR time over SBR (b={b}): MAGMA vs cuSOLVER vs TSQR",
        columns=["n", "tsqr_ms", "cusolver_ms", "magma_ms", "speedup_vs_cusolver", "speedup_vs_magma"],
        notes=[
            "Paper reports ~5x panel speedup for TSQR over both baselines; "
            "the fitted constants reproduce a 4.5–9x band across sizes.",
        ],
    )
    for n in sizes:
        t = pm.sbr_panel_total(n, b, "tsqr")
        c = pm.sbr_panel_total(n, b, "cusolver")
        m = pm.sbr_panel_total(n, b, "magma")
        result.add_row(
            n=n,
            tsqr_ms=t * 1e3,
            cusolver_ms=c * 1e3,
            magma_ms=m * 1e3,
            speedup_vs_cusolver=c / t,
            speedup_vs_magma=m / t,
        )
    return result
