"""Figure 10 — overall band-reduction comparison with speedup labels.

Four series over matrix size: WY-based (FP16 Tensor Core), WY-based with
EC-TCGEMMs (FP32-accurate), ZY-based on Tensor Core, and the MAGMA
baseline.  The numbers over the paper's MAGMA line are the WY-vs-MAGMA
speedups — reported here as a column (paper: up to 3.7x half precision;
EC variant ~1.3–1.8x; WY ~1.3x over ZY at n > 20000).
"""

from __future__ import annotations

from ..device import PerfModel
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 10 (SBR: WY / WY+EC / ZY / MAGMA, with speedups)."""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="fig10",
        title=f"Band reduction time (b={b}, nb={nb}): WY / WY+EC / ZY / MAGMA",
        columns=[
            "n",
            "wy_s",
            "wy_ec_s",
            "zy_s",
            "magma_s",
            "speedup_wy_vs_magma",
            "speedup_ec_vs_magma",
            "speedup_wy_vs_zy",
        ],
        notes=[
            "Paper: WY up to 3.7x vs MAGMA (half precision), EC variant "
            "~1.3x vs MAGMA, WY ~1.3x vs ZY at large n.",
        ],
    )
    for n in sizes:
        wy = pm.sbr_time(n, b, nb, method="wy", engine="tc", panel="tsqr").total
        ec = pm.sbr_time(n, b, nb, method="wy", engine="ectc", panel="tsqr").total
        zy = pm.sbr_time(n, b, nb, method="zy", engine="tc", panel="tsqr").total
        magma = pm.magma_sy2sb_time(n, b).total
        result.add_row(
            n=n,
            wy_s=wy,
            wy_ec_s=ec,
            zy_s=zy,
            magma_s=magma,
            speedup_wy_vs_magma=magma / wy,
            speedup_ec_vs_magma=magma / ec,
            speedup_wy_vs_zy=zy / wy,
        )
    return result
