"""Figure 6 — total TC-GEMM model time: WY-based vs ZY-based SBR over n.

nb fixed at 1024.  The paper's structure: the ZY algorithm wins at
n <= 8192 (the WY flop overhead outweighs shape gains while every GEMM is
small), and the WY algorithm wins at large n where its near-square GEMMs
run several times faster than ZY's skinny rank-2b updates.
"""

from __future__ import annotations

from ..device import PerfModel
from ..gemm.symbolic import trace_sbr_wy, trace_sbr_zy
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    engine: str = "tc",
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 6 (TC) — or Figure 7 when ``engine="sgemm"``."""
    pm = model if model is not None else PerfModel()
    name = "fig6" if engine == "tc" else "fig7"
    result = ExperimentResult(
        name=name,
        title=f"{engine.upper()} GEMM time, WY (nb={nb}) vs ZY (b={b}) over matrix size",
        columns=["n", "wy_time_s", "zy_time_s", "zy_over_wy", "wy_tflops", "zy_tflops"],
        notes=[
            "zy_over_wy > 1 means the WY-based algorithm is faster; the "
            "paper's crossover (Tensor Core) sits between n=8192 and 16384.",
        ],
    )
    for n in sizes:
        tw = trace_sbr_wy(n, b, nb, want_q=False)
        tz = trace_sbr_zy(n, b, want_q=False)
        t_wy = pm.trace_time(tw, engine)
        t_zy = pm.trace_time(tz, engine)
        result.add_row(
            n=n,
            wy_time_s=t_wy,
            zy_time_s=t_zy,
            zy_over_wy=t_zy / t_wy,
            wy_tflops=pm.trace_tflops(tw, engine),
            zy_tflops=pm.trace_tflops(tz, engine),
        )
    return result
