"""Figure 11 — end-to-end two-stage EVD (eigenvalues only) vs MAGMA.

Our pipeline: WY-based Tensor-Core band reduction on the GPU, the band
matrix shipped over PCIe (~12 GB/s, §6.4.1), then MAGMA-style bulge
chasing and divide & conquer on the host.  The MAGMA pipeline swaps in
its own ``ssytrd_sy2sb``.  Paper: ~2x overall speedup (up to 2.3x).
"""

from __future__ import annotations

from ..device import PerfModel
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 11 (two-stage EVD totals, ours vs MAGMA)."""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="fig11",
        title=f"2-stage EVD time, eigenvalues only (b={b}, nb={nb}): ours vs MAGMA",
        columns=[
            "n",
            "ours_s",
            "magma_s",
            "speedup",
            "ours_sbr_s",
            "transfer_s",
            "bulge_s",
            "solver_s",
        ],
        notes=[
            "Both pipelines share stage 2 (bulge chasing + D&C on the host); "
            "the speedup comes entirely from the band reduction, damped by "
            "Amdahl's law — the paper reports ~2x overall (up to 2.3x).",
        ],
    )
    for n in sizes:
        ours = pm.evd_time(n, b, nb, variant="ours")
        magma = pm.evd_time(n, b, variant="magma")
        result.add_row(
            n=n,
            ours_s=ours.total,
            magma_s=magma.total,
            speedup=magma.total / ours.total,
            ours_sbr_s=ours.sbr,
            transfer_s=ours.transfer,
            bulge_s=ours.bulge,
            solver_s=ours.solver,
        )
    return result
