"""Figure 7 — total SGEMM model time: WY vs ZY over n (Tensor Core off).

Identical sweep to Figure 6 but priced on the SGEMM curves.  The paper's
point: without Tensor Cores the shape change buys nothing (SGEMM rates
are flat in k), so the WY algorithm's extra flops make it strictly slower
— the WY-based method only pays off *because of* Tensor Cores.
"""

from __future__ import annotations

from ..device import PerfModel
from . import fig6
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 7 (SGEMM pricing of the Figure 6 sweep)."""
    result = fig6.run(sizes=sizes, b=b, nb=nb, engine="sgemm", model=model)
    result.notes = [
        "Under SGEMM pricing zy_over_wy stays below 1 at every size: the "
        "ZY algorithm is uniformly faster without Tensor Cores, matching "
        "the paper's conclusion that WY-based SBR is a Tensor-Core-specific "
        "algorithm choice.",
    ]
    return result
