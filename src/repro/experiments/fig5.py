"""Figure 5 — total TC-GEMM model time of Algorithm 1 vs block size nb.

The paper sweeps nb from 128 to 4096 at n = 32768 and finds a sweet spot
at nb = 1024: below it, squarer GEMMs win; above it, the extra flops
dominate.  Each point is annotated with the aggregate TFLOPS of the GEMM
stream (the numbers over the points in the paper's plot).
"""

from __future__ import annotations

from ..device import PerfModel
from ..gemm.symbolic import trace_sbr_wy
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    n: int = 32768,
    b: int = 128,
    nb_values: tuple[int, ...] = (128, 256, 512, 1024, 2048, 4096),
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 5 (nb sweep of the WY-based SBR GEMM time)."""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="fig5",
        title=f"TCGEMM time of Algorithm 1 vs nb (n={n}, b={b})",
        columns=["nb", "gemm_time_s", "tflops", "total_tflop"],
        notes=[
            "Paper finding reproduced when the minimum of gemm_time_s sits "
            "at nb=1024: larger nb buys squarer GEMMs until the flop growth "
            "overtakes the throughput gain.",
        ],
    )
    for nb in nb_values:
        trace = trace_sbr_wy(n, b, nb, want_q=False)
        t = pm.trace_time(trace, "tc")
        result.add_row(
            nb=nb,
            gemm_time_s=t,
            tflops=pm.trace_tflops(trace, "tc"),
            total_tflop=trace.total_flops / 1e12,
        )
    return result
