"""Experiment result container, registry, and formatting."""

from __future__ import annotations

import importlib
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..obs import spans as obs

__all__ = ["ExperimentResult", "available_experiments", "run_experiment"]

#: Registry of experiment name -> module (lazy import).  Plain names call
#: the module's ``run``; ablation names map to functions in ``ablations``.
_EXPERIMENTS = (
    "table1",
    "table2",
    "table3",
    "table4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "ablation_syr2k",
    "ablation_q_method",
    "ablation_panel",
    "ablation_precision",
    "ablation_recursive_qr",
    "ablation_scaling",
    "ablation_evd_vectors",
    "ablation_accumulator",
)

#: Ablation experiment name -> function name in the ``ablations`` module.
_ABLATION_FUNCS = {
    "ablation_syr2k": "run_syr2k_ablation",
    "ablation_q_method": "run_q_method_ablation",
    "ablation_panel": "run_panel_ablation",
    "ablation_precision": "run_precision_ablation",
    "ablation_recursive_qr": "run_recursive_qr_study",
    "ablation_scaling": "run_accuracy_scaling",
    "ablation_evd_vectors": "run_evd_vectors_study",
    "ablation_accumulator": "run_accumulator_study",
}


@dataclass
class ExperimentResult:
    """Rows of one reproduced table/figure plus context for the report.

    Attributes
    ----------
    name : str
        Experiment id (e.g. ``"fig10"``).
    title : str
        Human-readable description matching the paper's caption.
    columns : list of str
        Column names, in print order.
    rows : list of dict
        One dict per row, keyed by column name.
    notes : list of str
        Caveats / paper-vs-measured commentary.
    """

    name: str
    title: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        """Append one row (values keyed by column name)."""
        self.rows.append(values)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def _format_cell(self, value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 1e-3:
                return f"{value:.3e}"
            return f"{value:.3f}"
        return str(value)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering of the result."""
        lines = [f"### {self.name}: {self.title}", ""]
        header = " | ".join(self.columns)
        sep = " | ".join("---" for _ in self.columns)
        lines.append(f"| {header} |")
        lines.append(f"| {sep} |")
        for row in self.rows:
            cells = " | ".join(self._format_cell(row.get(c, "")) for c in self.columns)
            lines.append(f"| {cells} |")
        if self.notes:
            lines.append("")
            for note in self.notes:
                lines.append(f"- {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - console convenience
        return self.to_markdown()


def available_experiments() -> tuple[str, ...]:
    """Names of all registered experiments, in paper order."""
    return _EXPERIMENTS


def run_experiment(name: str, **kwargs) -> ExperimentResult:
    """Run one experiment by name, forwarding keyword options to its ``run``.

    Each run executes under a telemetry span ``experiment.<name>``, so a
    session collected around many experiments (``python -m
    repro.experiments --manifest`` or the benchmark harness) yields a
    per-experiment phase timeline in its manifest.
    """
    if name not in _EXPERIMENTS:
        raise ConfigurationError(
            f"unknown experiment {name!r}; expected one of {_EXPERIMENTS}"
        )
    with obs.span(f"experiment.{name}"):
        if name in _ABLATION_FUNCS:
            module = importlib.import_module(".ablations", __package__)
            return getattr(module, _ABLATION_FUNCS[name])(**kwargs)
        module = importlib.import_module(f".{name}", __package__)
        return module.run(**kwargs)
