"""Table 4 — eigenvalue accuracy of the Tensor-Core pipeline vs MAGMA.

Real numerics per matrix class:

- **Tensor Core column**: our full two-stage pipeline with FP16-TC band
  reduction; eigenvalues compared against LAPACK's (scipy ``eigh`` on the
  original matrix) via ``E_s = ||D_ref - D||_2 / (N ||D_ref||_2)``.
- **MAGMA column**: the same pipeline in FP32 (MAGMA's ``ssyevdx`` is a
  single-precision solver), same metric.

Paper levels at n = 32768: TC column ~1e-5..1e-4, MAGMA column
~1e-7..1e-5 — the TC pipeline loses 1–2 digits versus single precision,
both far below the FP16 operand epsilon thanks to the normalization.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import eigh

from ..eig.driver import syevd_2stage
from ..matrices.generate import TABLE_MATRIX_SPECS, generate_from_spec
from ..metrics.accuracy import eigenvalue_error
from .runner import ExperimentResult

__all__ = ["run"]

#: Paper values at n = 32768 for the reference columns.
PAPER_TC = {
    "Normal": 7.21e-5, "Uniform": 1.38e-4, "SVD_Cluster0 1e5": 3.59e-5,
    "SVD_Cluster1 1e5": 8.80e-5, "SVD_Arith 1e1": 7.58e-5, "SVD_Arith 1e3": 8.46e-5,
    "SVD_Arith 1e5": 6.81e-5, "SVD_Geo 1e1": 5.77e-5, "SVD_Geo 1e3": 5.11e-5,
    "SVD_Geo 1e5": 5.20e-5,
}
PAPER_MAGMA = {
    "Normal": 4.59e-6, "Uniform": 5.19e-7, "SVD_Cluster0 1e5": 1.64e-7,
    "SVD_Cluster1 1e5": 1.37e-6, "SVD_Arith 1e1": 4.51e-6, "SVD_Arith 1e3": 1.39e-5,
    "SVD_Arith 1e5": 1.67e-5, "SVD_Geo 1e1": 2.05e-6, "SVD_Geo 1e3": 4.43e-6,
    "SVD_Geo 1e5": 3.68e-6,
}


def run(
    *,
    n: int = 256,
    b: int = 8,
    nb: int = 32,
    seed: int = 20230301,
) -> ExperimentResult:
    """Reproduce Table 4 (eigenvalue error, TC pipeline vs FP32 pipeline)."""
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name="table4",
        title=f"Eigenvalue error E_s vs LAPACK (n={n}, b={b}, nb={nb})",
        columns=["matrix", "tensor_core", "fp32_magma_like", "paper_TC", "paper_MAGMA"],
        notes=[
            "tensor_core: FP16-TC band reduction + float64 stage 2; "
            "fp32_magma_like: the same pipeline with FP32 band reduction "
            "(MAGMA ssyevdx is single precision).  Reference eigenvalues "
            "from scipy.linalg.eigh (LAPACK) on the original matrix.",
        ],
    )
    for spec in TABLE_MATRIX_SPECS:
        a, _ = generate_from_spec(spec, n, rng=rng)
        d_ref = eigh(a, eigvals_only=True)
        res_tc = syevd_2stage(a, b=b, nb=nb, precision="fp16_tc", want_vectors=False)
        res_fp32 = syevd_2stage(a, b=b, nb=nb, precision="fp32", want_vectors=False)
        result.add_row(
            matrix=spec.label,
            tensor_core=eigenvalue_error(d_ref, res_tc.eigenvalues),
            fp32_magma_like=eigenvalue_error(d_ref, res_fp32.eigenvalues),
            paper_TC=PAPER_TC[spec.label],
            paper_MAGMA=PAPER_MAGMA[spec.label],
        )
    return result
