"""Table 3 — backward error and orthogonality of the Tensor-Core SBR.

Real numerics: for each of the paper's ten matrix classes, run the
WY-based band reduction under FP16 Tensor-Core emulation and compute

    E_b = ||A - Q B Q^T||_F / (N ||A||_F),    E_o = ||I - Q^T Q||_F / N.

The paper's claim — both are bounded by the Tensor-Core machine epsilon
(~1e-4) at n = 32768, all matrix classes, condition numbers up to 1e5 —
is checked here at library scale (default n = 512; the bound is
n-independent up to slowly-growing factors, see EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from ..gemm.engine import make_engine
from ..matrices.generate import TABLE_MATRIX_SPECS, generate_from_spec
from ..metrics.accuracy import backward_error, orthogonality_error
from ..precision.rounding import FP16_EPS
from ..sbr.wy import sbr_wy
from .runner import ExperimentResult

__all__ = ["run"]

#: Paper values at n = 32768 for the reference columns.
PAPER_EB = {
    "Normal": 9.45e-4, "Uniform": 4.73e-4, "SVD_Cluster0 1e5": 9.34e-4,
    "SVD_Cluster1 1e5": 9.45e-4, "SVD_Arith 1e1": 9.45e-4, "SVD_Arith 1e3": 9.45e-4,
    "SVD_Arith 1e5": 9.45e-4, "SVD_Geo 1e1": 9.45e-4, "SVD_Geo 1e3": 9.46e-4,
    "SVD_Geo 1e5": 9.45e-4,
}
PAPER_EO = {
    "Normal": 5.27e-4, "Uniform": 5.45e-4, "SVD_Cluster0 1e5": 4.17e-4,
    "SVD_Cluster1 1e5": 6.89e-4, "SVD_Arith 1e1": 4.89e-4, "SVD_Arith 1e3": 7.09e-4,
    "SVD_Arith 1e5": 4.39e-4, "SVD_Geo 1e1": 7.39e-4, "SVD_Geo 1e3": 4.21e-4,
    "SVD_Geo 1e5": 3.68e-4,
}


def run(
    *,
    n: int = 512,
    b: int = 16,
    nb: int = 64,
    precision: str = "fp16_tc",
    seed: int = 20230225,
) -> ExperimentResult:
    """Reproduce Table 3 (SBR backward error / orthogonality per matrix class)."""
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name="table3",
        title=f"Tensor-Core SBR accuracy per matrix class (n={n}, b={b}, nb={nb}, {precision})",
        columns=["matrix", "backward_error", "orthogonality", "paper_Eb", "paper_Eo"],
        notes=[
            f"Tensor-Core machine epsilon (FP16 unit roundoff): {FP16_EPS:.1e}; "
            "the paper's claim is that both errors stay at this level for all "
            "matrix classes.  Both metrics normalize by N, so smaller n gives "
            "slightly larger per-N values than the paper's n=32768 runs.",
        ],
    )
    for spec in TABLE_MATRIX_SPECS:
        a, _ = generate_from_spec(spec, n, rng=rng)
        engine = make_engine(precision)
        res = sbr_wy(a, b, nb, engine=engine, panel="tsqr", want_q=True)
        result.add_row(
            matrix=spec.label,
            backward_error=backward_error(a, res.q, res.band),
            orthogonality=orthogonality_error(res.q),
            paper_Eb=PAPER_EB[spec.label],
            paper_Eo=PAPER_EO[spec.label],
        )
    return result
