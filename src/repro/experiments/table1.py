"""Table 1 — TC-GEMM vs SGEMM throughput as the small dimension varies.

The paper measures, at m = 32768, the TFLOPS of ``(m×m)(m×k)`` ("ts") and
``(m×k)(k×m)`` ("outer") GEMMs for k = 32..4096 on both Tensor Cores and
SIMT cores.  Our device model is *calibrated to* this table, so the model
columns reproduce it by construction; the experiment prints paper-vs-model
side by side (the anchors must agree to all digits — a regression guard
for the calibration tables) and additionally reports the model's
effective rates at off-anchor shapes used by the algorithms.
"""

from __future__ import annotations

from ..device import PerfModel
from ..device.calibration import (
    TABLE1_K,
    TABLE1_SGEMM_OUTER,
    TABLE1_SGEMM_TS,
    TABLE1_TC_OUTER,
    TABLE1_TC_TS,
)
from .runner import ExperimentResult

__all__ = ["run"]

#: The m dimension of Table 1.
M_PAPER = 32768


def run(*, m: int = M_PAPER, model: PerfModel | None = None) -> ExperimentResult:
    """Reproduce Table 1 (model rates vs the paper's measured rates)."""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="table1",
        title=f"TCGEMM and SGEMM TFLOPS on A100 as k varies (m={m})",
        columns=[
            "k",
            "tc_ts_paper",
            "tc_ts_model",
            "sgemm_ts_paper",
            "sgemm_ts_model",
            "tc_outer_paper",
            "tc_outer_model",
            "sgemm_outer_paper",
            "sgemm_outer_model",
        ],
        notes=[
            "Model columns are the Table-1-calibrated throughput curves "
            "evaluated at the paper's shapes; agreement at the anchors is "
            "exact by construction and acts as a calibration regression guard.",
            "ts family: A (m×m) @ B (m×k); outer family: A (m×k) @ B (k×m).",
        ],
    )
    for i, k in enumerate(TABLE1_K):
        result.add_row(
            k=k,
            tc_ts_paper=TABLE1_TC_TS[i],
            tc_ts_model=pm.gemm_rate(m, k, m, "tc") / 1e12,
            sgemm_ts_paper=TABLE1_SGEMM_TS[i],
            sgemm_ts_model=pm.gemm_rate(m, k, m, "sgemm") / 1e12,
            tc_outer_paper=TABLE1_TC_OUTER[i],
            tc_outer_model=pm.gemm_rate(m, m, k, "tc") / 1e12,
            sgemm_outer_paper=TABLE1_SGEMM_OUTER[i],
            sgemm_outer_model=pm.gemm_rate(m, m, k, "sgemm") / 1e12,
        )
    return result
