"""Reproduction drivers: one module per table/figure of the paper.

Each module exposes ``run(...) -> ExperimentResult`` returning the rows
the paper reports (same axes, same series).  Model-based experiments
(Tables 1–2, Figures 5–11) run at paper scale (n up to 32768) through the
calibrated device model; accuracy experiments (Tables 3–4) run real
numerics at library scale with Tensor-Core emulation.

Command line::

    python -m repro.experiments              # run everything
    python -m repro.experiments fig10 table3 # selected experiments
    python -m repro.experiments --scale ci   # reduced sizes for CI

See EXPERIMENTS.md for paper-vs-measured notes per experiment.
"""

from .runner import ExperimentResult, available_experiments, run_experiment

__all__ = ["ExperimentResult", "available_experiments", "run_experiment"]
