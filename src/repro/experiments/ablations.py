"""Ablation studies on the paper's design choices (beyond its figures).

Each ablation isolates one decision the paper makes or defers:

- ``run_syr2k_ablation`` — the paper's future-work item (§7): *if* Tensor
  Cores had a native ``syr2k``, would the ZY algorithm win again?  We
  price the ZY shape stream with a hypothetical TC syr2k (half flops, one
  kernel) against the WY algorithm.
- ``run_q_method_ablation`` — Algorithm 2's recursive W formation vs the
  conventional sequential back-transformation (§4.4: 320 ms vs 420 ms).
- ``run_panel_ablation`` — per-panel strategy cost inside our numeric
  drivers (TSQR vs blocked vs unblocked QR), measured for real.
- ``run_precision_ablation`` — accuracy of the band reduction across all
  emulated operand formats (fp16/bf16/tf32/EC/fp32), extending Table 3's
  single-format column.
- ``run_recursive_qr_study`` — the ref [41] lineage: recursive vs blocked
  one-sided QR under the device model.
- ``run_accuracy_scaling`` — error growth with matrix size (supports the
  Table 3/4 extrapolation argument).
- ``run_evd_vectors_study`` — the full EVD *with* eigenvectors, beyond
  Fig 11's eigenvalues-only scope.
- ``run_accumulator_study`` — emulation fidelity: accumulator chunking vs
  operand rounding.
"""

from __future__ import annotations

import time

import numpy as np

from ..device import PerfModel
from ..gemm.engine import make_engine
from ..gemm.symbolic import trace_form_q, trace_sbr_wy, trace_sbr_zy
from ..matrices.generate import generate_symmetric
from ..metrics.accuracy import backward_error, orthogonality_error
from ..sbr.panel import make_panel_strategy
from ..sbr.wy import sbr_wy
from .runner import ExperimentResult

__all__ = [
    "run_syr2k_ablation",
    "run_q_method_ablation",
    "run_panel_ablation",
    "run_precision_ablation",
    "run_recursive_qr_study",
    "run_accuracy_scaling",
    "run_evd_vectors_study",
    "run_accumulator_study",
]


def run_syr2k_ablation(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Would a native Tensor-Core syr2k restore the ZY algorithm's crown?"""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="ablation_syr2k",
        title="Hypothetical native TC syr2k: ZY (syr2k) vs ZY (2 GEMMs) vs WY",
        columns=["n", "wy_s", "zy_two_gemms_s", "zy_native_syr2k_s", "wy_still_wins"],
        notes=[
            "The paper's §7 proposes implementing a Tensor-Core syr2k to halve "
            "the ZY rank-2b update.  Under the Table-1-calibrated model, the "
            "native-syr2k ZY overtakes the WY algorithm at every size — "
            "quantifying how much of the WY advantage exists *because* the "
            "hardware primitive is missing.",
        ],
    )
    for n in sizes:
        wy = pm.trace_time(trace_sbr_wy(n, b, nb, want_q=False), "tc")
        zy2 = pm.trace_time(trace_sbr_zy(n, b, want_q=False), "tc")
        zyn = pm.trace_time(trace_sbr_zy(n, b, want_q=False, use_syr2k=True), "tc")
        result.add_row(
            n=n,
            wy_s=wy,
            zy_two_gemms_s=zy2,
            zy_native_syr2k_s=zyn,
            wy_still_wins=wy < zyn,
        )
    return result


def run_q_method_ablation(
    *,
    n: int = 32768,
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Algorithm 2 (tree) vs sequential forward Q assembly (paper §4.4)."""
    pm = model if model is not None else PerfModel()
    # Per-big-block (offset, accumulated columns), mirroring the WY driver.
    blocks: list[tuple[int, int]] = []
    j0 = 0
    while n - j0 - b >= 2:
        k = 0
        advance = False
        for r in range(0, nb, b):
            m = n - (j0 + r) - b
            if m < 2:
                break
            k += min(b, m)
            if m <= b + 1:
                break
            if r + b >= nb:
                advance = True
                break
        if k:
            blocks.append((j0 + b, k))
        if not advance:
            break
        j0 += nb
    result = ExperimentResult(
        name="ablation_q_method",
        title=f"Back-transformation: recursive FormW (Algorithm 2) vs forward (n={n})",
        columns=["method", "time_s", "gemm_calls", "total_tflop"],
        notes=[
            "Paper §4.4 measures 320 ms (WY/tree) vs 420 ms (ZY/forward) at "
            "n=32768.  Under the shape/throughput model alone the two methods "
            "price about the same (the tree does ~2x the flops at ~2x the "
            "rate); the paper's measured gap therefore reflects kernel-count "
            "and fusion effects beyond Table 1 — an honest boundary of the "
            "shape-stream model, recorded here.",
        ],
    )
    for method in ("tree", "forward"):
        tr = trace_form_q(n, blocks, method=method)
        result.add_row(
            method=method,
            time_s=pm.trace_time(tr, "tc"),
            gemm_calls=len(tr),
            total_tflop=tr.total_flops / 1e12,
        )
    return result


def run_panel_ablation(
    *,
    m: int = 2048,
    w: int = 64,
    repeats: int = 3,
    seed: int = 99,
) -> ExperimentResult:
    """Measured (real, NumPy) cost and accuracy of the panel strategies."""
    rng = np.random.default_rng(seed)
    panel = rng.standard_normal((m, w)).astype(np.float32)
    result = ExperimentResult(
        name="ablation_panel",
        title=f"Panel strategies on a {m}x{w} panel (library numerics)",
        columns=["strategy", "time_ms", "factorization_error"],
        notes=[
            "Times are this library's NumPy implementation, not GPU kernels; "
            "the accuracy column checks P = (I - W Y^T)[:, :w] R for each.",
        ],
    )
    from ..la.wy import wy_matrix

    for name in ("tsqr", "blocked_qr", "unblocked_qr"):
        strat = make_panel_strategy(name)
        best = np.inf
        for _ in range(repeats):
            t0 = time.perf_counter()
            pf = strat.factor(panel)
            best = min(best, time.perf_counter() - t0)
        q_full = wy_matrix(pf.w.astype(np.float64), pf.y.astype(np.float64))
        err = float(np.abs(q_full[:, :w] @ pf.r.astype(np.float64) - panel).max())
        result.add_row(strategy=name, time_ms=best * 1e3, factorization_error=err)
    return result


def run_precision_ablation(
    *,
    n: int = 256,
    b: int = 8,
    nb: int = 32,
    seed: int = 5,
) -> ExperimentResult:
    """Band-reduction accuracy across every emulated operand format."""
    rng = np.random.default_rng(seed)
    a, _ = generate_symmetric(n, distribution="geo", cond=1e3, rng=rng)
    result = ExperimentResult(
        name="ablation_precision",
        title=f"SBR accuracy vs precision policy (n={n}, b={b}, nb={nb})",
        columns=["precision", "backward_error", "orthogonality", "machine_eps"],
        notes=[
            "Errors track each format's unit roundoff: bf16 ~8x worse than "
            "fp16/tf32, EC-TCGEMM recovers fp32 — the generalization of "
            "Table 3 across operand formats.",
        ],
    )
    for precision in ("fp64", "fp32", "fp16_ec_tc", "tf32_tc", "fp16_tc", "bf16_tc"):
        eng = make_engine(precision)
        res = sbr_wy(a, b, nb, engine=eng, want_q=True)
        result.add_row(
            precision=precision,
            backward_error=backward_error(a, res.q, res.band),
            orthogonality=orthogonality_error(res.q),
            machine_eps=eng.precision.machine_eps,
        )
    return result


def run_recursive_qr_study(
    *,
    shapes: tuple[tuple[int, int], ...] = ((32768, 4096), (32768, 16384), (32768, 32768)),
    block: int = 128,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """The lineage study: recursive vs blocked one-sided QR (paper ref [41]).

    The paper's §4.2 credits the recursive Tensor-Core QR of Zhang et al.
    (2020) as the inspiration for Algorithm 1.  This study prices both QR
    formulations' GEMM streams on the calibrated model, reproducing the
    qualitative headline of [41]: recursion converts skinny trailing
    updates into near-square GEMMs and wins by ~1.5–2x at large sizes.
    """
    from ..la.recursive_qr import trace_blocked_qr, trace_recursive_qr

    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="ablation_recursive_qr",
        title="One-sided QR on Tensor Cores: recursive (ref [41]) vs blocked",
        columns=["m", "n", "recursive_s", "blocked_s", "speedup", "recursive_tflop", "blocked_tflop"],
        notes=[
            "Model times of the GEMM streams only (panels excluded on both "
            "sides); the recursion's advantage grows with n as its updates "
            "become square — the effect Algorithm 1 imports into the "
            "two-sided band reduction.",
        ],
    )
    for m, n in shapes:
        tr = trace_recursive_qr(m, n, leaf_cols=block)
        tb = trace_blocked_qr(m, n, block=block)
        t_rec = pm.trace_time(tr, "tc")
        t_blk = pm.trace_time(tb, "tc")
        result.add_row(
            m=m,
            n=n,
            recursive_s=t_rec,
            blocked_s=t_blk,
            speedup=t_blk / t_rec,
            recursive_tflop=tr.total_flops / 1e12,
            blocked_tflop=tb.total_flops / 1e12,
        )
    return result


def run_accuracy_scaling(
    *,
    sizes: tuple[int, ...] = (128, 256, 512, 1024),
    precision: str = "fp16_tc",
    seed: int = 41,
) -> ExperimentResult:
    """Error growth of the Tensor-Core SBR with matrix size.

    Table 3 is measured at a single size; this study tracks E_b and E_o
    over a size sweep to support extrapolating our library-scale runs to
    the paper's n = 32768.  Both metrics divide by N, so sub-linear error
    growth makes the *reported* values shrink with n — which is why our
    Table 3 numbers sit below the paper's even though both are bounded by
    the same Tensor-Core epsilon.
    """
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name="ablation_scaling",
        title=f"SBR error vs matrix size ({precision})",
        columns=["n", "b", "nb", "backward_error", "orthogonality", "Eo_times_N"],
        notes=[
            "Eo_times_N (the unnormalized orthogonality defect) grows "
            "sub-linearly; the per-N metrics the paper reports therefore "
            "decrease with n at fixed error quality.",
        ],
    )
    for n in sizes:
        b = max(8, n // 32)
        nb = 4 * b
        a, _ = generate_symmetric(n, distribution="geo", cond=1e3, rng=rng)
        eng = make_engine(precision)
        res = sbr_wy(a, b, nb, engine=eng, want_q=True)
        eo = orthogonality_error(res.q)
        result.add_row(
            n=n,
            b=b,
            nb=nb,
            backward_error=backward_error(a, res.q, res.band),
            orthogonality=eo,
            Eo_times_N=eo * n,
        )
    return result


def run_evd_vectors_study(
    *,
    sizes: tuple[int, ...] = (8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """End-to-end EVD *with eigenvectors* — beyond the paper's Fig 11.

    The paper evaluates eigenvalues only (§6.4) and measures the stage-1
    back-transformation in isolation (§4.4: 320 ms tree vs 420 ms
    forward at n = 32768).  This study composes the full with-vectors
    pipeline in the model: Q accumulation in bulge chasing (the known
    Θ(n³) price of two-stage eigenvectors), D&C with vectors, the
    back-transformations, and the larger PCIe traffic.
    """
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="ablation_evd_vectors",
        title=f"2-stage EVD with eigenvectors (b={b}, nb={nb}): ours vs MAGMA",
        columns=[
            "n",
            "ours_s",
            "magma_s",
            "speedup",
            "novec_speedup",
            "back_transform_tree_s",
            "back_transform_forward_s",
        ],
        notes=[
            "The Θ(n³) bulge-chasing Q accumulation and D&C-with-vectors are "
            "shared by both pipelines, so the with-vectors speedup is smaller "
            "than Fig 11's eigenvalues-only speedup (Amdahl); the paper's "
            "§4.4 back-transform measurement is reported per method.",
        ],
    )
    for n in sizes:
        ours = pm.evd_time(n, b, nb, variant="ours", want_vectors=True).total
        magma = pm.evd_time(n, b, variant="magma", want_vectors=True).total
        ours_nv = pm.evd_time(n, b, nb, variant="ours").total
        magma_nv = pm.evd_time(n, b, variant="magma").total
        result.add_row(
            n=n,
            ours_s=ours,
            magma_s=magma,
            speedup=magma / ours,
            novec_speedup=magma_nv / ours_nv,
            back_transform_tree_s=pm.back_transform_time(n, b, nb, method="tree"),
            back_transform_forward_s=pm.back_transform_time(n, b, b, method="forward", engine="sgemm"),
        )
    return result


def run_accumulator_study(
    *,
    m: int = 256,
    k_values: tuple[int, ...] = (64, 256, 1024, 4096),
    chunks: tuple[int | None, ...] = (None, 256, 64, 16),
    seed: int = 77,
) -> ExperimentResult:
    """Accumulator-granularity study of the emulated TC-GEMM (numeric).

    A real Tensor Core rounds the FP32 accumulator once per MMA tile along
    the contraction dimension; the emulation's ``chunk_k`` exposes that
    granularity.  This study measures how the GEMM error grows with the
    contraction length and how much the chunked accumulation adds —
    confirming the emulation note in docs/numerics.md that operand
    rounding (2^-11) dominates any accumulation-order effect.
    """
    from ..precision.tcgemm import tcgemm

    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        name="ablation_accumulator",
        title=f"Emulated TC-GEMM error vs contraction length and chunking (m={m})",
        columns=["k", "chunk", "rel_error", "error_over_sqrt_k"],
        notes=[
            "rel_error is measured against a float64 product, normalized by "
            "the no-cancellation scale |A||B|; growth ~sqrt(k) reflects "
            "random-walk accumulation of the operand-rounding errors, and "
            "chunking shifts it by far less than the operand term itself.",
        ],
    )
    for k in k_values:
        a = rng.standard_normal((m, k)).astype(np.float32)
        bmat = rng.standard_normal((k, m)).astype(np.float32)
        exact = a.astype(np.float64) @ bmat.astype(np.float64)
        scale = float((np.abs(a) @ np.abs(bmat)).max())
        for chunk in chunks:
            if chunk is not None and chunk >= k:
                continue
            out = tcgemm(a, bmat, chunk_k=chunk)
            err = float(np.abs(out - exact).max()) / scale
            result.add_row(
                k=k,
                chunk="none" if chunk is None else chunk,
                rel_error=err,
                error_over_sqrt_k=err / np.sqrt(k),
            )
    return result
