"""Figure 9 — ablation of the two ingredients: Tensor Core and TSQR panel.

Four series over matrix size: our WY-based SBR with (a) TC on + TSQR on,
(b) TC off (SGEMM) + TSQR on, (c) TC on + TSQR off (cuSOLVER panel), and
(d) the MAGMA baseline.  Paper findings reproduced by the model:

- small n: the panel dominates, so TSQR matters most;
- large n: GEMMs dominate, so Tensor Core matters most;
- TC off at large n is *worse than MAGMA* (the WY flop overhead with
  nothing to pay for it).
"""

from __future__ import annotations

from ..device import PerfModel
from .runner import ExperimentResult

__all__ = ["run"]


def run(
    *,
    sizes: tuple[int, ...] = (4096, 8192, 16384, 32768),
    b: int = 128,
    nb: int = 1024,
    model: PerfModel | None = None,
) -> ExperimentResult:
    """Reproduce Figure 9 (SBR time under TC/TSQR ablations vs MAGMA)."""
    pm = model if model is not None else PerfModel()
    result = ExperimentResult(
        name="fig9",
        title=f"WY-based SBR time (b={b}, nb={nb}): TC/TSQR ablations vs MAGMA",
        columns=["n", "tc_tsqr_s", "no_tc_s", "no_tsqr_s", "magma_s"],
        notes=[
            "no_tc uses SGEMM pricing with the TSQR panel; no_tsqr uses the "
            "cuSOLVER panel with TC pricing; magma is the ssytrd_sy2sb model.",
            "Check: no_tc_s > magma_s at the largest sizes (paper: 'without "
            "Tensor Core the WY-based algorithm is even worse than MAGMA').",
        ],
    )
    for n in sizes:
        result.add_row(
            n=n,
            tc_tsqr_s=pm.sbr_time(n, b, nb, method="wy", engine="tc", panel="tsqr").total,
            no_tc_s=pm.sbr_time(n, b, nb, method="wy", engine="sgemm", panel="tsqr").total,
            no_tsqr_s=pm.sbr_time(n, b, nb, method="wy", engine="tc", panel="cusolver").total,
            magma_s=pm.magma_sy2sb_time(n, b).total,
        )
    return result
