"""Empirical error bounds for the Tensor-Core band reduction.

The paper's §7 defers a formal error analysis ("too complicated... can be
a separate paper") and reports only the observation that errors sit at or
below the Tensor-Core machine epsilon.  This module packages the standard
*shape* of such bounds so experiments and tests can check measured errors
against a principled envelope:

For a backward-stable orthogonal reduction executed with unit roundoff
``u`` and ``p ~ n/b`` applied block transforms, the classical analysis
(Higham, Accuracy and Stability, ch. 19) gives

    ||A - Q B Q^T||_F  <=  c * p * sqrt(n) * u * ||A||_F
    ||I - Q^T Q||_F    <=  c * p * sqrt(n) * u

with a modest constant ``c``.  The paper's normalized metrics divide by
``N``, which is why its Table 3 values *fall* with n at fixed u — the
observation our `ablation_scaling` study measures directly.

The constant below is calibrated (once, conservatively) against this
library's measured errors across the Table 3 matrix classes; the tests
assert measured <= bound for every class and several sizes, so a future
numerical regression that breaks stability trips these bounds.
"""

from __future__ import annotations

import math

from ..errors import ConfigurationError
from ..precision.modes import Precision

__all__ = ["sbr_backward_error_bound", "sbr_orthogonality_bound"]

#: Conservative constant calibrated against measured errors (see module
#: docstring); measured values sit 10-50x below the bound.
_C_BOUND = 4.0


def _unit_roundoff(precision: "Precision | str") -> float:
    return Precision.from_name(precision).machine_eps


def sbr_backward_error_bound(
    n: int, b: int, *, precision: "Precision | str" = Precision.FP16_TC
) -> float:
    """Envelope for the paper's normalized backward error ``E_b``.

    ``E_b = ||A - Q B Q^T||_F / (N ||A||_F) <= c * (n/b) * sqrt(n) * u / N``.
    """
    if n < 1 or b < 1:
        raise ConfigurationError(f"need n, b >= 1, got {(n, b)}")
    u = _unit_roundoff(precision)
    p = max(n / b, 1.0)
    return _C_BOUND * p * math.sqrt(n) * u / n


def sbr_orthogonality_bound(
    n: int, b: int, *, precision: "Precision | str" = Precision.FP16_TC
) -> float:
    """Envelope for the paper's normalized orthogonality defect ``E_o``.

    ``E_o = ||I - Q^T Q||_F / N <= c * (n/b) * sqrt(n) * u / N``.
    """
    if n < 1 or b < 1:
        raise ConfigurationError(f"need n, b >= 1, got {(n, b)}")
    u = _unit_roundoff(precision)
    p = max(n / b, 1.0)
    return _C_BOUND * p * math.sqrt(n) * u / n
