"""The paper's accuracy measures (Tables 3 and 4).

All three metrics normalize by the matrix size ``N`` exactly as the paper
defines them, so values are directly comparable with the published tables:

- backward (orthogonal-transformation) error of the band reduction::

      E_b = ||A - Q B Q^{-1}||_F / (N * ||A||_F)

- orthogonality of the accumulated transforms::

      E_o = ||I - Q^{-1} Q||_F / N        (Q^{-1} = Q^T here)

- eigenvalue error against a reference spectrum::

      E_s = ||D_ref - D||_2 / (N * ||D_ref||_2)

Computations run in float64 regardless of input dtype, so the metric never
adds rounding noise of its own.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..validation import as_square_matrix

__all__ = ["backward_error", "orthogonality_error", "eigenvalue_error"]


def backward_error(a, q, b) -> float:
    """Normalized backward error ``||A - Q B Q^T||_F / (N ||A||_F)``.

    Parameters
    ----------
    a : array_like, (n, n)
        Original symmetric matrix.
    q : array_like, (n, n)
        Accumulated orthogonal transform with ``A ≈ Q B Q^T``.
    b : array_like, (n, n)
        Reduced (band or tridiagonal) matrix.
    """
    a = as_square_matrix(a, dtype=np.float64)
    q = as_square_matrix(q, name="q", dtype=np.float64)
    b = as_square_matrix(b, name="b", dtype=np.float64)
    n = a.shape[0]
    if q.shape[0] != n or b.shape[0] != n:
        raise ShapeError(
            f"size mismatch: A {a.shape}, Q {q.shape}, B {b.shape}"
        )
    residual = a - q @ b @ q.T
    denom = n * float(np.linalg.norm(a, "fro"))
    if denom == 0.0:
        return float(np.linalg.norm(residual, "fro"))
    return float(np.linalg.norm(residual, "fro")) / denom


def orthogonality_error(q) -> float:
    """Normalized orthogonality loss ``||I - Q^T Q||_F / N``."""
    q = as_square_matrix(q, name="q", dtype=np.float64)
    n = q.shape[0]
    gram = q.T @ q
    idx = np.arange(n)
    gram[idx, idx] -= 1.0
    return float(np.linalg.norm(gram, "fro")) / n


def eigenvalue_error(d_ref, d) -> float:
    """Normalized eigenvalue error ``||D_ref - D||_2 / (N ||D_ref||_2)``.

    Both spectra are sorted ascending before comparison (eigenvalue order
    is solver-dependent).
    """
    d_ref = np.sort(np.asarray(d_ref, dtype=np.float64))
    d = np.sort(np.asarray(d, dtype=np.float64))
    if d_ref.shape != d.shape or d_ref.ndim != 1:
        raise ShapeError(f"spectra must be 1-D of equal length, got {d_ref.shape} and {d.shape}")
    n = d_ref.size
    denom = n * float(np.linalg.norm(d_ref))
    if denom == 0.0:
        return float(np.linalg.norm(d_ref - d))
    return float(np.linalg.norm(d_ref - d)) / denom
