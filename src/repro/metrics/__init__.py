"""Accuracy metrics and analytic operation-count models.

- :mod:`~repro.metrics.accuracy` — the paper's three error measures:
  backward error ``E_b``, orthogonality ``E_o`` (Table 3) and eigenvalue
  error ``E_s`` (Table 4).
- :mod:`~repro.metrics.flops` — closed-form operation counts of the
  ZY-based and WY-based SBR algorithms (Table 2), cross-checked against
  traced GEMM streams in the tests.
"""

from .accuracy import backward_error, orthogonality_error, eigenvalue_error
from .bounds import sbr_backward_error_bound, sbr_orthogonality_bound
from .flops import (
    bulge_flops,
    sbr_zy_flops,
    sbr_wy_flops,
    formw_flops,
    gemm_flops,
)

__all__ = [
    "backward_error",
    "orthogonality_error",
    "eigenvalue_error",
    "sbr_backward_error_bound",
    "sbr_orthogonality_bound",
    "sbr_zy_flops",
    "sbr_wy_flops",
    "formw_flops",
    "gemm_flops",
    "bulge_flops",
]
