"""Analytic operation counts of the SBR algorithms (paper Table 2).

The counts are computed by *exact summation over the algorithm's loop
structure*: the GEMM stream comes from the symbolic trace executors
(:mod:`repro.gemm.symbolic`) — guaranteed by tests to match what the
numeric drivers actually issue — and the panel (BLAS2) work is added from
standard Householder-QR operation-count formulas.

Paper reference points (n = 32768): ZY at b = 128 counts 0.70e14
operations; WY grows from 0.93e14 (nb = 128) to 1.31e14 (nb = 4096) —
the "more flops, better shapes" trade-off of §4.3.1.
"""

from __future__ import annotations

from ..gemm.symbolic import trace_sbr_wy, trace_sbr_zy, trace_form_q
from ..validation import check_blocksizes

__all__ = [
    "gemm_flops",
    "panel_qr_flops",
    "panel_wy_build_flops",
    "sbr_zy_flops",
    "sbr_wy_flops",
    "formw_flops",
]


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flop count of one GEMM ``C(m×n) += A(m×k) B(k×n)``."""
    return 2 * m * n * k


def panel_qr_flops(m: int, w: int) -> int:
    """Householder QR flops of an m×w panel: ``2 w^2 (m - w/3)``.

    The classic LAPACK ``geqrf`` operation count; TSQR performs the same
    leading-order work re-distributed over the tree.
    """
    return int(2 * w * w * (m - w / 3))


def panel_wy_build_flops(m: int, w: int) -> int:
    """Flops to build the panel's W (or T) factor: ~``2 m w^2``.

    Building column ``j`` of W costs two (m×j)-by-vector products; summed
    over j this is ``2 m w^2`` to leading order (same for the
    LU-reconstruction path: the reconstruction's triangular solves and the
    ``W = Y T`` product are also Θ(m w^2)).
    """
    return 2 * m * w * w


def sbr_zy_flops(n: int, b: int, *, want_q: bool = False, include_panel: bool = True) -> int:
    """Total arithmetic operations of the ZY-based SBR.

    Parameters
    ----------
    n, b : int
        Matrix size and bandwidth.
    want_q : bool
        Include the cost of accumulating Q (Table 2 reports the reduction
        alone, so the default is False).
    include_panel : bool
        Include panel QR + WY-build (BLAS2) work.
    """
    check_blocksizes(n, b)
    total = trace_sbr_zy(n, b, want_q=want_q).total_flops
    if include_panel:
        i = 0
        while n - i - b >= 2:
            m = n - i - b
            w = min(b, m)
            total += panel_qr_flops(m, w) + panel_wy_build_flops(m, w)
            i += b
    return total


def sbr_wy_flops(
    n: int,
    b: int,
    nb: int,
    *,
    want_q: bool = False,
    include_panel: bool = True,
    mirror: bool = False,
) -> int:
    """Total arithmetic operations of the WY-based SBR (Algorithm 1).

    ``mirror=False`` (default) uses the paper's full-update accounting
    (Table 2); ``mirror=True`` counts the implementation's symmetry-aware
    block-boundary schedule instead.
    """
    check_blocksizes(n, b, nb)
    total = trace_sbr_wy(n, b, nb, want_q=want_q, mirror=mirror).total_flops
    if include_panel:
        j0 = 0
        while n - j0 - b >= 2:
            advance = False
            for r in range(0, nb, b):
                i = j0 + r
                m = n - i - b
                if m < 2:
                    break
                w = min(b, m)
                total += panel_qr_flops(m, w) + panel_wy_build_flops(m, w)
                if m <= b + 1:
                    break
                if r + b >= nb:
                    advance = True
                    break
            if not advance:
                break
            j0 += nb
    return total


def formw_flops(n: int, blocks: "list[tuple[int, int]]", *, method: str = "tree") -> int:
    """Flops of assembling Q from per-block WY factors (Algorithm 2)."""
    return trace_form_q(n, blocks, method=method).total_flops
