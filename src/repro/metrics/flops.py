"""Analytic operation counts of the SBR algorithms (paper Table 2).

The counts are computed by *exact summation over the algorithm's loop
structure*: the GEMM stream comes from the symbolic trace executors
(:mod:`repro.gemm.symbolic`) — guaranteed by tests to match what the
numeric drivers actually issue — and the panel (BLAS2) work is added from
standard Householder-QR operation-count formulas.

Paper reference points (n = 32768): ZY at b = 128 counts 0.70e14
operations; WY grows from 0.93e14 (nb = 128) to 1.31e14 (nb = 4096) —
the "more flops, better shapes" trade-off of §4.3.1.
"""

from __future__ import annotations

from ..gemm.symbolic import (
    bulge_sweep_geometry,
    trace_bulge_wavefront,
    trace_form_q,
    trace_sbr_wy,
    trace_sbr_zy,
)
from ..validation import check_blocksizes

__all__ = [
    "gemm_flops",
    "panel_qr_flops",
    "panel_wy_build_flops",
    "sbr_zy_flops",
    "sbr_wy_flops",
    "formw_flops",
    "bulge_givens_flops",
    "bulge_blocked_flops",
    "bulge_wavefront_flops",
    "bulge_flops",
]


def gemm_flops(m: int, n: int, k: int) -> int:
    """Flop count of one GEMM ``C(m×n) += A(m×k) B(k×n)``."""
    return 2 * m * n * k


def panel_qr_flops(m: int, w: int) -> int:
    """Householder QR flops of an m×w panel: ``2 w^2 (m - w/3)``.

    The classic LAPACK ``geqrf`` operation count; TSQR performs the same
    leading-order work re-distributed over the tree.
    """
    return int(2 * w * w * (m - w / 3))


def panel_wy_build_flops(m: int, w: int) -> int:
    """Flops to build the panel's W (or T) factor: ~``2 m w^2``.

    Building column ``j`` of W costs two (m×j)-by-vector products; summed
    over j this is ``2 m w^2`` to leading order (same for the
    LU-reconstruction path: the reconstruction's triangular solves and the
    ``W = Y T`` product are also Θ(m w^2)).
    """
    return 2 * m * w * w


def sbr_zy_flops(n: int, b: int, *, want_q: bool = False, include_panel: bool = True) -> int:
    """Total arithmetic operations of the ZY-based SBR.

    Parameters
    ----------
    n, b : int
        Matrix size and bandwidth.
    want_q : bool
        Include the cost of accumulating Q (Table 2 reports the reduction
        alone, so the default is False).
    include_panel : bool
        Include panel QR + WY-build (BLAS2) work.
    """
    check_blocksizes(n, b)
    total = trace_sbr_zy(n, b, want_q=want_q).total_flops
    if include_panel:
        i = 0
        while n - i - b >= 2:
            m = n - i - b
            w = min(b, m)
            total += panel_qr_flops(m, w) + panel_wy_build_flops(m, w)
            i += b
    return total


def sbr_wy_flops(
    n: int,
    b: int,
    nb: int,
    *,
    want_q: bool = False,
    include_panel: bool = True,
    mirror: bool = False,
) -> int:
    """Total arithmetic operations of the WY-based SBR (Algorithm 1).

    ``mirror=False`` (default) uses the paper's full-update accounting
    (Table 2); ``mirror=True`` counts the implementation's symmetry-aware
    block-boundary schedule instead.
    """
    check_blocksizes(n, b, nb)
    total = trace_sbr_wy(n, b, nb, want_q=want_q, mirror=mirror).total_flops
    if include_panel:
        j0 = 0
        while n - j0 - b >= 2:
            advance = False
            for r in range(0, nb, b):
                i = j0 + r
                m = n - i - b
                if m < 2:
                    break
                w = min(b, m)
                total += panel_qr_flops(m, w) + panel_wy_build_flops(m, w)
                if m <= b + 1:
                    break
                if r + b >= nb:
                    advance = True
                    break
            if not advance:
                break
            j0 += nb
    return total


def formw_flops(n: int, blocks: "list[tuple[int, int]]", *, method: str = "tree") -> int:
    """Flops of assembling Q from per-block WY factors (Algorithm 2)."""
    return trace_form_q(n, blocks, method=method).total_flops


def bulge_givens_flops(n: int, b: int, *, want_q: bool = True) -> int:
    """Stage-2 operations of the Givens (Schwarz) bulge chase.

    Summed over the scheme's actual loop structure — one peeled diagonal
    per bandwidth ``cur``, one chase per column, one rotation per ``cur``
    rows — at 6 operations per rotated element pair over the interior
    rotation window of ``2 cur + 2`` columns (row + column application;
    boundary-window clipping is a lower-order correction), plus ``6 n``
    per rotation for the Q accumulation.  Θ(n² b) without vectors,
    Θ(n³ / b · b) = Θ(n³) with — the Python-loop scheme the wavefront
    variant replaces.
    """
    total = 0
    q_cost = 6 * n if want_q else 0
    for cur in range(min(b, n - 1), 1, -1):
        for j in range(n - cur):
            if j + cur >= n:
                continue
            nrot = (n - 1 - (j + cur)) // cur + 1
            total += nrot * (12 * (2 * cur + 2) + q_cost)
    return total


def bulge_blocked_flops(n: int, b: int, *, want_q: bool = True) -> int:
    """Stage-2 operations of the blocked Householder bulge chase.

    Iterates the exact hop geometry every sweep performs
    (:func:`repro.gemm.symbolic.bulge_sweep_geometry` — shared with the
    numeric executors) and charges each hop its QR factorization, WY
    build, two-sided WY application over the hop's footprint, and Q
    accumulation.
    """
    total = 0
    for j in range(max(n - 2, 0)):
        for kind, a0, a1, b0, b1, hi in bulge_sweep_geometry(n, b, j):
            L = b1 - b0
            w = a1 - a0 if kind == "qr" else 1
            kk = min(L, w)
            total += panel_qr_flops(L, kk) + panel_wy_build_flops(L, kk)
            # Two-sided application: tile (L×L) plus strip (L×(hi-b1)),
            # each Y (W^T S) left + mirrored right.
            total += 8 * L * kk * (hi - a1)
            if want_q:
                total += 4 * n * L * kk
    return total


def bulge_wavefront_flops(n: int, b: int, *, want_q: bool = True) -> int:
    """Stage-2 operations of the wavefront bulge chase.

    Engine-visible work comes from the symbolic launch schedule
    (:func:`repro.gemm.symbolic.trace_bulge_wavefront` — pinned by tests
    to match the numeric executor's stream); the batched QR/WY factor
    work per step is added from the standard panel formulas, summed over
    the same shared hop geometry.
    """
    total = trace_bulge_wavefront(n, b, want_q=want_q).total_flops
    for j in range(max(n - 2, 0)):
        for kind, a0, a1, b0, b1, hi in bulge_sweep_geometry(n, b, j):
            L = b1 - b0
            kk = min(L, a1 - a0) if kind == "qr" else 1
            total += panel_qr_flops(L, kk) + panel_wy_build_flops(L, kk)
    return total


def bulge_flops(n: int, b: int, *, variant: str = "givens", want_q: bool = True) -> int:
    """Stage-2 operation count for the named bulge-chase variant."""
    if variant == "blocked":
        return bulge_blocked_flops(n, b, want_q=want_q)
    if variant == "wavefront":
        return bulge_wavefront_flops(n, b, want_q=want_q)
    return bulge_givens_flops(n, b, want_q=want_q)
