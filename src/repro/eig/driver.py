"""End-to-end symmetric eigensolvers (the paper's §6.4 case study).

``syevd_2stage`` chains the library's pieces exactly the way the paper's
implementation chains its GPU band reduction with MAGMA's CPU stages:

1. **Stage 1** — successive band reduction (WY-based Algorithm 1 by
   default; ZY-based available) under the chosen precision policy
   (FP16/TF32 Tensor-Core emulation, EC-TCGEMM, FP32, FP64).
2. **Stage 2** — bulge chasing of the band matrix to tridiagonal form.
   (The paper ships the band matrix over PCIe to the host here; the
   device performance model charges that transfer, the numerics don't
   need it.)
3. **Tridiagonal eigensolver** — divide & conquer (default), QL
   iteration, or Sturm bisection (eigenvalues only).
4. **Back-transformation** — eigenvectors are assembled as
   ``Q_sbr @ Q_bulge @ V_tri`` when requested.

Stages 2–4 run in float64 regardless of the stage-1 policy, mirroring the
paper's setup where the MAGMA host stages are numerically healthy and all
interesting error comes from the Tensor-Core band reduction (their
Table 4 checks exactly that).

Graceful degradation
--------------------
The drivers run numerical-failure detectors by default
(``on_breakdown="escalate"``): NaN/Inf and overflow scans on every GEMM
output, panel-Q orthogonality drift, trailing-norm growth, and symmetry
probes (:mod:`repro.resilience`).  On detection the failed unit — one
panel and its trailing update, or one stage — is retried from a
lightweight checkpoint at the next-safer precision on the ladder
``FP16_TC -> FP16_EC_TC -> TF32_TC -> FP32 -> FP64``.
``on_breakdown="raise"`` propagates a
:class:`~repro.errors.NumericalBreakdownError` naming the failed phase;
``"best_effort"`` grants an exhausted unit one final detector-suppressed
pass at FP64 and says so in the report (only a structural failure in
that last pass still propagates); ``on_breakdown=None`` disables the
resilience layer entirely.  Every run's
:attr:`EvdResult.resilience_report` records what was detected and
escalated — empty on a healthy run.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as _dc_replace

import numpy as np

from ..ckpt.store import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointReport,
    resilience_snapshot,
    restore_resilience,
)
from ..errors import ConfigurationError, ConvergenceError, NumericalBreakdownError
from ..gemm.engine import GemmEngine, make_engine
from ..obs import spans as obs
from ..obs.live import phase_plan, resolve_live, use_registry
from ..obs.tracing import TraceContext
from ..perf import resolve_workspace
from ..precision.modes import Precision
from ..resilience.context import ResilienceContext
from ..resilience.detectors import DetectorConfig
from ..resilience.faults import FaultInjector
from ..resilience.policy import EscalationLadder, ResilienceReport
from ..sbr.panel import PanelStrategy
from ..sbr.types import SbrResult, pack_wy_blocks, unpack_wy_blocks
from ..sbr.wy import sbr_wy
from ..sbr.zy import sbr_zy
from ..errors import ValidationError
from ..validation import as_symmetric_matrix, check_blocksizes, check_finite_matrix
from .bulge import bulge_chase
from .dc import tridiag_eig_dc
from .qliter import tridiag_eig_ql
from .sturm import eigvals_bisect
from .tridiag_direct import householder_tridiagonalize

__all__ = ["EvdResult", "syevd_2stage", "syevd_1stage", "syevd_selected"]

#: Stage-2 band-to-tridiagonal schemes selectable on the drivers.
BULGE_VARIANTS = ("givens", "blocked", "wavefront")


def _check_bulge_variant(bulge_variant: str) -> None:
    if bulge_variant not in BULGE_VARIANTS:
        raise ValidationError(
            "bulge_variant must be one of 'givens', 'blocked', 'wavefront'; "
            f"got {bulge_variant!r}",
            field="bulge_variant",
        )


@dataclass
class EvdResult:
    """Output of an end-to-end eigendecomposition.

    Attributes
    ----------
    eigenvalues : numpy.ndarray
        Ascending eigenvalues.
    eigenvectors : numpy.ndarray or None
        Orthonormal eigenvectors (columns aligned with ``eigenvalues``),
        ``None`` when not requested.
    sbr : SbrResult or None
        The stage-1 band reduction result (``None`` for 1-stage driver).
    tridiagonal : tuple (d, e)
        The tridiagonal matrix the eigensolver consumed.
    engine : GemmEngine or None
        The stage-1 engine (its ``trace`` carries the GEMM stream when
        recording was enabled).
    resilience_report : ResilienceReport or None
        What the resilience layer detected/escalated during the run
        (``None`` when the layer was disabled with ``on_breakdown=None``;
        ``.empty`` is True for a healthy run).
    checkpoint_report : CheckpointReport or None
        What the checkpoint layer wrote/loaded (``None`` when
        checkpointing was off; ``.resumed_from`` names the restart point
        of a resumed run).
    workspace : repro.perf.Workspace or None
        The scratch arena the run used (``None`` when the driver ran
        without one, e.g. checkpoint-resumed results or the 1-stage
        path); its ``stats()`` become the run manifest's ``alloc`` line.
    metrics : dict or None
        Final live-metrics registry dump when the run was launched with
        ``live=`` (counters, gauges, GEMM latency quantiles, alerts,
        progress); becomes the run manifest's ``metrics`` line.  ``None``
        otherwise.
    abft_report : AbftReport or None
        What the online ABFT layer verified/detected/corrected when the
        run was launched with ``abft="detect"``/``"correct"``
        (:mod:`repro.resilience.abft`); becomes the run manifest's
        ``abft`` line.  ``None`` when the layer was off.
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray | None
    sbr: SbrResult | None
    tridiagonal: tuple[np.ndarray, np.ndarray]
    engine: GemmEngine | None = None
    resilience_report: ResilienceReport | None = None
    checkpoint_report: CheckpointReport | None = None
    workspace: "object | None" = None
    metrics: "dict | None" = None
    abft_report: "object | None" = None


def _solve_tridiagonal(
    d: np.ndarray,
    e: np.ndarray,
    solver: str,
    want_vectors: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    if solver == "dc":
        return tridiag_eig_dc(d, e, want_vectors=want_vectors)
    if solver == "ql":
        return tridiag_eig_ql(d, e, want_vectors=want_vectors)
    if solver == "bisect":
        if want_vectors:
            raise ConfigurationError("bisection computes eigenvalues only")
        return eigvals_bisect(d, e), None
    raise ConfigurationError(
        f"unknown tridiagonal solver {solver!r}; expected 'dc', 'ql' or 'bisect'"
    )


def _solve_tridiagonal_with_context(d, e, solver, want_vectors):
    """Tridiagonal solve, re-raising ConvergenceError with phase context."""
    try:
        return _solve_tridiagonal(d, e, solver, want_vectors)
    except ConvergenceError as exc:
        # Attach the driver phase instead of swallowing the structured
        # state; re-raise the same (enriched) exception.
        if exc.phase is None:
            exc.phase = "tridiag_solve"
        raise


def _make_context(
    on_breakdown: "str | None",
    resilience: "ResilienceContext | None",
    ladder: "EscalationLadder | None",
    detectors: "DetectorConfig | None",
    faults: "FaultInjector | None",
    abft=None,
) -> "ResilienceContext | None":
    """Resolve the resilience context for one driver run."""
    if resilience is not None:
        return resilience
    if on_breakdown is None:
        if faults is not None:
            raise ConfigurationError(
                "fault injection requires the resilience layer; "
                "pass on_breakdown='escalate'|'raise'|'best_effort'"
            )
        if abft is not None and abft != "off":
            raise ConfigurationError(
                "online ABFT requires the resilience layer; "
                "pass on_breakdown='escalate'|'raise'|'best_effort'"
            )
        return None
    return ResilienceContext(
        on_breakdown=on_breakdown, ladder=ladder,
        detectors=detectors, injector=faults, abft=abft,
    )


def _stage_check(ctx, phase, arr, site):
    """Detect-only check of a deterministic float64 stage output.

    There is nothing to retry or escalate here (the stage is already
    float64 and re-running it is a no-op), so a detection propagates —
    except under ``best_effort``, where it is recorded in the report and
    the run carries on with what it has.
    """
    if ctx is None:
        return
    try:
        with ctx.unit(phase):
            ctx.check_array(arr, site=site)
    except NumericalBreakdownError:
        if ctx.mode != "best_effort":
            raise
        if phase not in ctx.report.best_effort:
            ctx.report.best_effort.append(phase)


def _make_ckpt_manager(checkpoint) -> "CheckpointManager | None":
    """Resolve the ``checkpoint=`` argument (config, manager, dir, or None)."""
    if checkpoint is None:
        return None
    if isinstance(checkpoint, CheckpointManager):
        return checkpoint
    if isinstance(checkpoint, CheckpointConfig):
        return CheckpointManager(checkpoint)
    if isinstance(checkpoint, str):
        return CheckpointManager(CheckpointConfig(run_dir=checkpoint))
    raise ConfigurationError(
        f"checkpoint must be a CheckpointConfig, CheckpointManager, or "
        f"run-directory path, got {type(checkpoint).__name__}"
    )


def _sbr_from_checkpoint(ck_band, b: int) -> SbrResult:
    """Rebuild the stage-1 result from a verified ``"band"`` checkpoint."""
    return SbrResult(
        band=ck_band.arrays["band"],
        bandwidth=int(ck_band.scalars.get("bandwidth", b)),
        q=ck_band.arrays.get("q"),
        blocks=unpack_wy_blocks(
            ck_band.arrays, ck_band.scalars.get("block_offsets", [])
        ),
    )


def _resumed_result(ck, result_ck, b, eng, sbr_eng, ctx) -> "EvdResult":
    """Reassemble a finished run straight from its ``"result"`` checkpoint."""
    band_ck = ck.phase("band")
    restore_resilience(ctx, sbr_eng, result_ck.scalars.get("resilience"))
    ck.mark_resumed(result_ck)
    return EvdResult(
        eigenvalues=result_ck.arrays["eigenvalues"],
        eigenvectors=result_ck.arrays.get("eigenvectors"),
        sbr=_sbr_from_checkpoint(band_ck, b) if band_ck is not None else None,
        tridiagonal=(result_ck.arrays["d"], result_ck.arrays["e"]),
        engine=eng,
        resilience_report=ctx.report if ctx is not None else None,
        checkpoint_report=ck.report,
        abft_report=ctx.abft.report if ctx is not None and ctx.abft is not None else None,
    )


def _resilient_bulge(
    ctx, band64, b, want_q, variant="givens", record_trace=False, workspace=None,
):
    """Bulge chasing as a retryable unit.

    Stage 2 is float64 work, so there is no precision to escalate —
    recovery is retry-from-checkpoint (the band matrix is immutable
    input), which heals transient corruption; persistent corruption
    exhausts the budget and propagates/degrades per the context mode.
    The fault-injection site ``"bulge"`` corrupts the band copy handed to
    the chase; the pre-chase detectors (non-finite, magnitude, symmetry)
    catch it before the rotations run.

    The wavefront variant launches its tile updates through a float64
    engine; with resilience active that engine is wrapped like the
    stage-1 stream, so the detectors, ABFT checksums, and fault sites
    cover the stage-2 GEMMs too.
    """
    kwargs = {}
    if variant == "wavefront":
        bulge_eng = make_engine(Precision.FP64, record=record_trace)
        if ctx is not None:
            bulge_eng = ctx.wrap_engine(bulge_eng)
        kwargs = {"engine": bulge_eng, "workspace": workspace}
    if ctx is None:
        return bulge_chase(band64, b, want_q=want_q, variant=variant, **kwargs)
    attempt = 0
    while True:
        try:
            with ctx.unit("bulge"):
                band_in = ctx.inject("bulge", band64)
                # ABFT copy guard: the pristine band is still in memory,
                # so corruption of the copy localizes (and, in correct
                # mode, patches) exactly.
                band_in = ctx.guard_copy("bulge", band_in, band64)
                ctx.check_array(band_in, site="bulge_band")
                ctx.check_symmetry(band_in, precision=Precision.FP64)
                d, e, q2 = bulge_chase(
                    band_in, b, want_q=want_q, variant=variant, **kwargs
                )
                ctx.check_array(d, site="bulge_d")
                if e.size:
                    ctx.check_array(e, site="bulge_e")
            ctx.note_precision("bulge", Precision.FP64)
            return d, e, q2
        except NumericalBreakdownError as exc:
            if not ctx.handle_breakdown(
                exc, engine=None, attempt=attempt, phase="bulge"
            ):
                raise
            attempt += 1


def _back_transform(ctx, q_sbr, q2, v_tri, record_trace):
    """Assemble ``X = Q_sbr @ Q_bulge @ V_tri`` (float64).

    With online ABFT or fault injection active the two products route
    through a guarded float64 engine (tag ``"back_transform"``) so the
    launches are verified/injectable like the stage-1 stream; the plain
    path stays a bare ``@`` chain — bitwise identical, zero overhead.
    Retries mirror :func:`_resilient_bulge`: the inputs are immutable,
    so a re-run heals transient corruption without precision changes.
    """
    q64 = np.asarray(q_sbr, dtype=np.float64)
    if ctx is None or (ctx.abft is None and ctx.injector is None):
        return q64 @ (q2 @ v_tri)
    bt_eng = ctx.wrap_engine(make_engine(Precision.FP64, record=record_trace))
    attempt = 0
    while True:
        try:
            with ctx.unit("back_transform"):
                t = bt_eng.gemm(q2, v_tri, tag="back_transform")
                return bt_eng.gemm(q64, t, tag="back_transform")
        except NumericalBreakdownError as exc:
            if not ctx.handle_breakdown(
                exc, engine=None, attempt=attempt, phase="back_transform"
            ):
                raise
            attempt += 1


def syevd_2stage(
    a,
    *,
    b: int = 16,
    nb: int | None = None,
    method: str = "wy",
    precision: "Precision | str" = Precision.FP32,
    engine: GemmEngine | None = None,
    panel: "str | PanelStrategy | None" = None,
    want_vectors: bool = True,
    tridiag_solver: str = "dc",
    bulge_variant: str = "givens",
    record_trace: bool = False,
    workspace=None,
    lookahead: bool = False,
    on_breakdown: "str | None" = "escalate",
    resilience: "ResilienceContext | None" = None,
    ladder: "EscalationLadder | None" = None,
    detectors: "DetectorConfig | None" = None,
    faults: "FaultInjector | None" = None,
    abft: "str | None" = None,
    checkpoint: "CheckpointConfig | CheckpointManager | str | None" = None,
    check_finite: bool = True,
    check_input: bool = True,
    live=None,
    metrics=None,
    trace: "TraceContext | dict | None" = None,
) -> EvdResult:
    """Two-stage symmetric eigendecomposition ``A = X diag(lam) X^T``.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        Input matrix.
    b : int
        Stage-1 bandwidth (small enough for cheap bulge chasing, large
        enough for efficient panels; the paper uses 128 at GPU scale).
    nb : int, optional
        WY big-block size (default ``4 * b``); ignored for ``method="zy"``.
    method : {"wy", "zy"}
        Stage-1 algorithm: the paper's Algorithm 1 or the conventional
        ZY-based reduction.
    precision : Precision or str
        Stage-1 arithmetic policy (ignored when ``engine`` is given).
    engine : GemmEngine, optional
        Explicit stage-1 engine (overrides ``precision``).
    panel : str or PanelStrategy, optional
        Panel factorization (defaults: "tsqr" for WY, "blocked_qr" for ZY).
    want_vectors : bool
        Whether to form eigenvectors (adds the two back-transformations).
    tridiag_solver : {"dc", "ql", "bisect"}
        Tridiagonal eigensolver.
    bulge_variant : {"givens", "blocked", "wavefront"}
        Stage-2 band-to-tridiagonal scheme (see
        :func:`repro.eig.bulge.bulge_chase`).  ``"wavefront"`` routes the
        stage-2 tile updates through a float64 GEMM engine (sharing this
        run's workspace arena), so they appear in the telemetry stream
        and under the resilience/ABFT guards like stage 1.
    record_trace : bool
        Record the stage-1 GEMM stream on the engine.
    workspace : repro.perf.Workspace, bool, or None
        Stage-1 scratch arena (see :func:`repro.sbr.wy.sbr_wy`).
        ``None``/``True`` create one, ``False`` disables buffer reuse; the
        arena's allocation counters are reported on ``EvdResult.workspace``
        and in the run manifest's ``alloc`` line.
    lookahead : bool
        Overlap each big block's trailing update with the next panel's QR
        (WY stage 1 only; bitwise identical to the serial schedule, and
        ignored when resilience retry or checkpointing is active).
    on_breakdown : {"escalate", "raise", "best_effort"} or None
        Failure-detector response (see module docstring).  ``None``
        disables the resilience layer.
    resilience : ResilienceContext, optional
        Pre-built context (overrides ``on_breakdown``/``ladder``/
        ``detectors``/``faults``) — lets callers share one report across
        composed calls.
    ladder : EscalationLadder, optional
        Retry budget / widening / stickiness policy.
    detectors : DetectorConfig, optional
        Which invariant monitors run and how strict they are.
    faults : FaultInjector, optional
        Deterministic fault injection (test harness).
    abft : {"off", "detect", "correct"} or AbftPolicy, optional
        Online ABFT over every guarded GEMM launch
        (:mod:`repro.resilience.abft`): row/column checksum verification
        after each stage-1/back-transform launch plus a copy guard on
        the bulge band.  ``"detect"`` raises
        :class:`~repro.errors.SdcError` on the first mismatch;
        ``"correct"`` patches single-element corruption in place
        (bitwise-exact, sourced from a deterministic replay), recomputes
        multi-element damage, and escalates only persistent damage to
        the retry ladder.  Default off — zero overhead.  Requires the
        resilience layer (``on_breakdown`` not None).  The run's
        :attr:`EvdResult.abft_report` records what was verified and
        corrected.
    checkpoint : CheckpointConfig, CheckpointManager, or str, optional
        Durable checkpoint/restart (a bare string is taken as the run
        directory).  The run commits restart state after every SBR panel
        and at each phase boundary (``band``, ``tridiag``, ``trieig``,
        ``result``); re-running against a directory holding an earlier
        interrupted run — or calling :func:`repro.ckpt.resume` — skips
        every completed phase and continues from the furthest verified
        checkpoint to a bitwise-identical result.  Checkpoints are
        CRC- and ABFT-checksummed; a torn or corrupted one raises
        :class:`~repro.errors.CheckpointCorruptionError` at load.
    check_finite : bool
        Reject NaN/Inf inputs up front with a clear error (cheap
        ``np.isfinite`` gate; skippable for pre-validated inputs).
    check_input : bool
        Master up-front validation gate (default on): non-square,
        non-symmetric, and (together with ``check_finite``) non-finite
        inputs raise a structured
        :class:`~repro.errors.ValidationError` whose ``field``
        attribute names the failed check (``"square"``, ``"symmetry"``,
        ``"finite"``, ...) instead of breaking deep inside SBR.
        ``check_input=False`` skips the symmetry/finite comparisons for
        pre-validated inputs (shape coercion still happens).
    live : bool, str, LiveConfig, MetricsRegistry, or LiveSession, optional
        Live monitoring for this run (:mod:`repro.obs.live`).  ``True``
        or a directory path starts the full stack — metrics registry,
        progress/ETA estimator seeded from the flop model, background
        reporter writing Prometheus/JSONL snapshots and a heartbeat file
        under the directory.  The final registry dump is returned on
        :attr:`EvdResult.metrics`.
    metrics : MetricsRegistry, optional
        Registry-only aggregation: install an existing registry for the
        duration of the call (no reporter thread, no files).  Ignored
        when ``live=`` is given.
    trace : TraceContext or dict, optional
        Request-scoped causal context (:mod:`repro.obs.tracing`).  When
        given (or recovered from a checkpointed run directory's header),
        its ids are stamped on the root ``syevd`` span so run-scoped
        telemetry joins the request's trace; checkpointed runs persist
        the context in ``run.json`` and :func:`repro.ckpt.resume`
        rehydrates it, so a killed-and-resumed run continues the same
        trace.

    Returns
    -------
    EvdResult
    """
    a = np.asarray(a)
    if check_input and check_finite and a.ndim == 2 and a.size:
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, check=check_input)
    n = a.shape[0]
    if nb is None:
        nb = 4 * b
    check_blocksizes(n, b, nb if method == "wy" else None)
    if method not in ("wy", "zy"):
        raise ConfigurationError(f"method must be 'wy' or 'zy', got {method!r}")
    _check_bulge_variant(bulge_variant)

    ctx = _make_context(on_breakdown, resilience, ladder, detectors, faults, abft)
    eng = engine if engine is not None else make_engine(precision, record=record_trace)
    sbr_eng = ctx.wrap_engine(eng) if ctx is not None else eng
    ws = resolve_workspace(workspace)

    ck = _make_ckpt_manager(checkpoint)
    tctx = TraceContext.coerce(trace)
    band_ck = tridiag_ck = trieig_ck = None
    if ck is not None:
        if tctx is not None and ck.config.trace is None:
            # Persist the caller's context into the run header so a later
            # resume of this directory continues the same trace.
            ck.config = _dc_replace(ck.config, trace=tctx.to_dict())
        ck.begin(a, {
            "driver": "syevd_2stage", "n": n, "b": b, "nb": nb,
            "method": method, "precision": eng.precision.value,
            "panel": panel if isinstance(panel, str) else None,
            "want_vectors": want_vectors, "tridiag_solver": tridiag_solver,
            "bulge_variant": bulge_variant,
            "on_breakdown": on_breakdown,
        })
        if tctx is None:
            # Resuming a traced directory without an explicit context:
            # rehydrate the one persisted at begin.
            tctx = TraceContext.coerce(ck.trace())
        result_ck = ck.phase("result")
        if result_ck is not None:
            return _resumed_result(ck, result_ck, b, eng, sbr_eng, ctx)
        trieig_ck = ck.phase("trieig")
        tridiag_ck = ck.phase("tridiag")
        band_ck = ck.phase("band")
        furthest = trieig_ck or tridiag_ck or band_ck
        if furthest is not None:
            # Phase-boundary restart: skip completed phases below.  A
            # mid-SBR restart (only sbr_panel checkpoints) is handled
            # inside the SBR driver itself.
            restore_resilience(ctx, sbr_eng, furthest.scalars.get("resilience"))
            ck.mark_resumed(furthest)

    # Live monitoring: `live=` starts the full registry/reporter stack
    # with a progress plan from the flop model; `metrics=` installs a
    # bare registry.  Off by default — both contexts are no-ops then.
    if live is not None and live is not False:
        live_sess = resolve_live(live, plan=phase_plan(
            n, b, nb, method=method, want_vectors=want_vectors,
            tridiag_solver=tridiag_solver, bulge_variant=bulge_variant,
        ))
        metrics_reg = None
    else:
        live_sess = resolve_live(None)
        metrics_reg = metrics

    root_meta = dict(
        n=n, b=b, nb=nb, method=method, solver=tridiag_solver,
        bulge=bulge_variant,
    )
    if tctx is not None:
        root_meta.update(tctx.span_meta())
    with live_sess, use_registry(metrics_reg), obs.span("syevd", **root_meta):
        with obs.span("sbr"):
            if band_ck is not None:
                sbr = _sbr_from_checkpoint(band_ck, b)
            elif method == "wy":
                sbr = sbr_wy(
                    a, b, nb, engine=sbr_eng, panel=panel or "tsqr",
                    want_q=want_vectors, workspace=ws, lookahead=lookahead,
                    resilience=ctx, checkpoint=ck,
                    check_finite=False,
                )
            else:
                sbr = sbr_zy(
                    a, b, engine=sbr_eng, panel=panel or "blocked_qr",
                    want_q=want_vectors, workspace=ws,
                    resilience=ctx, checkpoint=ck,
                    check_finite=False,
                )
            if ck is not None and band_ck is None:
                arrays, offsets = pack_wy_blocks(sbr.blocks)
                arrays["band"] = sbr.band
                if sbr.q is not None:
                    arrays["q"] = sbr.q
                ck.save("band", arrays, {
                    "bandwidth": sbr.bandwidth,
                    "block_offsets": offsets,
                    "resilience": resilience_snapshot(ctx, sbr_eng),
                })
                # Every sbr_panel checkpoint is subsumed by the band.
                ck.prune("sbr_panel", keep=0)

        # Stage 2 onward in float64 (host-side MAGMA stages in the paper).
        with obs.span("bulge"):
            if tridiag_ck is not None:
                d = tridiag_ck.arrays["d"]
                e = tridiag_ck.arrays["e"]
                q2 = tridiag_ck.arrays.get("q2")
            else:
                band64 = np.asarray(sbr.band, dtype=np.float64)
                d, e, q2 = _resilient_bulge(
                    ctx, band64, b, want_vectors, bulge_variant,
                    record_trace=record_trace, workspace=ws,
                )
                if ck is not None:
                    ck.save("tridiag", {"d": d, "e": e, "q2": q2}, {
                        "resilience": resilience_snapshot(ctx, sbr_eng),
                    })
        with obs.span("tridiag_solve", solver=tridiag_solver):
            if trieig_ck is not None:
                lam = trieig_ck.arrays["lam"]
                v_tri = trieig_ck.arrays.get("v_tri")
            else:
                lam, v_tri = _solve_tridiagonal_with_context(
                    d, e, tridiag_solver, want_vectors
                )
                _stage_check(ctx, "tridiag_solve", lam, "tridiag_eigenvalues")
                if ck is not None:
                    ck.save("trieig", {"lam": lam, "v_tri": v_tri}, {
                        "resilience": resilience_snapshot(ctx, sbr_eng),
                    })

        x = None
        if want_vectors:
            with obs.span("back_transform"):
                # X = Q_sbr @ Q_bulge @ V_tri.
                x = _back_transform(ctx, sbr.q, q2, v_tri, record_trace)
            _stage_check(ctx, "back_transform", x, "eigenvectors")
        if ck is not None:
            ck.save("result", {
                "eigenvalues": lam, "eigenvectors": x, "d": d, "e": e,
            }, {"resilience": resilience_snapshot(ctx, sbr_eng)})
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=sbr,
        tridiagonal=(d, e),
        engine=eng,
        resilience_report=ctx.report if ctx is not None else None,
        checkpoint_report=ck.report if ck is not None else None,
        workspace=ws,
        metrics=live_sess.dump,
        abft_report=ctx.abft.report if ctx is not None and ctx.abft is not None else None,
    )


def syevd_1stage(
    a,
    *,
    want_vectors: bool = True,
    tridiag_solver: str = "dc",
    on_breakdown: "str | None" = "escalate",
    check_finite: bool = True,
    check_input: bool = True,
) -> EvdResult:
    """One-stage eigendecomposition: direct Householder tridiagonalization.

    The conventional ``sytrd``-based path (float64), kept as the
    correctness baseline the two-stage driver is validated against.  The
    resilience layer here is detect-and-report only — the whole path is
    already float64, so there is no safer precision to escalate to and
    any detected breakdown propagates (``on_breakdown`` values behave
    alike apart from ``None``, which disables detection).
    """
    a = np.asarray(a)
    if check_input and check_finite and a.ndim == 2 and a.size:
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, dtype=np.float64, check=check_input)
    ctx = _make_context(on_breakdown, None, None, None, None)
    with obs.span("syevd_1stage", n=a.shape[0], solver=tridiag_solver):
        with obs.span("tridiagonalize"):
            d, e, q1 = householder_tridiagonalize(a, want_q=want_vectors)
            if ctx is not None:
                with ctx.unit("tridiagonalize"):
                    ctx.check_array(d, site="tridiag_d")
                    if e.size:
                        ctx.check_array(e, site="tridiag_e")
        with obs.span("tridiag_solve", solver=tridiag_solver):
            lam, v_tri = _solve_tridiagonal_with_context(
                d, e, tridiag_solver, want_vectors
            )
        with obs.span("back_transform"):
            x = q1 @ v_tri if want_vectors else None
    if ctx is not None:
        ctx.note_precision("tridiagonalize", Precision.FP64)
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=None,
        tridiagonal=(d, e),
        engine=None,
        resilience_report=ctx.report if ctx is not None else None,
    )


def syevd_selected(
    a,
    *,
    select: "tuple[int, int] | None" = None,
    interval: "tuple[float, float] | None" = None,
    b: int = 16,
    nb: int | None = None,
    method: str = "wy",
    precision: "Precision | str" = Precision.FP32,
    want_vectors: bool = True,
    bulge_variant: str = "givens",
    on_breakdown: "str | None" = "escalate",
    faults: "FaultInjector | None" = None,
    abft: "str | None" = None,
    check_finite: bool = True,
    check_input: bool = True,
) -> EvdResult:
    """Selected eigenpairs: band reduction + bisection + inverse iteration.

    The query styles the paper's related work attributes to bisection
    methods ("the largest/smallest 100, or all eigenvalues in [a, b]"),
    composed from the library's pieces: stage-1 band reduction under the
    chosen precision, bulge chasing, Sturm bisection for the selected
    eigenvalues, tridiagonal inverse iteration for their vectors, and the
    two back-transformations.  Cost scales with the *number of selected
    pairs* after the O(n^2 b) reduction.

    Parameters
    ----------
    select : (lo, hi), optional
        Index range (0-based ascending, half-open).  Mutually exclusive
        with ``interval``; default: all eigenvalues.
    interval : (a, b], optional
        Compute all eigenvalues in the half-open interval.
    (remaining parameters as in :func:`syevd_2stage`)

    Returns
    -------
    EvdResult
        ``eigenvalues``/``eigenvectors`` hold only the selected pairs.
    """
    from .inverse_iteration import tridiag_inverse_iteration

    a = np.asarray(a)
    if check_input and check_finite and a.ndim == 2 and a.size:
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, check=check_input)
    n = a.shape[0]
    if nb is None:
        nb = 4 * b
    check_blocksizes(n, b, nb if method == "wy" else None)
    if method not in ("wy", "zy"):
        raise ConfigurationError(f"method must be 'wy' or 'zy', got {method!r}")
    _check_bulge_variant(bulge_variant)

    ctx = _make_context(on_breakdown, None, None, None, faults, abft)
    eng = make_engine(precision)
    sbr_eng = ctx.wrap_engine(eng) if ctx is not None else eng
    with obs.span("syevd_selected", n=n, b=b, nb=nb, method=method):
        with obs.span("sbr"):
            if method == "wy":
                sbr = sbr_wy(
                    a, b, nb, engine=sbr_eng, panel="tsqr",
                    want_q=want_vectors, resilience=ctx, check_finite=False,
                )
            else:
                sbr = sbr_zy(
                    a, b, engine=sbr_eng, panel="blocked_qr",
                    want_q=want_vectors, resilience=ctx, check_finite=False,
                )

        with obs.span("bulge"):
            band64 = np.asarray(sbr.band, dtype=np.float64)
            d, e, q2 = _resilient_bulge(ctx, band64, b, want_vectors, bulge_variant)
        with obs.span("bisect"):
            lam = eigvals_bisect(d, e, select=select, interval=interval)

        x = None
        if want_vectors and lam.size:
            with obs.span("inverse_iteration"):
                try:
                    v_tri = tridiag_inverse_iteration(d, e, lam)
                except ConvergenceError as exc:
                    if exc.phase is None:
                        exc.phase = "inverse_iteration"
                    raise
            with obs.span("back_transform"):
                x = _back_transform(ctx, sbr.q, q2, v_tri, False)
        elif want_vectors:
            x = np.zeros((n, 0))
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=sbr,
        tridiagonal=(d, e),
        engine=eng,
        resilience_report=ctx.report if ctx is not None else None,
        abft_report=ctx.abft.report if ctx is not None and ctx.abft is not None else None,
    )
