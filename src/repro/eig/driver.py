"""End-to-end symmetric eigensolvers (the paper's §6.4 case study).

``syevd_2stage`` chains the library's pieces exactly the way the paper's
implementation chains its GPU band reduction with MAGMA's CPU stages:

1. **Stage 1** — successive band reduction (WY-based Algorithm 1 by
   default; ZY-based available) under the chosen precision policy
   (FP16/TF32 Tensor-Core emulation, EC-TCGEMM, FP32, FP64).
2. **Stage 2** — bulge chasing of the band matrix to tridiagonal form.
   (The paper ships the band matrix over PCIe to the host here; the
   device performance model charges that transfer, the numerics don't
   need it.)
3. **Tridiagonal eigensolver** — divide & conquer (default), QL
   iteration, or Sturm bisection (eigenvalues only).
4. **Back-transformation** — eigenvectors are assembled as
   ``Q_sbr @ Q_bulge @ V_tri`` when requested.

Stages 2–4 run in float64 regardless of the stage-1 policy, mirroring the
paper's setup where the MAGMA host stages are numerically healthy and all
interesting error comes from the Tensor-Core band reduction (their
Table 4 checks exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..gemm.engine import GemmEngine, make_engine
from ..obs import spans as obs
from ..precision.modes import Precision
from ..sbr.panel import PanelStrategy
from ..sbr.types import SbrResult
from ..sbr.wy import sbr_wy
from ..sbr.zy import sbr_zy
from ..validation import as_symmetric_matrix, check_blocksizes
from .bulge import bulge_chase
from .dc import tridiag_eig_dc
from .qliter import tridiag_eig_ql
from .sturm import eigvals_bisect
from .tridiag_direct import householder_tridiagonalize

__all__ = ["EvdResult", "syevd_2stage", "syevd_1stage", "syevd_selected"]


@dataclass
class EvdResult:
    """Output of an end-to-end eigendecomposition.

    Attributes
    ----------
    eigenvalues : numpy.ndarray
        Ascending eigenvalues.
    eigenvectors : numpy.ndarray or None
        Orthonormal eigenvectors (columns aligned with ``eigenvalues``),
        ``None`` when not requested.
    sbr : SbrResult or None
        The stage-1 band reduction result (``None`` for 1-stage driver).
    tridiagonal : tuple (d, e)
        The tridiagonal matrix the eigensolver consumed.
    engine : GemmEngine or None
        The stage-1 engine (its ``trace`` carries the GEMM stream when
        recording was enabled).
    """

    eigenvalues: np.ndarray
    eigenvectors: np.ndarray | None
    sbr: SbrResult | None
    tridiagonal: tuple[np.ndarray, np.ndarray]
    engine: GemmEngine | None = None


def _solve_tridiagonal(
    d: np.ndarray,
    e: np.ndarray,
    solver: str,
    want_vectors: bool,
) -> tuple[np.ndarray, np.ndarray | None]:
    if solver == "dc":
        return tridiag_eig_dc(d, e, want_vectors=want_vectors)
    if solver == "ql":
        return tridiag_eig_ql(d, e, want_vectors=want_vectors)
    if solver == "bisect":
        if want_vectors:
            raise ConfigurationError("bisection computes eigenvalues only")
        return eigvals_bisect(d, e), None
    raise ConfigurationError(
        f"unknown tridiagonal solver {solver!r}; expected 'dc', 'ql' or 'bisect'"
    )


def syevd_2stage(
    a,
    *,
    b: int = 16,
    nb: int | None = None,
    method: str = "wy",
    precision: "Precision | str" = Precision.FP32,
    engine: GemmEngine | None = None,
    panel: "str | PanelStrategy | None" = None,
    want_vectors: bool = True,
    tridiag_solver: str = "dc",
    record_trace: bool = False,
) -> EvdResult:
    """Two-stage symmetric eigendecomposition ``A = X diag(lam) X^T``.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        Input matrix.
    b : int
        Stage-1 bandwidth (small enough for cheap bulge chasing, large
        enough for efficient panels; the paper uses 128 at GPU scale).
    nb : int, optional
        WY big-block size (default ``4 * b``); ignored for ``method="zy"``.
    method : {"wy", "zy"}
        Stage-1 algorithm: the paper's Algorithm 1 or the conventional
        ZY-based reduction.
    precision : Precision or str
        Stage-1 arithmetic policy (ignored when ``engine`` is given).
    engine : GemmEngine, optional
        Explicit stage-1 engine (overrides ``precision``).
    panel : str or PanelStrategy, optional
        Panel factorization (defaults: "tsqr" for WY, "blocked_qr" for ZY).
    want_vectors : bool
        Whether to form eigenvectors (adds the two back-transformations).
    tridiag_solver : {"dc", "ql", "bisect"}
        Tridiagonal eigensolver.
    record_trace : bool
        Record the stage-1 GEMM stream on the engine.

    Returns
    -------
    EvdResult
    """
    a = as_symmetric_matrix(a)
    n = a.shape[0]
    if nb is None:
        nb = 4 * b
    check_blocksizes(n, b, nb if method == "wy" else None)

    eng = engine if engine is not None else make_engine(precision, record=record_trace)
    with obs.span("syevd", n=n, b=b, nb=nb, method=method, solver=tridiag_solver):
        with obs.span("sbr"):
            if method == "wy":
                sbr = sbr_wy(a, b, nb, engine=eng, panel=panel or "tsqr", want_q=want_vectors)
            elif method == "zy":
                sbr = sbr_zy(a, b, engine=eng, panel=panel or "blocked_qr", want_q=want_vectors)
            else:
                raise ConfigurationError(f"method must be 'wy' or 'zy', got {method!r}")

        # Stage 2 onward in float64 (host-side MAGMA stages in the paper).
        with obs.span("bulge"):
            band64 = np.asarray(sbr.band, dtype=np.float64)
            d, e, q2 = bulge_chase(band64, b, want_q=want_vectors)
        with obs.span("tridiag_solve", solver=tridiag_solver):
            lam, v_tri = _solve_tridiagonal(d, e, tridiag_solver, want_vectors)

        x = None
        if want_vectors:
            with obs.span("back_transform"):
                # X = Q_sbr @ Q_bulge @ V_tri.
                x = np.asarray(sbr.q, dtype=np.float64) @ (q2 @ v_tri)
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=sbr,
        tridiagonal=(d, e),
        engine=eng,
    )


def syevd_1stage(
    a,
    *,
    want_vectors: bool = True,
    tridiag_solver: str = "dc",
) -> EvdResult:
    """One-stage eigendecomposition: direct Householder tridiagonalization.

    The conventional ``sytrd``-based path (float64), kept as the
    correctness baseline the two-stage driver is validated against.
    """
    a = as_symmetric_matrix(a, dtype=np.float64)
    with obs.span("syevd_1stage", n=a.shape[0], solver=tridiag_solver):
        with obs.span("tridiagonalize"):
            d, e, q1 = householder_tridiagonalize(a, want_q=want_vectors)
        with obs.span("tridiag_solve", solver=tridiag_solver):
            lam, v_tri = _solve_tridiagonal(d, e, tridiag_solver, want_vectors)
        with obs.span("back_transform"):
            x = q1 @ v_tri if want_vectors else None
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=None,
        tridiagonal=(d, e),
        engine=None,
    )


def syevd_selected(
    a,
    *,
    select: "tuple[int, int] | None" = None,
    interval: "tuple[float, float] | None" = None,
    b: int = 16,
    nb: int | None = None,
    method: str = "wy",
    precision: "Precision | str" = Precision.FP32,
    want_vectors: bool = True,
) -> EvdResult:
    """Selected eigenpairs: band reduction + bisection + inverse iteration.

    The query styles the paper's related work attributes to bisection
    methods ("the largest/smallest 100, or all eigenvalues in [a, b]"),
    composed from the library's pieces: stage-1 band reduction under the
    chosen precision, bulge chasing, Sturm bisection for the selected
    eigenvalues, tridiagonal inverse iteration for their vectors, and the
    two back-transformations.  Cost scales with the *number of selected
    pairs* after the O(n^2 b) reduction.

    Parameters
    ----------
    select : (lo, hi), optional
        Index range (0-based ascending, half-open).  Mutually exclusive
        with ``interval``; default: all eigenvalues.
    interval : (a, b], optional
        Compute all eigenvalues in the half-open interval.
    (remaining parameters as in :func:`syevd_2stage`)

    Returns
    -------
    EvdResult
        ``eigenvalues``/``eigenvectors`` hold only the selected pairs.
    """
    from .inverse_iteration import tridiag_inverse_iteration

    a = as_symmetric_matrix(a)
    n = a.shape[0]
    if nb is None:
        nb = 4 * b
    check_blocksizes(n, b, nb if method == "wy" else None)

    eng = make_engine(precision)
    with obs.span("syevd_selected", n=n, b=b, nb=nb, method=method):
        with obs.span("sbr"):
            if method == "wy":
                sbr = sbr_wy(a, b, nb, engine=eng, panel="tsqr", want_q=want_vectors)
            elif method == "zy":
                sbr = sbr_zy(a, b, engine=eng, panel="blocked_qr", want_q=want_vectors)
            else:
                raise ConfigurationError(f"method must be 'wy' or 'zy', got {method!r}")

        with obs.span("bulge"):
            band64 = np.asarray(sbr.band, dtype=np.float64)
            d, e, q2 = bulge_chase(band64, b, want_q=want_vectors)
        with obs.span("bisect"):
            lam = eigvals_bisect(d, e, select=select, interval=interval)

        x = None
        if want_vectors and lam.size:
            with obs.span("inverse_iteration"):
                v_tri = tridiag_inverse_iteration(d, e, lam)
            with obs.span("back_transform"):
                x = np.asarray(sbr.q, dtype=np.float64) @ (q2 @ v_tri)
        elif want_vectors:
            x = np.zeros((n, 0))
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=sbr,
        tridiagonal=(d, e),
        engine=eng,
    )
