"""Blocked (Householder) bulge chasing — the MAGMA-style stage 2.

The Givens scheme of :mod:`repro.eig.bulge` peels one diagonal at a time
(Θ(n²b) rotations, each a Python-level step).  The blocked scheme sweeps
one *column* at a time, like MAGMA's ``sytrd_sb2st``: a reflector brings
column ``j`` to tridiagonal form, and the resulting bulge block is chased
down the band with one small QR + WY application per hop — Θ(n²/b)
Python-level steps, each O(b²) NumPy work.

Chase invariant (maintained by every step): if the previous transform
acted on rows ``[a0, a1)``, its right-side application filled columns
``[a0, a1)`` down to row ``min(a1 + b, n)``; the sub-band part of that
fill is the block ``A[a0+b : a1+b, a0:a1]``, and a QR over those rows
annihilates exactly the entries below each column's band edge (the band
edge lands on the block's local diagonal).

Both variants are exposed through :func:`repro.eig.bulge_chase` via the
``variant`` parameter and cross-validated against each other in the test
suite.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..la.householder import apply_reflector_left, make_reflector
from ..la.wy import build_wy
from ..validation import as_symmetric_matrix

__all__ = ["bulge_chase_blocked"]


def bulge_chase_blocked(
    a,
    b: int,
    *,
    want_q: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce a symmetric band matrix to tridiagonal form (blocked chase).

    Same contract as :func:`repro.eig.bulge.bulge_chase`.
    """
    a = as_symmetric_matrix(a, rtol=1e-3, atol=1e-4)
    n = a.shape[0]
    if b < 1:
        raise ShapeError(f"bandwidth must be >= 1, got {b}")
    dtype = a.dtype
    A = np.array(a, copy=True)
    q = np.eye(n, dtype=dtype) if want_q else None

    if b == 1 or n <= 2:
        d = np.diagonal(A).copy()
        e = np.diagonal(A, offset=-1).copy() if n > 1 else np.empty(0, dtype=dtype)
        return d, e, q

    for j in range(n - 2):
        # --- Step 0: one reflector brings column j to tridiagonal form. --
        r0 = j + 1
        e0 = min(j + 1 + b, n)
        if e0 - r0 >= 2 and np.any(A[r0 + 1 : e0, j]):
            v, beta, alpha = make_reflector(A[r0:e0, j])
            A[r0, j] = dtype.type(alpha)
            A[r0 + 1 : e0, j] = 0
            A[j, r0] = dtype.type(alpha)
            A[j, r0 + 1 : e0] = 0
            hi = min(e0 + b, n)
            apply_reflector_left(A[r0:e0, r0:hi], v, beta)
            # Right application (reads the already left-updated rows).
            w_col = A[r0:hi, r0:e0] @ v
            A[r0:hi, r0:e0] -= np.multiply.outer(w_col * dtype.type(beta), v)
            if q is not None:
                wq = q[:, r0:e0] @ v
                q[:, r0:e0] -= np.multiply.outer(wq * dtype.type(beta), v)

        # --- Chase: QR each bulge block down the band. --------------------
        a0, a1 = r0, e0
        while True:
            b0 = a0 + b
            b1 = min(a1 + b, n)
            if b1 - b0 < 2 and not (b1 - b0 == 1 and a1 - a0 > 0):
                break
            L = b1 - b0
            if L < 1:
                break
            w_cols = a1 - a0
            block = A[b0:b1, a0:a1]
            if not np.any(np.tril(block, k=(b0 - a0) - b - 1)):
                # Below-band part already zero: the chase has died out.
                break

            # Householder QR of the bulge block (L × w, L <= w by the
            # invariant), annihilating below the local diagonal.
            kk = min(L, w_cols)
            v_cols = np.zeros((L, kk), dtype=dtype)
            betas = np.zeros(kk, dtype=np.float64)
            work = block.copy()
            for jl in range(kk):
                col = work[jl:, jl]
                if col.size < 2:
                    break
                v, beta, alpha = make_reflector(col)
                v_cols[jl:, jl] = v
                betas[jl] = beta
                work[jl, jl] = dtype.type(alpha)
                work[jl + 1 :, jl] = 0
                if beta != 0.0 and jl + 1 < w_cols:
                    apply_reflector_left(work[jl:, jl + 1 :], v, beta)
            A[b0:b1, a0:a1] = work
            A[a0:a1, b0:b1] = work.T

            if not np.any(betas):
                break
            w_f, y_f = build_wy(v_cols, betas)

            # Left application Q^T on the remaining columns of these rows.
            lo, hi = a1, min(b1 + b, n)
            if lo < hi:
                seg = A[b0:b1, lo:hi]
                A[b0:b1, lo:hi] = seg - y_f @ (w_f.T @ seg)
                A[lo:b0, b0:b1] = A[b0:b1, lo:b0].T
            # Right application on rows at/below the block.
            seg = A[b0:hi, b0:b1]
            A[b0:hi, b0:b1] = seg - (seg @ w_f) @ y_f.T
            if hi > b1:
                A[b0:b1, b1:hi] = A[b1:hi, b0:b1].T
            # Exactly symmetrize the diagonal block.
            diag = A[b0:b1, b0:b1]
            A[b0:b1, b0:b1] = (diag + diag.T) * dtype.type(0.5)
            if q is not None:
                q[:, b0:b1] -= (q[:, b0:b1] @ w_f) @ y_f.T

            a0, a1 = b0, b1

    d = np.diagonal(A).copy()
    e = np.diagonal(A, offset=-1).copy()
    return d, e, q
