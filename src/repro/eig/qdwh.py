"""QDWH polar decomposition and QDWH-eig spectral divide & conquer.

The paper's related work (§2.2) surveys polar-decomposition-based
eigensolvers — QDWH-eig (Nakatsukasa & Higham 2013) and its GPU
implementation (Sukkari, Ltaief & Keyes 2016) — as the main alternative
to tridiagonalization-based methods.  This module implements both, giving
the library an independent second eigensolver family to validate the
two-stage pipeline against:

- :func:`qdwh_polar` — QR-based dynamically weighted Halley iteration for
  the polar decomposition ``A = U_p H``.  Cubically convergent; at most
  ~6 iterations for condition numbers up to 1e16.
- :func:`qdwh_eig` — spectral divide & conquer: the polar factor of
  ``A - sigma*I`` is the matrix sign function, whose spectral projector
  splits the spectrum at ``sigma``; recursion on the two invariant
  subspaces yields the full eigendecomposition using only QR and GEMM
  (no tridiagonalization at all).

Notes on scope: the lower bound on ``sigma_min`` that drives the dynamic
weights is taken from exact singular values (cheap at library scale); a
production implementation substitutes a condition estimator.  These are
float64 reference implementations — the experiments use them as an
independent cross-check, not as the Tensor-Core path.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import qr as scipy_qr

from ..errors import ConvergenceError, ShapeError
from ..obs.live import use_registry
from ..validation import as_square_matrix, as_symmetric_matrix, check_finite_matrix
from .budget import WallClockBudget

__all__ = ["qdwh_polar", "qdwh_eig"]

_MAX_QDWH_ITER = 40


def qdwh_polar(
    a,
    *,
    tol: float = 1e-14,
    max_iter: int = _MAX_QDWH_ITER,
    max_seconds: float | None = None,
    _budget: "WallClockBudget | None" = None,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Polar decomposition ``A = U H`` by the QDWH iteration.

    Parameters
    ----------
    a : array_like (m, n), m >= n, full column rank
        Matrix to decompose.
    tol : float
        Convergence tolerance on ``||X_{k+1} - X_k||_F / ||X_k||_F``.
    max_seconds : float, optional
        Wall-clock budget; exceeding it raises a structured
        :class:`~repro.errors.BudgetExceededError` (phase
        ``"qdwh_polar"``).

    Returns
    -------
    u : ndarray (m, n)
        Orthonormal polar factor.
    h : ndarray (n, n)
        Symmetric positive semidefinite factor with ``A = U H``.
    iterations : int
        Iterations used (paper-family bound: <= 6 for kappa <= 1e16).
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] < a.shape[1] or a.size == 0:
        raise ShapeError(f"qdwh_polar requires m >= n >= 1, got shape {a.shape}")
    m, n = a.shape

    # Scale to ||X||_2 <= 1 and bound sigma_min from below.
    svals = np.linalg.svd(a, compute_uv=False)
    alpha = float(svals[0])
    if alpha == 0.0:
        raise ShapeError("qdwh_polar requires a nonzero matrix")
    smin = float(svals[-1])
    if smin == 0.0:
        raise ShapeError("qdwh_polar requires full column rank")
    x = a / alpha
    l = max(smin / alpha, np.finfo(np.float64).tiny)

    budget = _budget if _budget is not None else WallClockBudget(
        max_seconds, phase="qdwh_polar"
    )
    eye_n = np.eye(n)
    its = 0
    for its in range(1, max_iter + 1):
        budget.check(iterations=its - 1)
        l2 = l * l
        dd = (4.0 * (1.0 - l2) / (l2 * l2)) ** (1.0 / 3.0)
        sqd = np.sqrt(1.0 + dd)
        inner = 8.0 - 4.0 * dd + 8.0 * (2.0 - l2) / (l2 * sqd)
        a_k = sqd + 0.5 * np.sqrt(max(inner, 0.0))
        b_k = (a_k - 1.0) ** 2 / 4.0
        c_k = a_k + b_k - 1.0

        # QR-based update (numerically stable for ill-conditioned X):
        #   [Q1; Q2] R = [sqrt(c) X; I],
        #   X <- (b/c) X + (a - b/c)/sqrt(c) * Q1 Q2^T.
        stacked = np.vstack([np.sqrt(c_k) * x, eye_n])
        q, _ = np.linalg.qr(stacked)
        q1, q2 = q[:m, :], q[m:, :]
        x_new = (b_k / c_k) * x + (a_k - b_k / c_k) / np.sqrt(c_k) * (q1 @ q2.T)

        l = l * (a_k + b_k * l2) / (1.0 + c_k * l2)
        l = min(l, 1.0)
        delta = float(np.linalg.norm(x_new - x, "fro")) / max(
            float(np.linalg.norm(x, "fro")), 1e-300
        )
        x = x_new
        if delta < tol and abs(1.0 - l) < 1e-8:
            break
    else:
        raise ConvergenceError(
            f"QDWH did not converge in {max_iter} iterations",
            iterations=max_iter, residual=delta,
        )

    # Clean-up Newton–Schulz step polishes orthogonality to working accuracy.
    x = 1.5 * x - 0.5 * x @ (x.T @ x)
    h = x.T @ a
    h = (h + h.T) / 2.0
    return x, h, its


def qdwh_eig(
    a,
    *,
    min_size: int = 24,
    tol: float = 1e-14,
    max_seconds: float | None = None,
    metrics=None,
    check_input: bool = True,
    _depth: int = 0,
    _budget: "WallClockBudget | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Full symmetric eigendecomposition by QDWH spectral divide & conquer.

    Parameters
    ----------
    a : array_like (n, n) symmetric
        Input matrix.
    min_size : int
        Subproblem size below which the library's one-stage Householder
        solver finishes directly.
    max_seconds : float, optional
        Wall-clock budget over the *whole* divide & conquer (one shared
        clock threads through the recursion and the inner polar
        iterations); exceeding it raises a structured
        :class:`~repro.errors.BudgetExceededError` (phase
        ``"qdwh_eig"``).
    metrics : repro.obs.live.MetricsRegistry, optional
        Install a live metrics registry for the whole divide & conquer
        (recursion ticks land under ``phase="qdwh_eig"``, the inner
        polar iterations under ``phase="qdwh_polar"``).
    check_input : bool
        Reject non-square/non-symmetric/non-finite ``a`` up front with
        a structured :class:`~repro.errors.ValidationError`; default on
        (recursive subproblems skip it automatically).

    Returns
    -------
    lam : ndarray (n,)
        Eigenvalues, ascending.
    v : ndarray (n, n)
        Orthonormal eigenvectors.
    """
    if metrics is not None:
        with use_registry(metrics):
            return qdwh_eig(
                a, min_size=min_size, tol=tol, max_seconds=max_seconds,
                check_input=check_input, _depth=_depth, _budget=_budget,
            )
    a = np.asarray(a)
    gate = check_input and _depth == 0
    if gate and a.ndim == 2 and a.size:
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, dtype=np.float64, check=gate)
    n = a.shape[0]
    budget = _budget if _budget is not None else WallClockBudget(
        max_seconds, phase="qdwh_eig"
    )
    budget.check(iterations=_depth)
    if n <= max(min_size, 2) or _depth > 60:
        from .driver import syevd_1stage

        res = syevd_1stage(a)
        return res.eigenvalues, res.eigenvectors

    lam_lo, lam_hi = _gershgorin(a)
    if lam_hi - lam_lo < 1e-14 * max(abs(lam_hi), abs(lam_lo), 1.0):
        # Numerically a multiple of the identity.
        return np.full(n, (lam_hi + lam_lo) / 2.0), np.eye(n)

    # Split the spectrum near its middle; nudge the shift if the split
    # degenerates (all eigenvalues on one side).
    sigma = float(np.median(np.diagonal(a)))
    for attempt in range(8):
        shifted = a - sigma * np.eye(n)
        try:
            u, _, _ = qdwh_polar(shifted, tol=tol, _budget=budget)
        except ShapeError:
            # sigma is (numerically) an eigenvalue: perturb and retry.
            sigma += (lam_hi - lam_lo) * 1e-3 * (attempt + 1)
            continue
        # Spectral projector onto eigenvalues above sigma.
        p = (u + np.eye(n)) / 2.0
        k = int(round(float(np.trace(p))))
        if 0 < k < n:
            break
        frac = 0.25 + 0.5 * ((attempt + 1) % 2)
        sigma = lam_lo + (lam_hi - lam_lo) * frac * (1.0 + 0.13 * attempt)
    else:
        raise ConvergenceError("qdwh_eig could not find a splitting shift")

    # Orthonormal bases of the two invariant subspaces from a pivoted QR
    # of the projector (range(P) ⊥ range(I-P)).
    q, _, _ = scipy_qr(p, pivoting=True)
    v1, v2 = q[:, :k], q[:, k:]
    a1 = v1.T @ a @ v1
    a2 = v2.T @ a @ v2

    lam1, w1 = qdwh_eig((a1 + a1.T) / 2.0, min_size=min_size, tol=tol,
                        _depth=_depth + 1, _budget=budget)
    lam2, w2 = qdwh_eig((a2 + a2.T) / 2.0, min_size=min_size, tol=tol,
                        _depth=_depth + 1, _budget=budget)

    lam = np.concatenate([lam1, lam2])
    v = np.hstack([v1 @ w1, v2 @ w2])
    order = np.argsort(lam, kind="stable")
    return lam[order], v[:, order]


def _gershgorin(a: np.ndarray) -> tuple[float, float]:
    radii = np.abs(a).sum(axis=1) - np.abs(np.diagonal(a))
    d = np.diagonal(a)
    return float(np.min(d - radii)), float(np.max(d + radii))
