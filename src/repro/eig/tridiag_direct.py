"""Classic one-stage Householder tridiagonalization (LAPACK ``sytrd`` shape).

The baseline the paper's §3.1 argues against: each column's reflector is
applied two-sidedly as a symmetric rank-2 update,

    p = beta * A v,
    w = p - (beta/2) (p^T v) v,
    A <- A - v w^T - w v^T,

which is irreducibly BLAS2 for ~50% of the flops (the ``A v`` products
cannot be blocked away) — the paper observes this unblocked work
dominating >90% of MAGMA's ``ssytrd`` time.  Used here as a correctness
reference and a baseline in the device-model comparisons.
"""

from __future__ import annotations

import numpy as np

from ..la.householder import make_reflector
from ..validation import as_symmetric_matrix

__all__ = ["householder_tridiagonalize"]


def householder_tridiagonalize(
    a,
    *,
    want_q: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce a symmetric matrix directly to tridiagonal form.

    Returns
    -------
    d : ndarray, shape (n,)
        Diagonal of ``T``.
    e : ndarray, shape (n-1,)
        Sub-diagonal of ``T``.
    q : ndarray (n, n) or None
        Orthogonal transform with ``A ≈ Q T Q^T``.
    """
    a = as_symmetric_matrix(a)
    n = a.shape[0]
    dtype = a.dtype
    A = np.array(a, copy=True)
    vs: list[tuple[int, np.ndarray, float]] = []

    for j in range(n - 2):
        v, beta, alpha = make_reflector(A[j + 1 :, j])
        A[j + 1, j] = dtype.type(alpha)
        A[j + 2 :, j] = 0
        A[j, j + 1] = dtype.type(alpha)
        A[j, j + 2 :] = 0
        if beta == 0.0:
            continue
        sub = A[j + 1 :, j + 1 :]
        p = dtype.type(beta) * (sub @ v)
        w = p - dtype.type(0.5 * beta * float(p @ v)) * v
        sub -= np.multiply.outer(v, w)
        sub -= np.multiply.outer(w, v)
        vs.append((j + 1, v, beta))

    d = np.diagonal(A).copy()
    e = np.diagonal(A, offset=-1).copy() if n > 1 else np.empty(0, dtype=dtype)

    q = None
    if want_q:
        q = np.eye(n, dtype=dtype)
        # Apply reflectors backward: Q = H_1 H_2 ... H_{n-2}.
        for off, v, beta in reversed(vs):
            block = q[off:, off:]
            wrow = v @ block
            block -= np.multiply.outer(v * dtype.type(beta), wrow)
    return d, e, q
