"""Inverse iteration for eigenvectors of symmetric tridiagonal matrices.

Complements Sturm bisection (:mod:`repro.eig.sturm`): bisection produces
selected eigen*values*; inverse iteration recovers their eigen*vectors*,
with Gram–Schmidt reorthogonalization inside eigenvalue clusters (the
classic LAPACK ``stein`` strategy).  Together they form the
"subset of eigenpairs" solver style the paper's related work discusses.

Each solve uses the factored shifted tridiagonal (Thomas algorithm with
partial pivoting), O(n) per iteration.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ShapeError
from ..validation import check_finite_vector, check_tridiagonal
from ..obs.live import use_registry
from .budget import WallClockBudget

__all__ = ["tridiag_inverse_iteration"]

_MAX_ITER = 8


def _solve_shifted_tridiag(d, e, shift, rhs):
    """Solve ``(T - shift I) x = rhs`` via banded LU with partial pivoting.

    Uses LAPACK ``gbsv`` (scipy ``solve_banded``); if the shifted matrix is
    numerically singular — the shift sits exactly on an eigenvalue — the
    shift is nudged by a few ulps, the standard inverse-iteration guard.
    """
    from scipy.linalg import solve_banded

    n = d.size
    base = max(float(np.abs(d).max(initial=0.0) + 2 * np.abs(e).max(initial=0.0)), 1.0)
    nudge = 0.0
    for _ in range(4):
        ab = np.zeros((3, n))
        ab[0, 1:] = e
        ab[1, :] = d - (shift + nudge)
        ab[2, :-1] = e
        try:
            with np.errstate(all="ignore"):
                out = solve_banded((1, 1), ab, rhs, check_finite=False)
            if np.all(np.isfinite(out)):
                return out
        except Exception:
            pass
        nudge = (nudge or np.finfo(np.float64).eps * base) * 8.0
    raise ConvergenceError(
        f"shifted tridiagonal solve failed at shift {shift!r}",
        iterations=4, phase="inverse_iteration",
    )


def tridiag_inverse_iteration(
    d,
    e,
    eigenvalues,
    *,
    cluster_tol: float | None = None,
    rng: np.random.Generator | None = None,
    max_seconds: float | None = None,
    metrics=None,
    check_input: bool = True,
) -> np.ndarray:
    """Eigenvectors of tridiag(d, e) for precomputed eigenvalues.

    Parameters
    ----------
    d, e : array_like
        Tridiagonal entries (diagonal, off-diagonal).
    eigenvalues : array_like
        Converged eigenvalues (e.g. from :func:`repro.eig.eigvals_bisect`),
        in ascending order.
    cluster_tol : float, optional
        Eigenvalues closer than this are treated as a cluster and their
        vectors reorthogonalized against each other.  Default follows
        LAPACK ``stein``: ``1e-3 * ||T||`` — vectors of closer eigenvalues
        are individually ill-determined (error ~ eps ||T|| / gap), so only
        explicit reorthogonalization keeps the basis orthonormal.
    rng : numpy.random.Generator, optional
        Source of the random start vectors.
    max_seconds : float, optional
        Wall-clock budget; exceeding it raises a structured
        :class:`~repro.errors.BudgetExceededError` (phase
        ``"inverse_iteration"``).
    metrics : repro.obs.live.MetricsRegistry, optional
        Install a live metrics registry for this call (iteration ticks
        land under ``phase="inverse_iteration"``).
    check_input : bool
        Validate ``(d, e)`` and ``eigenvalues`` up front (shape +
        finiteness) with a structured
        :class:`~repro.errors.ValidationError`; default on.

    Returns
    -------
    v : ndarray, shape (n, k)
        Orthonormal eigenvector columns aligned with ``eigenvalues``.
    """
    if metrics is not None:
        with use_registry(metrics):
            return tridiag_inverse_iteration(
                d, e, eigenvalues, cluster_tol=cluster_tol, rng=rng,
                max_seconds=max_seconds, check_input=check_input,
            )
    if check_input:
        d, e = check_tridiagonal(d, e)
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    lam = np.asarray(eigenvalues, dtype=np.float64)
    n = d.size
    if d.ndim != 1 or e.ndim != 1 or e.size != max(n - 1, 0):
        raise ShapeError(f"need d (n,) and e (n-1,), got {d.shape} and {e.shape}")
    if lam.ndim != 1:
        raise ShapeError(f"eigenvalues must be 1-D, got shape {lam.shape}")
    if check_input and lam.size:
        check_finite_vector(lam, name="eigenvalues")
    if rng is None:
        rng = np.random.default_rng(0)

    norm_t = float(np.abs(d).max(initial=0.0) + 2 * np.abs(e).max(initial=0.0))
    if cluster_tol is None:
        cluster_tol = 1e-3 * max(norm_t, 1e-300)

    budget = WallClockBudget(max_seconds, phase="inverse_iteration")
    k = lam.size
    v = np.zeros((n, k))
    cluster_start = 0
    for j in range(k):
        if j > 0 and lam[j] - lam[j - 1] > cluster_tol:
            cluster_start = j
        vec = rng.standard_normal(n)
        vec /= np.linalg.norm(vec)
        converged = False
        for it in range(_MAX_ITER):
            budget.check(iterations=j * _MAX_ITER + it)
            vec = _solve_shifted_tridiag(d, e, lam[j], vec)
            # Reorthogonalize within the current cluster (twice is enough).
            for _pass in range(2):
                for p in range(cluster_start, j):
                    vec -= (v[:, p] @ vec) * v[:, p]
            nrm = float(np.linalg.norm(vec))
            if nrm == 0.0 or not np.isfinite(nrm):
                vec = rng.standard_normal(n)
                vec /= np.linalg.norm(vec)
                continue
            grew = nrm > 1.0 / (np.finfo(np.float64).eps * np.sqrt(n) * max(norm_t, 1.0))
            vec /= nrm
            if grew:
                converged = True
                break
        if not converged:
            # Accept the best iterate if its residual is small anyway.
            resid = np.abs(
                d * vec
                + np.concatenate([[0.0], e * vec[:-1]])
                + np.concatenate([e * vec[1:], [0.0]])
                - lam[j] * vec
            ).max()
            if resid > 1e-8 * max(norm_t, 1.0):
                raise ConvergenceError(
                    f"inverse iteration failed for eigenvalue {lam[j]!r}",
                    residual=float(resid), phase="inverse_iteration",
                )
        v[:, j] = vec

    # Final in-cluster re-orthonormalization: sequential Gram-Schmidt can
    # leave O(sqrt(eps)) cross-talk in tight clusters; a thin QR of each
    # cluster block stays inside the (converged) invariant subspace.
    lo = 0
    for j in range(1, k + 1):
        if j == k or lam[j] - lam[j - 1] > cluster_tol:
            if j - lo > 1:
                v[:, lo:j] = np.linalg.qr(v[:, lo:j])[0]
            lo = j
    return v
