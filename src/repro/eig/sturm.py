"""Sturm-sequence eigenvalue counting and bisection.

The Sturm count ``nu(x)`` — the number of eigenvalues of a symmetric
tridiagonal matrix strictly below ``x`` — is computed by the standard
``LDL^T`` pivot recurrence.  On top of it, :func:`eigvals_bisect` brackets
and bisects individual eigenvalues to a requested tolerance, supporting
the "largest/smallest k" and "all in [a, b]" query styles the paper's
related-work section attributes to bisection methods.

The recurrence is vectorized over shifts: counting at ``m`` shifts costs
one O(n·m) NumPy pass, so full-spectrum bisection is O(n² log(1/tol))
with small constants.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError

__all__ = ["sturm_count", "eigvals_bisect"]


def _validate_de(d, e) -> tuple[np.ndarray, np.ndarray]:
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    if d.ndim != 1 or e.ndim != 1 or e.size != max(d.size - 1, 0):
        raise ShapeError(f"need d (n,) and e (n-1,), got {d.shape} and {e.shape}")
    return d, e


def sturm_count(d, e, shifts) -> np.ndarray:
    """Number of eigenvalues of tridiag(d, e) strictly below each shift.

    Parameters
    ----------
    d, e : array_like
        Tridiagonal entries.
    shifts : array_like
        Query points (scalar or 1-D).

    Returns
    -------
    counts : ndarray of int, same shape as ``shifts``.
    """
    d, e = _validate_de(d, e)
    x = np.atleast_1d(np.asarray(shifts, dtype=np.float64))
    n = d.size
    tiny = np.finfo(np.float64).tiny

    # LDL^T pivot recurrence, vectorized over the shift axis.
    count = np.zeros(x.shape, dtype=np.int64)
    q = np.full(x.shape, 1.0)
    e2 = np.concatenate([[0.0], e * e])
    for i in range(n):
        # q_i = d_i - x - e_{i-1}^2 / q_{i-1}
        denom = np.where(np.abs(q) < tiny, np.copysign(tiny, q), q)
        q = (d[i] - x) - e2[i] / denom
        count += (q < 0.0).astype(np.int64)
    if np.isscalar(shifts) or np.asarray(shifts).ndim == 0:
        return count.reshape(()).astype(np.int64)
    return count


def eigvals_bisect(
    d,
    e,
    *,
    select: "tuple[int, int] | None" = None,
    interval: "tuple[float, float] | None" = None,
    tol: float = 0.0,
    max_iter: int = 128,
) -> np.ndarray:
    """Eigenvalues of tridiag(d, e) by Sturm bisection.

    Parameters
    ----------
    d, e : array_like
        Tridiagonal entries.
    select : (lo, hi), optional
        Index range of eigenvalues to compute (0-based, ascending,
        half-open).  Default: all.
    interval : (a, b), optional
        Instead of indices, compute all eigenvalues in the half-open
        interval ``(a, b]``.
    tol : float
        Absolute convergence tolerance (default: ~4 ulp of the spectrum
        radius).

    Returns
    -------
    lam : ndarray
        Selected eigenvalues, ascending.
    """
    d, e = _validate_de(d, e)
    n = d.size
    if n == 0:
        return np.empty(0)

    # Gershgorin bounds.
    pad = np.concatenate([[0.0], np.abs(e)]) + np.concatenate([np.abs(e), [0.0]])
    lo = float(np.min(d - pad))
    hi = float(np.max(d + pad))
    radius = max(hi - lo, abs(hi), abs(lo), 1e-300)
    if tol <= 0.0:
        tol = 4.0 * np.finfo(np.float64).eps * radius
    lo -= 2.0 * tol
    hi += 2.0 * tol

    if select is not None and interval is not None:
        raise ShapeError("pass either select or interval, not both")
    if interval is not None:
        a, bnd = interval
        i_lo = int(sturm_count(d, e, a))
        i_hi = int(sturm_count(d, e, np.nextafter(bnd, np.inf)))
        select = (i_lo, i_hi)
    if select is None:
        select = (0, n)
    i0, i1 = select
    if not (0 <= i0 <= i1 <= n):
        raise ShapeError(f"select out of range: {select} for n={n}")
    k = i1 - i0
    if k == 0:
        return np.empty(0)

    # One bracketing [lo_j, hi_j] per requested eigenvalue, bisected in
    # lockstep (vectorized Sturm counts at all midpoints per iteration).
    lo_v = np.full(k, lo)
    hi_v = np.full(k, hi)
    idx = np.arange(i0, i1)
    for _ in range(max_iter):
        mid = 0.5 * (lo_v + hi_v)
        counts = sturm_count(d, e, mid)
        go_left = counts > idx  # eigenvalue idx_j is below mid
        hi_v = np.where(go_left, mid, hi_v)
        lo_v = np.where(go_left, lo_v, mid)
        if float(np.max(hi_v - lo_v)) <= tol:
            break
    return 0.5 * (lo_v + hi_v)
