"""Secular-equation solver for the rank-one modified diagonal eigenproblem.

Divide & conquer reduces each merge step to the eigendecomposition of

    M = diag(d) + rho * z z^T,      d strictly ascending, z_i != 0,

whose eigenvalues are the roots of the *secular equation*

    f(lam) = 1 + rho * sum_i z_i^2 / (d_i - lam) = 0.

For ``rho > 0`` the roots strictly interlace: ``d_j < lam_j < d_{j+1}``
(and ``lam_{n-1} < d_{n-1} + rho ||z||^2``).  Each root is found by a
bisection-safeguarded Newton iteration **anchored at the nearest pole**:
the unknown is the offset ``t = lam - d_anchor``, so the critical
difference ``d_anchor - lam`` is ``-t`` exactly, with no cancellation.
All n roots iterate in lockstep (one vectorized O(n²) pass per sweep).

Eigenvectors are *not* formed from the original ``z``: following Gu &
Eisenstat (and LAPACK ``slaed3``), a modified ``z_hat`` is recomputed by
the Löwner formula so that the computed roots are the **exact**
eigenvalues of ``diag(d) + rho * z_hat z_hat^T``; the vectors

    v_j ∝ z_hat_i / (d_i - lam_j)

are then orthogonal to working precision regardless of clustered roots.

``rho < 0`` is handled by the negation symmetry
``eig(D + rho z z^T) = -eig(-D + |rho| z z^T)`` (with order reversed).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ShapeError

__all__ = ["solve_secular", "secular_eig"]

_MAX_SWEEPS = 120


def solve_secular(
    d,
    z,
    rho: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Roots of the secular equation for ``diag(d) + rho z z^T``, rho > 0.

    Parameters
    ----------
    d : array_like, shape (n,)
        Strictly ascending pole locations.
    z : array_like, shape (n,)
        Update vector (all entries nonzero; callers deflate zeros first).
    rho : float
        Positive rank-one weight.

    Returns
    -------
    lam : ndarray, shape (n,)
        Roots in ascending order (``lam = d[anchor] + offset``).
    anchor : ndarray of int, shape (n,)
        Index of the pole each root is anchored to.
    offset : ndarray, shape (n,)
        Offset from the anchor pole; keep (anchor, offset) to evaluate
        differences ``d_i - lam_j`` without cancellation.
    """
    d = np.asarray(d, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    n = d.size
    if d.ndim != 1 or z.shape != d.shape:
        raise ShapeError(f"d and z must be equal-length vectors, got {d.shape}, {z.shape}")
    if n == 0:
        return np.empty(0), np.empty(0, dtype=np.int64), np.empty(0)
    if rho <= 0.0:
        raise ShapeError(f"solve_secular requires rho > 0, got {rho}")
    if n > 1 and not np.all(np.diff(d) > 0):
        raise ShapeError("poles d must be strictly ascending")

    zsq = z * z
    znorm2 = float(zsq.sum())

    # Interval for root j: (d_j, d_{j+1}); last root: (d_{n-1}, d_{n-1}+rho|z|^2).
    upper = np.concatenate([d[1:], [d[-1] + rho * znorm2]])
    gap = upper - d

    # Anchor each root at the nearest pole, decided by the sign of f at the
    # interval midpoint: f(mid) > 0 means the root lies left of mid (anchor
    # at d_j), else right (anchor at the upper end).
    mid = d + 0.5 * gap
    f_mid = 1.0 + rho * (zsq[np.newaxis, :] / (d[np.newaxis, :] - mid[:, np.newaxis])).sum(axis=1)
    left = f_mid > 0.0
    anchor = np.where(left, np.arange(n), np.minimum(np.arange(n) + 1, n - 1))
    # The last root anchors at d_{n-1} always (there is no pole above it).
    anchor[-1] = n - 1
    a_val = np.where(np.arange(n) == n - 1, d[-1], np.where(left, d, upper))

    # Offset bounds (t = lam - a_val): root in (d_j, upper_j).
    t_lo = d - a_val
    t_hi = upper - a_val
    # Keep the bracket strictly inside the poles.
    t = 0.5 * (t_lo + t_hi)

    # d_i - a_j, exact where d_i is the anchor itself.
    dma = d[np.newaxis, :] - a_val[:, np.newaxis]

    for sweep in range(_MAX_SWEEPS):
        denom = dma - t[:, np.newaxis]  # d_i - lam_j, anchored
        terms = zsq[np.newaxis, :] / denom
        f = 1.0 + rho * terms.sum(axis=1)
        fp = rho * (terms / denom).sum(axis=1)  # f'(lam) in lam; df/dt = +f'
        # Update brackets from the sign of f (f is increasing in lam).
        t_lo = np.where(f < 0.0, t, t_lo)
        t_hi = np.where(f >= 0.0, t, t_hi)
        # Newton candidate; bisect where invalid or out of bracket.
        with np.errstate(divide="ignore", invalid="ignore"):
            t_new = t - f / fp
        bad = ~np.isfinite(t_new) | (t_new <= t_lo) | (t_new >= t_hi)
        t_new = np.where(bad, 0.5 * (t_lo + t_hi), t_new)
        # Convergence must be *relative in the anchored offset t*: the
        # Löwner eigenvector formula divides by (d_anchor - lam) = -t, so
        # an absolute-in-lambda tolerance silently costs half the digits
        # for roots hugging a pole.
        eps = np.finfo(np.float64).eps
        step_ok = np.abs(t_new - t) <= 8.0 * eps * np.abs(t_new)
        bracket_ok = (t_hi - t_lo) <= 8.0 * eps * np.maximum(np.abs(t_lo), np.abs(t_hi))
        t = t_new
        if bool(np.all(step_ok | bracket_ok)):
            break
    else:
        width = float(np.max(t_hi - t_lo))
        if width > 1e-6 * max(1.0, float(np.abs(d).max())):
            raise ConvergenceError(
                f"secular solver failed to converge (max bracket width {width:.3e})",
                residual=width, phase="tridiag_solve",
            )

    lam = a_val + t
    return lam, anchor.astype(np.int64), t


def _lowner_zhat(
    d: np.ndarray,
    rho: float,
    anchor: np.ndarray,
    offset: np.ndarray,
    sign_z: np.ndarray,
) -> np.ndarray:
    """Recompute the update vector so the computed roots are exact (Löwner).

    ``z_hat_i^2 = prod_j (lam_j - d_i) / (rho * prod_{j != i} (d_j - d_i))``
    evaluated as a product of O(1) interlaced ratios (LAPACK ``slaed3``
    pairing) to avoid over/underflow.
    """
    n = d.size
    # lam_j - d_i, computed through the anchor: (d_aj - d_i) + t_j.
    dl = (d[anchor][np.newaxis, :] - d[:, np.newaxis]) + offset[np.newaxis, :]
    # d_j - d_i.
    dd = d[np.newaxis, :] - d[:, np.newaxis]

    i_idx = np.arange(n)[:, np.newaxis]
    j_idx = np.arange(n)[np.newaxis, :]

    # Pair lam_j with d_j for j < i, with d_{j+1} for i <= j <= n-2; the
    # last root contributes (lam_{n-1} - d_i) / rho unpaired.
    ratio = np.ones((n, n))
    mask_lo = j_idx < i_idx
    mask_hi = (j_idx >= i_idx) & (j_idx <= n - 2)
    dd_shift = np.empty_like(dd)
    dd_shift[:, : n - 1] = dd[:, 1:]
    dd_shift[:, n - 1] = 1.0  # unused
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(mask_lo, dl / np.where(mask_lo, dd, 1.0), ratio)
        ratio = np.where(mask_hi, dl / np.where(mask_hi, dd_shift, 1.0), ratio)
    prod = np.prod(ratio, axis=1)
    zhat_sq = prod * dl[:, n - 1] / rho
    zhat_sq = np.maximum(zhat_sq, 0.0)  # clip rounding-negative values
    return sign_z * np.sqrt(zhat_sq)


def secular_eig(
    d,
    z,
    rho: float,
    *,
    want_vectors: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Full eigendecomposition of ``diag(d) + rho z z^T`` (any rho sign).

    Parameters
    ----------
    d : array_like, shape (n,)
        Strictly ascending diagonal (callers deflate ties first).
    z : array_like, shape (n,)
        Update vector with no (numerically) zero entries.
    rho : float
        Rank-one weight; ``rho < 0`` handled by negation symmetry.

    Returns
    -------
    lam : ndarray
        Eigenvalues ascending.
    v : ndarray (n, n) or None
        Orthonormal eigenvectors (columns), aligned with ``lam``.
    """
    d = np.asarray(d, dtype=np.float64)
    z = np.asarray(z, dtype=np.float64)
    n = d.size
    if n == 0:
        return np.empty(0), (np.empty((0, 0)) if want_vectors else None)
    if rho == 0.0:
        return d.copy(), (np.eye(n) if want_vectors else None)

    if rho < 0.0:
        # eig(D + rho z z^T) = -eig(-D + |rho| z z^T); reverse to keep
        # poles ascending.
        lam_neg, v = secular_eig(d[::-1] * -1.0, z[::-1], -rho, want_vectors=want_vectors)
        lam = -lam_neg[::-1]
        if v is not None:
            v = v[::-1, ::-1]
        return lam, v

    lam, anchor, offset = solve_secular(d, z, rho)
    if not want_vectors:
        return lam, None

    zhat = _lowner_zhat(d, rho, anchor, offset, np.where(z >= 0, 1.0, -1.0))
    # v_j(i) = zhat_i / (d_i - lam_j), normalized.
    denom = (d[:, np.newaxis] - d[anchor][np.newaxis, :]) - offset[np.newaxis, :]
    v = zhat[:, np.newaxis] / denom
    v /= np.linalg.norm(v, axis=0, keepdims=True)
    return lam, v
