"""Wavefront (batched, engine-routed) bulge chasing — stage 2 on GEMMs.

The Givens scheme (:mod:`repro.eig.bulge`) and the blocked Householder
scheme (:mod:`repro.eig.bulge_blocked`) both walk the band one rotation /
one reflector-block at a time, entirely outside the GEMM engine — stage 2
is invisible to the tensor-core path, the workspace arena, and the GEMM
telemetry stream.  This module rebuilds the blocked chase on the
memory-aware tile-batching design of "Accelerating Bidiagonalization of
Banded Matrices through Memory-Aware Bulge-Chasing on GPUs"
(arXiv 2510.12705) with the wavefront dependency structure of "Look-Ahead
in the Two-Sided Reduction to Compact Band Forms" (arXiv 1709.00302):

- each sweep's per-hop reflectors are grouped into a WY pair (``Q = I -
  W Y^T``) and applied as *tile updates*: two strip GEMMs for the
  off-diagonal block, three small GEMMs plus one fused ``syr2k`` for the
  exactly-symmetric two-sided diagonal-tile update, and two GEMMs for the
  Q accumulation — all through :class:`repro.gemm.engine.GemmEngine`
  with ``out=``/``ta``/``tb`` (the PR-5 calling convention);
- steps of *different* sweeps separated by
  :data:`~repro.gemm.symbolic.WAVEFRONT_DELTA` hops have disjoint
  row/column footprints, so one round's anti-diagonal wavefront of tiles
  is launched as single ``gemm_batched`` stacks — the schedule
  (:func:`repro.gemm.symbolic.wavefront_rounds`) is shared with the
  symbolic trace, making the launch stream reproducible shape-by-shape
  without running the numerics;
- every gather/stack/WY/Q buffer comes from the PR-5
  :class:`repro.perf.Workspace` arena, so the steady-state loop performs
  no allocations (second pass over the same geometry: zero arena misses).

Because batched ``np.matmul`` over a 3-D stack is bitwise identical to
the per-slice 2-D products, ``batch=False`` (one launch per step) and the
default batched execution produce *bitwise identical* results — the
schedule-invariance analogue of stage 1's look-ahead guarantee, pinned by
tests.

The diagonal tile update uses the syr2k trick: with ``U = D W``,
``V = W^T D W`` (symmetric) and ``U' = U - (1/2) Y V``,

    Q^T D Q = D - Y U'^T - U' Y^T,

one fused ``syr2k(Y, U', alpha=-1, beta=1, out=D)`` — the output is
exactly symmetric by construction, so no explicit re-symmetrization pass
is needed (the blocked variant pays one per hop).
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericalBreakdownError, ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from ..gemm.symbolic import wavefront_groups, wavefront_rounds
from ..obs import spans as obs
from ..perf import resolve_workspace
from ..validation import as_symmetric_matrix

__all__ = ["bulge_chase_wavefront"]

#: Semantic tags of the engine-routed launches (must stay in sync with
#: :data:`repro.gemm.symbolic.BULGE_WAVEFRONT_TAGS`).
TAG_STRIP = "bulge.wavefront.strip"
TAG_TILE = "bulge.wavefront.tile"
TAG_SYR2K = "bulge.wavefront.syr2k"
TAG_Q = "bulge.wavefront.q"


def bulge_chase_wavefront(
    a,
    b: int,
    *,
    want_q: bool = True,
    engine: GemmEngine | None = None,
    workspace=None,
    batch: bool = True,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce a symmetric band matrix to tridiagonal form (wavefront chase).

    Same contract as :func:`repro.eig.bulge.bulge_chase`, plus:

    Parameters
    ----------
    engine : GemmEngine, optional
        Engine the tile updates are launched through (default: a
        dtype-neutral :class:`~repro.gemm.engine.PlainEngine`).  Pass a
        recording / resilience-wrapped engine to join the GEMM telemetry
        stream and the ABFT guards.
    workspace : repro.perf.Workspace, bool, or None
        Scratch arena for every gather/WY/update buffer (see
        :func:`repro.perf.resolve_workspace`).
    batch : bool
        Launch each round's identically-shaped wavefront tiles as one
        ``gemm_batched`` stack (default).  ``batch=False`` launches one
        step at a time — bitwise identical output, used by the
        schedule-invariance tests.
    """
    a = as_symmetric_matrix(a, rtol=1e-3, atol=1e-4)
    n = a.shape[0]
    if b < 1:
        raise ShapeError(f"bandwidth must be >= 1, got {b}")
    dtype = a.dtype
    A = np.array(a, copy=True)
    q = np.eye(n, dtype=dtype) if want_q else None
    if b == 1 or n <= 2:
        d = np.diagonal(A).copy()
        e = np.diagonal(A, offset=-1).copy() if n > 1 else np.empty(0, dtype=dtype)
        return d, e, q

    eng = engine if engine is not None else PlainEngine()
    ws = resolve_workspace(workspace)
    dead = bytearray(n)  # sweeps whose bulge vanished (chase died out)
    nrounds = nsteps = nlaunches = 0

    with obs.span("bulge.wavefront", n=n, bandwidth=b) as sp:
        for wave in wavefront_rounds(n, b):
            live = [(j, geom) for j, geom in wave if not dead[j]]
            if not live:
                continue
            nrounds += 1
            groups = wavefront_groups(live)
            if not batch:
                groups = [(key, [s]) for key, steps in groups for s in steps]
            for key, steps in groups:
                nlaunches += 1
                nsteps += len(steps)
                _execute_group(A, q, key, steps, eng, ws, dead)
        sp.count("rounds", nrounds)
        sp.count("steps", nsteps)
        sp.count("launches", nlaunches)

    d = np.diagonal(A).copy()
    e = np.diagonal(A, offset=-1).copy()
    return d, e, q


def _execute_group(A, q, key, steps, eng, ws, dead) -> None:
    """Factor and apply one batch group of wavefront steps.

    ``key = (kind, L, w, c2)``; every step in ``steps`` shares it, so all
    gathered stacks are rectangular and the updates launch as single
    batched calls.  Row/column footprints of distinct steps are disjoint
    by the schedule invariant, so gather/scatter order is irrelevant.
    """
    kind, L, w, c2 = key
    G = len(steps)
    dtype = A.dtype
    n = A.shape[0]
    kk = min(L, w)

    V = ws.take("bw_v", (G, L, kk), dtype)
    betas = ws.take("bw_betas", (G, kk), dtype)
    alphas = ws.take("bw_alpha", (G,), dtype)
    # Per-group scratch bundle: taken once here, sliced inside the inner
    # loops (arena lookups are too hot to sit inside the QR recursion).
    sc = {
        "sigma": ws.take("bw_rf_sigma", (G,), dtype),
        "nrm": ws.take("bw_rf_norm", (G,), dtype),
        "v0": ws.take("bw_rf_v0", (G,), dtype),
        "asafe": ws.take("bw_rf_asafe", (G,), dtype),
        "deg": ws.take("bw_rf_deg", (G,), np.bool_),
    }
    if kk > 1:
        sc["qr_t"] = ws.take("bw_qr_t", (G, 1, w - 1), dtype)
        sc["qr_outer"] = ws.take("bw_qr_outer", (G, L, w - 1), dtype)
        sc["wy_bv"] = ws.take("bw_wy_bv", (G, L, 1), dtype)
        sc["wy_t"] = ws.take("bw_wy_t", (G, kk - 1, 1), dtype)
        sc["wy_u"] = ws.take("bw_wy_u", (G, L, 1), dtype)

    if kind == "col":
        # Sweep opener: one reflector per sweep annihilating column j
        # below the subdiagonal (k = 1 WY pair).
        x = ws.take("bw_colx", (G, L), dtype)
        for g, (j, geom) in enumerate(steps):
            b0, b1 = geom[3], geom[4]
            x[g] = A[b0:b1, j]
        scales = _prescale(x, ws)
        V[...] = 0
        _batched_reflector(x, V[:, :, 0], betas[:, 0], alphas, sc)
        if scales is not None:
            np.multiply(alphas, scales, out=alphas)
        for g, (j, geom) in enumerate(steps):
            b0, b1 = geom[3], geom[4]
            A[b0, j] = alphas[g]
            A[b0 + 1 : b1, j] = 0
            A[j, b0] = alphas[g]
            A[j, b0 + 1 : b1] = 0
    else:
        # Chase hop: QR of the bulge block annihilates everything below
        # each column's band edge (the block's local diagonal).
        blocks = ws.take("bw_block", (G, L, w), dtype)
        for g, (j, geom) in enumerate(steps):
            a0, a1, b0, b1 = geom[1], geom[2], geom[3], geom[4]
            blocks[g] = A[b0:b1, a0:a1]
        scales = _prescale(blocks, ws)
        _batched_qr(blocks, V, betas, alphas, sc)
        if scales is not None:
            np.multiply(blocks, scales[:, None, None], out=blocks)
        # All-zero betas mean the block had no sub-band content: that
        # sweep's chase has died out (identity transform, nothing to do).
        alive = [g for g in range(G) if betas[g].any()]
        if len(alive) < G:
            kept = set(alive)
            for g, (j, geom) in enumerate(steps):
                if g not in kept:
                    dead[j] = 1
        for g in alive:
            j, geom = steps[g]
            a0, a1, b0, b1 = geom[1], geom[2], geom[3], geom[4]
            A[b0:b1, a0:a1] = blocks[g]
            A[a0:a1, b0:b1] = blocks[g].T
        if not alive:
            return
        if len(alive) < G:
            for i, g in enumerate(alive):
                if i != g:
                    V[i] = V[g]
                    betas[i] = betas[g]
            steps = [steps[g] for g in alive]
            G = len(alive)
            V = V[:G]
            betas = betas[:G]

    W = ws.take("bw_w", (G, L, kk), dtype)
    _batched_build_wy(V, betas, W, sc)

    # --- Strip: rows [b0,b1) x cols [b1,hi), left-applied Q^T then
    # mirrored (S <- S - Y (W^T S)). ------------------------------------
    if c2 > 0:
        S = ws.take("bw_strip", (G, L, c2), dtype)
        for g, (j, geom) in enumerate(steps):
            b0, b1, hi = geom[3], geom[4], geom[5]
            S[g] = A[b0:b1, b1:hi]
        T = eng.gemm_batched(
            W, S, ta=True, tag=TAG_STRIP,
            out=ws.take("bw_strip_t", (G, kk, c2), dtype),
        )
        YT = eng.gemm_batched(
            V, T, tag=TAG_STRIP,
            out=ws.take("bw_strip_u", (G, L, c2), dtype),
        )
        np.subtract(S, YT, out=S)
        for g, (j, geom) in enumerate(steps):
            b0, b1, hi = geom[3], geom[4], geom[5]
            A[b0:b1, b1:hi] = S[g]
            A[b1:hi, b0:b1] = S[g].T

    # --- Diagonal tile: exactly-symmetric two-sided update via the
    # fused syr2k trick (see module docstring). -------------------------
    D = ws.take("bw_tile", (G, L, L), dtype)
    for g, (j, geom) in enumerate(steps):
        b0, b1 = geom[3], geom[4]
        D[g] = A[b0:b1, b0:b1]
    U = eng.gemm_batched(
        D, W, tag=TAG_TILE, out=ws.take("bw_tile_u", (G, L, kk), dtype)
    )
    VS = eng.gemm_batched(
        W, U, ta=True, tag=TAG_TILE,
        out=ws.take("bw_tile_v", (G, kk, kk), dtype),
    )
    YV = eng.gemm_batched(
        V, VS, tag=TAG_TILE, out=ws.take("bw_tile_yv", (G, L, kk), dtype)
    )
    np.multiply(YV, dtype.type(0.5), out=YV)
    np.subtract(U, YV, out=U)  # U' = D W - (1/2) Y (W^T D W)
    for g, (j, geom) in enumerate(steps):
        b0, b1 = geom[3], geom[4]
        eng.syr2k(
            V[g], U[g], tag=TAG_SYR2K, out=A[b0:b1, b0:b1],
            alpha=-1.0, beta=1.0,
        )

    # --- Q accumulation: q[:, R] <- q[:, R] (I - W Y^T). ---------------
    if q is not None:
        Qg = ws.take("bw_qg", (G, n, L), dtype)
        for g, (j, geom) in enumerate(steps):
            b0, b1 = geom[3], geom[4]
            Qg[g] = q[:, b0:b1]
        P = eng.gemm_batched(
            Qg, W, tag=TAG_Q, out=ws.take("bw_q_p", (G, n, kk), dtype)
        )
        PY = eng.gemm_batched(
            P, V, tb=True, tag=TAG_Q,
            out=ws.take("bw_q_upd", (G, n, L), dtype),
        )
        for g, (j, geom) in enumerate(steps):
            b0, b1 = geom[3], geom[4]
            q[:, b0:b1] -= PY[g]


def _prescale(stack, ws):
    """Overflow/underflow guard for the batched reflector kernels.

    The scalar :func:`~repro.la.householder.make_reflector` rescales
    every column; doing that inside the batched QR recursion costs more
    arena traffic and ufunc launches than the whole rest of the chase.
    Householder factors commute with per-slice scaling (``QR`` of
    ``c X`` is ``Q (c R)``; ``v`` and ``beta`` are scale-invariant), so
    the guard hoists to one pass per *group*: if every slice magnitude
    already sits in the safe range — always, for sanely scaled inputs —
    return ``None`` and the hot path runs unscaled.  Otherwise scale
    each slice in place and return the per-slice factors so the caller
    can restore ``R`` / ``alpha`` afterwards.  Non-finite input raises
    the same breakdown the scalar kernel does.
    """
    G = stack.shape[0]
    dtype = stack.dtype
    flat = stack.reshape(G, -1)
    buf = ws.take("bw_sc_abs", flat.shape, dtype)
    np.abs(flat, out=buf)
    mx = ws.take("bw_sc_max", (G,), dtype)
    np.max(buf, axis=1, out=mx)
    if not np.all(np.isfinite(mx)):
        raise NumericalBreakdownError(
            "non-finite block in wavefront bulge chase",
            detector="nonfinite", site="bulge_wavefront",
        )
    fi = np.finfo(dtype)
    hi = np.sqrt(fi.max / flat.shape[1]) / 8
    lo = np.sqrt(fi.tiny) * 8
    if bool(((mx < hi) & ((mx > lo) | (mx == 0))).all()):
        return None
    scales = ws.take("bw_sc_scale", (G,), dtype)
    np.copyto(scales, mx)
    scales[mx == 0] = 1
    np.divide(stack, scales.reshape((G,) + (1,) * (stack.ndim - 1)), out=stack)
    return scales


def _batched_reflector(x, v, beta, alpha, sc) -> None:
    """Vectorized Householder generation across a stack of columns.

    The batched analogue of :func:`repro.la.householder.make_reflector`
    (one vectorized pass over the wavefront's concurrent steps; the
    range guard lives in :func:`_prescale`): for each slice ``g``,
    ``H_g = I - beta[g] v_g v_g^T`` annihilates ``x[g, 1:]`` with
    ``(H_g x_g)[0] = alpha[g]``.  ``x`` (G, L) is read-only; ``v``
    (G, L), ``beta`` (G,) and ``alpha`` (G,) are written, with
    ``v[:, 0] = 1``.  Slices whose tail is already zero degenerate to
    ``beta = 0``, ``H = I``.  ``sc`` is the caller's scratch bundle.
    """
    np.copyto(v, x)
    v[:, 0] = 1
    if x.shape[1] < 2:
        beta[:] = 0
        alpha[:] = x[:, 0]
        return
    x0 = x[:, 0]
    sigma = sc["sigma"]
    np.einsum("gl,gl->g", x[:, 1:], x[:, 1:], out=sigma)
    deg = sc["deg"]  # nothing to annihilate: H = I
    np.equal(sigma, 0.0, out=deg)
    anydeg = bool(deg.any())
    nrm = sc["nrm"]
    np.sqrt(sigma, out=nrm)
    np.hypot(x0, nrm, out=nrm)
    # alpha gets the sign opposite x0 so v0 = x0 - alpha never cancels.
    np.copysign(nrm, x0, out=alpha)
    np.negative(alpha, out=alpha)
    v0 = sc["v0"]
    np.subtract(x0, alpha, out=v0)
    np.subtract(alpha, x0, out=beta)
    if anydeg:
        v0[deg] = 1
        asafe = sc["asafe"]
        np.copyto(asafe, alpha)
        asafe[deg] = 1
        np.divide(beta, asafe, out=beta)
        beta[deg] = 0
        alpha[deg] = x[deg, 0]
    else:
        np.divide(beta, alpha, out=beta)
    np.divide(x[:, 1:], v0[:, None], out=v[:, 1:])


def _batched_qr(blocks, V, betas, alphas, sc) -> None:
    """Batched Householder QR of a (G, L, w) stack, in place.

    ``blocks`` becomes the stack of R factors (each exactly the in-band
    upper triangle); ``V`` (G, L, kk) and ``betas`` (G, kk) collect the
    reflectors.  An all-zero ``betas[g]`` row means block ``g`` had
    nothing below its diagonal (dead chase).
    """
    G, L, w = blocks.shape
    kk = V.shape[2]
    V[...] = 0
    for jl in range(kk):
        lr = L - jl
        _batched_reflector(
            blocks[:, jl:, jl], V[:, jl:, jl], betas[:, jl], alphas, sc
        )
        blocks[:, jl, jl] = alphas
        blocks[:, jl + 1 :, jl] = 0
        wr = w - jl - 1
        if wr < 1 or lr < 2:
            continue
        vj = V[:, jl:, jl]
        rest = blocks[:, jl:, jl + 1 :]
        t = sc["qr_t"][:, :, :wr]
        np.matmul(vj[:, None, :], rest, out=t)
        np.multiply(t, betas[:, jl, None, None], out=t)
        outer = sc["qr_outer"][:, :lr, :wr]
        np.matmul(vj[:, :, None], t, out=outer)
        np.subtract(rest, outer, out=rest)


def _batched_build_wy(V, betas, W, sc) -> None:
    """Batched WY recurrence: per slice, ``H_1 .. H_kk = I - W Y^T``.

    Same recurrence as :func:`repro.la.wy.build_wy`, vectorized over the
    stack (the per-step WY build is panel-internal work, like stage 1's
    panel factorization — it stays outside the engine stream).
    """
    G, L, kk = V.shape
    np.multiply(V[:, :, 0], betas[:, 0, None], out=W[:, :, 0])
    for jl in range(1, kk):
        # [:G] slices: after dead-sweep compaction the stack is shorter
        # than the scratch taken for the full group.
        bv = sc["wy_bv"][:G]
        np.multiply(V[:, :, jl], betas[:, jl, None], out=bv[:, :, 0])
        t = sc["wy_t"][:G, :jl]
        np.matmul(V[:, :, :jl].swapaxes(1, 2), bv, out=t)
        u = sc["wy_u"][:G]
        np.matmul(W[:, :, :jl], t, out=u)
        np.subtract(bv, u, out=bv)
        W[:, :, jl] = bv[:, :, 0]
