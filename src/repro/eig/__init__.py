"""Second-stage eigensolvers and end-to-end EVD drivers.

The paper offloads everything after band reduction to MAGMA (bulge chasing
+ divide & conquer on the CPU).  This package implements those substrates
from scratch:

- :mod:`~repro.eig.bulge` — bulge-chasing reduction of a symmetric band
  matrix to tridiagonal form (stage 2 of two-stage tridiagonalization).
- :mod:`~repro.eig.qliter` — implicit-shift QL iteration (EISPACK
  ``tql2``-style), the dense fallback / base-case solver.
- :mod:`~repro.eig.secular` / :mod:`~repro.eig.dc` — Cuppen's divide &
  conquer for the symmetric tridiagonal eigenproblem, with a safeguarded
  secular-equation solver and Löwner-formula eigenvector stabilization.
- :mod:`~repro.eig.sturm` — Sturm-sequence eigenvalue counting and
  bisection (selected eigenvalues, verification).
- :mod:`~repro.eig.tridiag_direct` — classic one-stage Householder
  tridiagonalization (the 50%-BLAS2 baseline of paper §3.1).
- :mod:`~repro.eig.driver` — ``syevd_2stage`` (SBR → bulge chase →
  tridiagonal eigensolver → back-transformation) and ``syevd_1stage``.
"""

from .bulge import bulge_chase, reduce_bandwidth
from .qliter import tridiag_eig_ql
from .dc import tridiag_eig_dc
from .sturm import sturm_count, eigvals_bisect
from .secular import solve_secular, secular_eig
from .inverse_iteration import tridiag_inverse_iteration
from .lobpcg import lobpcg
from .qdwh import qdwh_eig, qdwh_polar
from .tridiag_direct import householder_tridiagonalize
from .driver import EvdResult, syevd_2stage, syevd_1stage, syevd_selected

__all__ = [
    "bulge_chase",
    "reduce_bandwidth",
    "tridiag_eig_ql",
    "tridiag_eig_dc",
    "sturm_count",
    "eigvals_bisect",
    "solve_secular",
    "secular_eig",
    "tridiag_inverse_iteration",
    "lobpcg",
    "qdwh_polar",
    "qdwh_eig",
    "householder_tridiagonalize",
    "EvdResult",
    "syevd_2stage",
    "syevd_1stage",
    "syevd_selected",
]
