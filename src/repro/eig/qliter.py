"""Implicit-shift QL iteration for symmetric tridiagonal matrices.

A port of the classic EISPACK ``tql2`` / Numerical-Recipes ``tqli``
algorithm: Wilkinson-shifted QL sweeps applied implicitly via Givens
rotations, deflating converged off-diagonals.  Used as the base-case
solver of the divide & conquer recursion and as an independent reference
for the D&C tests.

Cost: O(n²) for eigenvalues only, O(n³) with eigenvectors.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConvergenceError, ShapeError
from ..validation import check_tridiagonal
from ..obs.live import use_registry
from .budget import WallClockBudget

__all__ = ["tridiag_eig_ql"]

_MAX_SWEEPS = 50


def tridiag_eig_ql(
    d,
    e,
    *,
    want_vectors: bool = True,
    z0: np.ndarray | None = None,
    max_seconds: float | None = None,
    metrics=None,
    check_input: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Eigendecomposition of the symmetric tridiagonal (d, e).

    Parameters
    ----------
    d : array_like, shape (n,)
        Diagonal entries.
    e : array_like, shape (n-1,)
        Off-diagonal entries.
    want_vectors : bool
        Whether to accumulate eigenvectors.
    z0 : ndarray, optional
        Initial transformation the rotations are accumulated into
        (default: identity).  Pass the stage-1/2 back-transform to fuse
        the final product.
    max_seconds : float, optional
        Wall-clock budget; exceeding it raises a structured
        :class:`~repro.errors.BudgetExceededError` (phase
        ``"ql_iteration"``).
    metrics : repro.obs.live.MetricsRegistry, optional
        Install a live metrics registry for this call (iteration ticks
        land on the ``repro_solver_iterations_total{phase="ql_iteration"}``
        counter).
    check_input : bool
        Validate ``(d, e)`` up front (shape + finiteness) with a
        structured :class:`~repro.errors.ValidationError` instead of
        spinning on NaN rotations; default on.

    Returns
    -------
    lam : ndarray, shape (n,)
        Eigenvalues in ascending order.
    z : ndarray (m, n) or None
        Eigenvectors (columns), premultiplied by ``z0`` if given.
    """
    if metrics is not None:
        with use_registry(metrics):
            return tridiag_eig_ql(
                d, e, want_vectors=want_vectors, z0=z0,
                max_seconds=max_seconds, check_input=check_input,
            )
    if check_input:
        d, e = check_tridiagonal(d, e)
    d = np.array(d, dtype=np.float64, copy=True)
    e_in = np.asarray(e, dtype=np.float64)
    n = d.size
    if d.ndim != 1 or e_in.ndim != 1 or e_in.size != max(n - 1, 0):
        raise ShapeError(f"need d (n,) and e (n-1,), got {d.shape} and {e_in.shape}")

    # EISPACK convention: work array e has length n with a zero sentinel.
    e_work = np.zeros(n, dtype=np.float64)
    if n > 1:
        e_work[: n - 1] = e_in

    z: np.ndarray | None = None
    if want_vectors:
        if z0 is not None:
            z = np.array(z0, dtype=np.float64, copy=True)
            if z.ndim != 2 or z.shape[1] != n:
                raise ShapeError(f"z0 must have {n} columns, got shape {z.shape}")
        else:
            z = np.eye(n, dtype=np.float64)

    budget = WallClockBudget(max_seconds, phase="ql_iteration")
    for l in range(n):
        for sweep in range(_MAX_SWEEPS + 1):
            budget.check(iterations=l * _MAX_SWEEPS + sweep)
            # Find the first deflation point m >= l.
            m = l
            while m < n - 1:
                dd = abs(d[m]) + abs(d[m + 1])
                if abs(e_work[m]) <= np.finfo(np.float64).eps * dd:
                    break
                m += 1
            if m == l:
                break
            if sweep == _MAX_SWEEPS:
                raise ConvergenceError(
                    f"QL iteration failed to converge at index {l} "
                    f"after {_MAX_SWEEPS} sweeps",
                    iterations=_MAX_SWEEPS,
                    residual=float(abs(e_work[l])),
                )
            # Wilkinson shift from the leading 2x2.
            g = (d[l + 1] - d[l]) / (2.0 * e_work[l])
            r = np.hypot(g, 1.0)
            g = d[m] - d[l] + e_work[l] / (g + (r if g >= 0 else -r))
            s = 1.0
            c = 1.0
            p = 0.0
            for i in range(m - 1, l - 1, -1):
                f = s * e_work[i]
                bb = c * e_work[i]
                r = np.hypot(f, g)
                e_work[i + 1] = r
                if r == 0.0:
                    d[i + 1] -= p
                    e_work[m] = 0.0
                    break
                s = f / r
                c = g / r
                g = d[i + 1] - p
                r = (d[i] - g) * s + 2.0 * c * bb
                p = s * r
                d[i + 1] = g + p
                g = c * r - bb
                if z is not None:
                    zi = z[:, i].copy()
                    z[:, i + 1], z[:, i] = s * zi + c * z[:, i + 1], c * zi - s * z[:, i + 1]
            else:
                d[l] -= p
                e_work[l] = g
                e_work[m] = 0.0
                continue
            continue

    order = np.argsort(d, kind="stable")
    lam = d[order]
    if z is not None:
        z = z[:, order]
    return lam, z
