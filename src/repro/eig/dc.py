"""Cuppen's divide & conquer for the symmetric tridiagonal eigenproblem.

The tridiagonal matrix is torn at the midpoint into a block-diagonal part
plus a rank-one correction,

    T = [T1' 0; 0 T2'] + beta * u u^T,     u = e_m + e_{m+1},

children are solved recursively, and the merge diagonalizes
``diag(D) + rho z z^T`` via deflation + the secular solver
(:mod:`repro.eig.secular`).  This is the algorithm behind LAPACK
``stedc`` and the MAGMA divide & conquer stage the paper calls after its
band reduction.

Deflation (LAPACK ``slaed2``):

1. components ``|rho| z_i^2`` below tolerance — the child eigenpair is
   already an eigenpair of the merged system;
2. (near-)equal eigenvalues ``D_i ≈ D_j`` — a Givens rotation zeroes one
   of the two ``z`` components, deflating it.

Deflation is not an optimization detail: the secular solver *requires*
strictly separated poles and nonzero components, and clustered spectra
(the paper's cluster0/cluster1 matrix classes) deflate almost entirely.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .qliter import tridiag_eig_ql
from .secular import secular_eig

__all__ = ["tridiag_eig_dc"]


def tridiag_eig_dc(
    d,
    e,
    *,
    want_vectors: bool = True,
    cutoff: int = 32,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Eigendecomposition of the symmetric tridiagonal (d, e) by D&C.

    Parameters
    ----------
    d : array_like, shape (n,)
        Diagonal entries.
    e : array_like, shape (n-1,)
        Off-diagonal entries.
    want_vectors : bool
        Whether to return eigenvectors.  (Vectors are always computed
        inside the recursion — the merge needs the children's edge rows —
        and dropped at the top if not requested.)
    cutoff : int
        Subproblem size below which the QL iteration solves directly.

    Returns
    -------
    lam : ndarray
        Eigenvalues, ascending.
    v : ndarray or None
        Orthonormal eigenvectors (columns), aligned with ``lam``.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    if d.ndim != 1 or e.ndim != 1 or e.size != max(d.size - 1, 0):
        raise ShapeError(f"need d (n,) and e (n-1,), got {d.shape} and {e.shape}")
    if cutoff < 3:
        raise ShapeError(f"cutoff must be >= 3, got {cutoff}")
    lam, v = _dc(d.copy(), e.copy(), cutoff)
    return (lam, v) if want_vectors else (lam, None)


def _dc(d: np.ndarray, e: np.ndarray, cutoff: int) -> tuple[np.ndarray, np.ndarray]:
    n = d.size
    if n <= cutoff:
        lam, v = tridiag_eig_ql(d, e, want_vectors=True)
        return lam, v

    m = n // 2
    beta = float(e[m - 1])
    if beta == 0.0:
        # Already block diagonal: merge the children trivially.
        lam1, q1 = _dc(d[:m], e[: m - 1], cutoff)
        lam2, q2 = _dc(d[m:], e[m:], cutoff)
        lam = np.concatenate([lam1, lam2])
        v = np.zeros((n, n))
        v[:m, :m] = q1
        v[m:, m:] = q2
        order = np.argsort(lam, kind="stable")
        return lam[order], v[:, order]

    # Rank-one tear: T = blkdiag(T1', T2') + beta u u^T.
    d1 = d[:m].copy()
    d1[-1] -= beta
    d2 = d[m:].copy()
    d2[0] -= beta
    lam1, q1 = _dc(d1, e[: m - 1], cutoff)
    lam2, q2 = _dc(d2, e[m:], cutoff)

    # z = blkdiag(Q1, Q2)^T u: last row of Q1 stacked on first row of Q2.
    dd = np.concatenate([lam1, lam2])
    z = np.concatenate([q1[-1, :], q2[0, :]])

    lam, v_inner, u_cols = _merge(dd, z, beta, q1, q2)
    return lam, _assemble(q1, q2, u_cols, v_inner)


def _merge(
    dd: np.ndarray,
    z: np.ndarray,
    rho: float,
    q1: np.ndarray,
    q2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deflate and solve the rank-one update ``diag(dd) + rho z z^T``.

    Returns ``(lam_sorted, v, u_cols)`` where ``u_cols`` is the n×n basis
    (the sorted/rotated child eigenvector combination matrix) and ``v``
    the eigenvectors in that basis, both aligned with ``lam_sorted``.
    """
    n = dd.size
    order = np.argsort(dd, kind="stable")
    dd = dd[order].copy()
    z = z[order].copy()

    # u_cols starts as the permutation of blkdiag(Q1, Q2) columns; pair
    # deflation applies Givens rotations to it (recorded here against the
    # *sorted* coordinate system, materialized in _basis_ops).
    rotations: list[tuple[int, int, float, float]] = []

    norm_scale = max(float(np.abs(dd).max(initial=0.0)), abs(rho) * float(z @ z), 1e-300)
    tol = 8.0 * np.finfo(np.float64).eps * norm_scale

    active = np.ones(n, dtype=bool)

    # --- Small-component deflation first. --------------------------------
    # Dropping z_i perturbs the matrix by the rank-one cross terms
    # |rho| * |z_i| * |z_j| — *linear* in z_i (a quadratic criterion would
    # deflate sqrt(eps)-sized couplings and cost half the digits in the
    # eigenvector residual).
    zmax = float(np.abs(z).max(initial=0.0))
    active &= np.abs(rho) * np.abs(z) * zmax > tol

    # --- Pair deflation: near-equal poles among the active set. ----------
    # Walk consecutive active entries; whenever their gap is within tol,
    # a Givens rotation G (with c = z_j/h, s = z_i/h) sends z_i -> 0 and
    # z_j -> h, at the price of an off-diagonal c*s*(dd_j - dd_i) <= tol
    # that is dropped.  The diagonal pair becomes a convex combination,
    # preserving the global ordering.
    act_idx = np.nonzero(active)[0]
    p = 0
    while p < act_idx.size - 1:
        i, j = int(act_idx[p]), int(act_idx[p + 1])
        if dd[j] - dd[i] <= tol:
            h = float(np.hypot(z[i], z[j]))
            if h > 0.0:
                c = z[j] / h
                s = z[i] / h
                z[i] = 0.0
                z[j] = h
                di, dj = dd[i], dd[j]
                dd[i] = c * c * di + s * s * dj
                dd[j] = s * s * di + c * c * dj
                rotations.append((i, j, c, s))
                active[i] = False
                act_idx = np.delete(act_idx, p)
                continue
        p += 1

    keep = np.nonzero(active)[0]
    defl = np.nonzero(~active)[0]

    lam = np.empty(n)
    v = np.zeros((n, n))
    if keep.size:
        lam_k, v_k = secular_eig(dd[keep], z[keep], rho, want_vectors=True)
        lam[: keep.size] = lam_k
        v[np.ix_(keep, np.arange(keep.size))] = v_k
    lam[keep.size :] = dd[defl]
    v[defl, keep.size + np.arange(defl.size)] = 1.0

    final = np.argsort(lam, kind="stable")
    lam = lam[final]
    v = v[:, final]
    return lam, v, _basis_ops(order, rotations, q1, q2)


def _basis_ops(order, rotations, q1, q2) -> np.ndarray:
    """Materialize U = blkdiag(Q1, Q2)[:, order] with deflation rotations."""
    m = q1.shape[0]
    n = m + q2.shape[0]
    u = np.zeros((n, n))
    u[:m, :m] = q1
    u[m:, m:] = q2
    u = u[:, order]
    if rotations:
        # One scratch pair for all deflation rotations (clustered spectra
        # deflate almost entirely, so this loop can run Θ(n) times).
        sav = np.empty(n)
        tmp = np.empty(n)
    for i, j, c, s in rotations:
        ui = u[:, i]
        uj = u[:, j]
        # Column update matching z <- G^T z with G = [[c, s], [-s, c]],
        # allocation-free and bitwise identical to c*ui - s*uj / s*ui + c*uj.
        np.copyto(sav, ui)
        np.multiply(uj, s, out=tmp)
        np.multiply(sav, c, out=ui)
        ui -= tmp
        np.multiply(uj, c, out=uj)
        np.multiply(sav, s, out=tmp)
        np.add(tmp, uj, out=uj)
    return u


def _assemble(q1, q2, u_cols: np.ndarray, v_inner: np.ndarray) -> np.ndarray:
    """Final eigenvectors: the deflation basis times the inner vectors.

    When the tear splits the problem evenly, the product is issued as one
    batched matmul over the two half-height row blocks — the shape a
    device back-transform maps onto ``gemm_batched``.
    """
    m = q1.shape[0]
    n = u_cols.shape[0]
    if 2 * m == n and u_cols.flags.c_contiguous:
        return np.matmul(u_cols.reshape(2, m, n), v_inner).reshape(n, n)
    return u_cols @ v_inner
