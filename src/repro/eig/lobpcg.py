"""LOBPCG: locally optimal block preconditioned conjugate gradient.

The paper's §7 lists "iterative methods on GPU" as future work for the
eigenproblem.  LOBPCG (Knyazev 2001) is the canonical GEMM-dominated
iterative eigensolver — every step is a handful of tall-skinny products
plus a small dense Rayleigh–Ritz problem — making it exactly the workload
profile the Tensor-Core engines accelerate.  This implementation routes
its block products through a :class:`repro.gemm.GemmEngine`, so the same
precision-policy studies run on it as on the band reduction.

Algorithm (block size p, seeking the p smallest eigenpairs):

1. residuals ``R = A X - X diag(lam)``; optionally preconditioned;
2. Rayleigh–Ritz over the subspace ``span[X, R, P]`` (P = previous
   directions), solved as a small dense generalized eigenproblem after
   orthonormalizing the basis;
3. update X and the implicit conjugate directions P; deflate converged
   columns by locking.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from ..errors import ConfigurationError, ConvergenceError, ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from ..obs.live import use_registry
from ..validation import as_symmetric_matrix, check_finite_matrix
from .budget import WallClockBudget

__all__ = ["lobpcg"]


def _orthonormalize(v: np.ndarray) -> np.ndarray:
    """Thin-QR orthonormalization dropping numerically dependent columns."""
    q, r = np.linalg.qr(v)
    diag = np.abs(np.diagonal(r))
    keep = diag > 1e-10 * max(float(diag.max(initial=0.0)), 1e-300)
    return q[:, keep]


def lobpcg(
    a,
    k: int,
    *,
    x0: np.ndarray | None = None,
    largest: bool = False,
    preconditioner: Callable[[np.ndarray], np.ndarray] | None = None,
    engine: GemmEngine | None = None,
    tol: float = 1e-8,
    max_iter: int = 200,
    max_seconds: float | None = None,
    rng: np.random.Generator | None = None,
    metrics=None,
    check_input: bool = True,
) -> tuple[np.ndarray, np.ndarray, int]:
    """Extremal eigenpairs of a symmetric matrix by LOBPCG.

    Parameters
    ----------
    a : array_like (n, n) symmetric
        The matrix.
    k : int
        Number of eigenpairs (smallest by default).
    x0 : ndarray (n, k), optional
        Initial block (default: random).
    largest : bool
        Seek the largest eigenvalues instead of the smallest.
    preconditioner : callable, optional
        Maps a residual block to a preconditioned block (e.g. an
        approximate inverse).
    engine : GemmEngine, optional
        Engine for the block products (tagged ``lobpcg_*``).
    tol : float
        Relative residual tolerance ``||A x - lam x|| <= tol * ||A||``.
    max_seconds : float, optional
        Wall-clock budget; exceeding it raises a structured
        :class:`~repro.errors.BudgetExceededError` (phase ``"lobpcg"``).
    metrics : repro.obs.live.MetricsRegistry, optional
        Install a live metrics registry for this call: per-iteration
        ticks and the residual gauge land under ``phase="lobpcg"``, and
        the block products feed the GEMM latency histograms.
    check_input : bool
        Reject non-square/non-symmetric/non-finite ``a`` up front with
        a structured :class:`~repro.errors.ValidationError`; default on.

    Returns
    -------
    lam : ndarray (k,)
        Converged eigenvalues (ascending).
    x : ndarray (n, k)
        Orthonormal eigenvectors.
    iterations : int
        Iterations performed.
    """
    if metrics is not None:
        with use_registry(metrics):
            return lobpcg(
                a, k, x0=x0, largest=largest,
                preconditioner=preconditioner, engine=engine, tol=tol,
                max_iter=max_iter, max_seconds=max_seconds, rng=rng,
                check_input=check_input,
            )
    a = np.asarray(a)
    if check_input and a.ndim == 2 and a.size:
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, dtype=np.float64, check=check_input)
    n = a.shape[0]
    if not isinstance(k, (int, np.integer)) or k < 1 or 3 * k > n:
        raise ShapeError(f"need 1 <= k <= n/3 for the [X R P] basis, got k={k}, n={n}")
    if max_iter < 1:
        raise ConfigurationError(f"max_iter must be >= 1, got {max_iter}")
    eng = engine if engine is not None else PlainEngine()
    if rng is None:
        rng = np.random.default_rng(0)

    sign = -1.0 if largest else 1.0
    a_work = sign * a
    norm_a = float(np.linalg.norm(a, "fro")) / np.sqrt(n)

    if x0 is not None:
        x = np.asarray(x0, dtype=np.float64)
        if x.shape != (n, k):
            raise ShapeError(f"x0 must be ({n}, {k}), got {x.shape}")
        x = _orthonormalize(x)
    else:
        x = _orthonormalize(rng.standard_normal((n, k)))
    if x.shape[1] < k:
        raise ShapeError("initial block is numerically rank deficient")

    budget = WallClockBudget(max_seconds, phase="lobpcg")
    p: np.ndarray | None = None
    its = 0
    last_resid: float | None = None
    for its in range(1, max_iter + 1):
        budget.check(iterations=its - 1, residual=last_resid)
        ax = np.asarray(eng.gemm(a_work, x, tag="lobpcg_ax"), dtype=np.float64)
        lam = np.einsum("ij,ij->j", x, ax)
        r = ax - x * lam
        resid = np.linalg.norm(r, axis=0)
        last_resid = float(resid.max(initial=0.0))
        if np.all(resid <= tol * max(norm_a, 1e-300)):
            break
        if preconditioner is not None:
            r = np.asarray(preconditioner(r), dtype=np.float64)

        # Orthonormalize R against X, and P against [X, R], but KEEP the
        # three blocks separate: the locally-optimal recurrence needs the
        # coefficient partition u = [u_x; u_r; u_p] to form the new
        # conjugate directions from the (R, P) contribution alone.
        r = r - x @ (x.T @ r)
        r = _orthonormalize(r)
        parts = [x, r]
        if p is not None and p.size:
            p = p - x @ (x.T @ p)
            if r.size:
                p = p - r @ (r.T @ p)
            p = _orthonormalize(p)
            if p.shape[1]:
                parts.append(p)
            else:
                p = None
        basis = np.hstack(parts)
        ab = np.asarray(eng.gemm(a_work, basis, tag="lobpcg_project"), dtype=np.float64)
        t = basis.T @ ab
        t = (t + t.T) / 2.0
        w, u = np.linalg.eigh(t)
        u_k = u[:, :k]
        x_new = basis @ u_k

        # Conjugate directions: the R/P part of the Ritz combination.
        p = basis[:, k:] @ u_k[k:, :]
        if not p.size or float(np.linalg.norm(p)) < 1e-14:
            p = None
        x = _orthonormalize(x_new)
        if x.shape[1] < k:
            # Re-inflate a collapsed block with random directions.
            fill = rng.standard_normal((n, k - x.shape[1]))
            fill -= x @ (x.T @ fill)
            x = _orthonormalize(np.hstack([x, _orthonormalize(fill)]))
    else:
        raise ConvergenceError(
            f"LOBPCG did not reach tol={tol} in {max_iter} iterations",
            iterations=max_iter,
            residual=float(resid.max()),
        )

    # Final Rayleigh-Ritz on the converged block.
    ax = np.asarray(eng.gemm(a_work, x, tag="lobpcg_ax"), dtype=np.float64)
    t = x.T @ ax
    w, u = np.linalg.eigh((t + t.T) / 2.0)
    x = x @ u
    lam = sign * w
    order = np.argsort(lam, kind="stable")
    return lam[order], x[:, order], its
