"""Wall-clock budget guard for iterative solvers.

The iterative solvers (QL iteration, inverse iteration, QDWH, LOBPCG)
bound their *iteration counts*, but a pathological input can still make
each iteration arbitrarily slow, or drive a retry loop that restarts the
counter.  :class:`WallClockBudget` adds the orthogonal guard a serving
deployment needs: a hard wall-clock ceiling, checked once per iteration,
that raises a structured :class:`~repro.errors.BudgetExceededError`
naming the phase, the iterations completed, the elapsed time, and the
configured budget.

Time is read through :func:`repro.obs.spans.now`, so an injected
deterministic clock (the telemetry test fixture) drives budget logic in
tests without real sleeps.

``BudgetExceededError`` subclasses :class:`~repro.errors.ConvergenceError`,
so existing callers that map convergence failures to fallbacks keep
working unchanged; callers that care about the distinction catch the
subclass first.
"""

from __future__ import annotations

from ..errors import BudgetExceededError, ConfigurationError
from ..obs import spans as obs
from ..obs.live import registry as _live

__all__ = ["WallClockBudget"]


class WallClockBudget:
    """A per-call wall-clock ceiling (``max_seconds=None`` disables it).

    Construct at solver entry, call :meth:`check` once per iteration::

        budget = WallClockBudget(max_seconds, phase="ql_iteration")
        for sweep in ...:
            budget.check(iterations=sweep)

    One clock read per check — negligible next to any real iteration.
    """

    __slots__ = ("max_seconds", "phase", "_t0")

    def __init__(self, max_seconds: "float | None", *, phase: str) -> None:
        if max_seconds is not None and not max_seconds > 0:
            raise ConfigurationError(
                f"max_seconds must be positive (or None), got {max_seconds}"
            )
        self.max_seconds = max_seconds
        self.phase = phase
        self._t0 = obs.now() if max_seconds is not None else 0.0

    @property
    def active(self) -> bool:
        return self.max_seconds is not None

    def elapsed(self) -> float:
        """Seconds since construction (0.0 when inactive)."""
        return obs.now() - self._t0 if self.active else 0.0

    def remaining(self) -> "float | None":
        """Seconds left before the ceiling (``None`` when inactive).

        Clamped at 0.0 — a negative remainder means the next
        :meth:`check` raises.  The serving layer uses this to translate
        an SLO deadline into the budget passed down to a solver phase.
        """
        if self.max_seconds is None:
            return None
        return max(0.0, float(self.max_seconds) - self.elapsed())

    @property
    def expired(self) -> bool:
        """True once the ceiling is passed (False when inactive)."""
        return self.active and self.elapsed() > self.max_seconds

    @classmethod
    def until(cls, deadline: "float | None", *, phase: str) -> "WallClockBudget":
        """Budget expiring at absolute time ``deadline`` (obs-clock epoch).

        ``None`` or an already-passed deadline maps to a minimal positive
        budget (1 ms) rather than a disabled one, so the first
        :meth:`check` raises promptly — a job admitted past its SLO
        deadline should fail fast, not run unbounded.
        """
        if deadline is None:
            return cls(None, phase=phase)
        return cls(max(deadline - obs.now(), 1e-3), phase=phase)

    def check(self, *, iterations: "int | None" = None,
              residual: "float | None" = None) -> None:
        """Raise :class:`BudgetExceededError` once the ceiling is passed.

        Also feeds the live metrics registry (one iteration tick and,
        when the solver reports one, the current residual gauge), since
        this is the one hook every iterative solver already calls once
        per iteration.  Both are no-ops without an installed registry,
        and run even when the budget itself is disabled.
        """
        reg = _live.active_registry()
        if reg is not None:
            reg.inc("repro_solver_iterations_total", phase=self.phase)
            if residual is not None:
                reg.set("repro_solver_residual", residual, phase=self.phase)
            reg.mark_progress()
        if self.max_seconds is None:
            return
        elapsed = obs.now() - self._t0
        if elapsed > self.max_seconds:
            raise BudgetExceededError(
                f"{self.phase} exceeded its wall-clock budget",
                phase=self.phase, iterations=iterations, residual=residual,
                elapsed=elapsed, budget=float(self.max_seconds),
            )
