"""Bulge chasing: symmetric band → tridiagonal (stage 2, paper §3.1).

Implements the Schwarz (1968) rotation scheme, the same family as LAPACK
``sbtrd`` and the bulge-chasing stage the paper delegates to MAGMA.  The
bandwidth is peeled off one diagonal at a time: to remove the outermost
diagonal, each band-edge entry ``A[j+b, j]`` is annihilated by a Givens
rotation of rows/columns ``(j+b-1, j+b)``; the rotation spawns one
out-of-band fill element ``b`` rows further down, which the chase follows
until it drops off the matrix edge.

Cost is Θ(n² b) without eigenvector accumulation — the reason two-stage
tridiagonalization wants a *small* bandwidth while Tensor-Core GEMMs want
a *large* one (the tension discussed in the paper's §4.1).  Accumulating
``Q2`` costs Θ(n³) (each rotation touches two columns of Q), the known
price of eigenvectors in two-stage methods.

Rotation work is BLAS1/2 and intentionally not routed through a GEMM
engine; the device performance model charges stage 2 via its own
analytic estimator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..obs import spans as obs
from ..validation import as_symmetric_matrix

__all__ = ["bulge_chase", "reduce_bandwidth"]


def _givens(f: float, g: float) -> tuple[float, float]:
    """Stable Givens pair (c, s) with ``[c s; -s c]^T [f; g] = [r; 0]``."""
    if g == 0.0:
        return 1.0, 0.0
    if f == 0.0:
        return 0.0, 1.0
    r = np.hypot(f, g)
    return f / r, g / r


def _rot_pair(vi: np.ndarray, vk: np.ndarray, c: float, s: float, scratch: np.ndarray) -> None:
    """Rotate the vector pair ``(vi, vk) <- (c vi + s vk, -s vi + c vk)``.

    Allocation-free: both results are formed in place through the two
    preallocated ``scratch`` rows (the saved copy of ``vi`` and one
    product), bitwise identical to the temporary-allocating expression
    ``c*vi + s*vk`` / ``-s*vi + c*vk``.
    """
    w = vi.shape[0]
    sav = scratch[0, :w]
    tmp = scratch[1, :w]
    np.copyto(sav, vi)
    np.multiply(vk, s, out=tmp)
    np.multiply(sav, c, out=vi)
    vi += tmp
    np.multiply(vk, c, out=vk)
    np.multiply(sav, -s, out=tmp)
    vk += tmp


def _rot_rows(A, i, k, c, s, lo, hi, scratch) -> None:
    """Apply G^T from the left to rows (i, k), columns [lo, hi)."""
    _rot_pair(A[i, lo:hi], A[k, lo:hi], c, s, scratch)


def _rot_cols(A, i, k, c, s, lo, hi, scratch) -> None:
    """Apply G from the right to columns (i, k), rows [lo, hi)."""
    _rot_pair(A[lo:hi, i], A[lo:hi, k], c, s, scratch)


def bulge_chase(
    a,
    b: int,
    *,
    want_q: bool = True,
    variant: str = "givens",
    engine=None,
    workspace=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce a symmetric band matrix to tridiagonal form.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        Band matrix with semi-bandwidth ``b`` (entries outside the band
        are assumed zero and ignored).
    b : int
        Semi-bandwidth of ``a``; ``b == 1`` returns the tridiagonal
        entries directly.
    want_q : bool
        Accumulate the orthogonal transform ``Q2`` with ``A ≈ Q2 T Q2^T``.
    variant : {"givens", "blocked", "wavefront"}
        ``"givens"``: Schwarz rotation scheme (this module).
        ``"blocked"``: Householder column sweeps with blocked chases
        (:mod:`repro.eig.bulge_blocked`, MAGMA ``sb2st``-style; fewer
        Python-level steps, faster for larger bandwidths).
        ``"wavefront"``: batched anti-diagonal wavefronts of WY tile
        updates launched through the GEMM engine
        (:mod:`repro.eig.bulge_wavefront`; pass ``engine=`` /
        ``workspace=`` keywords for telemetry and arena reuse).
    engine, workspace : optional
        Forwarded to the wavefront variant (GEMM engine routing and
        scratch-arena reuse); unused by the scalar variants.

    Returns
    -------
    d : ndarray, shape (n,)
        Diagonal of the tridiagonal matrix ``T``.
    e : ndarray, shape (n-1,)
        Sub-diagonal of ``T``.
    q : ndarray (n, n) or None
        The accumulated transform (``None`` if not requested).
    """
    if variant == "blocked":
        from .bulge_blocked import bulge_chase_blocked

        return bulge_chase_blocked(a, b, want_q=want_q)
    if variant == "wavefront":
        from .bulge_wavefront import bulge_chase_wavefront

        return bulge_chase_wavefront(
            a, b, want_q=want_q, engine=engine, workspace=workspace
        )
    if variant != "givens":
        raise ShapeError(
            "variant must be 'givens', 'blocked' or 'wavefront', "
            f"got {variant!r}"
        )
    A, q = reduce_bandwidth(a, b, target=1, want_q=want_q)
    n = A.shape[0]
    d = np.diagonal(A).copy()
    e = np.diagonal(A, offset=-1).copy() if n > 1 else np.empty(0, dtype=A.dtype)
    return d, e, q


def reduce_bandwidth(
    a,
    b: int,
    *,
    target: int = 1,
    want_q: bool = True,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Reduce a symmetric band matrix's bandwidth from ``b`` to ``target``.

    The multi-step band reduction of the SBR framework (Bischof, Lang &
    Sun 2000): the bandwidth is peeled one outermost diagonal at a time by
    Givens chases.  ``target=1`` is full tridiagonalization (what
    :func:`bulge_chase` returns in (d, e) form); intermediate targets give
    the band-to-band steps of multi-sweep reduction strategies.

    Returns
    -------
    band : ndarray (n, n)
        Dense symmetric matrix of bandwidth ``target`` with
        ``A ≈ Q band Q^T``.
    q : ndarray (n, n) or None
        Accumulated orthogonal transform (``None`` if not requested).
    """
    a = as_symmetric_matrix(a, rtol=1e-3, atol=1e-4)
    n = a.shape[0]
    if b < 1:
        raise ShapeError(f"bandwidth must be >= 1, got {b}")
    if target < 1 or target > b:
        raise ShapeError(f"target bandwidth must be in [1, {b}], got {target}")
    dtype = a.dtype
    A = np.array(a, copy=True)
    q = np.eye(n, dtype=dtype) if want_q else None
    # One scratch pair reused by every rotation (Θ(n² b) of them): the
    # per-rotation ``.copy()`` temporaries were the hot loop's only
    # allocations.
    scratch = np.empty((2, n), dtype=dtype)

    # Peel the bandwidth one diagonal at a time: cur = current bandwidth.
    for cur in range(min(b, n - 1), target, -1):
        with obs.span("bulge.sweep", bandwidth=cur) as sweep:
            nrot = 0
            for j in range(n - cur):
                # Annihilate the band-edge entry A[j+cur, j], then chase the
                # fill element it spawns every `cur` rows down the band.
                col = j
                r = j + cur
                while r < n:
                    f_val = float(A[r - 1, col])
                    g_val = float(A[r, col])
                    if g_val == 0.0:
                        break
                    c, s = _givens(f_val, g_val)
                    i, k = r - 1, r
                    nrot += 1
                    # Window: all columns where rows (i, k) may be nonzero.
                    lo = max(col, 0)
                    hi = min(k + cur + 1, n)
                    _rot_rows(A, i, k, c, s, lo, hi, scratch)
                    _rot_cols(A, i, k, c, s, lo, hi, scratch)
                    if q is not None:
                        _rot_cols(q, i, k, c, s, 0, n, scratch)
                    # The rotation spawned one fill element at (r + cur, r - 1)
                    # (both triangles); chase it: it is the next entry to kill,
                    # in column r - 1, `cur` rows below the one just zeroed.
                    A[k, col] = 0.0
                    A[col, k] = 0.0
                    col = r - 1
                    r = r + cur
            sweep.count("rotations", nrot)
    return A, q
