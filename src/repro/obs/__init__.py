"""repro.obs — telemetry: phase spans, GEMM events, manifests, reports.

The observability layer of the reproduction (the paper's performance
narrative, made measurable between PRs):

- :mod:`repro.obs.spans` — ``span("sbr.panel")`` context managers with
  wall-clock timing, nesting, and counters; a process-wide collector
  that is a no-op when disabled.
- :mod:`repro.obs.manifest` — JSONL run manifests (spans, GEMM
  aggregates, precision policy, matrix metadata, accuracy probes).
- :mod:`repro.obs.report` — per-phase breakdown tables and phase-level
  regression comparison between two manifests.
- :mod:`repro.obs.record` — one-call instrumented ``syevd_2stage``
  runs (used by the CLI and CI smoke test).
- :mod:`repro.obs.analytics` — the interpretation layer: model-vs-
  measured attribution against the Table-1 rate model, Chrome-trace and
  flamegraph exporters, the continuous-benchmark store, and the
  statistical regression gate.
- :mod:`repro.obs.live` — in-flight monitoring: thread-safe metrics
  registry (counters/gauges/quantile sketches), progress + ETA from the
  flop model, background reporter (Prometheus / JSONL / TTY sinks),
  heartbeat health file, and alert rules.

CLI::

    python -m repro.obs run --n 256            # instrumented run → runs/
    python -m repro.obs run --n 256 --live runs/live   # + live monitoring
    python -m repro.obs report runs/X.jsonl    # per-phase breakdown
    python -m repro.obs report --compare A B   # phase delta + regressions
    python -m repro.obs list                   # manifests under runs/
    python -m repro.obs live runs/live         # render live metrics dir
    python -m repro.obs attribution runs/X.jsonl   # model-vs-measured
    python -m repro.obs export --chrome runs/X.jsonl -o trace.json
    python -m repro.obs bench --suite smoke    # pinned suite → BENCH_smoke.json
    python -m repro.obs regress BASE CAND      # statistical gate (exit 2)

Typical library use::

    from repro import obs, syevd_2stage
    with obs.collect() as session:
        res = syevd_2stage(a, b=16, record_trace=True)
    path = obs.write_manifest(session, trace=res.engine.trace)
    print(obs.render_report(path))

This package deliberately imports only the standard library at module
scope (numeric imports are deferred inside :mod:`repro.obs.record`), so
the GEMM engines and kernels can hook into it without import cycles.
"""

from .tracing import (
    TraceContext,
    check_trace_continuity,
    lifecycle_span,
    load_serve_manifest,
    render_trace_summary,
)
from .spans import (
    Collector,
    GemmEvent,
    Span,
    active_collector,
    capture_context,
    collect,
    counter,
    gemm_event,
    is_enabled,
    now,
    span,
    span_context,
    wrap_context,
)
from .live import (
    AlertRule,
    LiveConfig,
    LiveSession,
    MetricsRegistry,
    NoProgressWatchdog,
    ProgressEstimator,
    QuantileSketch,
    Reporter,
    phase_plan,
    resolve_live,
    use_registry,
)
from .manifest import (
    MIN_SCHEMA_VERSION,
    SCHEMA_VERSION,
    RunManifest,
    load_manifest,
    write_manifest,
)
from .report import compare_phases, render_compare, render_report
from .record import RecordedRun, evd_accuracy_probes, record_syevd
from .analytics import (
    AttributionReport,
    BenchScenario,
    attribute_manifest,
    compare_sessions,
    has_regressions,
    load_session,
    render_attribution,
    render_regression,
    run_suite,
    serve_trace_to_chrome,
    to_chrome_trace,
    to_collapsed_stacks,
    write_session,
)

__all__ = [
    "Span",
    "GemmEvent",
    "Collector",
    "collect",
    "span",
    "counter",
    "gemm_event",
    "is_enabled",
    "active_collector",
    "now",
    "capture_context",
    "span_context",
    "wrap_context",
    "TraceContext",
    "lifecycle_span",
    "load_serve_manifest",
    "check_trace_continuity",
    "render_trace_summary",
    "MetricsRegistry",
    "QuantileSketch",
    "ProgressEstimator",
    "phase_plan",
    "Reporter",
    "AlertRule",
    "NoProgressWatchdog",
    "LiveConfig",
    "LiveSession",
    "resolve_live",
    "use_registry",
    "SCHEMA_VERSION",
    "MIN_SCHEMA_VERSION",
    "RunManifest",
    "write_manifest",
    "load_manifest",
    "render_report",
    "render_compare",
    "compare_phases",
    "RecordedRun",
    "record_syevd",
    "evd_accuracy_probes",
    "AttributionReport",
    "attribute_manifest",
    "render_attribution",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "serve_trace_to_chrome",
    "BenchScenario",
    "run_suite",
    "write_session",
    "load_session",
    "compare_sessions",
    "has_regressions",
    "render_regression",
]
