"""repro.obs — telemetry: phase spans, GEMM events, manifests, reports.

The observability layer of the reproduction (the paper's performance
narrative, made measurable between PRs):

- :mod:`repro.obs.spans` — ``span("sbr.panel")`` context managers with
  wall-clock timing, nesting, and counters; a process-wide collector
  that is a no-op when disabled.
- :mod:`repro.obs.manifest` — JSONL run manifests (spans, GEMM
  aggregates, precision policy, matrix metadata, accuracy probes).
- :mod:`repro.obs.report` — per-phase breakdown tables and phase-level
  regression comparison between two manifests.
- :mod:`repro.obs.record` — one-call instrumented ``syevd_2stage``
  runs (used by the CLI and CI smoke test).

CLI::

    python -m repro.obs run --n 256            # instrumented run → runs/
    python -m repro.obs report runs/X.jsonl    # per-phase breakdown
    python -m repro.obs report --compare A B   # phase delta + regressions
    python -m repro.obs list                   # manifests under runs/

Typical library use::

    from repro import obs, syevd_2stage
    with obs.collect() as session:
        res = syevd_2stage(a, b=16, record_trace=True)
    path = obs.write_manifest(session, trace=res.engine.trace)
    print(obs.render_report(path))

This package deliberately imports only the standard library at module
scope (numeric imports are deferred inside :mod:`repro.obs.record`), so
the GEMM engines and kernels can hook into it without import cycles.
"""

from .spans import (
    Collector,
    GemmEvent,
    Span,
    active_collector,
    collect,
    counter,
    gemm_event,
    is_enabled,
    span,
)
from .manifest import SCHEMA_VERSION, RunManifest, load_manifest, write_manifest
from .report import compare_phases, render_compare, render_report
from .record import RecordedRun, evd_accuracy_probes, record_syevd

__all__ = [
    "Span",
    "GemmEvent",
    "Collector",
    "collect",
    "span",
    "counter",
    "gemm_event",
    "is_enabled",
    "active_collector",
    "SCHEMA_VERSION",
    "RunManifest",
    "write_manifest",
    "load_manifest",
    "render_report",
    "render_compare",
    "compare_phases",
    "RecordedRun",
    "record_syevd",
    "evd_accuracy_probes",
]
