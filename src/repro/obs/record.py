"""One-call instrumented runs: ``syevd_2stage`` → manifest on disk.

This is the glue the report CLI and CI smoke test use: run the two-stage
eigensolver under an active collector, sample accuracy probes at the
stage boundaries (:mod:`repro.metrics.accuracy`), and persist everything
as a JSONL manifest.  The numeric imports are deferred so that
``repro.obs`` itself stays dependency-free.
"""

from __future__ import annotations

from dataclasses import dataclass

from .manifest import write_manifest
from .spans import Collector, collect

__all__ = ["RecordedRun", "evd_accuracy_probes", "record_syevd"]


@dataclass
class RecordedRun:
    """Outcome of :func:`record_syevd`."""

    path: str            #: manifest location on disk
    result: object       #: the :class:`repro.eig.driver.EvdResult`
    collector: Collector #: the telemetry session (spans + GEMM events)


def evd_accuracy_probes(a, result, *, reference=True) -> dict:
    """Stage-boundary accuracy probes of one EVD run.

    Parameters
    ----------
    a : array_like, (n, n)
        The original symmetric matrix.
    result : EvdResult
        Output of ``syevd_2stage`` (or compatible).
    reference : bool
        Also compute the eigenvalue error against a float64
        ``numpy.linalg.eigvalsh`` reference spectrum (O(n^3) extra work).

    Returns
    -------
    dict
        ``sbr_backward_error`` / ``sbr_orthogonality`` (stage-1 boundary,
        when the run kept ``Q``), ``tridiag_backward_error`` (stage-2
        boundary), ``eigenvalue_error`` (final, when ``reference``).
    """
    import numpy as np

    from ..metrics.accuracy import (
        backward_error,
        eigenvalue_error,
        orthogonality_error,
    )

    probes: dict = {}
    a = np.asarray(a, dtype=np.float64)
    sbr = getattr(result, "sbr", None)
    if sbr is not None and getattr(sbr, "q", None) is not None:
        probes["sbr_backward_error"] = backward_error(a, sbr.q, sbr.band)
        probes["sbr_orthogonality"] = orthogonality_error(sbr.q)
        d, e = result.tridiagonal
        t = np.diag(np.asarray(d, dtype=np.float64))
        if len(e):
            t += np.diag(np.asarray(e, dtype=np.float64), 1)
            t += np.diag(np.asarray(e, dtype=np.float64), -1)
        # Full two-stage transform Q1 Q2 is not stored on the result;
        # probe the stage-2 boundary through the band matrix instead.
        probes["tridiag_eig_drift"] = eigenvalue_error(
            np.linalg.eigvalsh(np.asarray(sbr.band, dtype=np.float64)),
            np.linalg.eigvalsh(t),
        )
    if reference:
        probes["eigenvalue_error"] = eigenvalue_error(
            np.linalg.eigvalsh(a), result.eigenvalues
        )
    return probes


def record_syevd(
    a=None,
    *,
    n: int = 256,
    b: int = 16,
    nb: int | None = None,
    method: str = "wy",
    precision: str = "fp32",
    want_vectors: bool = True,
    tridiag_solver: str = "dc",
    bulge_variant: str = "givens",
    distribution: str = "geo",
    cond: float = 1e3,
    seed: int = 0,
    probes: bool = True,
    label: str | None = None,
    path: str | None = None,
    run_dir: str = "runs",
    events: str = "full",
    on_breakdown: "str | None" = "escalate",
    faults=None,
    abft: "str | None" = None,
    checkpoint=None,
    live=None,
    trace=None,
) -> RecordedRun:
    """Run an instrumented ``syevd_2stage`` and write its manifest.

    When ``a`` is omitted, a test matrix is generated with
    :func:`repro.matrices.generate_symmetric` (``n``, ``distribution``,
    ``cond``, ``seed``).  The stage-1 GEMM stream is always recorded and
    embedded in the manifest.  ``on_breakdown`` and ``faults`` (a
    :class:`repro.resilience.FaultInjector`) pass through to the driver;
    the run's resilience report lands in the manifest as a
    ``"resilience"`` line — this is how fault-injection campaigns are
    archived and diffed.  ``abft`` (``"off"``/``"detect"``/``"correct"``
    or an :class:`repro.resilience.AbftPolicy`) turns on online GEMM
    checksum verification; the run's ABFT report is archived as an
    ``"abft"`` manifest line.  ``checkpoint`` (a run-directory string or a
    :class:`repro.ckpt.CheckpointConfig`) likewise passes through; the
    run's :class:`~repro.ckpt.CheckpointReport` is archived as a
    ``"checkpoint"`` manifest line, and the driver's workspace-arena
    allocation counters as an ``"alloc"`` line.  ``live`` (``True``, an
    output directory, or a :class:`repro.obs.live.LiveConfig`) turns on
    the live monitoring layer for the run; the final registry dump is
    archived as the manifest's ``"metrics"`` line.  ``trace`` (a
    :class:`repro.obs.tracing.TraceContext` or its dict form) threads a
    request-scoped causal context through the driver and onto the
    manifest's meta line.

    Returns
    -------
    RecordedRun
        Manifest path, the solver result, and the collector.
    """
    import numpy as np

    from ..eig.driver import syevd_2stage
    from ..matrices import generate_symmetric

    if a is None:
        a, _ = generate_symmetric(
            n, distribution=distribution, cond=cond,
            rng=np.random.default_rng(seed),
        )
        matrix_meta = {"n": n, "distribution": distribution, "cond": cond, "seed": seed}
    else:
        a = np.asarray(a)
        n = a.shape[0]
        matrix_meta = {"n": n, "distribution": "user", "cond": None, "seed": None}
    if nb is None:
        nb = 4 * b

    with collect() as session:
        result = syevd_2stage(
            a, b=b, nb=nb, method=method, precision=precision,
            want_vectors=want_vectors, tridiag_solver=tridiag_solver,
            bulge_variant=bulge_variant,
            record_trace=True, on_breakdown=on_breakdown, faults=faults,
            abft=abft, checkpoint=checkpoint, live=live, trace=trace,
        )

    probe_values = evd_accuracy_probes(a, result) if probes else None
    request_trace = trace
    trace = result.engine.trace if result.engine is not None else None
    report = result.resilience_report
    out_path = write_manifest(
        session,
        path,
        run_dir=run_dir,
        label=label or f"syevd-{method}-{precision}-n{n}",
        precision=precision,
        matrix=matrix_meta,
        config={
            "b": b, "nb": nb, "method": method,
            "want_vectors": want_vectors, "tridiag_solver": tridiag_solver,
            "bulge_variant": bulge_variant,
            "on_breakdown": on_breakdown,
            "abft": getattr(abft, "mode", abft) or "off",
        },
        trace=trace,
        accuracy=probe_values,
        resilience=report.to_dict() if report is not None else None,
        checkpoint=(
            result.checkpoint_report.to_dict()
            if getattr(result, "checkpoint_report", None) is not None
            else None
        ),
        alloc=(
            result.workspace.stats()
            if getattr(result, "workspace", None) is not None
            else None
        ),
        metrics=getattr(result, "metrics", None),
        abft=(
            result.abft_report.to_dict()
            if getattr(result, "abft_report", None) is not None
            else None
        ),
        trace_context=(
            request_trace.to_dict() if hasattr(request_trace, "to_dict")
            else dict(request_trace) if request_trace else None
        ),
        events=events,
    )
    return RecordedRun(path=out_path, result=result, collector=session)
