"""Run manifests: JSONL persistence of one telemetry session.

A *manifest* is the durable artifact of one instrumented run — the span
timeline, GEMM aggregates (and optionally the per-call event stream and
the embedded :class:`~repro.gemm.trace.GemmTrace`), the precision policy,
matrix metadata, and accuracy probes — written as one JSON object per
line so files stream, append, and diff cleanly across PRs.

Line kinds (each line carries a ``"kind"`` discriminator):

==============  ========================================================
``meta``        schema version, creation time, label, precision policy,
                matrix metadata, free-form config, total wall seconds
``span``        one finished :class:`~repro.obs.spans.Span`
``gemm``        one timed GEMM call (optional; ``events="full"``)
``gemm_summary`` aggregate calls/flops/seconds, by tag and by engine
``trace``       embedded ``GemmTrace.to_dict()`` (optional)
``accuracy``    accuracy probes sampled at stage boundaries (optional)
``resilience``  resilience-report summary: detections, escalations,
                injected faults, final precisions (optional)
``checkpoint``  checkpoint-report summary: run directory, saves, bytes,
                resume provenance (optional)
``alloc``       workspace-arena allocation accounting: takes, hits,
                misses, bytes allocated, per-tag breakdown (optional)
``metrics``     final live-metrics registry dump: counters, gauges,
                quantile-sketch histogram summaries (GEMM latency
                p50/p90/p99), fired alerts, worker liveness (optional)
``abft``        online-ABFT report: mode, launches verified/probed, SDC
                events detected/corrected/recomputed, verification
                seconds by phase (optional)
==============  ========================================================

Schema version: ``SCHEMA_VERSION`` (bump on incompatible change; the
loader rejects newer versions and anything older than
``MIN_SCHEMA_VERSION`` with a clear error instead of failing deep inside
field access).  History:

- **1** — PR 1 format (spans, gemm, gemm_summary, trace, accuracy) plus
  the PR 2 ``resilience`` line.
- **2** — ``gemm`` lines gain an optional ``start`` timestamp (relative
  to the collector epoch) so trace exporters can place events on the
  span timeline.  Backward compatible: v1 manifests still load, their
  events just carry no position.  The optional ``checkpoint`` line (PR 4),
  the optional ``alloc`` line (PR 5, workspace-arena counters), the
  optional ``metrics`` line (PR 6, final live-registry dump), and the
  optional ``abft`` line (PR 9, online-ABFT report) ride within this
  version: older loaders skip unknown kinds.

Manifests are written crash-safely: the whole JSONL body is serialized
in memory and committed with one atomic rename
(:func:`repro.ioutils.atomic_write_text`), so a reader never observes a
truncated manifest.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field

from ..ioutils import atomic_write_text
from .spans import Collector, Span

__all__ = [
    "SCHEMA_VERSION",
    "MIN_SCHEMA_VERSION",
    "RunManifest",
    "write_manifest",
    "load_manifest",
]

SCHEMA_VERSION = 2

#: Oldest manifest schema the loader still understands.
MIN_SCHEMA_VERSION = 1

#: Default directory for manifests (relative to the working directory).
DEFAULT_RUN_DIR = "runs"


@dataclass
class RunManifest:
    """In-memory view of one manifest (as written or as loaded)."""

    meta: dict = field(default_factory=dict)
    spans: list[Span] = field(default_factory=list)
    gemm_events: list[dict] = field(default_factory=list)
    gemm_summary: dict = field(default_factory=dict)
    trace: dict | None = None
    accuracy: dict | None = None
    resilience: dict | None = None
    checkpoint: dict | None = None
    alloc: dict | None = None
    metrics: dict | None = None
    abft: dict | None = None
    path: str | None = None

    # -- derived queries ---------------------------------------------------
    @property
    def label(self) -> str:
        return self.meta.get("label", "")

    @property
    def total_wall(self) -> float:
        """Total runtime: the root spans' wall-clock sum.

        Falls back to the session wall time recorded at write time when
        the run produced no root span at all.
        """
        roots = [s for s in self.spans if s.depth == 0]
        if roots:
            return sum(s.duration for s in roots)
        return float(self.meta.get("wall", 0.0))

    def time_by_path(self) -> dict[str, float]:
        """Total duration per span path."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.path] = out.get(s.path, 0.0) + s.duration
        return out

    def phase_paths(self) -> list[str]:
        """The paths that constitute the run's *phases*, in first-seen order.

        With a single root span the phases are its direct children
        (depth 1); otherwise (e.g. an experiments session with one root
        span per experiment) the roots themselves are the phases.
        """
        roots = {s.path for s in self.spans if s.depth == 0}
        depth = 1 if len(roots) == 1 and any(s.depth == 1 for s in self.spans) else 0
        seen: list[str] = []
        for s in self.spans:
            if s.depth == depth and s.path not in seen:
                seen.append(s.path)
        return seen

    def phase_times(self) -> dict[str, float]:
        """Total duration per phase path (see :meth:`phase_paths`)."""
        times = self.time_by_path()
        return {p: times[p] for p in self.phase_paths()}

    def coverage(self) -> float:
        """Fraction of total runtime accounted for by the phase spans."""
        total = self.total_wall
        if total <= 0.0:
            return 0.0
        return min(1.0, sum(self.phase_times().values()) / total)

    def gemm_by_phase(self) -> dict[str, dict]:
        """Aggregate GEMM calls/flops/seconds under each phase path.

        Requires the per-call event stream (``events="full"`` at write
        time); returns empty aggregates otherwise.
        """
        phases = self.phase_paths()
        out = {p: {"calls": 0, "flops": 0, "seconds": 0.0} for p in phases}
        for ev in self.gemm_events:
            path = ev.get("span_path", "")
            for p in phases:
                if path == p or path.startswith(p + "/"):
                    slot = out[p]
                    # A batched event is `batch` products behind one
                    # launch; aggregates count products so batched and
                    # looped code paths compare like-for-like.
                    slot["calls"] += ev.get("batch", 1)
                    slot["flops"] += 2 * ev["m"] * ev["n"] * ev["k"] * ev.get("batch", 1)
                    slot["seconds"] += ev["seconds"]
                    break
        return out


def _default_path(run_dir: str, label: str) -> str:
    stamp = time.strftime("%Y%m%d-%H%M%S")
    name = f"{label or 'run'}-{stamp}-{os.getpid()}.jsonl"
    return os.path.join(run_dir, name)


def write_manifest(
    collector: Collector,
    path: str | None = None,
    *,
    run_dir: str = DEFAULT_RUN_DIR,
    label: str = "run",
    precision: str | None = None,
    matrix: dict | None = None,
    config: dict | None = None,
    trace=None,
    accuracy: dict | None = None,
    resilience: dict | None = None,
    checkpoint: dict | None = None,
    alloc: dict | None = None,
    metrics: dict | None = None,
    abft: dict | None = None,
    trace_context: dict | None = None,
    events: str = "full",
) -> str:
    """Serialize one telemetry session to a JSONL manifest.

    Parameters
    ----------
    collector : Collector
        The finished (or finishing) telemetry session.
    path : str, optional
        Output file; default ``<run_dir>/<label>-<timestamp>-<pid>.jsonl``.
    run_dir : str
        Directory for the default path (created if missing).
    label : str
        Human tag stored in the meta line and used in the filename.
    precision : str, optional
        Precision-policy name of the run (e.g. ``"fp16_tc"``).
    matrix : dict, optional
        Matrix metadata (``n``, distribution, condition number, ...).
    config : dict, optional
        Free-form run configuration (block sizes, method, ...).
    trace : GemmTrace or dict, optional
        GEMM shape stream to embed (anything with ``to_dict()`` or a
        plain dict).
    accuracy : dict, optional
        Accuracy probes sampled at stage boundaries.
    resilience : dict, optional
        Resilience-report summary (``ResilienceReport.to_dict()``):
        detections, escalations, injected faults, final precisions.
    checkpoint : dict, optional
        Checkpoint-report summary (``CheckpointReport.to_dict()``):
        run directory, saves, bytes written, resume provenance.
    alloc : dict, optional
        Workspace-arena allocation accounting
        (``Workspace.stats()``): takes, hits, misses, bytes allocated,
        per-tag breakdown.
    metrics : dict, optional
        Final live-metrics registry dump
        (``MetricsRegistry.dump()``): counters, gauges, histogram
        quantile summaries, fired alerts, worker liveness.
    abft : dict, optional
        Online-ABFT report (``AbftReport.to_dict()``): mode, launches
        verified/probed, SDC events detected/corrected/recomputed,
        verification seconds by phase.
    trace_context : dict, optional
        Serialized :class:`repro.obs.tracing.TraceContext` of the
        request this run belongs to, stored on the meta line (additive
        in schema v2) — the join key between run manifests and the
        serving layer's trace timelines.
    events : {"full", "none"}
        Whether to persist the per-call GEMM event stream.

    Returns
    -------
    str
        The path written.
    """
    if events not in ("full", "none"):
        raise ValueError(f"events must be 'full' or 'none', got {events!r}")
    if path is None:
        os.makedirs(run_dir, exist_ok=True)
        path = _default_path(run_dir, label)
    else:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)

    meta = {
        "kind": "meta",
        "schema": SCHEMA_VERSION,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "label": label,
        "wall": collector.wall,
    }
    if precision is not None:
        meta["precision"] = str(precision)
    if matrix:
        meta["matrix"] = dict(matrix)
    if config:
        meta["config"] = dict(config)
    if trace_context:
        meta["trace"] = dict(trace_context)

    def dump(obj: dict) -> str:
        return json.dumps(obj, separators=(",", ":"), sort_keys=False)

    # Serialize the full JSONL body in memory, then commit with a single
    # atomic rename: a crash mid-write can never leave a torn manifest.
    lines = [dump(meta)]
    for s in collector.spans:
        lines.append(dump({"kind": "span", **s.to_dict()}))
    if events == "full":
        for ev in collector.gemm_events:
            lines.append(dump({"kind": "gemm", **ev.to_dict()}))
    lines.append(dump({"kind": "gemm_summary", **collector.gemm_summary()}))
    if trace is not None:
        tr = trace.to_dict() if hasattr(trace, "to_dict") else dict(trace)
        lines.append(dump({"kind": "trace", **tr}))
    if accuracy is not None:
        lines.append(dump({"kind": "accuracy", "probes": dict(accuracy)}))
    if resilience is not None:
        lines.append(dump({"kind": "resilience", **dict(resilience)}))
    if checkpoint is not None:
        lines.append(dump({"kind": "checkpoint", **dict(checkpoint)}))
    if alloc is not None:
        lines.append(dump({"kind": "alloc", **dict(alloc)}))
    if metrics is not None:
        lines.append(dump({"kind": "metrics", **dict(metrics)}))
    if abft is not None:
        lines.append(dump({"kind": "abft", **dict(abft)}))
    atomic_write_text(path, "\n".join(lines) + "\n")
    return path


def load_manifest(path: str) -> RunManifest:
    """Parse a JSONL manifest back into a :class:`RunManifest`."""
    man = RunManifest(path=path)
    with open(path) as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid manifest line: {exc}") from None
            kind = obj.pop("kind", None)
            if kind == "meta":
                schema = obj.get("schema")
                if schema is None:
                    raise ValueError(
                        f"{path}: manifest has no schema-version field — written "
                        f"by a pre-release telemetry build; re-record it with "
                        f"this version (schema {SCHEMA_VERSION})"
                    )
                if schema > SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: manifest schema {schema} is newer than "
                        f"supported version {SCHEMA_VERSION}"
                    )
                if schema < MIN_SCHEMA_VERSION:
                    raise ValueError(
                        f"{path}: manifest schema {schema} is older than the "
                        f"oldest supported version {MIN_SCHEMA_VERSION}; "
                        f"re-record the run to upgrade it"
                    )
                man.meta = obj
            elif kind == "span":
                try:
                    man.spans.append(Span.from_dict(obj))
                except KeyError as exc:
                    raise ValueError(
                        f"{path}:{lineno}: span line is missing field {exc} "
                        f"(incompatible or truncated manifest)"
                    ) from None
            elif kind == "gemm":
                man.gemm_events.append(obj)
            elif kind == "gemm_summary":
                man.gemm_summary = obj
            elif kind == "trace":
                man.trace = obj
            elif kind == "accuracy":
                man.accuracy = obj.get("probes", obj)
            elif kind == "resilience":
                man.resilience = obj
            elif kind == "checkpoint":
                man.checkpoint = obj
            elif kind == "alloc":
                man.alloc = obj
            elif kind == "metrics":
                man.metrics = obj
            elif kind == "abft":
                man.abft = obj
            # Unknown kinds are skipped: forward compatibility within a major.
    return man
