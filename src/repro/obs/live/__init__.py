"""Live metrics, progress/ETA, and health monitoring (`repro.obs.live`).

In-flight counterpart of the post-hoc span/manifest pipeline: a
thread-safe :class:`~repro.obs.live.registry.MetricsRegistry` aggregates
counters, gauges, and quantile-sketch histograms while the solver runs;
a :class:`~repro.obs.live.progress.ProgressEstimator` turns the flop
model plus measured throughput into completed-fraction and ETA; a
background :class:`~repro.obs.live.reporter.Reporter` publishes
snapshots to Prometheus/JSONL/TTY sinks and a heartbeat health file,
and evaluates alert rules (thresholds + no-progress watchdog).

Zero-overhead-off: with no registry installed every hook is a module
read plus a ``None`` check — the same contract as the span collector.

Typical use is through the driver knob::

    from repro.eig import syevd_2stage
    w, v, res = syevd_2stage(a, live="runs/live")     # full stack
    print(res.metrics["histograms"])                  # final dump

or registry-only (no reporter thread), e.g. inside the bench store::

    from repro.obs.live import MetricsRegistry, use_registry
    reg = MetricsRegistry()
    with use_registry(reg):
        run()
    p99 = reg.histogram_merged("repro_gemm_latency_seconds").quantile(0.99)
"""

from .alerts import AlertRule, NoProgressWatchdog, evaluate_alerts
from .health import Heartbeat, read_heartbeat
from .progress import ProgressEstimator, phase_plan
from .registry import (
    MetricsRegistry,
    active_registry,
    install,
    is_enabled,
    uninstall,
    use_registry,
    with_registry,
)
from .reporter import Reporter
from .session import (
    DEFAULT_LIVE_DIR,
    LiveConfig,
    LiveSession,
    render_live_dir,
    resolve_live,
)
from .sinks import (
    JsonlSink,
    PrometheusSink,
    TtySink,
    parse_prometheus,
    render_prometheus,
    validate_metrics_stream,
)
from .sketch import QuantileSketch

__all__ = [
    "MetricsRegistry",
    "QuantileSketch",
    "ProgressEstimator",
    "phase_plan",
    "Reporter",
    "Heartbeat",
    "read_heartbeat",
    "AlertRule",
    "NoProgressWatchdog",
    "evaluate_alerts",
    "PrometheusSink",
    "JsonlSink",
    "TtySink",
    "render_prometheus",
    "parse_prometheus",
    "validate_metrics_stream",
    "LiveConfig",
    "LiveSession",
    "resolve_live",
    "render_live_dir",
    "DEFAULT_LIVE_DIR",
    "active_registry",
    "is_enabled",
    "install",
    "uninstall",
    "use_registry",
    "with_registry",
]
