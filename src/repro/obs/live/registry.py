"""Thread-safe live metrics registry with a zero-overhead-off hot path.

The registry is the in-flight counterpart of :mod:`repro.obs.spans`:
where the collector records *events for post-hoc analysis*, the registry
maintains *current aggregates* — counters, gauges, and quantile-sketch
histograms — that a background :class:`~repro.obs.live.reporter.Reporter`
can snapshot while the solver is still running.

Activation mirrors the PR-1 collector contract exactly: a module-level
``_active`` global, and every hook point (engine GEMM wrapper, workspace
arena, resilience detectors, checkpoint driver, budget iteration checks)
pays only a module-attribute read plus a ``None`` check when no registry
is installed.  The module-level helpers (:func:`inc`, :func:`observe`,
:func:`set_gauge`, ...) encapsulate that fast path so instrumented code
never branches on its own.

Metric naming follows Prometheus conventions (``repro_*_total`` for
counters, base units in the name, label sets as keyword arguments), so
the text-exposition sink is a direct transcription of registry state.
"""

from __future__ import annotations

import threading
import time

from .sketch import QuantileSketch

__all__ = [
    "MetricsRegistry",
    "active_registry",
    "is_enabled",
    "install",
    "uninstall",
    "use_registry",
    "with_registry",
    "inc",
    "set_gauge",
    "observe",
    "record_gemm",
    "ws_take",
    "touch_worker",
]

# Label sets are stored as sorted (key, value) tuples so the same labels
# in any kwarg order hit the same series.
LabelKey = tuple  # (name, ((k, v), ...))


def _key(name: str, labels: dict) -> LabelKey:
    if not labels:
        return (name, ())
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Counters, gauges, and quantile histograms behind one lock.

    Parameters
    ----------
    clock : callable, optional
        Monotonic time source (seconds).  Injectable for deterministic
        tests, same convention as ``Collector(clock=...)``.  Defaults to
        :func:`time.perf_counter`.
    alpha : float
        Relative accuracy of the quantile sketches.
    """

    def __init__(self, clock=None, alpha: float = 0.01) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.alpha = alpha
        self.epoch = self.clock()
        # RLock: the progress estimator updates gauges from inside
        # record_gemm / span callbacks, which already hold the lock.
        self._lock = threading.RLock()
        self._counters: dict[LabelKey, float] = {}
        self._gauges: dict[LabelKey, float] = {}
        self._hists: dict[LabelKey, QuantileSketch] = {}
        self.alerts: list[dict] = []
        self.estimator = None  # ProgressEstimator, attached by the session
        # Worker liveness: thread name -> last activity time (registry
        # clock).  Fed by every hook, so look-ahead / TSQR pool threads
        # show up as soon as they do work.
        self._workers: dict[str, float] = {}
        # Current phase (leaf name of the innermost depth<=1 span) and
        # the last time any forward progress was observed — the
        # no-progress watchdog reads these.
        self._phase = ""
        self._phase_path = ""
        self.last_progress = self.epoch
        # Registry-only spans (no collector active) keep a per-thread
        # stack here so phase tracking works without a Collector.
        self._tls = threading.local()

    # ------------------------------------------------------------------
    # primitive instruments
    # ------------------------------------------------------------------

    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0.0) + value

    def set(self, name: str, value: float, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            self._gauges[key] = float(value)

    def observe(self, name: str, value: float, count: int = 1, **labels) -> None:
        key = _key(name, labels)
        with self._lock:
            sk = self._hists.get(key)
            if sk is None:
                sk = self._hists[key] = QuantileSketch(alpha=self.alpha)
            sk.add(value, count=count)

    def counter_value(self, name: str, **labels) -> float:
        with self._lock:
            return self._counters.get(_key(name, labels), 0.0)

    def counter_total(self, name: str) -> float:
        """Sum of a counter across all label sets."""
        with self._lock:
            return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge_value(self, name: str, **labels):
        with self._lock:
            return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels) -> "QuantileSketch | None":
        with self._lock:
            return self._hists.get(_key(name, labels))

    def histogram_merged(self, name: str) -> QuantileSketch:
        """Merge every label set of histogram ``name`` into one sketch."""
        out = QuantileSketch(alpha=self.alpha)
        with self._lock:
            for (n, _), sk in self._hists.items():
                if n == name:
                    out.merge(sk)
        return out

    # ------------------------------------------------------------------
    # domain hooks
    # ------------------------------------------------------------------

    def record_gemm(self, m: int, n: int, k: int, *, tag: str = "",
                    engine: str = "", op: str = "gemm", batch: int = 1,
                    seconds: float = 0.0) -> None:
        """One engine-level GEMM launch (a batched launch of ``batch``
        products counts as ``batch`` samples at per-product latency —
        the batch-aware aggregation contract)."""
        batch = max(int(batch), 1)
        flops = 2.0 * m * n * k * batch
        per_product = seconds / batch
        now = self.clock()
        with self._lock:
            self.inc("repro_gemm_calls_total", 1.0, op=op)
            self.inc("repro_gemm_products_total", float(batch), op=op)
            self.inc("repro_gemm_flops_total", flops)
            self.inc("repro_gemm_seconds_total", seconds)
            self.observe("repro_gemm_latency_seconds", per_product,
                         count=batch, op=op)
            self.last_progress = now
            self._workers[threading.current_thread().name] = now
            est = self.estimator
            # Estimator state mutates under the registry RLock so
            # concurrent recorder threads cannot race `done`; its gauge
            # writes re-enter the same lock harmlessly.
            if est is not None:
                est.on_work(self._phase, flops, now)

    def ws_take(self, tag: str, hit: bool, nbytes: int) -> None:
        """Workspace arena request (hit = served from pool)."""
        result = "hit" if hit else "miss"
        with self._lock:
            self.inc("repro_ws_takes_total", 1.0, result=result)
            if not hit:
                self.inc("repro_ws_bytes_allocated_total", float(nbytes))

    def touch_worker(self, name: "str | None" = None) -> None:
        if name is None:
            name = threading.current_thread().name
        with self._lock:
            self._workers[name] = self.clock()

    def mark_progress(self) -> None:
        with self._lock:
            self.last_progress = self.clock()

    # ------------------------------------------------------------------
    # span integration (phase tracking)
    # ------------------------------------------------------------------

    def span_started(self, path: str, depth: int) -> None:
        """Called by the span layer on entry.  Depth <= 1 spans define
        the *current phase* (leaf name of the path) for progress
        attribution and the heartbeat."""
        now = self.clock()
        leaf = path.rsplit("/", 1)[-1]
        with self._lock:
            self._workers[threading.current_thread().name] = now
            if depth <= 1:
                self._phase = leaf
                self._phase_path = path
                est = self.estimator
                if est is not None:
                    est.on_phase_start(leaf, now)

    def span_finished(self, path: str, depth: int, duration: float) -> None:
        now = self.clock()
        leaf = path.rsplit("/", 1)[-1]
        with self._lock:
            if depth <= 1:
                self.observe("repro_phase_seconds", duration, phase=leaf)
                self.last_progress = now
                if self._phase == leaf:
                    parent = path.rsplit("/", 1)[0] if "/" in path else ""
                    self._phase = parent.rsplit("/", 1)[-1]
                    self._phase_path = parent
                est = self.estimator
                if est is not None:
                    est.on_phase_end(leaf, now)

    # Registry-only spans: a minimal per-thread stack so `obs.span()`
    # still tracks phases when no Collector is active.
    def _stack(self) -> list:
        st = getattr(self._tls, "stack", None)
        if st is None:
            st = self._tls.stack = []
        return st

    @property
    def phase(self) -> str:
        return self._phase

    @property
    def phase_path(self) -> str:
        return self._phase_path

    # ------------------------------------------------------------------
    # snapshots
    # ------------------------------------------------------------------

    def worker_ages(self) -> dict:
        """Thread name -> seconds since last observed activity."""
        now = self.clock()
        with self._lock:
            return {name: max(now - t, 0.0) for name, t in self._workers.items()}

    def progress_age(self) -> float:
        """Seconds since the last recorded forward progress.

        The serving layer's admission controller reads this as its
        health signal: a registry whose solvers have stopped ticking is
        a wedged pool, and new work should be rejected rather than
        queued behind it.
        """
        now = self.clock()
        with self._lock:
            return max(now - self.last_progress, 0.0)

    def stalled_workers(self, max_age: float) -> list:
        """Worker threads silent for longer than ``max_age`` seconds."""
        return sorted(
            name for name, age in self.worker_ages().items() if age > max_age
        )

    def fire_alert(self, alert: dict) -> None:
        with self._lock:
            self.alerts.append(dict(alert))

    def uptime(self) -> float:
        return self.clock() - self.epoch

    def snapshot(self) -> dict:
        """Point-in-time JSON-serializable view of every series."""
        now = self.clock()
        with self._lock:
            counters = [
                {"name": n, "labels": dict(lbls), "value": v}
                for (n, lbls), v in sorted(self._counters.items())
            ]
            gauges = [
                {"name": n, "labels": dict(lbls), "value": v}
                for (n, lbls), v in sorted(self._gauges.items())
            ]
            hists = [
                {"name": n, "labels": dict(lbls), **sk.summary()}
                for (n, lbls), sk in sorted(self._hists.items())
            ]
            return {
                "uptime": now - self.epoch,
                "phase": self._phase,
                "phase_path": self._phase_path,
                "last_progress_age": max(now - self.last_progress, 0.0),
                "counters": counters,
                "gauges": gauges,
                "histograms": hists,
                "workers": {
                    name: max(now - t, 0.0) for name, t in self._workers.items()
                },
                "alerts": [dict(a) for a in self.alerts],
            }

    def dump(self) -> dict:
        """Final archive form: the manifest ``metrics`` line body."""
        snap = self.snapshot()
        snap["alpha"] = self.alpha
        return snap


# ----------------------------------------------------------------------
# module-level activation (the zero-overhead-off fast path)
# ----------------------------------------------------------------------

_active: "MetricsRegistry | None" = None
_activation_lock = threading.Lock()


def active_registry() -> "MetricsRegistry | None":
    """The installed registry, or None.  Hot paths call this and bail on
    None — one module read, no allocation."""
    return _active


def is_enabled() -> bool:
    return _active is not None


def install(reg: "MetricsRegistry | None") -> "MetricsRegistry | None":
    """Install ``reg`` as the active registry; returns the previous one
    so callers can restore it (see :class:`use_registry`)."""
    global _active
    with _activation_lock:
        prev = _active
        _active = reg
        return prev


def uninstall(prev: "MetricsRegistry | None" = None) -> None:
    """Restore ``prev`` (or clear) as the active registry."""
    global _active
    with _activation_lock:
        _active = prev


class use_registry:
    """Context manager installing a registry for a code region.

    ``use_registry(None)`` is a no-op, so call sites can forward an
    optional ``metrics=`` knob without branching::

        with use_registry(metrics):
            ...solver body...
    """

    def __init__(self, reg: "MetricsRegistry | None") -> None:
        self.registry = reg
        self._prev = None

    def __enter__(self) -> "MetricsRegistry | None":
        if self.registry is not None:
            self._prev = install(self.registry)
        return self.registry

    def __exit__(self, *exc) -> None:
        if self.registry is not None:
            uninstall(self._prev)


def with_registry(reg, fn, *args, **kwargs):
    """Run ``fn(*args, **kwargs)`` with ``reg`` installed (if not None)."""
    if reg is None:
        return fn(*args, **kwargs)
    prev = install(reg)
    try:
        return fn(*args, **kwargs)
    finally:
        uninstall(prev)


# Module-level hook helpers: each is a no-op costing one global read and
# one comparison when no registry is installed.

def inc(name: str, value: float = 1.0, **labels) -> None:
    reg = _active
    if reg is not None:
        reg.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels) -> None:
    reg = _active
    if reg is not None:
        reg.set(name, value, **labels)


def observe(name: str, value: float, count: int = 1, **labels) -> None:
    reg = _active
    if reg is not None:
        reg.observe(name, value, count=count, **labels)


def record_gemm(m, n, k, *, tag="", engine="", op="gemm", batch=1,
                seconds=0.0) -> None:
    reg = _active
    if reg is not None:
        reg.record_gemm(m, n, k, tag=tag, engine=engine, op=op,
                        batch=batch, seconds=seconds)


def ws_take(tag: str, hit: bool, nbytes: int) -> None:
    reg = _active
    if reg is not None:
        reg.ws_take(tag, hit, nbytes)


def touch_worker(name: "str | None" = None) -> None:
    reg = _active
    if reg is not None:
        reg.touch_worker(name)
