"""Progress fraction and ETA from the flop model plus measured throughput.

The two-stage EVD has a *predictable* work profile: the symbolic trace /
Table-1 closed forms (:mod:`repro.metrics.flops`) give total flops per
phase before the run starts.  The :class:`ProgressEstimator` combines
that plan with throughput measured from live GEMM events:

* within a phase, completed work is the engine-visible flops recorded so
  far (capped at the phase plan — the model is a prediction, not an
  invariant);
* a phase that ends snaps to 100% regardless of how much of its work was
  engine-visible (bulge chasing and the tridiagonal solve do most of
  their arithmetic outside the GEMM wrapper);
* ETA = remaining planned work / cumulative throughput, where throughput
  is total completed work over elapsed time since the first work event.

Cumulative (not instantaneous) throughput makes the ETA *monotone
non-increasing under a constant work rate* — the property the fake-clock
tests pin down — at the cost of slower adaptation to rate changes.  The
estimator publishes ``repro_progress_fraction{phase=...}`` and
``repro_eta_seconds`` gauges on the registry it is attached to.
"""

from __future__ import annotations

__all__ = ["ProgressEstimator", "phase_plan"]


def phase_plan(n: int, b: int = 16, nb: "int | None" = None,
               method: str = "wy", want_vectors: bool = True,
               tridiag_solver: str = "dc",
               bulge_variant: str = "givens") -> dict:
    """Predicted work units (flops) per driver phase for one EVD run.

    SBR and stage-2 bulge chasing use the analytic counts from
    :mod:`repro.metrics.flops`, summed over each algorithm's actual loop
    structure per the selected ``bulge_variant``; the later phases use
    standard operation counts (divide-and-conquer with vectors is
    ``O(n^3)``-dominated by its back-substitution GEMMs; the explicit
    back-transform is two dense ``n^3`` products).  Rough weights are
    fine: the estimator only needs relative phase sizes, and measured
    throughput does the rest.
    """
    from ...metrics import flops as _flops

    nb_eff = nb if nb is not None else max(2 * b, 32)
    if method == "zy":
        sbr = _flops.sbr_zy_flops(n, b, want_q=want_vectors)
    else:
        sbr = _flops.sbr_wy_flops(n, b, nb_eff, want_q=want_vectors)
    plan = {"sbr": float(max(sbr, 1.0))}
    plan["bulge"] = float(max(
        _flops.bulge_flops(n, b, variant=bulge_variant, want_q=want_vectors),
        1.0,
    ))
    if tridiag_solver == "dc" and want_vectors:
        tridiag = (4.0 / 3.0) * n ** 3
    elif want_vectors:
        tridiag = 3.0 * n ** 3
    else:
        tridiag = 20.0 * n * n
    plan["tridiag_solve"] = float(max(tridiag, 1.0))
    if want_vectors:
        plan["back_transform"] = float(2.0 * 2.0 * n ** 3)
    return plan


class ProgressEstimator:
    """Tracks per-phase completed work against a predicted plan.

    Parameters
    ----------
    plan : dict
        Phase name (leaf span name, e.g. ``"sbr"``) -> predicted work in
        arbitrary consistent units (flops).
    clock : callable, optional
        Only used as a fallback when callers do not pass explicit
        timestamps; the registry always passes its own clock's ``now``.
    """

    def __init__(self, plan: dict, clock=None) -> None:
        self.plan = {str(k): float(v) for k, v in plan.items()}
        self.total = sum(self.plan.values())
        self.done: dict[str, float] = {k: 0.0 for k in self.plan}
        self.clock = clock
        self.registry = None
        self._t_first: "float | None" = None
        self._t_last: "float | None" = None
        self.current: "str | None" = None

    # ------------------------------------------------------------------
    # event feed (called by MetricsRegistry under its lock)
    # ------------------------------------------------------------------

    def attach(self, registry) -> None:
        """Subscribe to a registry's GEMM/span events and publish gauges
        on it."""
        self.registry = registry
        registry.estimator = self
        self._publish()

    def on_phase_start(self, phase: str, t: float) -> None:
        if phase in self.plan:
            self.current = phase
            self._note_time(t)
            self._publish()

    def on_phase_end(self, phase: str, t: float) -> None:
        if phase in self.plan:
            self.done[phase] = self.plan[phase]
            if self.current == phase:
                self.current = None
            self._note_time(t)
            self._publish()

    def on_work(self, phase: str, amount: float, t: float) -> None:
        """Engine-visible work completed (flops).  Attributed to
        ``phase`` when it is in the plan, else to the current phase."""
        target = phase if phase in self.plan else self.current
        if target is None:
            return
        self._note_time(t)
        self.done[target] = min(self.done[target] + amount, self.plan[target])
        self._publish()

    def _note_time(self, t: float) -> None:
        if self._t_first is None:
            self._t_first = t
        self._t_last = t

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def fraction(self, phase: "str | None" = None) -> float:
        """Completed fraction of one phase, or of the whole run."""
        if phase is not None:
            planned = self.plan.get(phase, 0.0)
            return self.done.get(phase, 0.0) / planned if planned else 0.0
        return sum(self.done.values()) / self.total if self.total else 0.0

    def throughput(self) -> float:
        """Cumulative work rate (units/second); 0.0 before two events."""
        if self._t_first is None or self._t_last is None:
            return 0.0
        elapsed = self._t_last - self._t_first
        if elapsed <= 0.0:
            return 0.0
        return sum(self.done.values()) / elapsed

    def eta_seconds(self, phase: "str | None" = None) -> "float | None":
        """Estimated seconds of work remaining; None before any
        throughput signal exists."""
        rate = self.throughput()
        if rate <= 0.0:
            return None
        if phase is not None:
            remaining = self.plan.get(phase, 0.0) - self.done.get(phase, 0.0)
        else:
            remaining = self.total - sum(self.done.values())
        return max(remaining, 0.0) / rate

    def snapshot(self) -> dict:
        eta = self.eta_seconds()
        return {
            "fraction": self.fraction(),
            "eta_seconds": eta,
            "current_phase": self.current,
            "phases": {
                k: {"planned": self.plan[k], "done": self.done[k],
                    "fraction": self.fraction(k)}
                for k in self.plan
            },
        }

    # ------------------------------------------------------------------
    # gauge publication
    # ------------------------------------------------------------------

    def _publish(self) -> None:
        reg = self.registry
        if reg is None:
            return
        for k in self.plan:
            reg.set("repro_progress_fraction", self.fraction(k), phase=k)
        reg.set("repro_progress_fraction", self.fraction(), phase="total")
        eta = self.eta_seconds()
        if eta is not None:
            reg.set("repro_eta_seconds", eta, phase="total")
            if self.current is not None:
                reg.set("repro_eta_seconds", self.eta_seconds(self.current),
                        phase=self.current)
