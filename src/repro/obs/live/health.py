"""Heartbeat/health file: run liveness observable from outside the process.

A single JSON file, atomically replaced on every reporter tick, holding
everything an external supervisor needs to decide whether a long run is
alive: wall-clock update time, a monotonically increasing beat counter,
the current phase, progress fraction and ETA, the age of the last
observed forward progress, per-worker-thread liveness (look-ahead and
TSQR pool threads show up by name), and any fired alerts.

Atomic replace (:func:`repro.ioutils.atomic_write_json`) means a reader
never sees a torn file; ``fsync=False`` because a heartbeat is advisory
— losing the last beat in a power failure is fine, blocking the reporter
thread on disk flushes every tick is not.
"""

from __future__ import annotations

import os
import time

from ...ioutils import atomic_write_json

__all__ = ["Heartbeat", "read_heartbeat"]


class Heartbeat:
    """Writes the health file.  ``wall_clock`` is injectable for tests."""

    def __init__(self, path, wall_clock=None) -> None:
        self.path = os.fspath(path)
        self.wall_clock = wall_clock if wall_clock is not None else time.time
        self.beats = 0

    def beat(self, registry, estimator=None) -> dict:
        """Write one heartbeat from current registry state; returns the
        payload (handy for tests and the TTY sink)."""
        self.beats += 1
        now = registry.clock()
        payload = {
            "pid": os.getpid(),
            "updated": self.wall_clock(),
            "beats": self.beats,
            "uptime": registry.uptime(),
            "phase": registry.phase,
            "phase_path": registry.phase_path,
            "last_progress_age": max(now - registry.last_progress, 0.0),
            "workers": registry.worker_ages(),
            "alerts": [dict(a) for a in registry.alerts],
        }
        if estimator is not None:
            prog = estimator.snapshot()
            payload["progress"] = prog["fraction"]
            payload["eta_seconds"] = prog["eta_seconds"]
            payload["phases"] = prog["phases"]
        atomic_write_json(self.path, payload, fsync=False)
        return payload


def read_heartbeat(path) -> "dict | None":
    """Load a heartbeat file; None when absent or unreadable (a reader
    racing the very first beat should treat that as 'not started')."""
    import json

    try:
        with open(os.fspath(path), "r", encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None
