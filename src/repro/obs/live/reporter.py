"""Background reporter: periodic snapshot → sinks, heartbeat, alerts.

One daemon thread, one registry snapshot per tick, fanned out to every
sink plus the heartbeat file, after evaluating alert rules.  The solver
never blocks on the reporter: sinks write files, the hot path only
mutates the registry.

``tick()`` is public and synchronous so tests (and the final flush on
``stop()``) drive reporting deterministically without sleeping; the
thread is just ``tick`` on an interval behind a stop event.  Sink
exceptions are swallowed per-tick (a full disk must degrade monitoring,
not kill the solve) but remembered in ``errors`` for post-run
inspection.
"""

from __future__ import annotations

import threading

from .alerts import evaluate_alerts

__all__ = ["Reporter"]


class Reporter:
    """Periodic metrics publisher.

    Parameters
    ----------
    registry : MetricsRegistry
        Source of snapshots.
    interval : float
        Seconds between ticks of the background thread.
    sinks : sequence
        Objects with ``emit(snapshot)`` (and optional ``close()``).
    heartbeat : Heartbeat, optional
        Health file writer, beaten every tick.
    rules, watchdog :
        Alert configuration (see :mod:`repro.obs.live.alerts`).
    estimator : ProgressEstimator, optional
        Forwarded to the heartbeat for progress/ETA fields.
    """

    def __init__(self, registry, *, interval: float = 1.0, sinks=(),
                 heartbeat=None, rules=(), watchdog=None,
                 estimator=None) -> None:
        self.registry = registry
        self.interval = float(interval)
        self.sinks = list(sinks)
        self.heartbeat = heartbeat
        self.rules = list(rules)
        self.watchdog = watchdog
        self.estimator = estimator
        self.ticks = 0
        self.errors: list[str] = []
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None

    def tick(self) -> dict:
        """One reporting cycle; returns the snapshot it published."""
        evaluate_alerts(self.registry, self.rules, self.watchdog)
        snapshot = self.registry.snapshot()
        if self.estimator is not None:
            snapshot["progress"] = self.estimator.snapshot()
        for sink in self.sinks:
            try:
                sink.emit(snapshot)
            except Exception as exc:  # noqa: BLE001 - sinks must not kill runs
                self.errors.append(f"{type(sink).__name__}: {exc}")
        if self.heartbeat is not None:
            try:
                self.heartbeat.beat(self.registry, self.estimator)
            except Exception as exc:  # noqa: BLE001
                self.errors.append(f"Heartbeat: {exc}")
        self.ticks += 1
        return snapshot

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.tick()

    def start(self) -> "Reporter":
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-reporter", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_tick: bool = True) -> None:
        """Stop the thread; by default publish one last snapshot so the
        sinks reflect the completed run."""
        thread = self._thread
        if thread is not None:
            self._stop.set()
            thread.join(timeout=max(5.0, 4 * self.interval))
            self._thread = None
        if final_tick:
            self.tick()
        for sink in self.sinks:
            close = getattr(sink, "close", None)
            if close is not None:
                try:
                    close()
                except Exception as exc:  # noqa: BLE001
                    self.errors.append(f"{type(sink).__name__}.close: {exc}")

    def __enter__(self) -> "Reporter":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
