"""Quantile sketch: p50/p90/p99 estimation without storing samples.

A DDSketch-style relative-error sketch (Masson, Rim & Lee, VLDB 2019):
values are assigned to geometrically spaced buckets ``gamma^i`` with
``gamma = (1 + alpha) / (1 - alpha)``, so any quantile estimate is
within relative error ``alpha`` of the true sample quantile — the
guarantee the accuracy tests assert against exact numpy percentiles.
Memory is bounded by the *dynamic range* of the data (one int per
occupied bucket), not the sample count, so a registry can absorb
millions of GEMM latencies at a few hundred bytes per histogram.

Adds are O(1) (one ``log`` + dict increment), support integer *weights*
(a ``gemm_batched`` stack of ``k`` products contributes ``k`` samples of
its per-product latency — the batch-aware aggregation contract), and
sketches merge by bucket-count addition, so per-thread or per-repeat
sketches combine exactly.

Stdlib-only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import math

__all__ = ["QuantileSketch", "DEFAULT_ALPHA"]

#: Default relative accuracy of quantile estimates (1%).
DEFAULT_ALPHA = 0.01


class QuantileSketch:
    """Mergeable relative-error quantile sketch over non-negative values.

    Parameters
    ----------
    alpha : float
        Relative-accuracy guarantee: ``quantile(q)`` is within
        ``alpha * true_value`` of the exact sample quantile, for any
        distribution (0 < alpha < 1).
    min_value : float
        Values in ``[0, min_value)`` collapse into one "zero" bucket
        (returned as 0.0 by quantile queries that land there).  Bounds
        the bucket count for data spanning down to denormals.
    """

    __slots__ = ("alpha", "min_value", "_gamma", "_log_gamma",
                 "_buckets", "_zero", "count", "sum", "min", "max")

    def __init__(self, alpha: float = DEFAULT_ALPHA,
                 min_value: float = 1e-9) -> None:
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        self.alpha = alpha
        self.min_value = min_value
        self._gamma = (1.0 + alpha) / (1.0 - alpha)
        self._log_gamma = math.log(self._gamma)
        self._buckets: dict[int, int] = {}
        self._zero = 0          # weight of values below min_value
        self.count = 0          # total weight
        self.sum = 0.0          # exact weighted sum
        self.min = math.inf     # exact extremes
        self.max = -math.inf

    def add(self, value: float, count: int = 1) -> None:
        """Record ``value`` with integer weight ``count``.

        Negative values are clamped to the zero bucket (latencies and
        byte counts are non-negative by construction; a clock hiccup
        must not corrupt the bucket keys).
        """
        if count <= 0:
            return
        v = float(value)
        self.count += count
        self.sum += v * count
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        if v < self.min_value:
            self._zero += count
            return
        key = math.ceil(math.log(v) / self._log_gamma)
        self._buckets[key] = self._buckets.get(key, 0) + count

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 <= q <= 1); 0.0 on an empty sketch.

        The estimate is the geometric midpoint of the bucket containing
        the ``q``-th weighted sample, ``2 gamma^i / (gamma + 1)``, which
        realizes the ``alpha`` relative-error bound.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the target sample, 0-based over total weight.
        rank = q * (self.count - 1)
        seen = self._zero
        if rank < seen:
            return 0.0
        for key in sorted(self._buckets):
            seen += self._buckets[key]
            if rank < seen:
                est = 2.0 * self._gamma ** key / (self._gamma + 1.0)
                # Clamp into the exact observed range: the bucket
                # midpoint can poke past the true extremes by alpha.
                return min(max(est, self.min), self.max)
        return self.max

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge(self, other: "QuantileSketch") -> None:
        """Fold ``other`` into this sketch (requires identical alpha)."""
        if other.alpha != self.alpha:
            raise ValueError(
                f"cannot merge sketches with alpha {self.alpha} and {other.alpha}"
            )
        for key, cnt in other._buckets.items():
            self._buckets[key] = self._buckets.get(key, 0) + cnt
        self._zero += other._zero
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def summary(self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)) -> dict:
        """JSON-serializable digest (the manifest ``metrics`` line form)."""
        out = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "quantiles": {str(q): self.quantile(q) for q in quantiles},
        }
        return out

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "min_value": self.min_value,
            "zero": self._zero,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "buckets": {str(k): v for k, v in self._buckets.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "QuantileSketch":
        sk = cls(alpha=d.get("alpha", DEFAULT_ALPHA),
                 min_value=d.get("min_value", 1e-9))
        sk._zero = int(d.get("zero", 0))
        sk.count = int(d.get("count", 0))
        sk.sum = float(d.get("sum", 0.0))
        sk.min = float(d["min"]) if d.get("min") is not None else math.inf
        sk.max = float(d["max"]) if d.get("max") is not None else -math.inf
        sk._buckets = {int(k): int(v) for k, v in d.get("buckets", {}).items()}
        return sk

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<QuantileSketch n={self.count} p50={self.quantile(0.5):.3g} "
            f"p99={self.quantile(0.99):.3g}>"
        )
