"""Turn-key live-monitoring session: registry + estimator + reporter.

:class:`LiveSession` is what the driver's ``live=`` knob builds: one
context manager that installs a registry, attaches a progress estimator
(when a phase plan is known), starts the background reporter with the
standard sink layout under a directory, and on exit stops the reporter,
takes the final registry dump (the manifest ``metrics`` line body), and
uninstalls.

Standard file layout inside ``config.dir``::

    metrics.prom      Prometheus text-exposition snapshot (atomic)
    metrics.jsonl     per-tick JSONL stream (append-only)
    heartbeat.json    health file (atomic)

``resolve_live`` normalizes the user-facing knob: ``True`` (default
directory), a path string, a :class:`LiveConfig`, or an explicit
:class:`~repro.obs.live.registry.MetricsRegistry` (registry-only mode:
no reporter thread, caller owns snapshotting).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from .alerts import AlertRule, NoProgressWatchdog
from .health import Heartbeat, read_heartbeat
from .progress import ProgressEstimator
from .registry import MetricsRegistry, install, uninstall
from .reporter import Reporter
from .sinks import JsonlSink, PrometheusSink, TtySink

__all__ = ["LiveConfig", "LiveSession", "resolve_live", "render_live_dir",
           "DEFAULT_LIVE_DIR"]

DEFAULT_LIVE_DIR = os.path.join("runs", "live")

PROM_FILE = "metrics.prom"
JSONL_FILE = "metrics.jsonl"
HEARTBEAT_FILE = "heartbeat.json"


@dataclass
class LiveConfig:
    """User-facing configuration of a live-monitoring session."""

    dir: str = DEFAULT_LIVE_DIR
    interval: float = 1.0
    prometheus: bool = True
    jsonl: bool = True
    tty: bool = False
    heartbeat: bool = True
    rules: tuple = ()
    #: No-progress watchdog threshold; None disables the watchdog.
    no_progress_seconds: "float | None" = 30.0
    #: Quantile-sketch relative accuracy.
    alpha: float = 0.01
    #: Bring-your-own registry (e.g. shared across runs); a fresh one is
    #: created when None.
    registry: "MetricsRegistry | None" = None
    clock: "object | None" = None


class LiveSession:
    """Context manager running the full live-monitoring stack.

    After ``__exit__``, :attr:`dump` holds the final registry dump and
    :attr:`registry` stays readable for assertions.
    """

    def __init__(self, config: "LiveConfig | None" = None,
                 plan: "dict | None" = None) -> None:
        self.config = config if config is not None else LiveConfig()
        self.plan = plan
        self.registry: "MetricsRegistry | None" = None
        self.estimator: "ProgressEstimator | None" = None
        self.reporter: "Reporter | None" = None
        self.dump: "dict | None" = None
        self._prev = None

    def __enter__(self) -> "LiveSession":
        cfg = self.config
        reg = cfg.registry
        if reg is None:
            reg = MetricsRegistry(clock=cfg.clock, alpha=cfg.alpha)
        self.registry = reg
        if self.plan:
            self.estimator = ProgressEstimator(self.plan)
            self.estimator.attach(reg)
        sinks = []
        if cfg.prometheus:
            sinks.append(PrometheusSink(os.path.join(cfg.dir, PROM_FILE)))
        if cfg.jsonl:
            sinks.append(JsonlSink(os.path.join(cfg.dir, JSONL_FILE)))
        if cfg.tty:
            sinks.append(TtySink())
        heartbeat = (
            Heartbeat(os.path.join(cfg.dir, HEARTBEAT_FILE))
            if cfg.heartbeat else None
        )
        watchdog = (
            NoProgressWatchdog(stall_seconds=cfg.no_progress_seconds)
            if cfg.no_progress_seconds is not None else None
        )
        self.reporter = Reporter(
            reg, interval=cfg.interval, sinks=sinks, heartbeat=heartbeat,
            rules=cfg.rules, watchdog=watchdog, estimator=self.estimator,
        )
        self._prev = install(reg)
        self.reporter.start()
        return self

    def __exit__(self, *exc) -> None:
        if self.reporter is not None:
            self.reporter.stop(final_tick=True)
        uninstall(self._prev)
        if self.registry is not None:
            self.dump = self.registry.dump()
            if self.estimator is not None:
                self.dump["progress"] = self.estimator.snapshot()


class _NullLiveSession:
    """No-op stand-in so the driver can always write ``with session:``."""

    registry = None
    estimator = None
    reporter = None
    dump = None

    def __enter__(self) -> "_NullLiveSession":
        return self

    def __exit__(self, *exc) -> None:
        return None


def resolve_live(live, plan: "dict | None" = None):
    """Normalize the driver's ``live=`` knob into a session context.

    Accepts ``None``/``False`` (off), ``True`` (defaults), a directory
    path, a :class:`LiveConfig`, a :class:`MetricsRegistry` (wrapped in
    a reporterless config so only in-memory aggregation happens), or an
    existing :class:`LiveSession`.
    """
    if live is None or live is False:
        return _NullLiveSession()
    if isinstance(live, LiveSession):
        live.plan = live.plan or plan
        return live
    if isinstance(live, MetricsRegistry):
        cfg = LiveConfig(prometheus=False, jsonl=False, heartbeat=False,
                         no_progress_seconds=None, registry=live)
        return LiveSession(cfg, plan=plan)
    if live is True:
        return LiveSession(LiveConfig(), plan=plan)
    if isinstance(live, (str, os.PathLike)):
        return LiveSession(LiveConfig(dir=os.fspath(live)), plan=plan)
    if isinstance(live, LiveConfig):
        return LiveSession(live, plan=plan)
    raise TypeError(f"cannot interpret live={live!r}")


def render_live_dir(directory) -> str:
    """Human-readable rendering of a live-monitoring directory.

    Used by ``python -m repro.obs live DIR``: shows the heartbeat (age,
    phase, progress, ETA, workers, alerts) and the key series of the
    Prometheus snapshot.  Works on both in-flight and finished runs.
    """
    import time

    directory = os.fspath(directory)
    lines = [f"live metrics @ {directory}"]
    hb = read_heartbeat(os.path.join(directory, HEARTBEAT_FILE))
    if hb is None:
        lines.append("  heartbeat: (absent)")
    else:
        age = max(time.time() - hb.get("updated", 0.0), 0.0)
        lines.append(
            f"  heartbeat: beat #{hb.get('beats', 0)} {age:.1f}s ago  "
            f"pid={hb.get('pid')}  uptime={hb.get('uptime', 0.0):.2f}s"
        )
        lines.append(
            f"  phase: {hb.get('phase') or '-'}  "
            f"last_progress_age={hb.get('last_progress_age', 0.0):.2f}s"
        )
        if hb.get("progress") is not None:
            eta = hb.get("eta_seconds")
            eta_s = f"{eta:.1f}s" if eta is not None else "n/a"
            lines.append(
                f"  progress: {hb['progress'] * 100.0:.1f}%  eta={eta_s}"
            )
        for name, info in sorted(hb.get("phases", {}).items()):
            lines.append(
                f"    {name:<16} {info['fraction'] * 100.0:6.1f}%"
            )
        workers = hb.get("workers", {})
        if workers:
            lines.append("  workers (idle seconds):")
            for name, idle in sorted(workers.items()):
                lines.append(f"    {name:<24} {idle:8.2f}")
        for alert in hb.get("alerts", []):
            lines.append(
                f"  ALERT {alert.get('rule')}: {alert.get('message')}"
            )
    prom_path = os.path.join(directory, PROM_FILE)
    if os.path.exists(prom_path):
        with open(prom_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        keep = ("repro_gemm_latency_seconds", "repro_gemm_flops_total",
                "repro_progress_fraction", "repro_eta_seconds",
                "repro_ws_takes_total")
        lines.append("  key series:")
        for line in text.splitlines():
            if line.startswith(keep):
                lines.append(f"    {line}")
    return "\n".join(lines) + "\n"
