"""Alert rules: metric thresholds and the no-progress watchdog.

Rules are evaluated by the :class:`~repro.obs.live.reporter.Reporter`
on every tick.  A rule fires *once* per run (its ``count`` keeps
incrementing while the condition holds, so the final manifest records
how persistent the condition was, but the alerts list does not grow
unboundedly).  Fired alerts are structured dicts appended to
``registry.alerts`` and therefore land in the manifest ``metrics`` line,
the heartbeat file, and every snapshot sink.

The :class:`NoProgressWatchdog` is the *liveness* complement of the
wall-clock budgets in :mod:`repro.eig.budget`: a budget bounds total
elapsed time from the inside of the iteration loop, while the watchdog
detects a run that has stopped doing work at all (deadlocked pool, hung
I/O) from the outside, using the registry's last-progress timestamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AlertRule", "NoProgressWatchdog", "evaluate_alerts"]

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass
class AlertRule:
    """Fire when a counter/gauge crosses a threshold.

    ``metric`` names a counter (summed across label sets) or a gauge
    (matched with ``labels``).  ``op`` compares the observed value to
    ``threshold``.
    """

    name: str
    metric: str
    threshold: float
    op: str = ">"
    message: str = ""
    labels: dict = field(default_factory=dict)

    def check(self, registry) -> "float | None":
        """Current metric value if the rule condition holds, else None."""
        value = registry.gauge_value(self.metric, **self.labels)
        if value is None:
            if self.labels:
                value = registry.counter_value(self.metric, **self.labels)
            else:
                value = registry.counter_total(self.metric)
        if value is None:
            return None
        cmp = _OPS.get(self.op)
        if cmp is None:
            raise ValueError(f"unknown alert op {self.op!r}")
        return value if cmp(value, self.threshold) else None


@dataclass
class NoProgressWatchdog:
    """Fire when no forward progress was observed for ``stall_seconds``.

    Progress means any GEMM event or phase completion (the registry's
    ``last_progress`` timestamp).  Distinct from the wall-clock budgets:
    a slow-but-moving run never trips the watchdog, and a hung run trips
    it long before any budget expires.
    """

    stall_seconds: float = 30.0
    name: str = "no_progress"
    #: Opt-in repeated-stall alerting: after this many seconds since the
    #: last fire, a (new or still-ongoing) stall fires a *fresh* alert
    #: named ``no_progress#2``, ``#3``, ... instead of only bumping the
    #: first alert's count.  ``None`` keeps the fire-once behavior.
    rearm_after: "float | None" = None
    fires: int = field(default=0, init=False, repr=False)
    _last_fire: float = field(default=0.0, init=False, repr=False)

    def check(self, registry) -> "float | None":
        age = registry.clock() - registry.last_progress
        return age if age > self.stall_seconds else None

    @property
    def alert_name(self) -> str:
        """Name the current stall fires under (``name`` or ``name#N``)."""
        return self.name if self.fires <= 1 else f"{self.name}#{self.fires}"

    def arm(self, now: float) -> str:
        """Advance the rearm state for a stall observed at ``now``.

        The first stall fires under ``name``; while within the rearm
        window (or with ``rearm_after`` unset) subsequent ticks keep the
        same name, so :func:`evaluate_alerts` merely refreshes the
        existing alert's count.  Past the window the counter advances
        and a fresh alert name is returned.
        """
        if self.fires == 0:
            self.fires = 1
            self._last_fire = now
        elif (
            self.rearm_after is not None
            and now - self._last_fire >= self.rearm_after
        ):
            self.fires += 1
            self._last_fire = now
        return self.alert_name


def evaluate_alerts(registry, rules=(), watchdog=None) -> list:
    """Evaluate rules against ``registry``; returns newly fired alerts.

    Already-fired rules only have their ``count``/``value`` refreshed.
    """
    now = registry.clock()
    fired_names = {a["rule"] for a in registry.alerts}
    new = []

    def _fire(name, value, threshold, message):
        if name in fired_names:
            for a in registry.alerts:
                if a["rule"] == name:
                    a["count"] += 1
                    a["value"] = value
            return
        alert = {
            "rule": name,
            "value": value,
            "threshold": threshold,
            "message": message,
            "time": now - registry.epoch,
            "count": 1,
        }
        registry.fire_alert(alert)
        new.append(alert)

    for rule in rules:
        value = rule.check(registry)
        if value is not None:
            msg = rule.message or (
                f"{rule.metric} {rule.op} {rule.threshold} (observed {value:g})"
            )
            _fire(rule.name, value, rule.threshold, msg)
    if watchdog is not None:
        age = watchdog.check(registry)
        if age is not None:
            arm = getattr(watchdog, "arm", None)
            alert_name = arm(now) if arm is not None else watchdog.name
            _fire(
                alert_name, age, watchdog.stall_seconds,
                f"no progress for {age:.1f}s "
                f"(threshold {watchdog.stall_seconds:.1f}s, "
                f"phase {registry.phase or '?'})",
            )
    return new
