"""Reporter sinks: Prometheus snapshot, JSONL stream, TTY progress line.

Each sink consumes the same registry ``snapshot()`` dict, so adding a
sink never adds work to the hot path — the reporter takes one snapshot
per tick and fans it out.

* :class:`PrometheusSink` rewrites a text-exposition file atomically on
  every tick (``os.replace``, so a scraper never reads a torn file).
  Histograms are exported summary-style: ``{quantile="0.5"}`` series
  plus ``_count``/``_sum``.
* :class:`JsonlSink` appends one compact sample per tick via
  :func:`repro.ioutils.append_jsonl` — whole lines only, torn final
  line tolerated by :func:`validate_metrics_stream`.
* :class:`TtySink` renders a single in-place ANSI progress line
  (opt-in; never enabled by default because it writes to a terminal).
"""

from __future__ import annotations

import re
import sys

from ...ioutils import append_jsonl, atomic_write_text

__all__ = [
    "PrometheusSink",
    "JsonlSink",
    "TtySink",
    "render_prometheus",
    "parse_prometheus",
    "validate_metrics_stream",
]

_EXPORT_QUANTILES = ("0.5", "0.9", "0.99")

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# One sample line: name, optional {labels}, float value.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:\d+\.?\d*(?:[eE][-+]?\d+)?|\.\d+|[Nn]a[Nn]|[+-]?[Ii]nf))$"
)


def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _fmt_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def render_prometheus(snapshot: dict) -> str:
    """Registry snapshot -> Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set[str] = set()

    def _type_line(name: str, kind: str) -> None:
        if name not in seen_types:
            seen_types.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for entry in snapshot.get("counters", []):
        name = entry["name"]
        _type_line(name, "counter")
        lines.append(f"{name}{_fmt_labels(entry['labels'])} {entry['value']:g}")
    for entry in snapshot.get("gauges", []):
        name = entry["name"]
        _type_line(name, "gauge")
        lines.append(f"{name}{_fmt_labels(entry['labels'])} {entry['value']:g}")
    for entry in snapshot.get("histograms", []):
        name = entry["name"]
        _type_line(name, "summary")
        labels = dict(entry["labels"])
        for q in _EXPORT_QUANTILES:
            value = entry["quantiles"].get(q, 0.0)
            q_labels = dict(labels)
            q_labels["quantile"] = q
            lines.append(f"{name}{_fmt_labels(q_labels)} {value:g}")
        lines.append(f"{name}_count{_fmt_labels(labels)} {entry['count']:g}")
        lines.append(f"{name}_sum{_fmt_labels(labels)} {entry['sum']:g}")
    # Liveness/meta gauges derived from snapshot scalars.
    _type_line("repro_uptime_seconds", "gauge")
    lines.append(f"repro_uptime_seconds {snapshot.get('uptime', 0.0):g}")
    _type_line("repro_last_progress_age_seconds", "gauge")
    lines.append(
        f"repro_last_progress_age_seconds "
        f"{snapshot.get('last_progress_age', 0.0):g}"
    )
    _type_line("repro_workers_seen", "gauge")
    lines.append(f"repro_workers_seen {len(snapshot.get('workers', {})):g}")
    _type_line("repro_alerts_fired", "gauge")
    lines.append(f"repro_alerts_fired {len(snapshot.get('alerts', [])):g}")
    return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> dict:
    """Parse text exposition back into ``{name{labels}: value}``.

    Strict enough for the CI smoke job: raises ``ValueError`` on any
    line that is neither a comment nor a well-formed sample.
    """
    series: dict[str, float] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if m is None:
            raise ValueError(f"malformed exposition line {lineno}: {line!r}")
        if not _NAME_RE.match(m.group("name")):
            raise ValueError(f"bad metric name on line {lineno}: {line!r}")
        series[m.group("name") + (m.group("labels") or "")] = float(
            m.group("value")
        )
    return series


class PrometheusSink:
    """Atomically rewrites a text-exposition snapshot file per tick."""

    def __init__(self, path) -> None:
        import os

        self.path = os.fspath(path)

    def emit(self, snapshot: dict) -> None:
        atomic_write_text(self.path, render_prometheus(snapshot), fsync=False)


class JsonlSink:
    """Appends one compact metrics sample per tick to a JSONL stream."""

    def __init__(self, path) -> None:
        import os

        self.path = os.fspath(path)

    def emit(self, snapshot: dict) -> None:
        sample = {
            "uptime": snapshot.get("uptime", 0.0),
            "phase": snapshot.get("phase", ""),
            "last_progress_age": snapshot.get("last_progress_age", 0.0),
            "counters": {
                _series_key(e): e["value"] for e in snapshot.get("counters", [])
            },
            "gauges": {
                _series_key(e): e["value"] for e in snapshot.get("gauges", [])
            },
            "quantiles": {
                _series_key(e): e["quantiles"]
                for e in snapshot.get("histograms", [])
            },
            "alerts": len(snapshot.get("alerts", [])),
        }
        append_jsonl(self.path, sample)


def _series_key(entry: dict) -> str:
    return entry["name"] + _fmt_labels(entry["labels"])


def validate_metrics_stream(path) -> list:
    """Load and schema-check a JSONL metrics stream.

    Returns the parsed samples.  Tolerates a torn final line (the
    append-only crash contract) but raises ``ValueError`` on any other
    malformed line, a missing required key, or non-monotone uptime.
    """
    import json
    import os

    samples: list[dict] = []
    with open(os.fspath(path), "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except ValueError:
            if i == len(lines) - 1:
                break  # torn final line from a crashed writer
            raise ValueError(f"malformed metrics sample on line {i + 1}")
        for req in ("uptime", "phase", "counters", "gauges", "quantiles"):
            if req not in obj:
                raise ValueError(
                    f"metrics sample on line {i + 1} missing {req!r}"
                )
        if not isinstance(obj["counters"], dict) or not isinstance(
            obj["gauges"], dict
        ):
            raise ValueError(f"metrics sample on line {i + 1} has bad types")
        samples.append(obj)
    for prev, cur in zip(samples, samples[1:]):
        if cur["uptime"] < prev["uptime"]:
            raise ValueError("metrics stream uptime is not monotone")
    return samples


class TtySink:
    """Single in-place ANSI progress line (opt-in).

    Writes ``\\r``-anchored updates to ``stream`` (default stderr) and
    clears to end-of-line so shrinking text leaves no residue.  Call
    :meth:`close` (the reporter does on stop) to finish with a newline.
    """

    def __init__(self, stream=None) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self._wrote = False

    def emit(self, snapshot: dict) -> None:
        phase = snapshot.get("phase") or "-"
        frac = None
        eta = None
        for entry in snapshot.get("gauges", []):
            if entry["name"] == "repro_progress_fraction" and entry[
                "labels"
            ].get("phase") == "total":
                frac = entry["value"]
            if entry["name"] == "repro_eta_seconds" and entry["labels"].get(
                "phase"
            ) == "total":
                eta = entry["value"]
        parts = [f"[{snapshot.get('uptime', 0.0):7.1f}s]", f"phase={phase}"]
        if frac is not None:
            parts.append(f"{frac * 100.0:5.1f}%")
        if eta is not None:
            parts.append(f"eta={eta:.1f}s")
        alerts = len(snapshot.get("alerts", []))
        if alerts:
            parts.append(f"ALERTS={alerts}")
        try:
            self.stream.write("\r\x1b[K" + " ".join(parts))
            self.stream.flush()
            self._wrote = True
        except (OSError, ValueError):
            pass  # closed/redirected stream must not kill the reporter

    def close(self) -> None:
        if self._wrote:
            try:
                self.stream.write("\n")
                self.stream.flush()
            except (OSError, ValueError):
                pass
