"""Phase spans, counters, and GEMM events — the telemetry core.

The library's hot paths are instrumented with *spans*::

    with obs.span("sbr.panel"):
        ...

A span measures wall-clock time (``time.perf_counter``) between entry and
exit, nests (the active span stack gives every span a ``/``-joined path),
and carries named counters and metadata.  Spans are collected by a
process-wide :class:`Collector` that is **off by default**: when no
collector is active, :func:`span` returns a shared no-op object and the
instrumented code pays one module-attribute read per call site — no
allocation, no timing, no locking.  Enable collection with::

    with obs.collect() as session:
        res = syevd_2stage(a, b=16, record_trace=True)
    session.spans          # finished spans, in completion order
    session.gemm_events    # per-GEMM latency records (see below)

Alongside spans, the GEMM engines report one :class:`GemmEvent` per call
while a collector is active — shape, tag, engine, measured latency, and
the path of the enclosing span — so the phase timeline joins against the
semantic :class:`repro.gemm.trace.GemmTrace` tags.

This module depends only on the standard library so the numeric packages
can import it without cycles.  The active-span stack is per-thread
(``threading.local``); the finished-span list is lock-guarded, so
concurrent instrumented threads are safe.

Time comes from the collector's injectable *clock* (default
``time.perf_counter``).  Tests and the benchmark store pass a
deterministic fake clock so duration-dependent logic (regression gates,
zero-duration handling) is testable without wall-clock sleeps; the
engine hook reads the same clock through :func:`now`, keeping span and
GEMM-event timestamps on one timeline.
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from dataclasses import dataclass, field

from .live import registry as _live

__all__ = [
    "Span",
    "GemmEvent",
    "Collector",
    "collect",
    "is_enabled",
    "active_collector",
    "span",
    "counter",
    "gemm_event",
    "now",
    "capture_context",
    "span_context",
    "wrap_context",
]


@dataclass
class Span:
    """One finished timed region.

    Attributes
    ----------
    name : str
        The call-site label (e.g. ``"sbr.panel"``).
    path : str
        ``/``-joined chain of enclosing span names, e.g.
        ``"syevd/sbr/sbr.panel"`` — the phase-attribution key.
    start : float
        Entry time in seconds relative to the collector's epoch.
    duration : float
        Wall-clock seconds between entry and exit.
    depth : int
        Nesting depth (0 for root spans).
    counters : dict
        Named numeric counters accumulated while the span was active.
    meta : dict
        Free-form metadata passed at span creation.
    """

    name: str
    path: str
    start: float
    duration: float
    depth: int
    counters: dict = field(default_factory=dict)
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-serializable form (the manifest's ``span`` line body)."""
        out = {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration": self.duration,
            "depth": self.depth,
        }
        if self.counters:
            out["counters"] = dict(self.counters)
        if self.meta:
            out["meta"] = dict(self.meta)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "Span":
        return cls(
            name=d["name"],
            path=d["path"],
            start=d["start"],
            duration=d["duration"],
            depth=d["depth"],
            counters=dict(d.get("counters", {})),
            meta=dict(d.get("meta", {})),
        )


@dataclass(frozen=True)
class GemmEvent:
    """One timed GEMM (or syr2k) call attributed to its enclosing span.

    ``start`` is the call's entry time relative to the collector's epoch
    (the same timeline as :attr:`Span.start`), so events place on the
    trace-export timeline next to their enclosing spans.  Events loaded
    from pre-v2 manifests carry ``start = -1.0`` (unknown).
    """

    m: int
    n: int
    k: int
    tag: str
    engine: str
    op: str
    seconds: float
    span_path: str
    start: float = -1.0
    batch: int = 1

    @property
    def flops(self) -> int:
        """Flop count, matching :attr:`repro.gemm.trace.GemmRecord.flops`."""
        return 2 * self.m * self.n * self.k * self.batch

    def to_dict(self) -> dict:
        out = {
            "m": self.m, "n": self.n, "k": self.k,
            "tag": self.tag, "engine": self.engine, "op": self.op,
            "seconds": self.seconds, "span_path": self.span_path,
        }
        if self.start >= 0.0:
            out["start"] = self.start
        if self.batch != 1:
            out["batch"] = self.batch
        return out


class Collector:
    """Process-wide sink of finished spans and GEMM events.

    The active-span *stack* is thread-local (each thread nests its own
    spans); the finished-span and event lists are shared and
    lock-guarded.
    """

    def __init__(self, clock=None) -> None:
        self.clock = clock if clock is not None else time.perf_counter
        self.epoch = self.clock()
        self.spans: list[Span] = []
        self.gemm_events: list[GemmEvent] = []
        self._lock = threading.Lock()
        self._tls = threading.local()

    # -- stack ------------------------------------------------------------
    def _stack(self) -> list:
        st = getattr(self._tls, "stack", None)
        if st is None:
            st = self._tls.stack = []
        return st

    def _base(self) -> "tuple[str, int] | None":
        """Inherited (path, depth) context for this thread, if installed.

        Worker threads have empty span stacks of their own; without an
        inherited base, their spans and GEMM events would attribute to
        the root (``span_path=""``) instead of the phase that spawned
        them.  :func:`span_context` installs the spawning thread's
        innermost span as the worker's base.
        """
        return getattr(self._tls, "base", None)

    def current_path(self) -> str:
        """Path of the innermost active span on this thread.

        Falls back to the inherited base context (see :meth:`_base`)
        when the thread has no spans of its own, so events recorded on
        pool threads attribute to the spawning phase; "" if neither.
        """
        st = self._stack()
        if st:
            return st[-1].path
        base = self._base()
        return base[0] if base is not None else ""

    # -- queries ----------------------------------------------------------
    @property
    def wall(self) -> float:
        """Seconds since the collector was created (on its own clock)."""
        return self.clock() - self.epoch

    def roots(self) -> list[Span]:
        """Finished depth-0 spans."""
        return [s for s in self.spans if s.depth == 0]

    def by_path(self, path: str) -> list[Span]:
        """Finished spans with exactly the given path."""
        return [s for s in self.spans if s.path == path]

    def time_by_path(self) -> dict[str, float]:
        """Total duration per span path."""
        out: dict[str, float] = {}
        for s in self.spans:
            out[s.path] = out.get(s.path, 0.0) + s.duration
        return out

    def gemm_seconds_by_span(self) -> dict[str, float]:
        """Measured GEMM seconds per enclosing span path."""
        out: dict[str, float] = {}
        for ev in self.gemm_events:
            out[ev.span_path] = out.get(ev.span_path, 0.0) + ev.seconds
        return out

    def gemm_summary(self) -> dict:
        """Aggregate of all GEMM events (the manifest's ``gemm_summary``).

        ``calls`` counts *products*, not engine launches: a
        ``gemm_batched`` event carrying ``batch=k`` contributes ``k``
        (its flops and seconds already cover the whole stack), so
        throughput ratios are comparable between batched and unbatched
        code paths.  ``launches`` preserves the raw event count.
        """
        by_tag: dict[str, dict] = {}
        by_engine: Counter = Counter()
        total_flops = 0
        total_seconds = 0.0
        total_calls = 0
        for ev in self.gemm_events:
            total_flops += ev.flops
            total_seconds += ev.seconds
            total_calls += ev.batch
            by_engine[ev.engine] += ev.batch
            slot = by_tag.setdefault(
                ev.tag, {"calls": 0, "launches": 0, "flops": 0, "seconds": 0.0}
            )
            slot["calls"] += ev.batch
            slot["launches"] += 1
            slot["flops"] += ev.flops
            slot["seconds"] += ev.seconds
        return {
            "calls": total_calls,
            "launches": len(self.gemm_events),
            "flops": total_flops,
            "seconds": total_seconds,
            "by_tag": by_tag,
            "by_engine": dict(by_engine),
        }


class _LiveSpan:
    """Active-collector span context manager (returned by :func:`span`)."""

    __slots__ = ("_col", "name", "path", "depth", "counters", "meta", "_t0", "_start")

    def __init__(self, col: Collector, name: str, meta: dict) -> None:
        self._col = col
        self.name = name
        self.meta = meta
        self.counters: dict = {}
        self.path = name
        self.depth = 0
        self._t0 = 0.0
        self._start = 0.0

    def __enter__(self) -> "_LiveSpan":
        st = self._col._stack()
        if st:
            parent = st[-1]
            self.path = f"{parent.path}/{self.name}"
            self.depth = parent.depth + 1
        else:
            base = self._col._base()
            if base is not None:
                self.path = f"{base[0]}/{self.name}"
                self.depth = base[1] + 1
        st.append(self)
        self._t0 = self._col.clock()
        self._start = self._t0 - self._col.epoch
        reg = _live.active_registry()
        if reg is not None:
            reg.span_started(self.path, self.depth)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        t1 = self._col.clock()
        st = self._col._stack()
        if st and st[-1] is self:
            st.pop()
        finished = Span(
            name=self.name,
            path=self.path,
            start=self._start,
            duration=t1 - self._t0,
            depth=self.depth,
            counters=self.counters,
            meta=self.meta,
        )
        with self._col._lock:
            self._col.spans.append(finished)
        reg = _live.active_registry()
        if reg is not None:
            reg.span_finished(self.path, self.depth, t1 - self._t0)
        return False

    def count(self, name: str, value: float = 1) -> None:
        """Accumulate a named counter on this span."""
        self.counters[name] = self.counters.get(name, 0) + value


class _PhaseSpan:
    """Registry-only span: phase tracking without a :class:`Collector`.

    Returned by :func:`span` when a live metrics registry is installed
    but no collector is active, so progress/phase attribution works in
    ``live=``-only runs without paying for event collection.  Keeps a
    minimal per-thread (path, depth) stack on the registry itself and
    reports enter/exit; records nothing else.
    """

    __slots__ = ("_reg", "name", "path", "depth", "_t0")

    def __init__(self, reg, name: str) -> None:
        self._reg = reg
        self.name = name
        self.path = name
        self.depth = 0
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseSpan":
        st = self._reg._stack()
        if st:
            parent_path, parent_depth = st[-1]
            self.path = f"{parent_path}/{self.name}"
            self.depth = parent_depth + 1
        st.append((self.path, self.depth))
        self._t0 = self._reg.clock()
        self._reg.span_started(self.path, self.depth)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        st = self._reg._stack()
        if st and st[-1] == (self.path, self.depth):
            st.pop()
        self._reg.span_finished(
            self.path, self.depth, self._reg.clock() - self._t0
        )
        return False

    def count(self, name: str, value: float = 1) -> None:
        pass


class _NullSpan:
    """Shared no-op span: what :func:`span` returns when collection is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def count(self, name: str, value: float = 1) -> None:
        pass


NULL_SPAN = _NullSpan()

#: The process-wide active collector (None = telemetry disabled).
_active: Collector | None = None
_activation_lock = threading.Lock()


def is_enabled() -> bool:
    """Whether a collector is currently active."""
    return _active is not None


def active_collector() -> Collector | None:
    """The active collector, or None when telemetry is disabled."""
    return _active


class collect:
    """Context manager activating a fresh :class:`Collector`.

    Nesting restores the previous collector on exit, so an outer session
    (e.g. a benchmark harness) is shadowed, not corrupted, by an inner
    one.  ``clock`` injects a deterministic time source for tests.
    """

    def __init__(self, clock=None) -> None:
        self.collector = Collector(clock=clock)
        self._prev: Collector | None = None

    def __enter__(self) -> Collector:
        global _active
        with _activation_lock:
            self._prev = _active
            _active = self.collector
        return self.collector

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        with _activation_lock:
            _active = self._prev
        return False


def span(name: str, **meta):
    """Timed, nested region context manager (no-op when disabled).

    Parameters
    ----------
    name : str
        Call-site label; the full phase path is derived from nesting.
    **meta
        Free-form metadata stored on the finished span.
    """
    col = _active
    if col is not None:
        return _LiveSpan(col, name, meta)
    reg = _live.active_registry()
    if reg is not None:
        return _PhaseSpan(reg, name)
    return NULL_SPAN


def now() -> float:
    """Current time on the active collector's clock.

    Falls back to the live registry's clock when only live metrics are
    active, then to ``time.perf_counter``, so instrumentation points can
    time unconditionally and stay consistent with an injected fake clock
    when one is active.
    """
    col = _active
    if col is not None:
        return col.clock()
    reg = _live.active_registry()
    if reg is not None:
        return reg.clock()
    return time.perf_counter()


def counter(name: str, value: float = 1) -> None:
    """Accumulate a counter on the innermost active span (no-op otherwise)."""
    col = _active
    if col is None:
        return
    st = col._stack()
    if st:
        st[-1].count(name, value)


def gemm_event(
    m: int,
    n: int,
    k: int,
    *,
    tag: str,
    engine: str,
    op: str,
    seconds: float,
    start: float | None = None,
    batch: int = 1,
) -> None:
    """Report one timed GEMM call to the active collector (engine hook).

    ``start`` is the call's entry time as read from :func:`now` (i.e. on
    the collector's clock); it is stored relative to the collector epoch.
    ``batch`` is the stack depth of a ``gemm_batched`` call (1 otherwise).
    """
    col = _active
    if col is None:
        return
    ev = GemmEvent(
        m=m, n=n, k=k, tag=tag, engine=engine, op=op,
        seconds=seconds, span_path=col.current_path(),
        start=(start - col.epoch) if start is not None else -1.0,
        batch=batch,
    )
    with col._lock:
        col.gemm_events.append(ev)


# ----------------------------------------------------------------------
# span-context propagation into worker threads
# ----------------------------------------------------------------------
#
# The span stack is thread-local, so a function submitted to a pool runs
# with an *empty* stack: its spans become roots and its GEMM events get
# span_path="" — they vanish from phase attribution.  The helpers below
# capture the submitting thread's innermost span and install it as the
# worker thread's *base context* for the duration of the call, so
# look-ahead trailing updates (sbr-la) and TSQR leaf factorizations
# attribute to the phase that spawned them.


def capture_context() -> "tuple[Collector, str, int] | None":
    """Snapshot the current thread's span context for cross-thread use.

    Returns ``(collector, path, depth)`` of the innermost active span
    (or inherited base), or None when nothing would need propagating.
    """
    col = _active
    if col is None:
        return None
    st = col._stack()
    if st:
        return (col, st[-1].path, st[-1].depth)
    base = col._base()
    if base is not None:
        return (col, base[0], base[1])
    return None


class span_context:
    """Install a captured span context as this thread's base context.

    Nested installs restore the previous base on exit.  A context from a
    collector that is no longer active is ignored (the worker outlived
    the session; attributing to a dead collector would be wrong)."""

    def __init__(self, ctx: "tuple[Collector, str, int] | None") -> None:
        self._ctx = ctx
        self._col: "Collector | None" = None
        self._prev: "tuple[str, int] | None" = None

    def __enter__(self) -> "span_context":
        if self._ctx is not None:
            col, path, depth = self._ctx
            if col is _active:
                self._col = col
                self._prev = col._base()
                col._tls.base = (path, depth)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._col is not None:
            self._col._tls.base = self._prev
            self._col = None
        return False


def wrap_context(fn):
    """Bind the *current* span context into ``fn`` for pool submission.

    Usage at a submit site::

        pool.submit(obs.wrap_context(task), *args)

    When telemetry is off this returns ``fn`` unchanged — zero wrapping
    overhead on the default path.
    """
    ctx = capture_context()
    if ctx is None:
        return fn

    def _with_context(*args, **kwargs):
        with span_context(ctx):
            return fn(*args, **kwargs)

    return _with_context
