"""Request-scoped tracing: causal trace ids across the serving stack.

Run-scoped telemetry (spans, GEMM events, manifests) describes one
solver invocation.  A served job, however, can span *several*
invocations: admitted, queued, attempted, preempted at a durable
checkpoint, requeued, and resumed — possibly on another worker.  This
module supplies the causal thread that stitches those pieces back into
one story:

- :class:`TraceContext` — an immutable ``(trace_id, span_id, parent_id)``
  triple minted once per request (``TraceContext.new()``) and extended
  per lifecycle event (``ctx.child()``).  The context serializes to a
  plain dict so it can ride in the PR-4 run-dir header and in every
  serve-manifest line, which is what lets a job killed and resumed in a
  fresh process continue the *same* trace.
- :func:`lifecycle_span` — emits one finished lifecycle span
  (``serve.admit``, ``serve.attempt`` …) into the active PR-1 collector.
  Same fast-path discipline as the PR-6 live hooks: when no collector is
  active the call is one module-attribute read plus a None check — no
  allocation, no locking.
- Serve-manifest analysis: :func:`load_serve_manifest`,
  :func:`check_trace_continuity` (the CI trace gate), and
  :func:`render_trace_summary` (the ``python -m repro.obs trace``
  subcommand body).

Only the standard library is used so ``repro.serve`` and ``repro.ckpt``
can import this without cycles.
"""

from __future__ import annotations

import json
import os
import uuid

from . import spans as _spans
from .spans import Span

__all__ = [
    "TraceContext",
    "lifecycle_span",
    "LIFECYCLE_EVENTS",
    "load_serve_manifest",
    "check_trace_continuity",
    "render_trace_summary",
]

#: The lifecycle span vocabulary emitted by the serving layer, in the
#: order they can occur for one job.  ``serve.attempt`` carries an
#: ``attempt`` index (rendered ``serve.attempt[k]`` by the exporters).
LIFECYCLE_EVENTS = (
    "serve.admit",
    "serve.queue_wait",
    "serve.attempt",
    "serve.preempt",
    "serve.backoff",
    "serve.resume",
    "serve.result",
)


def _new_id() -> str:
    return uuid.uuid4().hex[:16]


class TraceContext:
    """Immutable causal context: one trace id, one span id, one parent.

    ``trace_id`` names the whole request; every lifecycle event and every
    solver invocation belonging to that request carries the same value.
    ``span_id`` names this node; ``parent_id`` is the span id of the node
    that caused it (None for the root minted at ``EvdService.submit``).
    """

    __slots__ = ("trace_id", "span_id", "parent_id")

    def __init__(
        self, trace_id: str, span_id: str, parent_id: "str | None" = None
    ) -> None:
        object.__setattr__(self, "trace_id", trace_id)
        object.__setattr__(self, "span_id", span_id)
        object.__setattr__(self, "parent_id", parent_id)

    def __setattr__(self, name, value):  # immutability guard
        raise AttributeError("TraceContext is immutable")

    def __repr__(self) -> str:
        return (
            f"TraceContext(trace_id={self.trace_id!r}, "
            f"span_id={self.span_id!r}, parent_id={self.parent_id!r})"
        )

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceContext)
            and self.trace_id == other.trace_id
            and self.span_id == other.span_id
            and self.parent_id == other.parent_id
        )

    def __hash__(self) -> int:
        return hash((self.trace_id, self.span_id, self.parent_id))

    # -- construction ------------------------------------------------------
    @classmethod
    def new(cls) -> "TraceContext":
        """Mint a fresh root context (one per submitted request)."""
        return cls(trace_id=_new_id(), span_id=_new_id(), parent_id=None)

    def child(self) -> "TraceContext":
        """A new span under this one, in the same trace."""
        return TraceContext(
            trace_id=self.trace_id, span_id=_new_id(), parent_id=self.span_id
        )

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        out = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        return out

    @classmethod
    def from_dict(cls, d: "dict | None") -> "TraceContext | None":
        if not d:
            return None
        return cls(
            trace_id=d["trace_id"],
            span_id=d["span_id"],
            parent_id=d.get("parent_id"),
        )

    @classmethod
    def coerce(cls, obj) -> "TraceContext | None":
        """Accept a TraceContext, a serialized dict, or None."""
        if obj is None or isinstance(obj, TraceContext):
            return obj
        if isinstance(obj, dict):
            return cls.from_dict(obj)
        raise TypeError(f"cannot coerce {type(obj).__name__} to TraceContext")

    def span_meta(self) -> dict:
        """The keys this context contributes to a span's ``meta``."""
        meta = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            meta["parent_id"] = self.parent_id
        return meta


def lifecycle_span(
    name: str,
    duration: float = 0.0,
    *,
    trace: "TraceContext | None" = None,
    worker: "str | None" = None,
    **meta,
) -> None:
    """Emit one finished lifecycle span into the active collector.

    The span is placed on the collector's own timeline ending *now*
    (``start = now - duration``), so lifecycle events recorded from the
    serving layer's ``time.monotonic`` clock still land coherently next
    to solver spans.  When no collector is active this is a no-op that
    allocates nothing — the serving hot path pays one module-attribute
    read per call site.
    """
    col = _spans._active
    if col is None:
        return
    if trace is not None:
        meta.update(trace.span_meta())
    if worker is not None:
        meta["worker"] = worker
    end = col.clock() - col.epoch
    finished = Span(
        name=name,
        path=name,
        start=max(end - duration, 0.0),
        duration=duration,
        depth=0,
        counters={},
        meta=meta,
    )
    with col._lock:
        col.spans.append(finished)


# ----------------------------------------------------------------------
# serve-manifest trace analysis
# ----------------------------------------------------------------------


def load_serve_manifest(path: str) -> "list[dict]":
    """Load ``serve_job`` records from a serve spool dir or manifest file.

    ``path`` may be the spool directory (containing ``manifest.jsonl``)
    or the JSONL file itself.  Unknown line kinds and torn trailing
    lines are skipped, matching the additive-schema discipline of the
    run manifests.
    """
    if os.path.isdir(path):
        path = os.path.join(path, "manifest.jsonl")
    if not os.path.exists(path):
        raise FileNotFoundError(f"no serve manifest at {path}")
    records: "list[dict]" = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except ValueError:
                continue  # torn trailing line (crash-safe writer semantics)
            if isinstance(rec, dict) and rec.get("kind") == "serve_job":
                records.append(rec)
    return records


def _timeline(rec: dict) -> "list[dict]":
    tl = rec.get("timeline") or []
    return [ev for ev in tl if isinstance(ev, dict) and "name" in ev]


def check_trace_continuity(records: "list[dict]") -> "list[str]":
    """Verify the causal invariants of a soak's serve-manifest records.

    Returns a list of human-readable problems (empty = pass):

    - every job carries a trace context with a trace id;
    - trace ids are unique per job (two jobs never share a trace);
    - every non-cancelled job's timeline contains ``serve.admit``, at
      least one ``serve.attempt``, and ``serve.result``;
    - every timeline event's ``parent_id`` resolves to the job's root
      span or another event of the *same* job (causality never crosses
      jobs);
    - a preempted job (``preemptions > 0``) has matching
      ``serve.preempt`` and ``serve.resume`` events, and each resume is
      linked (``link_from``) to a previous attempt's span id — the
      "same trace across checkpoint resume" guarantee.
    """
    problems: "list[str]" = []
    seen: "dict[str, str]" = {}
    for rec in records:
        job = rec.get("job", "<unknown>")
        trace = rec.get("trace") or {}
        tid = trace.get("trace_id")
        if not tid:
            problems.append(f"{job}: missing trace context")
            continue
        if tid in seen:
            problems.append(
                f"{job}: trace id {tid} already used by {seen[tid]}"
            )
        seen[tid] = job

        tl = _timeline(rec)
        names = [ev["name"] for ev in tl]
        state = rec.get("state")
        if state == "cancelled" and "serve.attempt" not in names:
            continue  # cancelled while queued: admit-only timeline is fine
        for required in ("serve.admit", "serve.attempt", "serve.result"):
            if required not in names:
                problems.append(f"{job}: timeline missing {required}")

        root = trace.get("span_id")
        ids = {root} | {ev.get("span_id") for ev in tl}
        for ev in tl:
            parent = ev.get("parent_id")
            if parent is not None and parent not in ids:
                problems.append(
                    f"{job}: event {ev['name']} parent {parent} not in trace"
                )

        attempts = [ev for ev in tl if ev["name"] == "serve.attempt"]
        attempt_ids = {ev.get("span_id") for ev in attempts}
        if rec.get("preemptions", 0) > 0:
            if "serve.preempt" not in names:
                problems.append(f"{job}: preempted but no serve.preempt event")
            if "serve.resume" not in names:
                problems.append(f"{job}: preempted but no serve.resume event")
        for ev in tl:
            if ev["name"] != "serve.resume":
                continue
            link = ev.get("link_from")
            if not link:
                problems.append(f"{job}: serve.resume without link_from")
            elif link not in attempt_ids:
                problems.append(
                    f"{job}: serve.resume links {link}, not a prior attempt"
                )
    return problems


def _compact_timeline(rec: dict) -> str:
    parts = []
    for ev in _timeline(rec):
        name = ev["name"].replace("serve.", "")
        if ev["name"] == "serve.attempt":
            k = ev.get("attempt")
            out = ev.get("outcome")
            name = f"attempt[{k}]" if k is not None else "attempt"
            if out and out != "done":
                name += f":{out}"
        parts.append(name)
    return " > ".join(parts)


def render_trace_summary(records: "list[dict]") -> str:
    """Human-readable per-job trace table for the ``obs trace`` CLI."""
    if not records:
        return "no serve_job records"
    lines = [f"{len(records)} jobs"]
    header = (
        f"{'job':<12} {'trace':<17} {'class':<12} {'state':<10} "
        f"{'att':>3} {'pre':>3} {'wall':>8}  timeline"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for rec in sorted(records, key=lambda r: r.get("job", "")):
        trace = (rec.get("trace") or {}).get("trace_id", "-")
        wall = rec.get("wall")
        lines.append(
            f"{rec.get('job', '?'):<12} {trace:<17} "
            f"{rec.get('priority', '?'):<12} {rec.get('state', '?'):<10} "
            f"{rec.get('attempts', 0):>3} {rec.get('preemptions', 0):>3} "
            f"{wall:>8.3f}  {_compact_timeline(rec)}"
            if isinstance(wall, (int, float))
            else f"{rec.get('job', '?'):<12} {trace:<17} "
            f"{rec.get('priority', '?'):<12} {rec.get('state', '?'):<10} "
            f"{rec.get('attempts', 0):>3} {rec.get('preemptions', 0):>3} "
            f"{'-':>8}  {_compact_timeline(rec)}"
        )
    problems = check_trace_continuity(records)
    if problems:
        lines.append("")
        lines.append(f"{len(problems)} continuity problem(s):")
        lines.extend(f"  - {p}" for p in problems)
    else:
        lines.append("")
        lines.append("trace continuity: ok")
    return "\n".join(lines)
