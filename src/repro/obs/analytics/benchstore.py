"""Continuous-benchmark store: pinned scenario suites, persisted sessions.

A *bench session* runs a pinned suite of (n, b, nb, precision) scenarios
``repeats`` times each and persists every repeat's wall time and
per-phase breakdown as one versioned ``BENCH_<suite>.json`` under
``runs/``, together with an environment fingerprint (platform, Python,
NumPy, CPU count) so sessions from different machines are never compared
silently.  Two sessions feed the regression detector
(:mod:`~repro.obs.analytics.regress`); the CI perf-smoke job runs the
``smoke`` suite against a committed baseline on every push.

The suites are deliberately *pinned*: scenario keys are stable across
PRs, so a stored session from PR N is comparable with PR N+5.  Add new
scenarios rather than mutating existing ones.

Timing uses the injectable telemetry clock (:mod:`repro.obs.spans`), so
the store's statistics are testable with a deterministic fake clock.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass

from ...ioutils import atomic_write_json
from ..live import MetricsRegistry, use_registry
from ..spans import collect

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchScenario",
    "SUITES",
    "run_suite",
    "make_session",
    "write_session",
    "load_session",
    "default_session_path",
]

BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchScenario:
    """One pinned benchmark configuration.

    The ``key`` is the join identity between sessions — never reuse a
    key for a different configuration.

    ``stage`` selects what is timed: ``"evd"`` runs the full two-stage
    eigensolver, ``"sbr"`` runs only the stage-1 band reduction (the
    paper's hot loop — large-``n`` scenarios use this, since the
    pure-Python bulge chase would dwarf the GEMM stream being measured),
    and ``"svd_banded"`` runs the two-stage banded SVD on an
    upper-banded slice of the scenario matrix.
    ``workspace`` (``"on"``/``"off"``), ``lookahead``, ``abft``, and
    ``bulge_variant`` are layered knobs forwarded to the target driver
    *only when its signature supports them*, so a session recorded on an
    older tree stays comparable.  ``abft="detect"`` prices the
    online-ABFT verification overhead on the GEMM stream;
    ``bulge_variant="wavefront"`` routes stage 2 through the batched
    WY/GEMM chase instead of the scalar Givens loop.
    """

    key: str
    n: int
    b: int
    nb: int | None = None
    precision: str = "fp32"
    method: str = "wy"
    want_vectors: bool = False
    tridiag_solver: str = "dc"
    seed: int = 1234
    stage: str = "evd"
    workspace: str = "on"
    lookahead: bool = False
    abft: str = "off"
    bulge_variant: str = "givens"


#: Pinned suites.  ``smoke`` is the CI gate: small sizes, seconds per
#: scenario.  ``standard`` is the local trajectory suite.
SUITES: dict[str, tuple[BenchScenario, ...]] = {
    "smoke": (
        BenchScenario("wy-fp32-n128", n=128, b=8, nb=32),
        BenchScenario("wy-fp32-n256", n=256, b=16, nb=64),
        BenchScenario("zy-fp32-n128", n=128, b=8, method="zy"),
        BenchScenario("wy-fp16-n128", n=128, b=8, nb=32, precision="fp16_tc"),
        BenchScenario("sbr-wy-fp32-n256", n=256, b=16, nb=64, stage="sbr"),
    ),
    "standard": (
        BenchScenario("wy-fp32-n128", n=128, b=8, nb=32),
        BenchScenario("wy-fp32-n256", n=256, b=16, nb=64),
        BenchScenario("wy-fp32-n512", n=512, b=16, nb=64),
        BenchScenario("zy-fp32-n256", n=256, b=16, method="zy"),
        BenchScenario("wy-fp16-n256", n=256, b=16, nb=64, precision="fp16_tc"),
        BenchScenario("wy-ec-n256", n=256, b=16, nb=64, precision="fp16_ec_tc"),
        BenchScenario("wy-fp32-n256-vec", n=256, b=16, nb=64, want_vectors=True),
        # Stage-1-only hot-loop scenarios (PR 5): the paper's target shape
        # at n=1024, plus a workspace on/off pair isolating the arena.
        # Look-ahead stays off here: overlap needs a second core to pay
        # for its thread handoff, and the suite must be comparable on
        # single-core CI runners (bitwise identity with the serial
        # schedule is covered by tests, not benchmarks).
        BenchScenario(
            "sbr-wy-ec-n1024", n=1024, b=32, nb=256,
            precision="fp16_ec_tc", stage="sbr",
        ),
        BenchScenario(
            "sbr-wy-ec-n512-ws", n=512, b=32, nb=128,
            precision="fp16_ec_tc", stage="sbr",
        ),
        BenchScenario(
            "sbr-wy-ec-n512-nows", n=512, b=32, nb=128,
            precision="fp16_ec_tc", stage="sbr", workspace="off",
        ),
        # Online-ABFT overhead row (PR 9): same shape as wy-fp32-n256,
        # but every GEMM launch is checksum-verified in detect mode —
        # the pair prices the verification tax for the regression gate.
        BenchScenario(
            "wy-fp32-n256-abft", n=256, b=16, nb=64, abft="detect",
        ),
        # Stage-2 wavefront row (PR 10): the paper's target shape with the
        # batched WY bulge chase in place of the scalar Givens loop —
        # ``syevd/bulge`` here vs ``wy-fp32-n512``'s is the stage-2 win
        # the regression gate protects.
        BenchScenario(
            "bulge-wavefront-n1024", n=1024, b=32, nb=128,
            bulge_variant="wavefront",
        ),
        # Two-stage banded SVD (PR 10): band→bidiagonal bulge chasing +
        # Golub–Kahan on an upper-banded n=512 matrix.
        BenchScenario("svd-banded-n512", n=512, b=16, stage="svd_banded"),
    ),
}


def environment_fingerprint() -> dict:
    """Where a session was measured (joined into every session file)."""
    import platform

    try:
        import numpy as np

        numpy_version = np.__version__
    except Exception:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = None
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "cpu_count": os.cpu_count(),
    }


def _collector_phases(session) -> dict[str, float]:
    """Phase-path -> seconds of one collected run (driver-level phases).

    Mirrors :meth:`RunManifest.phase_paths`: with one root span the
    phases are its direct children, otherwise the roots themselves.
    """
    roots = {s.path for s in session.spans if s.depth == 0}
    depth = 1 if len(roots) == 1 and any(s.depth == 1 for s in session.spans) else 0
    out: dict[str, float] = {}
    for s in session.spans:
        if s.depth == depth:
            out[s.path] = out.get(s.path, 0.0) + s.duration
    return out


def _perf_kwargs(sc: BenchScenario, fn) -> dict:
    """Perf-layer kwargs (workspace/lookahead) the target driver supports.

    Non-default knobs are forwarded only when ``fn``'s signature has the
    parameter, so a suite definition referencing newer knobs still runs
    (and stays comparable) against an older driver.
    """
    import inspect

    params = inspect.signature(fn).parameters
    kwargs: dict = {}
    if sc.workspace == "off" and "workspace" in params:
        kwargs["workspace"] = False
    if sc.lookahead and "lookahead" in params:
        kwargs["lookahead"] = True
    if sc.abft != "off" and "abft" in params:
        kwargs["abft"] = sc.abft
    if sc.bulge_variant != "givens" and "bulge_variant" in params:
        kwargs["bulge_variant"] = sc.bulge_variant
    return kwargs


def _scenario_runner(sc: BenchScenario, syevd_2stage):
    """Bind one scenario to its timed callable (full EVD or SBR-only)."""
    if sc.stage == "evd":
        kwargs = _perf_kwargs(sc, syevd_2stage)

        def run(a):
            syevd_2stage(
                a, b=sc.b, nb=sc.nb, method=sc.method, precision=sc.precision,
                want_vectors=sc.want_vectors, tridiag_solver=sc.tridiag_solver,
                **kwargs,
            )

        return run
    if sc.stage == "svd_banded":
        import numpy as np

        from ...svd.banded import svd_banded

        kwargs = _perf_kwargs(sc, svd_banded)

        def run(a):
            # Upper-banded slice of the scenario matrix, bandwidth sc.b.
            banded = np.triu(a) - np.triu(a, sc.b + 1)
            svd_banded(banded, sc.b, **kwargs)

        return run
    if sc.stage != "sbr":
        raise ValueError(
            f"unknown bench stage {sc.stage!r}; "
            "expected 'evd', 'sbr' or 'svd_banded'"
        )

    from ...gemm.engine import make_engine
    from ...sbr.wy import sbr_wy
    from ...sbr.zy import sbr_zy

    if sc.method == "wy":
        nb = sc.nb if sc.nb is not None else 4 * sc.b
        kwargs = _perf_kwargs(sc, sbr_wy)

        def run(a):
            sbr_wy(
                a, sc.b, nb, engine=make_engine(sc.precision),
                want_q=sc.want_vectors, **kwargs,
            )

        return run
    kwargs = _perf_kwargs(sc, sbr_zy)

    def run(a):
        sbr_zy(
            a, sc.b, engine=make_engine(sc.precision),
            want_q=sc.want_vectors, **kwargs,
        )

    return run


def run_suite(
    suite: str = "smoke",
    *,
    repeats: int = 3,
    scenarios: "tuple[BenchScenario, ...] | None" = None,
    clock=None,
) -> dict:
    """Run one suite and return the session dict (not yet persisted).

    Parameters
    ----------
    suite : str
        Suite name (``smoke`` / ``standard``); the session records it.
    repeats : int
        Timed repetitions per scenario (medians feed the regression
        gate; >= 2 recommended so bootstrap CIs exist).
    scenarios : tuple of BenchScenario, optional
        Explicit scenario list (tests use this); default: ``SUITES[suite]``.
    clock : callable, optional
        Deterministic time source forwarded to the telemetry collector.
    """
    import numpy as np

    from ...eig.driver import syevd_2stage
    from ...matrices import generate_symmetric

    if scenarios is None:
        if suite not in SUITES:
            raise ValueError(f"unknown suite {suite!r}; expected one of {sorted(SUITES)}")
        scenarios = SUITES[suite]
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")

    clk = clock if clock is not None else time.perf_counter
    rows = []
    for sc in scenarios:
        a, _ = generate_symmetric(
            sc.n, distribution="geo", cond=1e3, rng=np.random.default_rng(sc.seed)
        )
        run = _scenario_runner(sc, syevd_2stage)
        wall: list[float] = []
        phases: dict[str, list[float]] = {}
        # One live registry per scenario: the merged GEMM latency sketch
        # over all repeats lands in the row as quantiles (p50/p90/p99).
        reg = MetricsRegistry(clock=clk)
        for _ in range(repeats):
            t0 = clk()
            with use_registry(reg), collect(clock=clk) as session:
                run(a)
            wall.append(clk() - t0)
            for path, secs in _collector_phases(session).items():
                phases.setdefault(path, []).append(secs)
        latency = reg.histogram_merged("repro_gemm_latency_seconds")
        rows.append({
            "key": sc.key, "config": asdict(sc), "wall": wall, "phases": phases,
            "gemm_latency": latency.summary() if len(latency) else None,
        })

    return {
        "kind": "bench_session",
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "repeats": repeats,
        "env": environment_fingerprint(),
        "scenarios": rows,
    }


def make_session(
    suite: str,
    scenarios: "list[dict]",
    *,
    repeats: int = 1,
    extra: "dict | None" = None,
) -> dict:
    """Build a bench-session dict from externally measured scenario rows.

    For producers that are not solver re-runs — the serving layer records
    one row per priority class with ``wall`` holding the observed
    per-request latencies — so their sessions flow through the same
    :func:`write_session` / :func:`load_session` / regression-gate path
    as the solver suites.  Each row must carry ``key`` (the join
    identity) and a ``wall`` list; everything else rides along verbatim.
    """
    for row in scenarios:
        if not isinstance(row, dict) or "key" not in row:
            raise ValueError(f"scenario row missing 'key': {row!r}")
        if not isinstance(row.get("wall"), list):
            raise ValueError(f"scenario {row.get('key')!r} missing 'wall' list")
    session = {
        "kind": "bench_session",
        "schema": BENCH_SCHEMA_VERSION,
        "suite": suite,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "repeats": repeats,
        "env": environment_fingerprint(),
        "scenarios": list(scenarios),
    }
    if extra:
        session.update(extra)
    return session


def default_session_path(suite: str, run_dir: str = "runs") -> str:
    return os.path.join(run_dir, f"BENCH_{suite}.json")


def write_session(session: dict, path: str | None = None, *, run_dir: str = "runs") -> str:
    """Persist a session as ``BENCH_<suite>.json`` (returns the path).

    The write is crash-safe: the session is serialized in memory and
    committed with one atomic rename, so a concurrent reader (or the
    regression gate after a killed bench run) never sees a torn file.
    """
    if path is None:
        path = default_session_path(session.get("suite", "suite"), run_dir)
    return atomic_write_json(path, session, indent=1)


def load_session(path: str) -> dict:
    """Load and validate one persisted bench session."""
    with open(path) as fh:
        try:
            session = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"{path}: not a bench session: {exc}") from None
    if not isinstance(session, dict) or session.get("kind") != "bench_session":
        raise ValueError(f"{path}: not a bench session (missing kind discriminator)")
    schema = session.get("schema")
    if not isinstance(schema, int) or schema > BENCH_SCHEMA_VERSION or schema < 1:
        raise ValueError(
            f"{path}: bench-session schema {schema!r} is outside the supported "
            f"range [1, {BENCH_SCHEMA_VERSION}]"
        )
    if not isinstance(session.get("scenarios"), list):
        raise ValueError(f"{path}: bench session has no scenario list")
    return session
