"""Trace exporters: Chrome-trace JSON and collapsed-stack flamegraphs.

Two standard visualization formats over one manifest:

- :func:`to_chrome_trace` — the Chrome Trace Event format (the JSON
  array-of-events layout understood by ``chrome://tracing``, Perfetto's
  legacy importer, and speedscope).  Spans become complete (``"ph": "X"``)
  events on the span thread; GEMM events with a recorded start (schema
  v2 manifests) become complete events on a separate "gemm" thread, so
  the kernel stream renders as its own lane under the phase timeline.
- :func:`to_collapsed_stacks` — Brendan Gregg's folded-stack format
  (``a;b;c <value>`` per line), consumable by ``flamegraph.pl`` and
  speedscope.  Values are *self* microseconds: each path's total time
  minus the time of its direct children, so the flamegraph's widths sum
  correctly instead of double-counting nested spans.

Pure standard-library transforms over :class:`~repro.obs.manifest.RunManifest`
— importable everywhere, no numeric dependencies.
"""

from __future__ import annotations

from ..manifest import RunManifest, load_manifest

__all__ = ["to_chrome_trace", "to_collapsed_stacks"]

#: Synthetic pid/tids of the exported trace (one process, two lanes).
_PID = 1
_TID_SPANS = 1
_TID_GEMM = 2


def _resolve(m: "RunManifest | str") -> RunManifest:
    return m if isinstance(m, RunManifest) else load_manifest(m)


def to_chrome_trace(manifest: "RunManifest | str") -> dict:
    """Convert one manifest to a Chrome Trace Event JSON object.

    Returns the dict form (``{"traceEvents": [...], ...}``); serialize
    with ``json.dump`` and load the file in ``chrome://tracing`` or
    Perfetto.  Timestamps are microseconds relative to the collector
    epoch, durations clamped non-negative, as the format requires.
    """
    man = _resolve(manifest)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_SPANS,
            "args": {"name": f"repro: {man.label or 'run'}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_SPANS,
            "args": {"name": "phase spans"},
        },
    ]
    for s in man.spans:
        args: dict = {"path": s.path, "depth": s.depth}
        if s.counters:
            args["counters"] = dict(s.counters)
        if s.meta:
            args.update({k: v for k, v in s.meta.items() if k not in args})
        events.append({
            "name": s.name,
            "cat": "span",
            "ph": "X",
            "ts": max(s.start, 0.0) * 1e6,
            "dur": max(s.duration, 0.0) * 1e6,
            "pid": _PID,
            "tid": _TID_SPANS,
            "args": args,
        })

    placed = [ev for ev in man.gemm_events if ev.get("start", -1.0) >= 0.0]
    if placed:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_GEMM,
            "args": {"name": "gemm stream"},
        })
        for ev in placed:
            shape = f"{ev['m']}x{ev['n']}x{ev['k']}"
            events.append({
                "name": f"{ev.get('tag') or ev.get('op', 'gemm')} {shape}",
                "cat": "gemm",
                "ph": "X",
                "ts": ev["start"] * 1e6,
                "dur": max(ev["seconds"], 0.0) * 1e6,
                "pid": _PID,
                "tid": _TID_GEMM,
                "args": {
                    "m": ev["m"], "n": ev["n"], "k": ev["k"],
                    "tag": ev.get("tag", ""),
                    "engine": ev.get("engine", ""),
                    "op": ev.get("op", "gemm"),
                    "span_path": ev.get("span_path", ""),
                    "gflops": (
                        2.0 * ev["m"] * ev["n"] * ev["k"] / ev["seconds"] / 1e9
                        if ev["seconds"] > 0 else 0.0
                    ),
                },
            })

    other: dict = {"schema": man.meta.get("schema")}
    for key in ("label", "precision", "created"):
        if key in man.meta:
            other[key] = man.meta[key]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def to_collapsed_stacks(manifest: "RunManifest | str") -> str:
    """Convert one manifest to folded flamegraph stacks.

    One line per span path: ``root;child;leaf <self-microseconds>``.
    Self time is the path's total duration minus its direct children's
    total (clamped at zero — overlapping threads can make children sum
    past the parent), so stack widths nest correctly.
    """
    man = _resolve(manifest)
    totals = man.time_by_path()
    child_sum: dict[str, float] = {}
    for s in man.spans:
        if "/" in s.path:
            parent = s.path.rsplit("/", 1)[0]
            child_sum[parent] = child_sum.get(parent, 0.0) + s.duration

    lines = []
    for path in totals:  # insertion order: first-seen
        self_us = (totals[path] - child_sum.get(path, 0.0)) * 1e6
        lines.append(f"{path.replace('/', ';')} {max(int(round(self_us)), 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
