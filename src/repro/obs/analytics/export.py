"""Trace exporters: Chrome-trace JSON and collapsed-stack flamegraphs.

Two standard visualization formats over one manifest:

- :func:`to_chrome_trace` — the Chrome Trace Event format (the JSON
  array-of-events layout understood by ``chrome://tracing``, Perfetto's
  legacy importer, and speedscope).  Spans become complete (``"ph": "X"``)
  events on the span thread; GEMM events with a recorded start (schema
  v2 manifests) become complete events on a separate "gemm" thread, so
  the kernel stream renders as its own lane under the phase timeline.
- :func:`to_collapsed_stacks` — Brendan Gregg's folded-stack format
  (``a;b;c <value>`` per line), consumable by ``flamegraph.pl`` and
  speedscope.  Values are *self* microseconds: each path's total time
  minus the time of its direct children, so the flamegraph's widths sum
  correctly instead of double-counting nested spans.

A third exporter renders a whole *soak run* (the serving layer's
``manifest.jsonl``) as one timeline: :func:`serve_trace_to_chrome` lays
every job's lifecycle events out on per-worker lanes plus a "service"
lane (admission, queue waits), and draws async flow arrows (``ph``
``s``/``f``) between consecutive attempts of the same job — so a
preempted-then-resumed job reads as one connected story across workers.

Pure standard-library transforms over :class:`~repro.obs.manifest.RunManifest`
— importable everywhere, no numeric dependencies.
"""

from __future__ import annotations

from ..manifest import RunManifest, load_manifest
from ..tracing import load_serve_manifest

__all__ = ["to_chrome_trace", "to_collapsed_stacks", "serve_trace_to_chrome"]

#: Synthetic pid/tids of the exported trace (one process, two lanes).
_PID = 1
_TID_SPANS = 1
_TID_GEMM = 2


def _resolve(m: "RunManifest | str") -> RunManifest:
    return m if isinstance(m, RunManifest) else load_manifest(m)


def to_chrome_trace(manifest: "RunManifest | str") -> dict:
    """Convert one manifest to a Chrome Trace Event JSON object.

    Returns the dict form (``{"traceEvents": [...], ...}``); serialize
    with ``json.dump`` and load the file in ``chrome://tracing`` or
    Perfetto.  Timestamps are microseconds relative to the collector
    epoch, durations clamped non-negative, as the format requires.
    """
    man = _resolve(manifest)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_SPANS,
            "args": {"name": f"repro: {man.label or 'run'}"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_SPANS,
            "args": {"name": "phase spans"},
        },
    ]
    for s in man.spans:
        args: dict = {"path": s.path, "depth": s.depth}
        if s.counters:
            args["counters"] = dict(s.counters)
        if s.meta:
            args.update({k: v for k, v in s.meta.items() if k not in args})
        events.append({
            "name": s.name,
            "cat": "span",
            "ph": "X",
            "ts": max(s.start, 0.0) * 1e6,
            "dur": max(s.duration, 0.0) * 1e6,
            "pid": _PID,
            "tid": _TID_SPANS,
            "args": args,
        })

    placed = [ev for ev in man.gemm_events if ev.get("start", -1.0) >= 0.0]
    if placed:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": _PID,
            "tid": _TID_GEMM,
            "args": {"name": "gemm stream"},
        })
        for ev in placed:
            shape = f"{ev['m']}x{ev['n']}x{ev['k']}"
            events.append({
                "name": f"{ev.get('tag') or ev.get('op', 'gemm')} {shape}",
                "cat": "gemm",
                "ph": "X",
                "ts": ev["start"] * 1e6,
                "dur": max(ev["seconds"], 0.0) * 1e6,
                "pid": _PID,
                "tid": _TID_GEMM,
                "args": {
                    "m": ev["m"], "n": ev["n"], "k": ev["k"],
                    "tag": ev.get("tag", ""),
                    "engine": ev.get("engine", ""),
                    "op": ev.get("op", "gemm"),
                    "span_path": ev.get("span_path", ""),
                    "gflops": (
                        2.0 * ev["m"] * ev["n"] * ev["k"] / ev["seconds"] / 1e9
                        if ev["seconds"] > 0 else 0.0
                    ),
                },
            })

    # Async flow arrows between spans that share a request trace id
    # (lifecycle spans + traced solver roots): consecutive spans of one
    # trace link start-to-end, so a multi-invocation request reads as a
    # connected chain on the timeline.
    by_trace: dict[str, list] = {}
    for s in man.spans:
        tid = (s.meta or {}).get("trace_id")
        if tid:
            by_trace.setdefault(tid, []).append(s)
    for trace_id in by_trace:
        chain = sorted(by_trace[trace_id], key=lambda s: s.start)
        if len(chain) < 2:
            continue
        for a, b in zip(chain, chain[1:]):
            common = {
                "name": "trace", "cat": "trace", "id": trace_id,
                "pid": _PID, "tid": _TID_SPANS,
            }
            events.append({
                **common, "ph": "s",
                "ts": max(a.start + a.duration, 0.0) * 1e6,
            })
            events.append({
                **common, "ph": "f", "bp": "e",
                "ts": max(b.start, 0.0) * 1e6,
            })

    other: dict = {"schema": man.meta.get("schema")}
    for key in ("label", "precision", "created"):
        if key in man.meta:
            other[key] = man.meta[key]
    if man.meta.get("trace"):
        other["trace"] = man.meta["trace"]
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


#: Service lane of the soak timeline (workers get 2, 3, ...).
_TID_SERVICE = 1


def serve_trace_to_chrome(source: "list[dict] | str") -> dict:
    """Render a serving soak's manifest as one Chrome-trace timeline.

    Parameters
    ----------
    source : list of dict, or str
        ``serve_job`` manifest records, or a path to the spool directory
        / ``manifest.jsonl`` to load them from.

    Returns
    -------
    dict
        Chrome Trace Event JSON: one synthetic process, a "service"
        lane carrying admission/queue-wait/result events and one lane
        per worker carrying the attempts it ran.  Consecutive attempts
        of the same job are linked with async flow arrows keyed by the
        job's trace id, so preempted-and-resumed work is visually one
        thread even when it migrated between workers.
    """
    records = (
        load_serve_manifest(source) if isinstance(source, str) else source
    )
    workers = sorted({
        ev["worker"]
        for rec in records
        for ev in (rec.get("timeline") or [])
        if isinstance(ev, dict) and ev.get("worker")
        and ev.get("name") == "serve.attempt"
    })
    lane = {w: i + _TID_SERVICE + 1 for i, w in enumerate(workers)}
    events: list[dict] = [
        {
            "name": "process_name", "ph": "M", "pid": _PID,
            "tid": _TID_SERVICE, "args": {"name": "repro: serve soak"},
        },
        {
            "name": "thread_name", "ph": "M", "pid": _PID,
            "tid": _TID_SERVICE, "args": {"name": "service"},
        },
    ]
    for w in workers:
        events.append({
            "name": "thread_name", "ph": "M", "pid": _PID,
            "tid": lane[w], "args": {"name": w},
        })

    for rec in records:
        trace_id = (rec.get("trace") or {}).get("trace_id", "")
        attempts: list[tuple[dict, int]] = []
        for ev in rec.get("timeline") or []:
            if not isinstance(ev, dict) or "name" not in ev:
                continue
            is_attempt = ev["name"] == "serve.attempt"
            # Attempts render on the worker that ran them; everything
            # else (admit, queue_wait, backoff, result, preempt marks)
            # narrates on the service lane.
            tid = lane.get(ev.get("worker"), _TID_SERVICE) if is_attempt \
                else _TID_SERVICE
            name = ev["name"]
            if is_attempt and ev.get("attempt") is not None:
                name = f"serve.attempt[{ev['attempt']}]"
            args = {
                "job": rec.get("job"),
                "trace_id": trace_id,
                "span_id": ev.get("span_id"),
                "parent_id": ev.get("parent_id"),
            }
            for key in ("attempt", "outcome", "precision", "reason",
                        "retry_kind", "link_from", "worker", "priority"):
                if ev.get(key) is not None:
                    args[key] = ev[key]
            events.append({
                "name": name,
                "cat": "serve",
                "ph": "X",
                "ts": max(float(ev.get("t", 0.0)), 0.0) * 1e6,
                "dur": max(float(ev.get("dur", 0.0)), 0.0) * 1e6,
                "pid": _PID,
                "tid": tid,
                "args": args,
            })
            if is_attempt:
                attempts.append((ev, tid))

        # Flow arrows: attempt k's end -> attempt k+1's start.
        attempts.sort(key=lambda pair: float(pair[0].get("t", 0.0)))
        flow_id = trace_id or rec.get("job", "")
        for (a, tid_a), (b, tid_b) in zip(attempts, attempts[1:]):
            common = {
                "name": rec.get("job", "job"), "cat": "serve.flow",
                "id": flow_id, "pid": _PID,
            }
            events.append({
                **common, "ph": "s", "tid": tid_a,
                "ts": (float(a.get("t", 0.0)) + float(a.get("dur", 0.0)))
                * 1e6,
            })
            events.append({
                **common, "ph": "f", "bp": "e", "tid": tid_b,
                "ts": float(b.get("t", 0.0)) * 1e6,
            })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "jobs": len(records),
            "workers": workers,
            "traces": len({
                (rec.get("trace") or {}).get("trace_id") for rec in records
            } - {None}),
        },
    }


def to_collapsed_stacks(manifest: "RunManifest | str") -> str:
    """Convert one manifest to folded flamegraph stacks.

    One line per span path: ``root;child;leaf <self-microseconds>``.
    Self time is the path's total duration minus its direct children's
    total (clamped at zero — overlapping threads can make children sum
    past the parent), so stack widths nest correctly.
    """
    man = _resolve(manifest)
    totals = man.time_by_path()
    child_sum: dict[str, float] = {}
    for s in man.spans:
        if "/" in s.path:
            parent = s.path.rsplit("/", 1)[0]
            child_sum[parent] = child_sum.get(parent, 0.0) + s.duration

    lines = []
    for path in totals:  # insertion order: first-seen
        self_us = (totals[path] - child_sum.get(path, 0.0)) * 1e6
        lines.append(f"{path.replace('/', ';')} {max(int(round(self_us)), 0)}")
    return "\n".join(lines) + ("\n" if lines else "")
