"""Statistical regression detection between two bench sessions.

The gate compares scenario medians with a **bootstrap confidence
interval** over the recorded repeats: a scenario is a *regression* only
when (1) the median slowdown exceeds the tolerance and (2) the lower
bound of the bootstrap CI of the slowdown also exceeds it — a slowdown
the repeat-to-repeat noise could explain downgrades to ``suspect`` and
does not gate.  Identical sessions therefore always pass, and a
deterministic >= 2x slowdown always fails, independent of repeat count.

Pure standard library (``statistics`` + ``random``): the gate runs
anywhere the CLI does, with a fixed bootstrap seed so verdicts are
reproducible.
"""

from __future__ import annotations

import random
import statistics

from .benchstore import load_session

__all__ = [
    "DEFAULT_TOLERANCE",
    "compare_sessions",
    "has_regressions",
    "render_regression",
]

#: Relative median slowdown above which a scenario can gate.
DEFAULT_TOLERANCE = 0.25


def _median(xs: list) -> float | None:
    xs = [x for x in xs if isinstance(x, (int, float))]
    return statistics.median(xs) if xs else None


def _bootstrap_ci(
    wa: list[float],
    wb: list[float],
    *,
    confidence: float,
    resamples: int,
    seed: int,
) -> tuple[float, float]:
    """Bootstrap CI of the relative slowdown of medians ((mb-ma)/ma)."""
    rng = random.Random(seed)
    deltas = []
    for _ in range(resamples):
        sa = statistics.median(rng.choices(wa, k=len(wa)))
        sb = statistics.median(rng.choices(wb, k=len(wb)))
        if sa > 0:
            deltas.append((sb - sa) / sa)
    if not deltas:
        return (0.0, 0.0)
    deltas.sort()
    alpha = (1.0 - confidence) / 2.0
    lo = deltas[min(int(alpha * len(deltas)), len(deltas) - 1)]
    hi = deltas[min(int((1.0 - alpha) * len(deltas)), len(deltas) - 1)]
    return (lo, hi)


def compare_sessions(
    baseline: "dict | str",
    candidate: "dict | str",
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    confidence: float = 0.95,
    resamples: int = 1000,
    seed: int = 20230225,
) -> list[dict]:
    """Join two bench sessions by scenario key and attach verdicts.

    Returns one dict per scenario (baseline order first, then
    candidate-only keys): ``key``, ``median_a``, ``median_b``, ``delta``
    (relative change of medians), ``ci`` (bootstrap interval of the
    delta), ``verdict`` in ``{"regression", "suspect", "improved", "ok",
    "missing"}``, and ``phases`` (per-phase median deltas, context only
    — phase noise does not gate).

    ``baseline`` / ``candidate`` accept session dicts or file paths.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    sa = baseline if isinstance(baseline, dict) else load_session(baseline)
    sb = candidate if isinstance(candidate, dict) else load_session(candidate)
    rows_a = {row["key"]: row for row in sa.get("scenarios", [])}
    rows_b = {row["key"]: row for row in sb.get("scenarios", [])}
    keys = list(rows_a) + [k for k in rows_b if k not in rows_a]

    out: list[dict] = []
    for key in keys:
        ra, rb = rows_a.get(key), rows_b.get(key)
        wa = list(ra.get("wall", [])) if ra else []
        wb = list(rb.get("wall", [])) if rb else []
        ma, mb = _median(wa), _median(wb)
        entry: dict = {
            "key": key, "median_a": ma, "median_b": mb,
            "delta": None, "ci": None, "verdict": "missing", "phases": {},
        }
        if ma is not None and mb is not None and ma > 0:
            delta = (mb - ma) / ma
            ci = _bootstrap_ci(
                wa, wb, confidence=confidence, resamples=resamples, seed=seed
            )
            if delta > tolerance:
                entry["verdict"] = "regression" if ci[0] > tolerance else "suspect"
            elif delta < -tolerance:
                entry["verdict"] = "improved"
            else:
                entry["verdict"] = "ok"
            entry["delta"] = delta
            entry["ci"] = ci
            for path in set(ra.get("phases", {})) | set(rb.get("phases", {})):
                pa = _median(ra.get("phases", {}).get(path, []))
                pb = _median(rb.get("phases", {}).get(path, []))
                entry["phases"][path] = {
                    "a": pa,
                    "b": pb,
                    "delta": (pb - pa) / pa
                    if pa is not None and pb is not None and pa > 0 else None,
                }
        out.append(entry)
    return out


def has_regressions(entries: list[dict]) -> bool:
    """Whether any scenario gates (verdict ``regression``)."""
    return any(e["verdict"] == "regression" for e in entries)


def _fmt_s(s) -> str:
    if s is None:
        return "-"
    if s >= 1.0:
        return f"{s:.3f} s"
    return f"{s * 1e3:.2f} ms"


def render_regression(
    baseline: "dict | str",
    candidate: "dict | str",
    *,
    tolerance: float = DEFAULT_TOLERANCE,
    confidence: float = 0.95,
    entries: "list[dict] | None" = None,
) -> str:
    """Text report of the scenario-level comparison (the CLI output)."""
    sa = baseline if isinstance(baseline, dict) else load_session(baseline)
    sb = candidate if isinstance(candidate, dict) else load_session(candidate)
    if entries is None:
        entries = compare_sessions(
            sa, sb, tolerance=tolerance, confidence=confidence
        )

    lines = [
        f"bench regress: suite A={sa.get('suite', '?')} "
        f"({sa.get('created', '?')}, {sa.get('repeats', '?')} repeats)  "
        f"B={sb.get('suite', '?')} "
        f"({sb.get('created', '?')}, {sb.get('repeats', '?')} repeats)",
    ]
    env_a, env_b = sa.get("env", {}), sb.get("env", {})
    mismatched = [k for k in env_a if k in env_b and env_a[k] != env_b[k]]
    if mismatched:
        lines.append(
            "WARNING: environment differs between sessions "
            f"({', '.join(f'{k}: {env_a[k]!r} vs {env_b[k]!r}' for k in mismatched)}) "
            "— absolute deltas are not meaningful across machines"
        )
    lines.append("")

    headers = ["scenario", "A median", "B median", "delta", "CI", "verdict"]
    widths = [len(h) for h in headers]
    rows = []
    for e in entries:
        delta, ci = e["delta"], e["ci"]
        rows.append([
            e["key"],
            _fmt_s(e["median_a"]),
            _fmt_s(e["median_b"]),
            f"{delta * 100.0:+.1f}%" if delta is not None else "-",
            f"[{ci[0] * 100.0:+.1f}%, {ci[1] * 100.0:+.1f}%]" if ci else "-",
            e["verdict"].upper() if e["verdict"] == "regression" else e["verdict"],
        ])
        widths = [max(w, len(c)) for w, c in zip(widths, rows[-1])]
    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    lines.append(line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(line(r) for r in rows)

    for e in entries:
        if e["verdict"] in ("regression", "suspect"):
            worst = [
                (p, d["delta"]) for p, d in e["phases"].items()
                if d["delta"] is not None
            ]
            worst.sort(key=lambda x: x[1], reverse=True)
            if worst:
                top = ", ".join(f"{p} {d * 100.0:+.0f}%" for p, d in worst[:3])
                lines.append(f"  {e['key']}: slowest-moving phases: {top}")

    n_reg = sum(1 for e in entries if e["verdict"] == "regression")
    n_sus = sum(1 for e in entries if e["verdict"] == "suspect")
    lines.append("")
    lines.append(
        f"{n_reg} regression(s), {n_sus} suspect beyond "
        f"{tolerance * 100.0:.0f}% at {confidence * 100.0:.0f}% confidence"
    )
    return "\n".join(lines)
