"""Model-vs-measured attribution: join GEMM events to their predictions.

Every measured :class:`~repro.obs.spans.GemmEvent` in a manifest has an
analytic prediction: the Table-1-calibrated
:class:`~repro.device.perf_model.PerfModel` prices its exact shape
(launch latency + max(compute, HBM roofline)).  Joining the two gives,
per phase and per semantic tag:

- **efficiency** — modeled seconds / measured seconds, i.e. the fraction
  of model-predicted speed actually achieved (1.0 = running exactly as
  fast as the model says the A100 would);
- **roofline classification** — which term of the model binds each call:
  ``compute`` (throughput-curve limited), ``launch`` (kernel-launch
  dominated: the small-shape regime the paper's WY transformation
  exists to escape), or ``bandwidth`` (HBM-bound);
- **ranked gaps** — phases ordered by excess measured time over the
  model: "where the time went vs where the model says it should go".

When the manifest's meta carries a ``syevd``-style config (``n``, ``b``,
``nb``, ``method``), the analytic flop counts of
:mod:`repro.metrics.flops` are joined in as well, reporting what share
of the algorithm's total arithmetic is visible through the engine layer
(panel BLAS2 work never routes through ``engine.gemm`` and shows up as
the gap).

The measured numbers here come from NumPy emulation on a CPU, so
absolute efficiencies against the A100 model are tiny; the value is the
*relative* structure (which phase/tag/shape class deviates most), which
is hardware-independent, and the mechanism itself, which transfers to a
real device unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..manifest import RunManifest, load_manifest

__all__ = [
    "ENGINE_MODEL",
    "AttributionReport",
    "attribute_manifest",
    "render_attribution",
]

#: Measured-engine name -> performance-model engine curve.  Engines with
#: no Tensor-Core analogue (float64 reference, the dtype-neutral plain
#: engine) price on the SGEMM curves — the closest SIMT-core proxy.
ENGINE_MODEL = {
    "tc": "tc",
    "ectc": "ectc",
    "sgemm": "sgemm",
    "fp64": "sgemm",
    "plain": "sgemm",
}

#: Operand bytes per element on the model device, by model engine.
_IN_BYTES = {"tc": 2, "sgemm": 4, "ectc": 4}

#: Phase bucket for events recorded outside any span.
UNATTRIBUTED = "(unattributed)"


@dataclass
class AttributionReport:
    """Joined model-vs-measured view of one manifest.

    ``phases`` / ``tags`` hold one dict per phase path / semantic tag:
    ``calls``, ``flops``, ``measured`` and ``modeled`` GEMM seconds,
    ``efficiency`` (modeled/measured), achieved and modeled GFLOP/s, and
    ``bound`` (modeled seconds by roofline class).  Phase rows add
    ``span_seconds`` (total phase wall time) and ``other_seconds``
    (span time not spent inside engine calls: panels, copies, Python).
    ``gaps`` ranks phases by measured-minus-modeled excess.
    """

    label: str
    device: str
    phases: list[dict] = field(default_factory=list)
    tags: list[dict] = field(default_factory=list)
    gaps: list[dict] = field(default_factory=list)
    totals: dict = field(default_factory=dict)
    analytic: dict | None = None
    #: Request trace id from the manifest meta line (None for runs not
    #: belonging to a served request) — the join key between attribution
    #: output and the serving layer's trace timelines.
    trace_id: "str | None" = None


def _event_model(ev: dict, model) -> tuple[float, str]:
    """Modeled seconds and roofline class of one event dict."""
    m, n, k = ev["m"], ev["n"], ev["k"]
    engine = ENGINE_MODEL.get(ev.get("engine", ""), "sgemm")
    in_b = _IN_BYTES[engine]
    if ev.get("op") == "syr2k":
        total = model.syr2k_time(m, k, engine)
        nbytes = in_b * 2.0 * m * k + 2.0 * m * m
    elif ev.get("op") == "gemm_batched":
        # One launch amortized over the whole stack of products.
        batch = ev.get("batch", 1)
        one = model.gemm_time(m, n, k, engine) - model.spec.kernel_launch
        total = model.spec.kernel_launch + batch * one
        nbytes = batch * (in_b * (m * k + k * n) + 4.0 * m * n)
    else:
        total = model.gemm_time(m, n, k, engine)
        nbytes = in_b * (m * k + k * n) + 4.0 * m * n
    launch = model.spec.kernel_launch
    max_term = total - launch
    memory = nbytes / model.spec.hbm_bandwidth
    if launch >= max_term:
        bound = "launch"
    elif memory >= max_term * (1.0 - 1e-12):
        bound = "bandwidth"
    else:
        bound = "compute"
    return total, bound


def _new_slot() -> dict:
    return {
        "calls": 0,
        "flops": 0,
        "measured": 0.0,
        "modeled": 0.0,
        "bound": {"compute": 0.0, "launch": 0.0, "bandwidth": 0.0},
    }


def _finish_slot(slot: dict) -> dict:
    measured, modeled, flops = slot["measured"], slot["modeled"], slot["flops"]
    slot["efficiency"] = modeled / measured if measured > 0 else None
    slot["achieved_gflops"] = flops / measured / 1e9 if measured > 0 else 0.0
    slot["modeled_gflops"] = flops / modeled / 1e9 if modeled > 0 else 0.0
    return slot


def _phase_of(span_path: str, phases: list[str]) -> str:
    for p in phases:
        if span_path == p or span_path.startswith(p + "/"):
            return p
    return UNATTRIBUTED


def _analytic_flops(man: RunManifest, measured_flops: int) -> dict | None:
    """Join the analytic operation counts of ``repro.metrics.flops``.

    Only possible when the manifest's meta records a band-reduction
    config; returns None (silently) otherwise — attribution still works
    on arbitrary sessions.
    """
    config = man.meta.get("config") or {}
    matrix = man.meta.get("matrix") or {}
    n, b, method = matrix.get("n"), config.get("b"), config.get("method")
    if not (isinstance(n, int) and isinstance(b, int) and method in ("wy", "zy")):
        return None
    want_q = bool(config.get("want_vectors", False))
    try:
        from ...metrics.flops import sbr_wy_flops, sbr_zy_flops

        if method == "wy":
            nb = config.get("nb")
            if not isinstance(nb, int):
                return None
            analytic = sbr_wy_flops(n, b, nb, want_q=want_q)
        else:
            analytic = sbr_zy_flops(n, b, want_q=want_q)
    except Exception:
        return None  # out-of-range config; analytic join is best-effort
    return {
        "sbr_flops": analytic,
        "measured_gemm_flops": measured_flops,
        "engine_flop_coverage": measured_flops / analytic if analytic else None,
    }


def attribute_manifest(
    manifest: "RunManifest | str",
    *,
    model=None,
) -> AttributionReport:
    """Join every GEMM event in a manifest to its model prediction.

    Parameters
    ----------
    manifest : RunManifest or path
        A manifest with a per-call event stream (``events="full"``).
    model : PerfModel, optional
        The pricing model (default: A100 :class:`~repro.device.perf_model.PerfModel`).

    Returns
    -------
    AttributionReport
    """
    man = manifest if isinstance(manifest, RunManifest) else load_manifest(manifest)
    if model is None:
        from ...device.perf_model import PerfModel

        model = PerfModel()

    phase_order = man.phase_paths()
    phase_times = man.phase_times()
    by_phase: dict[str, dict] = {}
    by_tag: dict[str, dict] = {}
    total = _new_slot()
    for ev in man.gemm_events:
        modeled, bound = _event_model(ev, model)
        flops = 2 * ev["m"] * ev["n"] * ev["k"] * ev.get("batch", 1)
        seconds = ev["seconds"]
        phase = _phase_of(ev.get("span_path", ""), phase_order)
        for slot in (
            by_phase.setdefault(phase, _new_slot()),
            by_tag.setdefault(ev.get("tag", "") or "<untagged>", _new_slot()),
            total,
        ):
            # A batched launch counts as batch-many products, matching
            # gemm_summary / gemm_by_phase and the live registry.
            slot["calls"] += ev.get("batch", 1)
            slot["flops"] += flops
            slot["measured"] += seconds
            slot["modeled"] += modeled
            slot["bound"][bound] += modeled

    phases = []
    for path in phase_order + ([UNATTRIBUTED] if UNATTRIBUTED in by_phase else []):
        slot = _finish_slot(by_phase.get(path, _new_slot()))
        slot["phase"] = path
        slot["span_seconds"] = phase_times.get(path, 0.0)
        slot["other_seconds"] = max(0.0, slot["span_seconds"] - slot["measured"])
        phases.append(slot)

    tags = []
    for tag in sorted(by_tag, key=lambda t: by_tag[t]["measured"], reverse=True):
        slot = _finish_slot(by_tag[tag])
        slot["tag"] = tag
        tags.append(slot)

    gaps = sorted(
        (
            {
                "phase": row["phase"],
                "measured": row["measured"],
                "modeled": row["modeled"],
                "excess": row["measured"] - row["modeled"],
            }
            for row in phases
            if row["calls"]
        ),
        key=lambda g: g["excess"],
        reverse=True,
    )

    return AttributionReport(
        label=man.label,
        device=model.spec.name,
        phases=phases,
        tags=tags,
        gaps=gaps,
        totals=_finish_slot(total),
        analytic=_analytic_flops(man, total["flops"]),
        trace_id=(man.meta.get("trace") or {}).get("trace_id"),
    )


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def _fmt_s(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    if s >= 1e-3:
        return f"{s * 1e3:.2f} ms"
    return f"{s * 1e6:.1f} us"


def _fmt_eff(e) -> str:
    return f"{e * 100.0:.2f}%" if e is not None else "-"


def _fmt_bound(bound: dict) -> str:
    total = sum(bound.values())
    if total <= 0:
        return "-"
    top = max(bound, key=lambda k: bound[k])
    return f"{top} ({bound[top] / total * 100.0:.0f}%)"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def render_attribution(report: AttributionReport) -> str:
    """Text rendering of an attribution report (the CLI output)."""
    lines = [
        f"attribution: {report.label or '<unlabeled>'}  model device: {report.device}"
        + (f"  trace: {report.trace_id}" if report.trace_id else ""),
        "efficiency = modeled time / measured time "
        "(100% = exactly the model's predicted speed)",
        "",
        "per phase:",
    ]
    rows = []
    for row in report.phases:
        rows.append([
            row["phase"],
            _fmt_s(row["span_seconds"]),
            str(row["calls"]),
            _fmt_s(row["measured"]),
            _fmt_s(row["modeled"]),
            _fmt_eff(row["efficiency"]),
            _fmt_bound(row["bound"]),
            _fmt_s(row["other_seconds"]),
        ])
    lines.append(_table(
        ["phase", "span", "gemms", "measured", "modeled", "eff", "bound", "non-gemm"],
        rows,
    ))

    if report.tags:
        lines += ["", "per tag:"]
        rows = [
            [
                row["tag"],
                str(row["calls"]),
                _fmt_s(row["measured"]),
                _fmt_s(row["modeled"]),
                _fmt_eff(row["efficiency"]),
                f"{row['achieved_gflops']:.2f}",
                f"{row['modeled_gflops']:.2f}",
                _fmt_bound(row["bound"]),
            ]
            for row in report.tags
        ]
        lines.append(_table(
            ["tag", "calls", "measured", "modeled", "eff",
             "GFLOP/s", "model GFLOP/s", "bound"],
            rows,
        ))

    if report.gaps:
        lines += ["", "where the time went vs where the model says it should go:"]
        for i, gap in enumerate(report.gaps, 1):
            rel = "over" if gap["excess"] >= 0 else "under"
            lines.append(
                f"  {i}. {gap['phase']}: {_fmt_s(abs(gap['excess']))} {rel} model "
                f"(measured {_fmt_s(gap['measured'])}, modeled {_fmt_s(gap['modeled'])})"
            )

    if report.analytic:
        cov = report.analytic.get("engine_flop_coverage")
        lines += [
            "",
            f"analytic check (repro.metrics.flops): SBR requires "
            f"{report.analytic['sbr_flops']:.3e} flops; engine-visible GEMMs "
            f"measured {report.analytic['measured_gemm_flops']:.3e}"
            + (f" ({cov * 100.0:.1f}% through the engine layer)" if cov else ""),
        ]

    t = report.totals
    lines += [
        "",
        f"total: {t['calls']} engine calls, measured {_fmt_s(t['measured'])}, "
        f"modeled {_fmt_s(t['modeled'])}, efficiency {_fmt_eff(t['efficiency'])}",
    ]
    return "\n".join(lines)
