"""repro.obs.analytics — interpret telemetry against the performance model.

PR 1's telemetry records *what happened* (spans, GEMM events, manifests);
this package says *what it means*:

- :mod:`~repro.obs.analytics.attribution` — join every measured GEMM
  event to its analytic prediction (the Table-1 rate model of
  :mod:`repro.device.perf_model`), producing per-phase and per-tag
  achieved-vs-modeled efficiency, roofline classification
  (compute- / launch- / bandwidth-bound), and a ranked
  "where the time went vs where the model says it should go" report.
- :mod:`~repro.obs.analytics.export` — turn a session into Chrome-trace
  JSON (``chrome://tracing`` / Perfetto) or collapsed-stack flamegraph
  format.
- :mod:`~repro.obs.analytics.benchstore` — run a pinned suite of
  (n, b, nb, precision) scenarios and persist them as versioned
  ``BENCH_<suite>.json`` sessions with environment fingerprints.
- :mod:`~repro.obs.analytics.regress` — statistical comparison of two
  bench sessions (median + bootstrap CI over repeats) with configurable
  tolerance: the regression gate every perf PR is judged by.

Like the rest of ``repro.obs``, module scope imports only the standard
library; the numeric model and solver imports are deferred into the
functions that need them.
"""

from .attribution import (
    AttributionReport,
    attribute_manifest,
    render_attribution,
)
from .benchstore import (
    BENCH_SCHEMA_VERSION,
    BenchScenario,
    SUITES,
    load_session,
    run_suite,
    write_session,
)
from .export import serve_trace_to_chrome, to_chrome_trace, to_collapsed_stacks
from .regress import compare_sessions, has_regressions, render_regression

__all__ = [
    "AttributionReport",
    "attribute_manifest",
    "render_attribution",
    "serve_trace_to_chrome",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "BENCH_SCHEMA_VERSION",
    "BenchScenario",
    "SUITES",
    "run_suite",
    "write_session",
    "load_session",
    "compare_sessions",
    "has_regressions",
    "render_regression",
]
