"""Telemetry CLI.

Usage::

    python -m repro.obs run [--n 256 --b 16 --nb 64 --precision fp32]
    python -m repro.obs report MANIFEST
    python -m repro.obs report --compare BASELINE CANDIDATE
    python -m repro.obs list [--dir runs]
"""

from __future__ import annotations

import argparse
import os
import sys

from .manifest import DEFAULT_RUN_DIR, load_manifest
from .report import REGRESSION_THRESHOLD, compare_phases, render_compare, render_report


def _cmd_run(args: argparse.Namespace) -> int:
    from .record import record_syevd

    run = record_syevd(
        n=args.n,
        b=args.b,
        nb=args.nb,
        method=args.method,
        precision=args.precision,
        want_vectors=not args.no_vectors,
        seed=args.seed,
        path=args.out,
        run_dir=args.dir,
        probes=not args.no_probes,
    )
    print(f"manifest written: {run.path}")
    print()
    print(render_report(load_manifest(run.path)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.compare:
        base, cand = args.compare
        print(render_compare(base, cand, threshold=args.threshold))
        if args.fail_on_regression:
            joined = compare_phases(base, cand, threshold=args.threshold)
            if any(e["verdict"] == "regression" for e in joined):
                return 2
        return 0
    if not args.manifest:
        print("error: a manifest path (or --compare A B) is required", file=sys.stderr)
        return 1
    print(render_report(args.manifest))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.dir):
        print(f"no manifests: directory {args.dir!r} does not exist")
        return 0
    names = sorted(n for n in os.listdir(args.dir) if n.endswith(".jsonl"))
    if not names:
        print(f"no manifests under {args.dir!r}")
        return 0
    for name in names:
        path = os.path.join(args.dir, name)
        try:
            man = load_manifest(path)
        except (ValueError, OSError) as exc:
            print(f"{path}  <unreadable: {exc}>")
            continue
        created = man.meta.get("created", "?")
        print(
            f"{path}  label={man.label or '?'}  created={created}  "
            f"wall={man.total_wall:.3f}s  spans={len(man.spans)}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry: instrumented runs, manifests, profiling reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="instrumented syevd_2stage run → manifest")
    p_run.add_argument("--n", type=int, default=256, help="matrix size")
    p_run.add_argument("--b", type=int, default=16, help="stage-1 bandwidth")
    p_run.add_argument("--nb", type=int, default=None, help="WY big-block size (default 4*b)")
    p_run.add_argument("--method", choices=("wy", "zy"), default="wy")
    p_run.add_argument(
        "--precision", default="fp32",
        help="stage-1 precision policy (fp64/fp32/fp16_tc/bf16_tc/tf32_tc/fp16_ec_tc)",
    )
    p_run.add_argument("--seed", type=int, default=0, help="test-matrix RNG seed")
    p_run.add_argument("--no-vectors", action="store_true", help="eigenvalues only")
    p_run.add_argument("--no-probes", action="store_true", help="skip accuracy probes")
    p_run.add_argument("--out", default=None, metavar="FILE", help="manifest path")
    p_run.add_argument("--dir", default=DEFAULT_RUN_DIR, help="manifest directory")
    p_run.set_defaults(func=_cmd_run)

    p_rep = sub.add_parser("report", help="per-phase breakdown or A/B comparison")
    p_rep.add_argument("manifest", nargs="?", help="manifest to report on")
    p_rep.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
        help="phase-level delta table between two manifests",
    )
    p_rep.add_argument(
        "--threshold", type=float, default=REGRESSION_THRESHOLD,
        help="relative slowdown flagged as regression (default 0.10)",
    )
    p_rep.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 2 when --compare finds a phase regression",
    )
    p_rep.set_defaults(func=_cmd_report)

    p_list = sub.add_parser("list", help="list manifests in a directory")
    p_list.add_argument("--dir", default=DEFAULT_RUN_DIR)
    p_list.set_defaults(func=_cmd_list)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
