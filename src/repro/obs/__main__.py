"""Telemetry CLI.

Usage::

    python -m repro.obs run [--n 256 --b 16 --nb 64 --precision fp32]
    python -m repro.obs run --live runs/live [--live-interval 1.0]
    python -m repro.obs live [DIR]
    python -m repro.obs report MANIFEST
    python -m repro.obs report --compare BASELINE CANDIDATE
    python -m repro.obs list [--dir runs]
    python -m repro.obs attribution MANIFEST
    python -m repro.obs export (--chrome | --flame) MANIFEST [-o FILE]
    python -m repro.obs trace SPOOL_DIR [--chrome -o FILE] [--check]
    python -m repro.obs bench [--suite smoke --repeats 3]
    python -m repro.obs regress BASELINE CANDIDATE [--tolerance 0.25]
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .analytics import (
    SUITES,
    attribute_manifest,
    compare_sessions,
    has_regressions,
    render_attribution,
    render_regression,
    run_suite,
    to_chrome_trace,
    to_collapsed_stacks,
    write_session,
)
from .analytics import serve_trace_to_chrome
from .analytics.regress import DEFAULT_TOLERANCE
from .manifest import DEFAULT_RUN_DIR, load_manifest
from .tracing import (
    check_trace_continuity,
    load_serve_manifest,
    render_trace_summary,
)
from .report import REGRESSION_THRESHOLD, compare_phases, render_compare, render_report


def _cmd_run(args: argparse.Namespace) -> int:
    from .record import record_syevd

    live = None
    if args.live is not None:
        from .live import LiveConfig

        live = LiveConfig(dir=args.live, interval=args.live_interval)
    run = record_syevd(
        n=args.n,
        b=args.b,
        nb=args.nb,
        method=args.method,
        precision=args.precision,
        want_vectors=not args.no_vectors,
        seed=args.seed,
        path=args.out,
        run_dir=args.dir,
        probes=not args.no_probes,
        checkpoint=args.checkpoint_dir,
        live=live,
    )
    if live is not None:
        print(f"live metrics written under: {args.live}")
    print(f"manifest written: {run.path}")
    print()
    print(render_report(load_manifest(run.path)))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    if args.compare:
        base, cand = args.compare
        print(render_compare(base, cand, threshold=args.threshold))
        if args.fail_on_regression:
            joined = compare_phases(base, cand, threshold=args.threshold)
            if any(e["verdict"] == "regression" for e in joined):
                return 2
        return 0
    if not args.manifest:
        print("error: a manifest path (or --compare A B) is required", file=sys.stderr)
        return 1
    print(render_report(args.manifest))
    return 0


def _cmd_attribution(args: argparse.Namespace) -> int:
    report = attribute_manifest(args.manifest)
    print(render_attribution(report))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.chrome:
        payload = json.dumps(to_chrome_trace(args.manifest), indent=1)
    else:
        payload = to_collapsed_stacks(args.manifest)
    if args.out:
        parent = os.path.dirname(args.out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.out, "w") as fh:
            fh.write(payload)
            if not payload.endswith("\n"):
                fh.write("\n")
        kind = "chrome trace" if args.chrome else "collapsed stacks"
        print(f"{kind} written: {args.out}")
    else:
        print(payload)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    records = load_serve_manifest(args.spool)
    if not records:
        print(f"error: no serve_job records under {args.spool!r}", file=sys.stderr)
        return 1
    if args.chrome:
        payload = json.dumps(serve_trace_to_chrome(records), indent=1)
        if args.out:
            parent = os.path.dirname(args.out)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(args.out, "w") as fh:
                fh.write(payload)
                fh.write("\n")
            print(f"serve chrome trace written: {args.out}")
        else:
            print(payload)
    else:
        print(render_trace_summary(records))
    if args.check:
        problems = check_trace_continuity(records)
        if problems:
            for p in problems:
                print(f"continuity: {p}", file=sys.stderr)
            return 2
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    session = run_suite(args.suite, repeats=args.repeats)
    path = write_session(session, args.out, run_dir=args.dir)
    print(f"bench session written: {path}")
    for row in session["scenarios"]:
        import statistics

        med = statistics.median(row["wall"])
        print(f"  {row['key']}: median {med:.3f} s over {len(row['wall'])} repeats")
    return 0


def _cmd_regress(args: argparse.Namespace) -> int:
    entries = compare_sessions(
        args.baseline,
        args.candidate,
        tolerance=args.tolerance,
        confidence=args.confidence,
    )
    print(render_regression(
        args.baseline, args.candidate,
        tolerance=args.tolerance, confidence=args.confidence, entries=entries,
    ))
    return 2 if has_regressions(entries) else 0


def _cmd_live(args: argparse.Namespace) -> int:
    from .live import DEFAULT_LIVE_DIR, render_live_dir

    print(render_live_dir(args.dir or DEFAULT_LIVE_DIR))
    return 0


def _cmd_list(args: argparse.Namespace) -> int:
    if not os.path.isdir(args.dir):
        print(f"no manifests: directory {args.dir!r} does not exist")
        return 0
    names = sorted(n for n in os.listdir(args.dir) if n.endswith(".jsonl"))
    if not names:
        print(f"no manifests under {args.dir!r}")
        return 0
    for name in names:
        path = os.path.join(args.dir, name)
        try:
            man = load_manifest(path)
        except (ValueError, OSError) as exc:
            print(f"{path}  <unreadable: {exc}>")
            continue
        created = man.meta.get("created", "?")
        print(
            f"{path}  label={man.label or '?'}  created={created}  "
            f"wall={man.total_wall:.3f}s  spans={len(man.spans)}"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Telemetry: instrumented runs, manifests, profiling reports.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="instrumented syevd_2stage run → manifest")
    p_run.add_argument("--n", type=int, default=256, help="matrix size")
    p_run.add_argument("--b", type=int, default=16, help="stage-1 bandwidth")
    p_run.add_argument("--nb", type=int, default=None, help="WY big-block size (default 4*b)")
    p_run.add_argument("--method", choices=("wy", "zy"), default="wy")
    p_run.add_argument(
        "--precision", default="fp32",
        help="stage-1 precision policy (fp64/fp32/fp16_tc/bf16_tc/tf32_tc/fp16_ec_tc)",
    )
    p_run.add_argument("--seed", type=int, default=0, help="test-matrix RNG seed")
    p_run.add_argument("--no-vectors", action="store_true", help="eigenvalues only")
    p_run.add_argument("--no-probes", action="store_true", help="skip accuracy probes")
    p_run.add_argument("--out", default=None, metavar="FILE", help="manifest path")
    p_run.add_argument("--dir", default=DEFAULT_RUN_DIR, help="manifest directory")
    p_run.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="write durable checkpoints under DIR (resume with "
             "python -m repro.ckpt resume DIR)",
    )
    p_run.add_argument(
        "--live", default=None, metavar="DIR",
        help="stream live metrics (Prometheus snapshot, JSONL, heartbeat) "
             "under DIR while the run executes; inspect with "
             "python -m repro.obs live DIR",
    )
    p_run.add_argument(
        "--live-interval", type=float, default=1.0, metavar="SECONDS",
        help="reporter flush interval for --live (default 1.0)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_live = sub.add_parser(
        "live", help="render the current state of a live-metrics directory"
    )
    p_live.add_argument(
        "dir", nargs="?", default=None,
        help="live-metrics directory (default runs/live)",
    )
    p_live.set_defaults(func=_cmd_live)

    p_rep = sub.add_parser("report", help="per-phase breakdown or A/B comparison")
    p_rep.add_argument("manifest", nargs="?", help="manifest to report on")
    p_rep.add_argument(
        "--compare", nargs=2, metavar=("BASELINE", "CANDIDATE"),
        help="phase-level delta table between two manifests",
    )
    p_rep.add_argument(
        "--threshold", type=float, default=REGRESSION_THRESHOLD,
        help="relative slowdown flagged as regression (default 0.10)",
    )
    p_rep.add_argument(
        "--fail-on-regression", action="store_true",
        help="exit 2 when --compare finds a phase regression",
    )
    p_rep.set_defaults(func=_cmd_report)

    p_list = sub.add_parser("list", help="list manifests in a directory")
    p_list.add_argument("--dir", default=DEFAULT_RUN_DIR)
    p_list.set_defaults(func=_cmd_list)

    p_attr = sub.add_parser(
        "attribution",
        help="model-vs-measured efficiency per phase/tag (Table-1 rate model)",
    )
    p_attr.add_argument("manifest", help="manifest with a full GEMM event stream")
    p_attr.set_defaults(func=_cmd_attribution)

    p_exp = sub.add_parser(
        "export", help="export a manifest as a Chrome trace or flamegraph stacks"
    )
    p_exp.add_argument("manifest", help="manifest to export")
    fmt = p_exp.add_mutually_exclusive_group(required=True)
    fmt.add_argument(
        "--chrome", action="store_true",
        help="Chrome Trace Event JSON (chrome://tracing / Perfetto)",
    )
    fmt.add_argument(
        "--flame", action="store_true",
        help="collapsed stacks (flamegraph.pl / speedscope)",
    )
    p_exp.add_argument("-o", "--out", default=None, metavar="FILE",
                       help="output file (default: stdout)")
    p_exp.set_defaults(func=_cmd_export)

    p_tr = sub.add_parser(
        "trace",
        help="per-job causal timeline of a serving soak (summary, Chrome "
             "trace export, or continuity gate)",
    )
    p_tr.add_argument(
        "spool",
        help="serve spool directory (or its manifest.jsonl) from "
             "python -m repro.serve",
    )
    p_tr.add_argument(
        "--chrome", action="store_true",
        help="emit Chrome Trace Event JSON (per-worker lanes + flow "
             "arrows) instead of the summary table",
    )
    p_tr.add_argument("-o", "--out", default=None, metavar="FILE",
                      help="output file for --chrome (default: stdout)")
    p_tr.add_argument(
        "--check", action="store_true",
        help="exit 2 if any job's trace is broken (missing ids, orphan "
             "parents, preempted without resume)",
    )
    p_tr.set_defaults(func=_cmd_trace)

    p_bench = sub.add_parser(
        "bench", help="run a pinned benchmark suite → BENCH_<suite>.json"
    )
    p_bench.add_argument("--suite", default="smoke", choices=sorted(SUITES))
    p_bench.add_argument("--repeats", type=int, default=3,
                         help="timed repetitions per scenario (default 3)")
    p_bench.add_argument("--out", default=None, metavar="FILE",
                         help="session path (default <dir>/BENCH_<suite>.json)")
    p_bench.add_argument("--dir", default=DEFAULT_RUN_DIR, help="session directory")
    p_bench.set_defaults(func=_cmd_bench)

    p_reg = sub.add_parser(
        "regress",
        help="statistical comparison of two bench sessions (exit 2 on regression)",
    )
    p_reg.add_argument("baseline", help="baseline BENCH_*.json")
    p_reg.add_argument("candidate", help="candidate BENCH_*.json")
    p_reg.add_argument(
        "--tolerance", type=float, default=DEFAULT_TOLERANCE,
        help="relative median slowdown that gates (default 0.25)",
    )
    p_reg.add_argument(
        "--confidence", type=float, default=0.95,
        help="bootstrap CI confidence level (default 0.95)",
    )
    p_reg.set_defaults(func=_cmd_regress)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
