"""Profiling reports over run manifests.

Renders per-phase time/flop breakdown tables from one manifest and
phase-level delta tables between two (``--compare``), flagging
regressions.  Pure string formatting over :class:`~repro.obs.manifest.RunManifest`
— no numeric dependencies, so the CLI stays importable everywhere.
"""

from __future__ import annotations

from .manifest import RunManifest, load_manifest

__all__ = [
    "render_report",
    "render_compare",
    "compare_phases",
    "REGRESSION_THRESHOLD",
]

#: Relative slowdown above which a phase is flagged as a regression.
REGRESSION_THRESHOLD = 0.10


def _fmt_seconds(s: float) -> str:
    if s >= 1.0:
        return f"{s:.3f} s"
    return f"{s * 1e3:.2f} ms"


def _fmt_flops(f: float) -> str:
    if f >= 1e9:
        return f"{f / 1e9:.3f} G"
    if f >= 1e6:
        return f"{f / 1e6:.3f} M"
    return f"{f:.0f}"


def _table(headers: list[str], rows: list[list[str]]) -> str:
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def line(cells: list[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([line(headers), sep] + [line(r) for r in rows])


def _resolve(m: "RunManifest | str") -> RunManifest:
    return m if isinstance(m, RunManifest) else load_manifest(m)


def render_report(manifest: "RunManifest | str") -> str:
    """Per-phase time/flop breakdown of one manifest."""
    man = _resolve(manifest)
    total = man.total_wall
    phases = man.phase_times()
    gemm = man.gemm_by_phase()

    lines = [f"run: {man.label or '<unlabeled>'}"]
    if man.path:
        lines.append(f"manifest: {man.path}")
    meta_bits = []
    if "precision" in man.meta:
        meta_bits.append(f"precision={man.meta['precision']}")
    matrix = man.meta.get("matrix") or {}
    if matrix:
        meta_bits.append(
            "matrix=" + ",".join(f"{k}={v}" for k, v in matrix.items())
        )
    if meta_bits:
        lines.append("  ".join(meta_bits))
    lines.append(f"total wall: {_fmt_seconds(total)}  phase coverage: {man.coverage() * 100.0:.1f}%")
    lines.append("")

    rows: list[list[str]] = []
    covered = 0.0
    for path, secs in phases.items():
        covered += secs
        g = gemm.get(path, {"calls": 0, "flops": 0, "seconds": 0.0})
        rate = g["flops"] / g["seconds"] / 1e9 if g["seconds"] > 0 else 0.0
        rows.append([
            path,
            _fmt_seconds(secs),
            f"{secs / total * 100.0:.1f}%" if total > 0 else "-",
            str(g["calls"]),
            _fmt_flops(g["flops"]),
            f"{rate:.2f}" if rate else "-",
        ])
    untracked = max(0.0, total - covered)
    if total > 0:
        rows.append([
            "(untracked)",
            _fmt_seconds(untracked),
            f"{untracked / total * 100.0:.1f}%",
            "-", "-", "-",
        ])
    lines.append(_table(
        ["phase", "time", "share", "gemm calls", "gemm flops", "GFLOP/s"], rows
    ))

    summary = man.gemm_summary
    by_tag = summary.get("by_tag") or {}
    if by_tag:
        lines.append("")
        lines.append(
            f"gemm stream: {summary.get('calls', 0)} calls, "
            f"{_fmt_flops(summary.get('flops', 0))}FLOP, "
            f"{_fmt_seconds(summary.get('seconds', 0.0))} measured"
        )
        tag_rows = []
        for tag in sorted(by_tag, key=lambda t: by_tag[t]["flops"], reverse=True):
            slot = by_tag[tag]
            rate = slot["flops"] / slot["seconds"] / 1e9 if slot["seconds"] > 0 else 0.0
            # Manifests written before the per-tag launch counter carry
            # no "launches" slot; render a dash rather than guessing.
            launches = slot.get("launches")
            tag_rows.append([
                tag or "<untagged>",
                str(slot["calls"]),
                str(launches) if launches is not None else "-",
                _fmt_flops(slot["flops"]),
                _fmt_seconds(slot["seconds"]),
                f"{rate:.2f}" if rate else "-",
            ])
        lines.append(_table(
            ["tag", "calls", "launches", "flops", "time", "GFLOP/s"], tag_rows
        ))

    if man.accuracy:
        lines.append("")
        lines.append("accuracy probes:")
        for key, val in man.accuracy.items():
            lines.append(f"  {key}: {val:.3e}" if isinstance(val, float) else f"  {key}: {val}")

    metrics_section = _render_metrics(man.metrics)
    if metrics_section:
        lines.append("")
        lines.extend(metrics_section)

    abft_section = _render_abft(man.abft)
    if abft_section:
        lines.append("")
        lines.extend(abft_section)
    return "\n".join(lines)


def _render_metrics(metrics: "dict | None") -> list[str]:
    """Live-metrics section of the report (``metrics`` manifest line).

    Shows the GEMM latency quantiles, per-phase progress as archived at
    run end, and any alerts the live layer fired.
    """
    if not metrics:
        return []
    lines = ["live metrics:"]
    hist_rows = []
    for h in metrics.get("histograms", []):
        q = h.get("quantiles") or {}
        labels = h.get("labels") or {}
        name = h.get("name", "?")
        if labels:
            name += "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
        hist_rows.append([
            name,
            str(int(h.get("count", 0))),
            *(f"{q[k] * 1e3:.3f} ms" if k in q else "-"
              for k in ("0.5", "0.9", "0.99")),
        ])
    if hist_rows:
        lines.append(_table(["series", "count", "p50", "p90", "p99"], hist_rows))
    progress = metrics.get("progress") or {}
    phases = progress.get("phases") or {}
    if phases:
        lines.append("")
        lines.append("progress at run end:")
        for key, slot in phases.items():
            lines.append(f"  {key}: {slot.get('fraction', 0.0) * 100.0:.1f}%")
    alerts = metrics.get("alerts") or []
    if alerts:
        lines.append("")
        lines.append(f"alerts fired ({len(alerts)}):")
        for alert in alerts:
            lines.append(
                f"  {alert.get('rule', '?')}: {alert.get('message') or ''} "
                f"(value={alert.get('value')})".rstrip()
            )
    return lines


def _render_abft(abft: "dict | None") -> list[str]:
    """Online-ABFT section of the report (``abft`` manifest line).

    Shows the verification mode, launch coverage, SDC event totals, and
    the per-phase verification overhead.
    """
    if not abft:
        return []
    launches = int(abft.get("verified", 0)) + int(abft.get("probed", 0))
    lines = [
        f"online abft [{abft.get('mode', '?')}]: {launches} launches verified "
        f"({int(abft.get('probed', 0))} probed), "
        f"{abft.get('verify_seconds', 0.0) * 1e3:.1f} ms overhead"
    ]
    detected = int(abft.get("detected", 0))
    if detected:
        lines.append(
            f"  sdc events: {detected} detected, "
            f"{int(abft.get('corrected', 0))} corrected in place, "
            f"{int(abft.get('recomputed', 0))} recomputed, "
            f"{int(abft.get('raised', 0))} escalated"
        )
    else:
        lines.append("  sdc events: none")
    by_phase = abft.get("by_phase") or {}
    if by_phase:
        rows = [
            [
                site,
                str(int(slot.get("verified", 0))),
                str(int(slot.get("detected", 0))),
                _fmt_seconds(slot.get("seconds", 0.0)),
            ]
            for site, slot in sorted(by_phase.items())
        ]
        lines.append(_table(["site", "verified", "sdc", "time"], rows))
    return lines


def compare_phases(
    a: "RunManifest | str",
    b: "RunManifest | str",
    *,
    threshold: float = REGRESSION_THRESHOLD,
) -> list[dict]:
    """Phase-level join of two manifests with per-phase verdicts.

    Returns one dict per phase path (union of both runs, A's order
    first): ``{"phase", "a", "b", "delta", "verdict"}`` where ``delta``
    is the relative change ``(b - a) / a`` (None when the phase is
    missing from one side) and ``verdict`` is ``"regression"``,
    ``"improved"``, or ``"ok"``.
    """
    man_a, man_b = _resolve(a), _resolve(b)
    times_a, times_b = man_a.phase_times(), man_b.phase_times()
    paths = list(times_a) + [p for p in times_b if p not in times_a]

    out: list[dict] = []
    for path in paths:
        ta, tb = times_a.get(path), times_b.get(path)
        if ta is None or tb is None or ta <= 0.0:
            delta = None
            verdict = "ok"
        else:
            delta = (tb - ta) / ta
            verdict = (
                "regression" if delta > threshold
                else "improved" if delta < -threshold
                else "ok"
            )
        out.append({"phase": path, "a": ta, "b": tb, "delta": delta, "verdict": verdict})
    return out


def render_compare(
    a: "RunManifest | str",
    b: "RunManifest | str",
    *,
    threshold: float = REGRESSION_THRESHOLD,
) -> str:
    """Per-phase delta table between two manifests (A = baseline)."""
    man_a, man_b = _resolve(a), _resolve(b)
    joined = compare_phases(man_a, man_b, threshold=threshold)

    lines = [
        f"compare: A={man_a.label or man_a.path or '?'}  B={man_b.label or man_b.path or '?'}",
        f"total wall: A={_fmt_seconds(man_a.total_wall)}  B={_fmt_seconds(man_b.total_wall)}",
        "",
    ]
    rows = []
    for entry in joined:
        ta, tb, delta = entry["a"], entry["b"], entry["delta"]
        rows.append([
            entry["phase"],
            _fmt_seconds(ta) if ta is not None else "-",
            _fmt_seconds(tb) if tb is not None else "-",
            f"{delta * 100.0:+.1f}%" if delta is not None else "-",
            entry["verdict"].upper() if entry["verdict"] == "regression" else entry["verdict"],
        ])
    ta, tb = man_a.total_wall, man_b.total_wall
    if ta > 0 and tb > 0:
        rows.append(["(total)", _fmt_seconds(ta), _fmt_seconds(tb),
                     f"{(tb - ta) / ta * 100.0:+.1f}%", ""])
    lines.append(_table(["phase", "A", "B", "delta", "verdict"], rows))

    n_reg = sum(1 for e in joined if e["verdict"] == "regression")
    lines.append("")
    lines.append(
        f"{n_reg} phase regression(s) beyond {threshold * 100.0:.0f}%"
        if n_reg else f"no phase regressions beyond {threshold * 100.0:.0f}%"
    )
    return "\n".join(lines)
