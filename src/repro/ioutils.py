"""Crash-safe file persistence primitives shared across the library.

Every durable artifact the library writes — checkpoints, run manifests,
bench sessions — goes through the same commit protocol: write the full
payload to a temporary file *in the destination directory*, flush and
``fsync`` it, then ``os.replace`` it over the final name.  ``os.replace``
is atomic on POSIX and Windows, so a reader (or a restarted run) sees
either the old complete file or the new complete file — never a torn
prefix of the new one.  A crash before the replace leaves at most a
``*.tmp-*`` orphan, which :func:`sweep_orphans` removes.

This module depends only on the standard library so :mod:`repro.obs` and
:mod:`repro.ckpt` can both import it without cycles.
"""

from __future__ import annotations

import contextlib
import json
import os
import signal
import tempfile
import threading
import zlib

__all__ = [
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "append_jsonl",
    "file_crc32",
    "sweep_orphans",
    "sigterm_as_interrupt",
]

#: Suffix marker of in-flight temporary files (see :func:`sweep_orphans`).
TMP_MARKER = ".tmp-"


def atomic_write_bytes(path: str, data: bytes, *, fsync: bool = True) -> str:
    """Atomically replace ``path`` with ``data`` (returns ``path``).

    The payload lands in a same-directory temp file first so the final
    ``os.replace`` never crosses a filesystem boundary.  ``fsync=False``
    skips the durability flush for artifacts where torn-write protection
    matters but power-loss durability does not (e.g. report files a CI
    job immediately re-reads).
    """
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=parent, prefix=os.path.basename(path) + TMP_MARKER
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            if fsync:
                os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str, text: str, *, fsync: bool = True) -> str:
    """Atomically replace ``path`` with UTF-8 ``text`` (returns ``path``)."""
    return atomic_write_bytes(path, text.encode("utf-8"), fsync=fsync)


def atomic_write_json(path: str, obj, *, indent: int | None = None,
                      fsync: bool = True) -> str:
    """Atomically serialize ``obj`` as JSON to ``path`` (returns ``path``).

    Serialization happens fully in memory before any byte reaches disk,
    so a ``TypeError`` from an unserializable object can never leave a
    half-written file behind.
    """
    payload = json.dumps(obj, indent=indent, sort_keys=False)
    if not payload.endswith("\n"):
        payload += "\n"
    return atomic_write_text(path, payload, fsync=fsync)


def append_jsonl(path: str, obj, *, fsync: bool = False) -> str:
    """Append one JSON object as a complete line to a stream file.

    The line is serialized fully in memory, then written in a single
    ``write`` call ending in ``\\n`` and flushed, so concurrent readers
    of the stream see only whole lines plus at most one torn *final*
    line after a crash mid-write.  Stream consumers (the metrics JSONL
    validator, the manifest loader) must therefore tolerate a torn last
    line — that is the whole crash-safety contract for append-only
    streams, as opposed to the replace-based protocol above for
    single-object artifacts.
    """
    payload = json.dumps(obj, sort_keys=False) + "\n"
    parent = os.path.dirname(path) or "."
    os.makedirs(parent, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write(payload)
        fh.flush()
        if fsync:
            os.fsync(fh.fileno())
    return path


def file_crc32(path: str, *, chunk: int = 1 << 20) -> int:
    """CRC32 of a file's bytes (the checkpoint payload checksum)."""
    crc = 0
    with open(path, "rb") as fh:
        while True:
            block = fh.read(chunk)
            if not block:
                return crc & 0xFFFFFFFF
            crc = zlib.crc32(block, crc)


def sweep_orphans(directory: str) -> list[str]:
    """Remove in-flight temp files a crashed writer left behind.

    Returns the paths removed.  Only files carrying the
    :data:`TMP_MARKER` infix are touched — committed artifacts are never
    candidates.
    """
    removed: list[str] = []
    if not os.path.isdir(directory):
        return removed
    for name in os.listdir(directory):
        if TMP_MARKER in name:
            path = os.path.join(directory, name)
            try:
                os.unlink(path)
                removed.append(path)
            except OSError:
                pass
    return removed


@contextlib.contextmanager
def sigterm_as_interrupt():
    """Convert SIGTERM into ``KeyboardInterrupt`` inside this block.

    Long-running entry points (the checkpoint CLI, the serving worker
    loop) wrap their work in this so an orchestrator's polite kill takes
    the same graceful path as Ctrl-C: the SBR drivers flush a committed
    checkpoint and re-raise, leaving the run directory resumable.

    Signal handlers are process-global and can only be installed from
    the main thread; anywhere else this is a documented no-op (worker
    *threads* already receive the main thread's ``KeyboardInterrupt``
    path via their job's cancellation token instead).  The previous
    handler is restored on exit.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    def _handler(signum, frame):
        raise KeyboardInterrupt("SIGTERM")

    previous = signal.signal(signal.SIGTERM, _handler)
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
