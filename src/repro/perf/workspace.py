"""Workspace arena: shape/dtype-keyed scratch-buffer reuse for hot loops.

The SBR drivers, the precision kernels, and the TSQR tree allocate the
same handful of temporaries over and over — one fresh ``np.empty`` per
panel iteration, per EC split, per chunk.  At n=1024 each of those is a
megabyte-scale allocation whose cost is not ``malloc`` but the kernel
page faults on first touch, paid again on every iteration.  A
:class:`Workspace` turns the steady-state of those loops allocation-free:
each call site *takes* a buffer under a semantic tag and gets the same
backing memory back on the next iteration whenever its capacity
suffices.

Contract
--------
- ``take(tag, shape, dtype)`` returns a **writable, uninitialized** array
  view of exactly ``shape``.  The caller owns it until its next ``take``
  of the same tag — the arena never clears or copies it.
- Buffers are keyed by ``(tag, thread)``: two threads taking the same tag
  get distinct backing buffers, so a shared arena is safe under the
  look-ahead overlap (each thread's reuse stream is private).
- Capacity-based reuse: a tag's buffer is reallocated only when the
  requested element count grows (or the dtype changes); smaller takes
  reshape a prefix of the existing buffer.

Accounting
----------
Every take is counted as a *hit* (buffer reused) or a *miss* (a real
allocation happened).  :class:`NullWorkspace` is the "arena off" control:
the same interface, but every take allocates — and is counted — so the
on/off allocation ratio in the manifest's ``alloc`` line measures what
the arena saves.  While a telemetry span is active, each take also
bumps a ``ws_hit``/``ws_miss`` counter on the innermost span, giving
per-phase allocation counts in run manifests.
"""

from __future__ import annotations

import threading

import numpy as np

from ..obs import spans as obs
from ..obs.live import registry as _live

__all__ = ["Workspace", "NullWorkspace", "resolve_workspace"]


class Workspace:
    """Reusable scratch-buffer arena with allocation accounting."""

    def __init__(self) -> None:
        self._buffers: dict[tuple[str, int], np.ndarray] = {}
        self._lock = threading.Lock()
        self._stats: dict[str, list[int]] = {}  # tag -> [hits, misses, bytes]

    def take(self, tag: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        """Return a writable uninitialized array of ``shape`` under ``tag``.

        Contents are arbitrary (possibly the previous take's data); the
        caller must fully overwrite or explicitly zero what it reads.
        """
        dtype = np.dtype(dtype)
        size = 1
        for dim in shape:
            size *= int(dim)
        if size == 0:
            return np.empty(shape, dtype=dtype)
        key = (tag, threading.get_ident())
        with self._lock:
            buf = self._buffers.get(key)
            hit = buf is not None and buf.dtype == dtype and buf.size >= size
            if hit:
                self._count(tag, hit=True)
                out = buf[:size].reshape(shape)
            else:
                buf = np.empty(size, dtype=dtype)
                self._buffers[key] = buf
                self._count(tag, hit=False, nbytes=int(buf.nbytes))
                out = buf.reshape(shape)
        obs.counter("ws_hit" if hit else "ws_miss")
        _live.ws_take(tag, hit, 0 if hit else int(buf.nbytes))
        return out

    def _count(self, tag: str, *, hit: bool, nbytes: int = 0) -> None:
        slot = self._stats.setdefault(tag, [0, 0, 0])
        if hit:
            slot[0] += 1
        else:
            slot[1] += 1
            slot[2] += nbytes

    @property
    def hits(self) -> int:
        return sum(s[0] for s in self._stats.values())

    @property
    def misses(self) -> int:
        return sum(s[1] for s in self._stats.values())

    @property
    def bytes_allocated(self) -> int:
        return sum(s[2] for s in self._stats.values())

    def stats(self) -> dict:
        """Allocation accounting (the manifest ``alloc`` line body)."""
        return {
            "arena": type(self).__name__ != "NullWorkspace",
            "takes": self.hits + self.misses,
            "hits": self.hits,
            "misses": self.misses,
            "bytes_allocated": self.bytes_allocated,
            "by_tag": {
                tag: {"hits": s[0], "misses": s[1], "bytes_allocated": s[2]}
                for tag, s in sorted(self._stats.items())
            },
        }

    def reset_stats(self) -> None:
        """Clear the counters (buffers are kept)."""
        with self._lock:
            self._stats.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {len(self._buffers)} buffers, "
            f"{self.hits} hits / {self.misses} misses>"
        )


class NullWorkspace(Workspace):
    """Arena-off control: every take allocates fresh (and is counted).

    Used by the ``workspace=False`` driver path and the bench suite's
    on/off comparison — hot-loop code stays identical, only the reuse is
    disabled, so the counter delta is exactly the arena's effect.
    """

    def take(self, tag: str, shape: tuple[int, ...], dtype=np.float32) -> np.ndarray:
        dtype = np.dtype(dtype)
        out = np.empty(shape, dtype=dtype)
        if out.size:
            with self._lock:
                self._count(tag, hit=False, nbytes=int(out.nbytes))
            obs.counter("ws_miss")
            _live.ws_take(tag, False, int(out.nbytes))
        return out


def resolve_workspace(workspace) -> Workspace:
    """Resolve a driver's ``workspace=`` argument to an arena instance.

    ``None``/``True`` → a fresh :class:`Workspace`; ``False`` → a
    :class:`NullWorkspace` (allocation-counting, no reuse); an existing
    arena passes through (lets a caller share one across stages and read
    its stats afterwards).
    """
    if isinstance(workspace, Workspace):
        return workspace
    if workspace is None or workspace is True:
        return Workspace()
    if workspace is False:
        return NullWorkspace()
    raise TypeError(
        f"workspace must be a Workspace, bool, or None, got {type(workspace).__name__}"
    )
