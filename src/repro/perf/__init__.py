"""Performance layer: workspace arena and hot-path helpers.

This package holds the machinery that makes the SBR/EVD hot loops
allocation-free and overlappable without changing their numerics:

- :mod:`~repro.perf.workspace` — the :class:`Workspace` scratch-buffer
  arena threaded through ``sbr_wy``/``sbr_zy``, the EC-TCGEMM split
  path, and the TSQR tree; its allocation counters surface as the
  ``alloc`` line of run manifests (see ``docs/performance.md``).
"""

from .workspace import NullWorkspace, Workspace, resolve_workspace

__all__ = ["Workspace", "NullWorkspace", "resolve_workspace"]
