"""Conventional ZY-representation SBR (the MAGMA ``ssytrd_sy2sb`` algorithm).

Per panel (Dongarra, Sorensen & Hammarling 1989; paper §3.3): QR-factor the
panel, build its WY pair, then apply the two-sided update to the *entire*
trailing matrix as a rank-2b subtraction,

    Z = A W - (1/2) Y (W^T A W),
    A <- A - Z Y^T - Y Z^T.

Tensor Cores have no ``syr2k``, so — exactly as the paper notes — the
symmetric rank-2b update is two independent outer-product GEMMs.  Every
trailing GEMM here has inner dimension ``b`` (tall and skinny), which is
what starves Tensor Cores and motivates the WY-based Algorithm 1.

When a :class:`repro.resilience.ResilienceContext` is passed, each panel
(QR + trailing update + Q accumulation) is a retryable unit: the trailing
region ``A[i:, i:]`` and the touched Q columns are checkpointed, and a
detected breakdown re-runs the panel at the ladder's next-safer
precision.  The ZY trailing update's two independent outer products leave
genuine rounding asymmetry, so the symmetry-drift detector is live here
(it is trivially satisfied on the WY path, which symmetrizes exactly).

GEMM tags (recorded in the engine trace):

====================  =====================================================
``zy_aw``             ``A @ W``          (m×m)·(m×b)
``zy_wtaw``           ``W^T @ (A W)``    (b×m)·(m×b)
``zy_z``              ``Y @ (W^T A W)``  (m×b)·(b×b)
``zy_zyt``/``zy_yzt`` the two rank-2b outer products  (m×b)·(b×m)
``form_q``            trailing Q accumulation (when requested)
====================  =====================================================
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericalBreakdownError, SingularMatrixError
from ..gemm.engine import GemmEngine, SgemmEngine
from ..obs import spans as obs
from ..obs.live import use_registry
from ..perf import resolve_workspace
from ..resilience.context import ResilienceContext
from ..validation import as_symmetric_matrix, check_blocksizes, check_finite_matrix
from .ckptio import restore_resilience_state, save_zy_panel
from .panel import PanelStrategy, make_panel_strategy
from .types import SbrResult, WYBlock, unpack_wy_blocks

__all__ = ["sbr_zy"]


def sbr_zy(
    a,
    b: int,
    *,
    engine: GemmEngine | None = None,
    panel: "str | PanelStrategy" = "blocked_qr",
    want_q: bool = True,
    use_syr2k: bool = False,
    workspace=None,
    resilience: ResilienceContext | None = None,
    checkpoint=None,
    check_finite: bool = True,
    metrics=None,
) -> SbrResult:
    """Reduce a symmetric matrix to band form with the ZY-based algorithm.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        Input matrix.
    b : int
        Target (semi-)bandwidth.
    engine : GemmEngine, optional
        GEMM engine implementing the precision policy (default FP32 SGEMM).
    panel : str or PanelStrategy
        Panel factorization (default blocked Householder QR, as in MAGMA).
    want_q : bool
        Whether to accumulate the orthogonal transform ``Q`` (with
        ``A ≈ Q B Q^T``).
    use_syr2k : bool
        Perform the rank-2b update as a single symmetric ``syr2k`` call
        instead of two explicit GEMMs.  Real Tensor Cores have no native
        syr2k (paper §4.1) — this switch exists for the "what if they did"
        ablation of the paper's future-work section.  The fused form
        accumulates in place into the trailing view (no n² temporary).
    workspace : repro.perf.Workspace, bool, or None
        Scratch arena attached to the engine so the precision-conversion
        buffers (EC operand splits, chunk scratch) are reused across
        panels.  ``None``/``True`` create one, ``False`` disables reuse.
    resilience : ResilienceContext, optional
        Per-run failure detection + per-panel precision-escalation retry.
    checkpoint : repro.ckpt.CheckpointManager, optional
        Durable checkpoint/restart: after each panel the loop state
        (``A``, the accumulated ``Q``, the WY blocks, indices, the
        resilience-ladder position) is committed as a ``"sbr_panel"``
        checkpoint, and an interrupted reduction resumes from its newest
        verified one to a bitwise-identical band.
    check_finite : bool
        Reject NaN/Inf inputs up front (cheap gate; disable only when the
        caller already validated).
    metrics : repro.obs.live.MetricsRegistry, optional
        Install a live metrics registry for the duration of this call
        (standalone use; the 2-stage driver installs one run-wide).

    Returns
    -------
    SbrResult
        Band matrix, bandwidth, optional ``Q``, and the per-panel WY blocks.
    """
    if metrics is not None:
        with use_registry(metrics):
            return sbr_zy(
                a, b, engine=engine, panel=panel, want_q=want_q,
                use_syr2k=use_syr2k, workspace=workspace,
                resilience=resilience, checkpoint=checkpoint,
                check_finite=check_finite,
            )
    eng: "GemmEngine" = engine if engine is not None else SgemmEngine()
    ws = resolve_workspace(workspace)
    if isinstance(eng, GemmEngine) and eng.workspace is None:
        eng.workspace = ws
    ctx = resilience
    if ctx is not None:
        eng = ctx.wrap_engine(eng)
    strategy = make_panel_strategy(panel)
    a = np.asarray(a)
    if check_finite and a.ndim == 2 and a.size:
        # Before the symmetry check: a NaN fails allclose and would be
        # misreported as asymmetry.
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, dtype=eng.working_dtype)
    n = a.shape[0]
    check_blocksizes(n, b)

    dtype = eng.working_dtype
    A = np.array(a, dtype=dtype, copy=True)
    q = np.eye(n, dtype=dtype) if want_q else None
    blocks: list[WYBlock] = []
    norm_baseline = float(np.abs(A).max()) if ctx is not None else 0.0

    panel_index = 0
    i = 0
    ck = checkpoint
    if ck is not None:
        rck = ck.latest(steps=("sbr_panel",))
        if rck is not None:
            s = rck.scalars
            A = np.ascontiguousarray(rck.arrays["A"]).astype(dtype, copy=False)
            if want_q:
                q = np.ascontiguousarray(rck.arrays["q"]).astype(dtype, copy=False)
            blocks = unpack_wy_blocks(rck.arrays, s.get("block_offsets", []))
            i = int(s["i"])
            panel_index = int(s["panel_index"])
            if ctx is not None:
                norm_baseline = float(s.get("norm_baseline", norm_baseline))
            restore_resilience_state(ctx, eng, s.get("resilience"))
            ck.mark_resumed(rck)

    while n - i - b >= 2:
        if ck is not None:
            # Interrupt-flush snapshot: restore the pre-step state on
            # KeyboardInterrupt/SIGTERM and commit it, so an interrupted
            # run resumes from the interrupted panel, not the last
            # cadence checkpoint (same regions the resilience retry
            # snapshots: the trailing block and the live Q columns).
            flush_a = A[i:, i:].copy()
            flush_q = q[:, i + b:].copy() if q is not None else None
        try:
            w, y = _resilient_zy_panel(
                A, q, eng, strategy, ctx,
                b=b, i=i, n=n, use_syr2k=use_syr2k,
                panel_index=panel_index, norm_baseline=norm_baseline,
            )
        except KeyboardInterrupt:
            if ck is not None:
                A[i:, i:] = flush_a
                if flush_q is not None:
                    q[:, i + b:] = flush_q
                save_zy_panel(
                    ck, A=A, q=q, blocks=blocks, ctx=ctx, eng=eng,
                    i=i, panel_index=panel_index,
                    norm_baseline=norm_baseline,
                )
            raise
        blocks.append(WYBlock(offset=i + b, w=w, y=y))
        panel_index += 1
        i += b
        if ck is not None and n - i - b >= 2 \
                and ck.should_save_panel(panel_index):
            # The final panel's checkpoint is skipped: the caller's
            # "band" phase checkpoint lands immediately after.
            save_zy_panel(
                ck, A=A, q=q, blocks=blocks, ctx=ctx, eng=eng,
                i=i, panel_index=panel_index, norm_baseline=norm_baseline,
            )

    # Exact symmetry of the band output (two independent outer products
    # leave rounding-level asymmetry in the trailing block).
    A = (A + A.T) * dtype.type(0.5)
    if ctx is not None:
        ctx.note_precision("sbr", eng.precision)
        if q is not None:
            with ctx.unit("sbr"):
                ctx.check_residual(a, q, A, precision=eng.precision)
    return SbrResult(band=A, bandwidth=b, q=q, blocks=blocks, workspace=ws)


def _resilient_zy_panel(
    A, q, eng, strategy, ctx,
    *, b, i, n, use_syr2k, panel_index, norm_baseline,
):
    """One ZY panel as a retryable unit (checkpoint: A[i:, i:], Q[:, i+b:])."""
    if ctx is None:
        return _zy_panel_step(
            A, q, eng, strategy, None,
            b=b, i=i, n=n, use_syr2k=use_syr2k,
            panel_index=panel_index, norm_baseline=norm_baseline,
        )
    snap_a = A[i:, i:].copy() if ctx.can_retry else None
    snap_q = q[:, i + b :].copy() if (ctx.can_retry and q is not None) else None
    attempt = 0
    while True:
        try:
            with ctx.unit("sbr.panel", panel=panel_index):
                return _zy_panel_step(
                    A, q, eng, strategy, ctx,
                    b=b, i=i, n=n, use_syr2k=use_syr2k,
                    panel_index=panel_index, norm_baseline=norm_baseline,
                )
        except (NumericalBreakdownError, SingularMatrixError) as exc:
            if not ctx.handle_breakdown(
                exc, engine=eng, attempt=attempt,
                phase="sbr.panel", panel=panel_index,
            ):
                raise
            A[i:, i:] = snap_a
            if snap_q is not None:
                q[:, i + b :] = snap_q
            attempt += 1


def _zy_panel_step(
    A, q, eng, strategy, ctx,
    *, b, i, n, use_syr2k, panel_index, norm_baseline,
):
    """Panel QR + rank-2b trailing update + Q accumulation (one panel)."""
    dtype = A.dtype
    m = n - i - b
    w_cols = min(b, m)
    with obs.span("sbr.panel", rows=m, cols=w_cols):
        try:
            pf = strategy.factor(A[i + b :, i : i + w_cols], engine=eng)
        except SingularMatrixError as exc:
            if exc.panel is None:
                exc.panel = panel_index
            raise
    w, y = pf.w.astype(dtype, copy=False), pf.y.astype(dtype, copy=False)
    if ctx is not None:
        ctx.check_panel(w, y, precision=eng.precision)

    # Write R into the band, zero the annihilated part, mirror symmetric.
    A[i + b : i + b + w_cols, i : i + w_cols] = pf.r.astype(dtype, copy=False)
    A[i + b + w_cols :, i : i + w_cols] = 0
    A[i : i + w_cols, i + b :] = A[i + b :, i : i + w_cols].T

    if w_cols < b:
        # Tail panel: columns [i+w, i+b) still carry in-band entries on
        # the panel's row range; they see only this panel's transform
        # from the left (no trailing panel follows).
        strip = A[i + b :, i + w_cols : i + b]
        wts = eng.gemm(w.T, strip, tag="sbr_strip")
        strip -= eng.gemm(y, wts, tag="sbr_strip")
        A[i + w_cols : i + b, i + b :] = strip.T

    # ZY trailing update on the m×m trailing block (two-sided rank-2b).
    with obs.span("sbr.trailing_update", rows=m):
        trailing = A[i + b :, i + b :]
        aw = eng.gemm(trailing, w, tag="zy_aw")
        wtaw = eng.gemm(w.T, aw, tag="zy_wtaw")
        z = aw - dtype.type(0.5) * eng.gemm(y, wtaw, tag="zy_z")
        if use_syr2k:
            # True fused in-place rank-2b update: C <- C - (Z Y^T + Y Z^T)
            # accumulated directly into the trailing view (bitwise equal
            # to the subtract-a-temporary form, without the n² temporary).
            res = eng.syr2k(z, y, tag="zy_syr2k", out=trailing,
                            alpha=-1.0, beta=1.0)
            if res is not trailing:
                trailing[...] = res
        else:
            trailing -= eng.gemm(z, y.T, tag="zy_zyt")
            trailing -= eng.gemm(y, z.T, tag="zy_yzt")
    if ctx is not None:
        ctx.check_norm_growth(
            trailing, norm_baseline, precision=eng.precision, site="zy_zyt"
        )
        ctx.check_symmetry(trailing, precision=eng.precision, norm=norm_baseline)

    if q is not None:
        # Q <- Q @ embed(I - W Y^T): only columns i+b.. change.
        with obs.span("sbr.form_q"):
            qw = eng.gemm(q[:, i + b :], w, tag="form_q")
            q[:, i + b :] -= eng.gemm(qw, y.T, tag="form_q")
    return w, y
