"""Checkpoint glue shared by the SBR drivers.

Thin adapters between the SBR loop state and the generic
:class:`repro.ckpt.store.CheckpointManager`: pack the live arrays and
loop indices of one driver into a ``"sbr_panel"`` checkpoint, and restore
the resilience-ladder position on resume.  Kept out of the drivers so
both :mod:`repro.sbr.wy` and :mod:`repro.sbr.zy` serialize through one
code path (one schema to keep stable).
"""

from __future__ import annotations

from ..ckpt.store import resilience_snapshot, restore_resilience
from .types import pack_wy_blocks

__all__ = ["save_wy_panel", "save_zy_panel", "restore_resilience_state"]


def save_wy_panel(
    ck, *, A, blocks, ctx, eng,
    j0, r_next, panel_index, norm_baseline,
    OA=None, W=None, Y=None, OAW=None,
):
    """Commit one WY-SBR panel checkpoint.

    Mid-big-block state (``OA``/``W``/``Y``/``OAW``) is included only
    when passed — a block-boundary checkpoint needs just ``A``, the
    completed blocks, and the indices.  ``OA`` *must* be persisted
    mid-block: it is the original trailing matrix captured at block
    entry, already overwritten in ``A`` by the partial updates, so it
    cannot be recomputed on resume.
    """
    arrays, offsets = pack_wy_blocks(blocks)
    arrays["A"] = A
    mid_block = W is not None
    if mid_block:
        arrays["OA"] = OA
        arrays["W"] = W
        arrays["Y"] = Y
        arrays["OAW"] = OAW
    ck.save("sbr_panel", arrays, {
        "algo": "wy",
        "j0": int(j0),
        "r_next": int(r_next),
        "panel_index": int(panel_index),
        "norm_baseline": float(norm_baseline),
        "mid_block": bool(mid_block),
        "block_offsets": offsets,
        "resilience": resilience_snapshot(ctx, eng),
    })


def save_zy_panel(
    ck, *, A, q, blocks, ctx, eng,
    i, panel_index, norm_baseline,
):
    """Commit one ZY-SBR panel checkpoint (A, accumulated Q, blocks)."""
    arrays, offsets = pack_wy_blocks(blocks)
    arrays["A"] = A
    if q is not None:
        arrays["q"] = q
    ck.save("sbr_panel", arrays, {
        "algo": "zy",
        "i": int(i),
        "panel_index": int(panel_index),
        "norm_baseline": float(norm_baseline),
        "block_offsets": offsets,
        "resilience": resilience_snapshot(ctx, eng),
    })


def restore_resilience_state(ctx, eng, snap) -> None:
    """Re-arm the resilience context/engine from a checkpoint snapshot."""
    restore_resilience(ctx, eng, snap)
