"""Panel factorization strategies for band reduction.

A *panel* is the tall-and-skinny block ``A[i+b:n, i:i+b]`` (Figure 2 of the
paper).  Each strategy QR-factors the panel and returns its WY pair, so the
SBR drivers are agnostic to how the panel was factored:

- :class:`TsqrPanel` — the paper's approach (§5.1–5.2): TSQR produces an
  explicit Q; Householder vectors are reconstructed from it by non-pivoted
  LU (Algorithm 3).  Fast on GPUs because the tree exposes square GEMMs.
- :class:`BlockedQrPanel` — cuSOLVER-style ``sgeqrf``-shaped blocked
  Householder QR (the "TSQR off" ablation of Figure 9).
- :class:`UnblockedQrPanel` — LAPACK-style column-at-a-time Householder
  QR (the MAGMA-panel-like reference).

All strategies return the same :class:`PanelFactorization`; numerically they
agree up to signs absorbed into R.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, SgemmEngine
from ..obs import spans as obs
from ..la.qr import blocked_qr, householder_qr
from ..la.reconstruct import reconstruct_wy
from ..la.tsqr import tsqr
from ..la.wy import build_wy

__all__ = [
    "PanelFactorization",
    "PanelStrategy",
    "TsqrPanel",
    "BlockedQrPanel",
    "UnblockedQrPanel",
    "make_panel_strategy",
]


@dataclass
class PanelFactorization:
    """WY-form QR of one panel: ``P = (I - W Y^T)[:, :k] @ R``.

    ``w``/``y`` are (m, k) with ``y`` unit lower trapezoidal; ``r`` is the
    k×k upper-triangular factor.
    """

    w: np.ndarray
    y: np.ndarray
    r: np.ndarray

    @property
    def ncols(self) -> int:
        return self.r.shape[0]


class PanelStrategy(ABC):
    """Factory of panel QR factorizations (stateless, reusable)."""

    #: Identifier used in experiment configuration and reports.
    name: str = "abstract"

    @abstractmethod
    def factor(self, panel: np.ndarray, *, engine: GemmEngine | None = None) -> PanelFactorization:
        """QR-factor a tall panel (m >= k columns) into WY form."""

    @staticmethod
    def _validate(panel: np.ndarray) -> np.ndarray:
        panel = np.asarray(panel)
        if panel.ndim != 2 or panel.shape[0] < panel.shape[1]:
            raise ShapeError(
                f"panel must be tall (m >= k), got shape {panel.shape}"
            )
        return panel


class TsqrPanel(PanelStrategy):
    """TSQR + Householder reconstruction (the paper's panel, §5.1–5.2)."""

    name = "tsqr"

    def __init__(self, *, leaf_rows: int | None = None, max_threads: int | None = None):
        self.leaf_rows = leaf_rows
        #: Thread count for the independent TSQR leaf factorizations
        #: (bitwise identical to serial; see :func:`repro.la.tsqr.tsqr`).
        self.max_threads = max_threads

    def factor(self, panel: np.ndarray, *, engine: GemmEngine | None = None) -> PanelFactorization:
        panel = self._validate(panel)
        eng = engine if engine is not None else SgemmEngine()
        with obs.span("panel.tsqr"):
            q, r = tsqr(
                panel, leaf_rows=self.leaf_rows, engine=eng,
                tag="panel_tsqr", max_threads=self.max_threads,
            )
        with obs.span("panel.reconstruct"):
            w, y, s = reconstruct_wy(q, engine=eng, tag="panel_reconstruct")
        # A = Q R = (Q S)(S R): absorb the sign flips into R's rows.
        r = r * s[:, np.newaxis]
        return PanelFactorization(w=w, y=y, r=r)


class BlockedQrPanel(PanelStrategy):
    """Blocked Householder QR (cuSOLVER ``sgeqrf``-like panel)."""

    name = "blocked_qr"

    def __init__(self, *, block: int = 32):
        if block <= 0:
            raise ShapeError(f"block must be positive, got {block}")
        self.block = block

    def factor(self, panel: np.ndarray, *, engine: GemmEngine | None = None) -> PanelFactorization:
        panel = self._validate(panel)
        with obs.span("panel.blocked_qr"):
            v_cols, betas, r = blocked_qr(panel, block=self.block, engine=engine)
            w, y = build_wy(v_cols, betas)
        return PanelFactorization(w=w, y=y, r=r)


class UnblockedQrPanel(PanelStrategy):
    """Column-at-a-time Householder QR (MAGMA-panel-like reference)."""

    name = "unblocked_qr"

    def factor(self, panel: np.ndarray, *, engine: GemmEngine | None = None) -> PanelFactorization:
        panel = self._validate(panel)
        with obs.span("panel.unblocked_qr"):
            v_cols, betas, r = householder_qr(panel)
            w, y = build_wy(v_cols, betas)
        return PanelFactorization(w=w, y=y, r=r)


_STRATEGIES = {
    "tsqr": TsqrPanel,
    "blocked_qr": BlockedQrPanel,
    "unblocked_qr": UnblockedQrPanel,
}


def make_panel_strategy(name: "str | PanelStrategy") -> PanelStrategy:
    """Resolve a panel strategy from its name (or pass one through)."""
    if isinstance(name, PanelStrategy):
        return name
    try:
        return _STRATEGIES[str(name)]()
    except KeyError:
        raise ShapeError(
            f"unknown panel strategy {name!r}; expected one of {sorted(_STRATEGIES)}"
        ) from None
