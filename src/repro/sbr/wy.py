"""WY-based recursive SBR — the paper's **Algorithm 1**.

The trailing matrix is *not* updated after every panel.  Within a "big
block" of ``nb`` columns (``nb`` a multiple of the bandwidth ``b``), the
algorithm:

1. QR-factors the current panel (rows ``i+b..n``, ``b`` columns) — the
   panel's columns were freshened by the previous step's partial update;
2. extends the accumulated WY pair ``(W, Y)`` of the big block
   (``W <- [W | W_p - W (Y^T W_p)]``, the "form W" cost);
3. updates **only the next panel's columns** of the trailing matrix,
   two-sidedly, against the *original* trailing matrix ``OA`` captured at
   block entry:  ``GA = (I - W Y^T)^T OA (I - W Y_c^T)`` restricted to
   those columns (``Y_c`` = rows of ``Y`` matching the target columns);
4. at the block boundary applies the full two-sided update with the
   complete ``(W, Y)`` and recurses on the remaining trailing matrix.

The payoff: the inner dimension of the dominant GEMMs grows to ``k <= nb``
instead of staying at ``b``, trading extra flops (Table 2) for near-square
Tensor-Core-friendly shapes (Table 1, Figures 5–7).  The extra memory for
``OA`` and the accumulated ``(W, Y)`` is the cost the paper's §7 notes.

Implementation notes
--------------------
- We keep a running cache ``OAW = OA @ W``, extended by one panel's worth
  of columns per iteration (GEMM ``wy_oaw``, (M×M)·(M×b)); Algorithm 1 as
  written recomputes it, but the incremental form is what an efficient
  implementation does and what the paper's operation counts reflect.
- The redundant partial update of the *last* panel in a block (which the
  block-boundary full update would overwrite; visible in the MATLAB
  prototype) is skipped.
- The recursion of Algorithm 1 is expressed iteratively: ``j0`` advances
  by ``nb`` per big block over the same storage.

Resilience
----------
When a :class:`repro.resilience.ResilienceContext` is passed, each panel
iteration — panel QR, (W, Y) extension, and its deferred trailing update
— is a *retryable unit*: the affected region ``A[i:, i:]`` is
checkpointed before the step (``W``/``Y``/``OAW`` are rebuilt by
``hstack`` and need no copy), detectors run on every GEMM output and on
the panel's Q factor, and a detected breakdown restores the checkpoint
and re-runs the panel at the ladder's next-safer precision.  This is the
per-panel recovery granularity the look-ahead band-reduction literature
uses for checkpointing, and it avoids restarting the whole ``sy2sb``.

GEMM tags: ``form_w``, ``wy_oaw``, ``wy_right``, ``wy_left``,
``wy_full_right``, ``wy_full_left``, plus the panel strategy's tags and
``form_q`` for eigenvector accumulation.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericalBreakdownError, SingularMatrixError
from ..gemm.engine import GemmEngine, SgemmEngine
from ..obs import spans as obs
from ..resilience.context import ResilienceContext
from ..validation import as_symmetric_matrix, check_blocksizes, check_finite_matrix
from .ckptio import restore_resilience_state, save_wy_panel
from .formw import form_q_from_blocks
from .panel import PanelStrategy, make_panel_strategy
from .types import SbrResult, WYBlock, unpack_wy_blocks

__all__ = ["sbr_wy"]


def sbr_wy(
    a,
    b: int,
    nb: int,
    *,
    engine: GemmEngine | None = None,
    panel: "str | PanelStrategy" = "tsqr",
    want_q: bool = True,
    q_method: str = "tree",
    resilience: ResilienceContext | None = None,
    checkpoint=None,
    check_finite: bool = True,
) -> SbrResult:
    """Reduce a symmetric matrix to band form with the WY-based Algorithm 1.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        Input matrix.
    b : int
        Target (semi-)bandwidth.
    nb : int
        Big-block size (multiple of ``b``); the deferred-update window.
        ``nb == b`` degenerates to a per-panel full update (ZY-equivalent
        shapes on the left side, WY arithmetic).
    engine : GemmEngine, optional
        GEMM engine implementing the precision policy (default FP32 SGEMM).
    panel : str or PanelStrategy
        Panel factorization (default: the paper's TSQR + reconstruction).
    want_q : bool
        Whether to form the orthogonal transform ``Q`` (``A ≈ Q B Q^T``).
    q_method : {"tree", "forward"}
        How to assemble Q from the per-block WY factors when ``want_q``:
        ``"tree"`` uses the recursive FormW merge (paper Algorithm 2).
    resilience : ResilienceContext, optional
        Per-run failure detection + per-panel precision-escalation retry.
    checkpoint : repro.ckpt.CheckpointManager, optional
        Durable checkpoint/restart: after each panel iteration the full
        loop state (``A``, the block's ``OA``/``W``/``Y``/``OAW``,
        completed blocks, loop indices, the resilience-ladder position)
        is committed as a ``"sbr_panel"`` checkpoint, and a previously
        interrupted reduction resumes from its newest verified one —
        possibly mid-big-block — to a bitwise-identical band.
    check_finite : bool
        Reject NaN/Inf inputs up front (cheap gate; disable only when the
        caller already validated).

    Returns
    -------
    SbrResult
        Band matrix, bandwidth, optional ``Q``, and per-big-block WY blocks.
    """
    eng: "GemmEngine" = engine if engine is not None else SgemmEngine()
    ctx = resilience
    if ctx is not None:
        eng = ctx.wrap_engine(eng)
    strategy = make_panel_strategy(panel)
    a = np.asarray(a)
    if check_finite and a.ndim == 2 and a.size:
        # Before the symmetry check: a NaN fails allclose and would be
        # misreported as asymmetry.
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, dtype=eng.working_dtype)
    n = a.shape[0]
    check_blocksizes(n, b, nb)

    dtype = eng.working_dtype
    A = np.array(a, dtype=dtype, copy=True)
    blocks: list[WYBlock] = []
    norm_baseline = float(np.abs(A).max()) if ctx is not None else 0.0

    panel_index = 0
    j0 = 0
    pending = None  # mid-big-block resume state: (OA, W, Y, OAW, r_start)
    ck = checkpoint
    if ck is not None:
        rck = ck.latest(steps=("sbr_panel",))
        if rck is not None:
            s = rck.scalars
            A = np.ascontiguousarray(rck.arrays["A"]).astype(dtype, copy=False)
            blocks = unpack_wy_blocks(rck.arrays, s.get("block_offsets", []))
            j0 = int(s["j0"])
            panel_index = int(s["panel_index"])
            if ctx is not None:
                norm_baseline = float(s.get("norm_baseline", norm_baseline))
            if s.get("mid_block"):
                pending = (
                    np.ascontiguousarray(rck.arrays["OA"]),
                    np.ascontiguousarray(rck.arrays["W"]),
                    np.ascontiguousarray(rck.arrays["Y"]),
                    np.ascontiguousarray(rck.arrays["OAW"]),
                    int(s["r_next"]),
                )
            restore_resilience_state(ctx, eng, s.get("resilience"))
            ck.mark_resumed(rck)

    while n - j0 - b >= 2:
        M = n - j0 - b  # size of the block's trailing row/col space S = [j0+b, n)
        if pending is not None:
            OA, W, Y, OAW, r_start = pending
            pending = None
        else:
            # Original trailing matrix for this big block (paper: OA / oriA).
            OA = A[j0 + b :, j0 + b :].copy()
            W = None
            Y = None
            OAW = np.empty((M, 0), dtype=dtype)
            r_start = 0
        status = "advance"

        for r in range(r_start, nb, b):
            i = j0 + r
            m = n - i - b  # panel rows
            if m < 2:
                break
            W, Y, OAW, status = _resilient_panel_step(
                A, OA, OAW, W, Y, eng, strategy, ctx,
                b=b, nb=nb, j0=j0, r=r, n=n,
                panel_index=panel_index, norm_baseline=norm_baseline,
            )
            panel_index += 1
            if ck is not None and status == "advance" \
                    and ck.should_save_panel(panel_index):
                save_wy_panel(
                    ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
                    j0=j0, r_next=r + b, panel_index=panel_index,
                    norm_baseline=norm_baseline,
                    OA=OA, W=W, Y=Y, OAW=OAW,
                )
            if status != "advance":
                break

        if W is not None:
            blocks.append(WYBlock(offset=j0 + b, w=W, y=Y))
        if status != "block_end":
            break
        j0 += nb
        if ck is not None and ck.should_save_panel(panel_index):
            # Block boundary: the next panel opens a fresh big block, so
            # only A, the completed blocks, and the indices are live.
            save_wy_panel(
                ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
                j0=j0, r_next=0, panel_index=panel_index,
                norm_baseline=norm_baseline,
            )

    A = (A + A.T) * dtype.type(0.5)
    q = None
    if want_q:
        with obs.span("sbr.form_q", method=q_method):
            q = _resilient_form_q(blocks, n, eng, ctx, q_method, dtype)
    if ctx is not None:
        ctx.note_precision("sbr", eng.precision)
        if q is not None:
            with ctx.unit("sbr"):
                ctx.check_residual(a, q, A, precision=eng.precision)
    return SbrResult(band=A, bandwidth=b, q=q, blocks=blocks)


def _resilient_panel_step(
    A, OA, OAW, W, Y, eng, strategy, ctx,
    *, b, nb, j0, r, n, panel_index, norm_baseline,
):
    """Run one panel step, retrying from a checkpoint on breakdown.

    The checkpoint is the region the step may write — ``A[i:, i:]`` —
    plus the pre-step ``(W, Y, OAW)`` references (immutable between
    steps: extensions allocate new arrays).
    """
    if ctx is None:
        return _panel_step(
            A, OA, OAW, W, Y, eng, strategy, None,
            b=b, nb=nb, j0=j0, r=r, n=n,
            panel_index=panel_index, norm_baseline=norm_baseline,
        )
    i = j0 + r
    snapshot = A[i:, i:].copy() if ctx.can_retry else None
    state = (W, Y, OAW)
    attempt = 0
    while True:
        try:
            with ctx.unit("sbr.panel", panel=panel_index):
                return _panel_step(
                    A, OA, OAW, W, Y, eng, strategy, ctx,
                    b=b, nb=nb, j0=j0, r=r, n=n,
                    panel_index=panel_index, norm_baseline=norm_baseline,
                )
        except (NumericalBreakdownError, SingularMatrixError) as exc:
            if not ctx.handle_breakdown(
                exc, engine=eng, attempt=attempt,
                phase="sbr.panel", panel=panel_index,
            ):
                raise
            A[i:, i:] = snapshot
            W, Y, OAW = state
            attempt += 1


def _resilient_form_q(blocks, n, eng, ctx, q_method, dtype):
    """Assemble Q, retrying at escalated precision on breakdown.

    ``form_q_from_blocks`` is pure in its inputs (the immutable block
    list), so the retry needs no checkpoint.
    """
    if ctx is None:
        return form_q_from_blocks(blocks, n, engine=eng, method=q_method, dtype=dtype)
    attempt = 0
    while True:
        try:
            with ctx.unit("sbr.form_q"):
                return form_q_from_blocks(
                    blocks, n, engine=eng, method=q_method, dtype=dtype
                )
        except NumericalBreakdownError as exc:
            if not ctx.handle_breakdown(
                exc, engine=eng, attempt=attempt, phase="sbr.form_q"
            ):
                raise
            attempt += 1


def _panel_step(
    A, OA, OAW, W, Y, eng, strategy, ctx,
    *, b, nb, j0, r, n, panel_index, norm_baseline,
):
    """One panel iteration: QR, (W, Y) extension, deferred update.

    Returns the extended ``(W, Y, OAW)`` and a status: ``"advance"``
    (next panel in this big block), ``"tail"`` (matrix exhausted), or
    ``"block_end"`` (full trailing update done; start the next block).
    """
    dtype = A.dtype
    M = n - j0 - b
    i = j0 + r
    m = n - i - b
    w_cols = min(b, m)

    # --- 1. Panel QR (columns freshened by the previous step). ---
    with obs.span("sbr.panel", rows=m, cols=w_cols):
        try:
            pf = strategy.factor(A[i + b :, i : i + w_cols], engine=eng)
        except SingularMatrixError as exc:
            if exc.panel is None:
                exc.panel = panel_index
            raise
    if ctx is not None:
        ctx.check_panel(
            pf.w.astype(dtype, copy=False), pf.y.astype(dtype, copy=False),
            precision=eng.precision,
        )
    A[i + b : i + b + w_cols, i : i + w_cols] = pf.r.astype(dtype, copy=False)
    A[i + b + w_cols :, i : i + w_cols] = 0
    A[i : i + w_cols, i + b :] = A[i + b :, i : i + w_cols].T

    if w_cols < b:
        # Tail panel: columns [i+w, i+b) keep in-band entries on the
        # panel row range; earlier deferred updates already brought
        # them up to date through the previous panel, so only this
        # (last) panel's left transform is missing.
        pw = pf.w.astype(dtype, copy=False)
        py = pf.y.astype(dtype, copy=False)
        strip = A[i + b :, i + w_cols : i + b]
        wts = eng.gemm(pw.T, strip, tag="sbr_strip")
        strip -= eng.gemm(py, wts, tag="sbr_strip")
        A[i + w_cols : i + b, i + b :] = strip.T

    # --- 2. Extend (W, Y) over the block row space S (leading zeros). -
    with obs.span("sbr.form_w", rows=M):
        wp = np.zeros((M, w_cols), dtype=dtype)
        yp = np.zeros((M, w_cols), dtype=dtype)
        wp[r:] = pf.w.astype(dtype, copy=False)
        yp[r:] = pf.y.astype(dtype, copy=False)
        if W is None:
            W, Y = wp, yp
        else:
            ytwp = eng.gemm(Y.T, wp, tag="form_w")
            w_new = wp - eng.gemm(W, ytwp, tag="form_w")
            W = np.hstack([W, w_new])
            Y = np.hstack([Y, yp])

    # --- Incremental OA @ W cache (the 'reuse the original matrix'
    #     cost of Algorithm 1's inner loop). -------------------------
    with obs.span("sbr.oaw"):
        OAW = np.hstack([OAW, eng.gemm(OA, W[:, -w_cols:], tag="wy_oaw")])

    if m <= b + 1:
        # Tail: no further panel will run (the next would have
        # m' = m - b < 2 rows), so the partial update must finalize
        # all m remaining columns, not just the next panel's b.
        with obs.span("sbr.partial_update", cols=m):
            _partial_update(A, OA, OAW, W, Y, eng, b=b, j0=j0, r=r, cn=m)
        if ctx is not None:
            lo = j0 + b + r
            ctx.check_norm_growth(
                A[lo:, lo : lo + m], norm_baseline,
                precision=eng.precision, site="wy_right",
            )
        return W, Y, OAW, "tail"
    if r + b >= nb:
        # Big block exhausted with panels remaining: full trailing
        # update from OA, then start the next big block (recursion).
        with obs.span("sbr.full_update", rows=M - r):
            _full_update(A, OA, OAW, W, Y, eng, b=b, j0=j0, r_end=r)
        if ctx is not None:
            lo = j0 + b + r
            ctx.check_norm_growth(
                A[lo:, lo:], norm_baseline,
                precision=eng.precision, site="wy_full_right",
            )
            ctx.check_symmetry(A[lo:, lo:], precision=eng.precision,
                               norm=norm_baseline)
        return W, Y, OAW, "block_end"

    # --- 3. Partial update: only the next panel's columns. ----------
    with obs.span("sbr.partial_update", cols=b):
        _partial_update(A, OA, OAW, W, Y, eng, b=b, j0=j0, r=r, cn=b)
    if ctx is not None:
        lo = j0 + b + r
        ctx.check_norm_growth(
            A[lo:, lo : lo + b], norm_baseline,
            precision=eng.precision, site="wy_right",
        )
    return W, Y, OAW, "advance"


def _partial_update(
    A: np.ndarray,
    OA: np.ndarray,
    OAW: np.ndarray,
    W: np.ndarray,
    Y: np.ndarray,
    eng: GemmEngine,
    *,
    b: int,
    j0: int,
    r: int,
    cn: int,
) -> None:
    """Two-sided update of ``cn`` columns at S-index ``r`` from ``OA``.

    Computes ``GA = ((I - Y W^T) OA (I - W Y_c^T))[r:, r:r+cn]`` where the
    right restriction uses the rows of ``Y`` matching the target columns
    (paper: ``Y(i:i+nb,:)`` in Algorithm 1 line 9), then writes it and its
    symmetric mirror into ``A``.  S-index ``r`` is absolute ``j0 + b + r``.
    """
    dtype = A.dtype
    yc = Y[r : r + cn, :]
    # Right update: X = OA[:, r:r+cn] - (OA W) Y_c^T  (full column block —
    # the left update's W^T X needs every row of X).
    x = OA[:, r : r + cn] - eng.gemm(OAW, yc.T, tag="wy_right")
    # Left update restricted to the needed rows r..M.
    wtx = eng.gemm(W.T, x, tag="wy_left")
    ga = x[r:] - eng.gemm(Y[r:], wtx, tag="wy_left")

    # Exactly symmetrize the diagonal cn×cn block before writing.
    ga[:cn] = (ga[:cn] + ga[:cn].T) * dtype.type(0.5)
    lo = j0 + b + r
    A[lo:, lo : lo + cn] = ga
    A[lo : lo + cn, lo:] = ga.T


def _full_update(
    A: np.ndarray,
    OA: np.ndarray,
    OAW: np.ndarray,
    W: np.ndarray,
    Y: np.ndarray,
    eng: GemmEngine,
    *,
    b: int,
    j0: int,
    r_end: int,
) -> None:
    """Block-boundary full trailing update: ``S[r_end:, r_end:]`` from ``OA``.

    This is Algorithm 1 lines 12–13: the entire remaining trailing matrix
    is rebuilt two-sidedly from the block's original ``OA`` with the
    complete accumulated ``(W, Y)`` — the near-square GEMMs with inner
    dimension ``nb`` that make the algorithm Tensor-Core friendly.
    """
    dtype = A.dtype
    yc = Y[r_end:, :]
    x = OA[:, r_end:] - eng.gemm(OAW, yc.T, tag="wy_full_right")
    wtx = eng.gemm(W.T, x, tag="wy_full_left")
    ga = x[r_end:] - eng.gemm(yc, wtx, tag="wy_full_left")
    ga = (ga + ga.T) * dtype.type(0.5)
    lo = j0 + b + r_end
    A[lo:, lo:] = ga
