"""WY-based recursive SBR — the paper's **Algorithm 1**.

The trailing matrix is *not* updated after every panel.  Within a "big
block" of ``nb`` columns (``nb`` a multiple of the bandwidth ``b``), the
algorithm:

1. QR-factors the current panel (rows ``i+b..n``, ``b`` columns) — the
   panel's columns were freshened by the previous step's partial update;
2. extends the accumulated WY pair ``(W, Y)`` of the big block
   (``W <- [W | W_p - W (Y^T W_p)]``, the "form W" cost);
3. updates **only the next panel's columns** of the trailing matrix,
   two-sidedly, against the *original* trailing matrix ``OA`` captured at
   block entry:  ``GA = (I - W Y^T)^T OA (I - W Y_c^T)`` restricted to
   those columns (``Y_c`` = rows of ``Y`` matching the target columns);
4. at the block boundary applies the full two-sided update with the
   complete ``(W, Y)`` and recurses on the remaining trailing matrix.

The payoff: the inner dimension of the dominant GEMMs grows to ``k <= nb``
instead of staying at ``b``, trading extra flops (Table 2) for near-square
Tensor-Core-friendly shapes (Table 1, Figures 5–7).  The extra memory for
``OA`` and the accumulated ``(W, Y)`` is the cost the paper's §7 notes.

Implementation notes
--------------------
- We keep a running cache ``OAW = OA @ W``, extended by one panel's worth
  of columns per iteration (GEMM ``wy_oaw``, (M×M)·(M×b)); Algorithm 1 as
  written recomputes it, but the incremental form is what an efficient
  implementation does and what the paper's operation counts reflect.
- The redundant partial update of the *last* panel in a block (which the
  block-boundary full update would overwrite; visible in the MATLAB
  prototype) is skipped.
- The recursion of Algorithm 1 is expressed iteratively: ``j0`` advances
  by ``nb`` per big block over the same storage.

Allocation-free hot path
------------------------
All per-iteration temporaries live in a :class:`repro.perf.Workspace`
arena (``workspace=``).  ``W``/``Y``/``OAW`` grow *in place* inside
preallocated ``(M, nb)`` buffers (leading dimension ``nb``, so the
``[:, :k]`` views are BLAS-ready without packing copies), ``OA`` and the
update scratch reuse arena buffers, and the engine-level workspace lets
the EC Tensor-Core GEMMs reuse their operand-split buffers.  The arena is
attached to the engine when the engine has none, so one arena serves both
layers; pass ``workspace=False`` to disable reuse (every take allocates —
the control arm the benchmarks and tests compare against).

The block-boundary full update exploits symmetry: only the lower
trapezoid of each column block of ``GA`` is computed and mirrored (first
block ``b`` wide, then ``nb``-wide blocks; see
:func:`repro.gemm.symbolic.full_update_col_blocks`), saving ~35% of the
dominant third-GEMM flops.  The diagonal sub-blocks are exactly
symmetrized; off-diagonal blocks are mirrored rather than averaged, an
O(eps) difference from the previous both-triangles formulation.

Look-ahead
----------
With ``lookahead=True`` (and no resilience context or checkpoint), the
block-boundary update is split: the first ``b`` columns — exactly what
the next big block's first panel reads — are updated synchronously, the
remaining column blocks run on a single background thread while the main
thread QR-factors the next panel.  The background job writes only columns
(and mirror rows) at offsets ``>= b`` of the update region, disjoint from
everything the panel touches, and is joined before ``OA`` capture.  The
serial path executes the identical column-block sequence, so
``lookahead=True`` and ``False`` produce bitwise-identical bands.

Resilience
----------
When a :class:`repro.resilience.ResilienceContext` is passed, each panel
iteration — panel QR, (W, Y) extension, and its deferred trailing update
— is a *retryable unit*: the affected region ``A[i:, i:]`` is
checkpointed before the step (the arena-backed ``W``/``Y``/``OAW`` are
rolled back by resetting the column counter — a failed step only wrote
columns past it), detectors run on every GEMM output and on the panel's
Q factor, and a detected breakdown restores the checkpoint and re-runs
the panel at the ladder's next-safer precision.  Look-ahead is disabled
under a resilience context or checkpoint manager (the retry and
commit-point semantics are defined on the serial schedule).

GEMM tags: ``form_w``, ``wy_oaw``, ``wy_right``, ``wy_left``,
``wy_full_right``, ``wy_full_left``, plus the panel strategy's tags and
``form_q`` for eigenvector accumulation.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import NumericalBreakdownError, SingularMatrixError
from ..gemm.engine import GemmEngine, SgemmEngine
from ..gemm.symbolic import full_update_col_blocks
from ..obs import spans as obs
from ..obs.live import use_registry
from ..perf import Workspace, resolve_workspace
from ..resilience.context import ResilienceContext
from ..validation import as_symmetric_matrix, check_blocksizes, check_finite_matrix
from .ckptio import restore_resilience_state, save_wy_panel
from .formw import form_q_from_blocks
from .panel import PanelStrategy, make_panel_strategy
from .types import SbrResult, WYBlock, unpack_wy_blocks

__all__ = ["sbr_wy"]


class _BlockState:
    """Arena-backed accumulated state of one big block.

    ``w``/``y``/``oaw`` are ``(M, nb)`` buffers with the first ``k``
    columns live; extensions write columns ``k:k+w`` in place instead of
    re-``hstack``-ing ever-larger copies each panel.
    """

    __slots__ = ("w", "y", "oaw", "k")

    def __init__(self, ws: Workspace, M: int, nb: int, dtype) -> None:
        self.w = ws.take("sbr_W", (M, nb), dtype)
        self.y = ws.take("sbr_Y", (M, nb), dtype)
        self.oaw = ws.take("sbr_OAW", (M, nb), dtype)
        self.k = 0

    @property
    def W(self) -> np.ndarray:
        return self.w[:, : self.k]

    @property
    def Y(self) -> np.ndarray:
        return self.y[:, : self.k]

    @property
    def OAW(self) -> np.ndarray:
        return self.oaw[:, : self.k]


def _gemm_into(eng, a, b, view, *, tag, ta=False, tb=False):
    """GEMM into a preallocated view, honoring engine substitution.

    A wrapping engine (fault injection, escalation) may return an array
    other than ``out`` — the returned value is authoritative, so copy it
    back into the view in that case.
    """
    res = eng.gemm(a, b, tag=tag, out=view, ta=ta, tb=tb)
    if res is not view:
        view[...] = res
    return view


def sbr_wy(
    a,
    b: int,
    nb: int,
    *,
    engine: GemmEngine | None = None,
    panel: "str | PanelStrategy" = "tsqr",
    want_q: bool = True,
    q_method: str = "tree",
    workspace=None,
    lookahead: bool = False,
    resilience: ResilienceContext | None = None,
    checkpoint=None,
    check_finite: bool = True,
    metrics=None,
) -> SbrResult:
    """Reduce a symmetric matrix to band form with the WY-based Algorithm 1.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        Input matrix.
    b : int
        Target (semi-)bandwidth.
    nb : int
        Big-block size (multiple of ``b``); the deferred-update window.
        ``nb == b`` degenerates to a per-panel full update (ZY-equivalent
        shapes on the left side, WY arithmetic).
    engine : GemmEngine, optional
        GEMM engine implementing the precision policy (default FP32 SGEMM).
    panel : str or PanelStrategy
        Panel factorization (default: the paper's TSQR + reconstruction).
    want_q : bool
        Whether to form the orthogonal transform ``Q`` (``A ≈ Q B Q^T``).
    q_method : {"tree", "forward"}
        How to assemble Q from the per-block WY factors when ``want_q``:
        ``"tree"`` uses the recursive FormW merge (paper Algorithm 2).
    workspace : repro.perf.Workspace, bool, or None
        Scratch arena for the hot-loop temporaries (module docstring).
        ``None``/``True`` create a fresh arena, ``False`` disables reuse
        (a :class:`repro.perf.NullWorkspace` that allocates every take),
        or pass an existing arena to share and inspect its counters.
    lookahead : bool
        Overlap the block-boundary trailing update with the next panel's
        QR on a background thread (module docstring).  Bitwise-identical
        to the serial schedule; ignored when a resilience context or
        checkpoint manager is active.
    resilience : ResilienceContext, optional
        Per-run failure detection + per-panel precision-escalation retry.
    checkpoint : repro.ckpt.CheckpointManager, optional
        Durable checkpoint/restart: after each panel iteration the full
        loop state (``A``, the block's ``OA``/``W``/``Y``/``OAW``,
        completed blocks, loop indices, the resilience-ladder position)
        is committed as a ``"sbr_panel"`` checkpoint, and a previously
        interrupted reduction resumes from its newest verified one —
        possibly mid-big-block — to a bitwise-identical band.
    check_finite : bool
        Reject NaN/Inf inputs up front (cheap gate; disable only when the
        caller already validated).
    metrics : repro.obs.live.MetricsRegistry, optional
        Install a live metrics registry for the duration of this call
        (standalone use; the 2-stage driver installs one run-wide).

    Returns
    -------
    SbrResult
        Band matrix, bandwidth, optional ``Q``, per-big-block WY blocks,
        and the workspace arena (``result.workspace``) whose ``stats()``
        feed the run manifest's ``alloc`` line.
    """
    if metrics is not None:
        with use_registry(metrics):
            return sbr_wy(
                a, b, nb, engine=engine, panel=panel, want_q=want_q,
                q_method=q_method, workspace=workspace, lookahead=lookahead,
                resilience=resilience, checkpoint=checkpoint,
                check_finite=check_finite,
            )
    eng: "GemmEngine" = engine if engine is not None else SgemmEngine()
    ws = resolve_workspace(workspace)
    if isinstance(eng, GemmEngine) and eng.workspace is None:
        # One arena serves both layers: SBR temporaries and the engine's
        # precision-conversion scratch (EC operand splits, chunk buffers).
        eng.workspace = ws
    ctx = resilience
    if ctx is not None:
        eng = ctx.wrap_engine(eng)
    strategy = make_panel_strategy(panel)
    a = np.asarray(a)
    if check_finite and a.ndim == 2 and a.size:
        # Before the symmetry check: a NaN fails allclose and would be
        # misreported as asymmetry.
        check_finite_matrix(a)
    a = as_symmetric_matrix(a, dtype=eng.working_dtype)
    n = a.shape[0]
    check_blocksizes(n, b, nb)

    dtype = eng.working_dtype
    A = np.array(a, dtype=dtype, copy=True)
    blocks: list[WYBlock] = []
    norm_baseline = float(np.abs(A).max()) if ctx is not None else 0.0

    panel_index = 0
    j0 = 0
    pending = None  # mid-big-block resume state: (OA, W, Y, OAW, r_start)
    ck = checkpoint
    if ck is not None:
        rck = ck.latest(steps=("sbr_panel",))
        if rck is not None:
            s = rck.scalars
            A = np.ascontiguousarray(rck.arrays["A"]).astype(dtype, copy=False)
            blocks = unpack_wy_blocks(rck.arrays, s.get("block_offsets", []))
            j0 = int(s["j0"])
            panel_index = int(s["panel_index"])
            if ctx is not None:
                norm_baseline = float(s.get("norm_baseline", norm_baseline))
            if s.get("mid_block"):
                pending = (
                    np.ascontiguousarray(rck.arrays["OA"]),
                    np.ascontiguousarray(rck.arrays["W"]),
                    np.ascontiguousarray(rck.arrays["Y"]),
                    np.ascontiguousarray(rck.arrays["OAW"]),
                    int(s["r_next"]),
                )
            restore_resilience_state(ctx, eng, s.get("resilience"))
            ck.mark_resumed(rck)

    la_pool = (
        ThreadPoolExecutor(max_workers=1, thread_name_prefix="sbr-la")
        if (lookahead and ctx is None and ck is None)
        else None
    )
    pre_pf = None
    try:
        while n - j0 - b >= 2:
            M = n - j0 - b  # size of the block's trailing row/col space S
            st = _BlockState(ws, M, min(nb, M), dtype)
            OA = ws.take("sbr_OA", (M, M), dtype)
            if pending is not None:
                oa_r, w_r, y_r, oaw_r, r_start = pending
                pending = None
                np.copyto(OA, oa_r)
                k = w_r.shape[1]
                st.w[:, :k] = w_r
                st.y[:, :k] = y_r
                st.oaw[:, :k] = oaw_r
                st.k = k
            else:
                # Original trailing matrix for this big block (paper: OA).
                np.copyto(OA, A[j0 + b :, j0 + b :])
                r_start = 0
            # OA is constant for the whole big block: let the engine
            # amortize its operand transformation (the EC hi/lo FP16
            # split — several full M×M passes) across the block's
            # panels.  Bitwise identical to passing OA itself.  Under a
            # resilience context the wrapped engine re-runs steps at
            # other precisions, so the raw array is used there.
            oa_op = eng.prepare_operand(OA, tag="sbr_OA") if ctx is None else OA
            status = "advance"
            la_fut = None

            for r in range(r_start, nb, b):
                i = j0 + r
                m = n - i - b  # panel rows
                if m < 2:
                    break
                if ck is not None:
                    # Interrupt-flush snapshot: a KeyboardInterrupt/SIGTERM
                    # landing mid-step leaves A[i:, i:] half-updated, so the
                    # pre-step state is kept restorable until the step
                    # commits.  Same region the resilience retry snapshots.
                    flush_snap = A[i:, i:].copy()
                    flush_k = st.k
                try:
                    status, la_fut = _resilient_panel_step(
                        A, OA, st, eng, strategy, ctx, ws,
                        b=b, nb=nb, j0=j0, r=r, n=n,
                        panel_index=panel_index, norm_baseline=norm_baseline,
                        la_pool=la_pool, pre_pf=pre_pf, oa_op=oa_op,
                    )
                except KeyboardInterrupt:
                    if ck is not None:
                        A[i:, i:] = flush_snap
                        st.k = flush_k
                        _flush_interrupt_checkpoint(
                            ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
                            j0=j0, r=r, st=st, panel_index=panel_index,
                            norm_baseline=norm_baseline, OA=OA,
                        )
                    raise
                pre_pf = None
                panel_index += 1
                if ck is not None and status == "advance" \
                        and ck.should_save_panel(panel_index):
                    save_wy_panel(
                        ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
                        j0=j0, r_next=r + b, panel_index=panel_index,
                        norm_baseline=norm_baseline,
                        OA=OA, W=st.W, Y=st.Y, OAW=st.OAW,
                    )
                if status != "advance":
                    break

            if st.k > 0:
                # Copy out of the arena: the buffers are reused next block.
                blocks.append(
                    WYBlock(offset=j0 + b, w=st.W.copy(), y=st.Y.copy())
                )
            if status != "block_end":
                break
            j0 += nb
            if la_fut is not None:
                # Overlap window: QR-factor the next big block's first
                # panel (it reads only the already-written priority
                # columns) while the background thread finishes the rest
                # of the trailing update, then join before OA capture.
                m_next = n - j0 - b
                if m_next >= 2:
                    w_next = min(b, m_next)
                    with obs.span("sbr.panel", rows=m_next, cols=w_next):
                        pre_pf = strategy.factor(
                            A[j0 + b :, j0 : j0 + w_next], engine=eng
                        )
                la_fut.result()
            if ck is not None and ck.should_save_panel(panel_index):
                # Block boundary: the next panel opens a fresh big block,
                # so only A, the completed blocks, and the indices are live.
                save_wy_panel(
                    ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
                    j0=j0, r_next=0, panel_index=panel_index,
                    norm_baseline=norm_baseline,
                )
    finally:
        if la_pool is not None:
            la_pool.shutdown(wait=True)

    A = (A + A.T) * dtype.type(0.5)
    q = None
    if want_q:
        with obs.span("sbr.form_q", method=q_method):
            q = _resilient_form_q(blocks, n, eng, ctx, q_method, dtype)
    if ctx is not None:
        ctx.note_precision("sbr", eng.precision)
        if q is not None:
            with ctx.unit("sbr"):
                ctx.check_residual(a, q, A, precision=eng.precision)
    return SbrResult(band=A, bandwidth=b, q=q, blocks=blocks, workspace=ws)


def _flush_interrupt_checkpoint(
    ck, *, A, blocks, ctx, eng, j0, r, st, panel_index, norm_baseline, OA,
):
    """Commit a resumable checkpoint after an interrupt restored pre-step state.

    Runs with ``A``/``st`` already rolled back to the start of the
    interrupted panel step, so the commit is exactly the checkpoint the
    regular cadence *would* have written there: mid-block (with
    ``OA``/``W``/``Y``/``OAW``) when earlier panels of this big block are
    live in the arena, block-boundary otherwise (``OA`` is recaptured
    from ``A`` on resume).  Ignores the ``should_save_panel`` cadence —
    an interrupted run flushes unconditionally so resume never falls
    back further than the interrupted panel.  A second interrupt during
    the flush itself propagates; the atomic commit protocol guarantees
    the previous checkpoint stays intact in that case.
    """
    if st.k > 0:
        save_wy_panel(
            ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
            j0=j0, r_next=r, panel_index=panel_index,
            norm_baseline=norm_baseline,
            OA=OA, W=st.W, Y=st.Y, OAW=st.OAW,
        )
    else:
        save_wy_panel(
            ck, A=A, blocks=blocks, ctx=ctx, eng=eng,
            j0=j0, r_next=0, panel_index=panel_index,
            norm_baseline=norm_baseline,
        )


def _resilient_panel_step(
    A, OA, st, eng, strategy, ctx, ws,
    *, b, nb, j0, r, n, panel_index, norm_baseline, la_pool, pre_pf,
    oa_op=None,
):
    """Run one panel step, retrying from a checkpoint on breakdown.

    The checkpoint is the region the step may write — ``A[i:, i:]`` —
    plus the pre-step column counter of the arena state (a failed step
    only wrote columns past it, which resetting the counter discards).
    """
    if ctx is None:
        return _panel_step(
            A, OA, st, eng, strategy, None, ws,
            b=b, nb=nb, j0=j0, r=r, n=n,
            panel_index=panel_index, norm_baseline=norm_baseline,
            la_pool=la_pool, pre_pf=pre_pf, oa_op=oa_op,
        )
    i = j0 + r
    snapshot = A[i:, i:].copy() if ctx.can_retry else None
    k_before = st.k
    attempt = 0
    while True:
        try:
            with ctx.unit("sbr.panel", panel=panel_index):
                return _panel_step(
                    A, OA, st, eng, strategy, ctx, ws,
                    b=b, nb=nb, j0=j0, r=r, n=n,
                    panel_index=panel_index, norm_baseline=norm_baseline,
                    la_pool=None, pre_pf=None,
                )
        except (NumericalBreakdownError, SingularMatrixError) as exc:
            if not ctx.handle_breakdown(
                exc, engine=eng, attempt=attempt,
                phase="sbr.panel", panel=panel_index,
            ):
                raise
            A[i:, i:] = snapshot
            st.k = k_before
            attempt += 1


def _resilient_form_q(blocks, n, eng, ctx, q_method, dtype):
    """Assemble Q, retrying at escalated precision on breakdown.

    ``form_q_from_blocks`` is pure in its inputs (the immutable block
    list), so the retry needs no checkpoint.
    """
    if ctx is None:
        return form_q_from_blocks(blocks, n, engine=eng, method=q_method, dtype=dtype)
    attempt = 0
    while True:
        try:
            with ctx.unit("sbr.form_q"):
                return form_q_from_blocks(
                    blocks, n, engine=eng, method=q_method, dtype=dtype
                )
        except NumericalBreakdownError as exc:
            if not ctx.handle_breakdown(
                exc, engine=eng, attempt=attempt, phase="sbr.form_q"
            ):
                raise
            attempt += 1


def _panel_step(
    A, OA, st, eng, strategy, ctx, ws,
    *, b, nb, j0, r, n, panel_index, norm_baseline, la_pool, pre_pf,
    oa_op=None,
):
    """One panel iteration: QR, (W, Y) extension, deferred update.

    Returns ``(status, la_future)`` — status ``"advance"`` (next panel in
    this big block), ``"tail"`` (matrix exhausted), or ``"block_end"``
    (full trailing update done; start the next block).  ``la_future`` is
    the in-flight background remainder of a look-ahead full update (only
    ever non-None with status ``"block_end"``).
    """
    dtype = A.dtype
    M = n - j0 - b
    i = j0 + r
    m = n - i - b
    w_cols = min(b, m)

    # --- 1. Panel QR (columns freshened by the previous step). ---
    if pre_pf is not None and r == 0:
        pf = pre_pf  # look-ahead prefactored this panel at the boundary
    else:
        with obs.span("sbr.panel", rows=m, cols=w_cols):
            try:
                pf = strategy.factor(A[i + b :, i : i + w_cols], engine=eng)
            except SingularMatrixError as exc:
                if exc.panel is None:
                    exc.panel = panel_index
                raise
    if ctx is not None:
        ctx.check_panel(
            pf.w.astype(dtype, copy=False), pf.y.astype(dtype, copy=False),
            precision=eng.precision,
        )
    A[i + b : i + b + w_cols, i : i + w_cols] = pf.r.astype(dtype, copy=False)
    A[i + b + w_cols :, i : i + w_cols] = 0
    A[i : i + w_cols, i + b :] = A[i + b :, i : i + w_cols].T

    if w_cols < b:
        # Tail panel: columns [i+w, i+b) keep in-band entries on the
        # panel row range; earlier deferred updates already brought
        # them up to date through the previous panel, so only this
        # (last) panel's left transform is missing.
        pw = pf.w.astype(dtype, copy=False)
        py = pf.y.astype(dtype, copy=False)
        strip = A[i + b :, i + w_cols : i + b]
        wts = eng.gemm(pw.T, strip, tag="sbr_strip")
        strip -= eng.gemm(py, wts, tag="sbr_strip")
        A[i + w_cols : i + b, i + b :] = strip.T

    # --- 2. Extend (W, Y) over the block row space S (leading zeros),
    #     in place inside the arena buffers. --------------------------
    with obs.span("sbr.form_w", rows=M):
        K = st.k
        y_new = st.y[:, K : K + w_cols]
        y_new[:r] = 0
        y_new[r:] = pf.y.astype(dtype, copy=False)
        if K == 0:
            w_dst = st.w[:, :w_cols]
            w_dst[:r] = 0
            w_dst[r:] = pf.w.astype(dtype, copy=False)
        else:
            wp = ws.take("sbr_wp", (M, w_cols), dtype)
            wp[:r] = 0
            wp[r:] = pf.w.astype(dtype, copy=False)
            ytwp = ws.take("sbr_ytwp", (K, w_cols), dtype)
            _gemm_into(eng, st.Y, wp, ytwp, ta=True, tag="form_w")
            tmp = ws.take("sbr_wtmp", (M, w_cols), dtype)
            _gemm_into(eng, st.W, ytwp, tmp, tag="form_w")
            np.subtract(wp, tmp, out=st.w[:, K : K + w_cols])
        st.k = K + w_cols

    # --- Incremental OA @ W cache (the 'reuse the original matrix'
    #     cost of Algorithm 1's inner loop). -------------------------
    with obs.span("sbr.oaw"):
        _gemm_into(
            eng, OA if oa_op is None else oa_op,
            st.w[:, K : st.k], st.oaw[:, K : st.k], tag="wy_oaw",
        )

    if m <= b + 1:
        # Tail: no further panel will run (the next would have
        # m' = m - b < 2 rows), so the partial update must finalize
        # all m remaining columns, not just the next panel's b.
        with obs.span("sbr.partial_update", cols=m):
            _partial_update(A, OA, st, eng, ws, b=b, j0=j0, r=r, cn=m)
        if ctx is not None:
            lo = j0 + b + r
            ctx.check_norm_growth(
                A[lo:, lo : lo + m], norm_baseline,
                precision=eng.precision, site="wy_right",
            )
        return "tail", None
    if r + b >= nb:
        # Big block exhausted with panels remaining: full trailing
        # update from OA, then start the next big block (recursion).
        with obs.span("sbr.full_update", rows=M - r):
            la_fut = _full_update(
                A, OA, st, eng, ws, b=b, nb=nb, j0=j0, r_end=r,
                la_pool=la_pool,
            )
        if ctx is not None:
            lo = j0 + b + r
            ctx.check_norm_growth(
                A[lo:, lo:], norm_baseline,
                precision=eng.precision, site="wy_full_right",
            )
            ctx.check_symmetry(A[lo:, lo:], precision=eng.precision,
                               norm=norm_baseline)
        return "block_end", la_fut

    # --- 3. Partial update: only the next panel's columns. ----------
    with obs.span("sbr.partial_update", cols=b):
        _partial_update(A, OA, st, eng, ws, b=b, j0=j0, r=r, cn=b)
    if ctx is not None:
        lo = j0 + b + r
        ctx.check_norm_growth(
            A[lo:, lo : lo + b], norm_baseline,
            precision=eng.precision, site="wy_right",
        )
    return "advance", None


def _partial_update(
    A: np.ndarray,
    OA: np.ndarray,
    st: _BlockState,
    eng: GemmEngine,
    ws: Workspace,
    *,
    b: int,
    j0: int,
    r: int,
    cn: int,
) -> None:
    """Two-sided update of ``cn`` columns at S-index ``r`` from ``OA``.

    Computes ``GA = ((I - Y W^T) OA (I - W Y_c^T))[r:, r:r+cn]`` where the
    right restriction uses the rows of ``Y`` matching the target columns
    (paper: ``Y(i:i+nb,:)`` in Algorithm 1 line 9), then writes it and its
    symmetric mirror into ``A``.  S-index ``r`` is absolute ``j0 + b + r``.
    """
    dtype = A.dtype
    M = OA.shape[0]
    K = st.k
    W, Y, OAW = st.W, st.Y, st.OAW
    yc = Y[r : r + cn, :]
    # Right update: X = OA[:, r:r+cn] - (OA W) Y_c^T  (full column block —
    # the left update's W^T X needs every row of X).
    x = ws.take("sbr_x", (M, cn), dtype)
    _gemm_into(eng, OAW, yc, x, tb=True, tag="wy_right")
    np.subtract(OA[:, r : r + cn], x, out=x)
    # Left update restricted to the needed rows r..M.
    wtx = ws.take("sbr_wtx", (K, cn), dtype)
    _gemm_into(eng, W, x, wtx, ta=True, tag="wy_left")
    ga = ws.take("sbr_ga", (M - r, cn), dtype)
    _gemm_into(eng, Y[r:], wtx, ga, tag="wy_left")
    np.subtract(x[r:], ga, out=ga)

    # Exactly symmetrize the diagonal cn×cn block before writing.
    ga[:cn] = (ga[:cn] + ga[:cn].T) * dtype.type(0.5)
    lo = j0 + b + r
    A[lo:, lo : lo + cn] = ga
    A[lo : lo + cn, lo:] = ga.T


def _full_update(
    A: np.ndarray,
    OA: np.ndarray,
    st: _BlockState,
    eng: GemmEngine,
    ws: Workspace,
    *,
    b: int,
    nb: int,
    j0: int,
    r_end: int,
    la_pool=None,
) -> "object | None":
    """Block-boundary full trailing update: ``S[r_end:, r_end:]`` from ``OA``.

    This is Algorithm 1 lines 12–13: the entire remaining trailing matrix
    is rebuilt two-sidedly from the block's original ``OA`` with the
    complete accumulated ``(W, Y)`` — the near-square GEMMs with inner
    dimension ``nb`` that make the algorithm Tensor-Core friendly.

    Symmetry-aware: only the lower trapezoid of each column block of the
    result is computed and mirrored (the old path computed the full
    square and averaged both triangles).  With a look-ahead pool the
    first (``b``-wide) column block is applied synchronously and the rest
    run as one background job; the returned future must be joined before
    anything reads or re-captures the region past those columns.
    """
    dtype = A.dtype
    M = OA.shape[0]
    K = st.k
    W, Y, OAW = st.W, st.Y, st.OAW
    T = M - r_end
    yc = Y[r_end:, :]
    x = ws.take("sbr_fx", (M, T), dtype)
    _gemm_into(eng, OAW, yc, x, tb=True, tag="wy_full_right")
    np.subtract(OA[:, r_end:], x, out=x)
    wtx = ws.take("sbr_fwtx", (K, T), dtype)
    _gemm_into(eng, W, x, wtx, ta=True, tag="wy_full_left")

    lo = j0 + b + r_end
    col_blocks = full_update_col_blocks(T, b, nb)
    if la_pool is not None and len(col_blocks) > 1:
        c0, c1 = col_blocks[0]
        _apply_full_col_block(
            A, x, Y, wtx, eng, ws, lo=lo, r_end=r_end, c0=c0, c1=c1
        )
        # Propagate the submitting thread's span context into the pool
        # worker: the worker's GEMM events and spans attribute to the
        # enclosing phase (e.g. syevd/sbr) instead of span_path="".
        return la_pool.submit(
            obs.wrap_context(_apply_full_col_blocks),
            A, x, Y, wtx, eng, ws,
            lo=lo, r_end=r_end, col_blocks=col_blocks[1:],
        )
    _apply_full_col_blocks(
        A, x, Y, wtx, eng, ws, lo=lo, r_end=r_end, col_blocks=col_blocks
    )
    return None


def _apply_full_col_blocks(A, x, Y, wtx, eng, ws, *, lo, r_end, col_blocks):
    for c0, c1 in col_blocks:
        _apply_full_col_block(
            A, x, Y, wtx, eng, ws, lo=lo, r_end=r_end, c0=c0, c1=c1
        )


def _apply_full_col_block(A, x, Y, wtx, eng, ws, *, lo, r_end, c0, c1):
    """Lower trapezoid of one column block of ``GA``, written + mirrored.

    ``GA[c0:, c0:c1] = X[r_end+c0:, c0:c1] - Y[r_end+c0:, :] (W^T X)[:, c0:c1]``
    with the diagonal ``(c1-c0)``-square exactly symmetrized.
    """
    dtype = A.dtype
    rows = x.shape[0] - r_end - c0  # = T - c0
    gb = ws.take("sbr_fga", (rows, c1 - c0), dtype)
    _gemm_into(eng, Y[r_end + c0 :], wtx[:, c0:c1], gb, tag="wy_full_left")
    np.subtract(x[r_end + c0 :, c0:c1], gb, out=gb)
    d = gb[: c1 - c0]
    d[...] = (d + d.T) * dtype.type(0.5)
    A[lo + c0 :, lo + c0 : lo + c1] = gb
    A[lo + c0 : lo + c1, lo + c0 :] = gb.T
