"""Recursive W construction and Q assembly — the paper's **Algorithm 2**.

When eigenvectors are needed, the back-transformation must apply the
product of all accumulated block reflectors.  Because the WY-based SBR
already maintains fully-formed per-block ``(W_j, Y_j)`` pairs, merging them
into one global pair is a tree of squarish GEMMs:

    (I - W_L Y_L^T)(I - W_R Y_R^T)
        = I - [W_L | W_R - W_L (Y_L^T W_R)] [Y_L | Y_R]^T

applied recursively over halves of the block list (Algorithm 2's
left-recurse / right-recurse / merge).  The paper measures ~320 ms vs
420 ms for the ZY-style sequential accumulation at n = 32768 (§4.4).

``form_q_from_blocks`` also provides the sequential ("forward") method
used with the ZY algorithm, for comparison and for Q assembly of
:func:`repro.sbr.zy.sbr_zy` results.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from .types import WYBlock

__all__ = ["form_wy_tree", "form_q_from_blocks"]


def form_wy_tree(
    pairs: "list[tuple[np.ndarray, np.ndarray]]",
    *,
    engine: GemmEngine | None = None,
    tag: str = "formw",
) -> tuple[np.ndarray, np.ndarray]:
    """Merge WY pairs (all over the same row space) into one pair.

    Parameters
    ----------
    pairs : list of (W, Y)
        WY pairs in application order (leftmost applied first); all must
        share the same row dimension.
    engine : GemmEngine, optional
        Engine for the merge GEMMs (tagged ``tag``).

    Returns
    -------
    (W, Y)
        Single pair with ``I - W Y^T = prod_j (I - W_j Y_j^T)``.
    """
    if not pairs:
        raise ShapeError("form_wy_tree requires at least one WY pair")
    rows = pairs[0][0].shape[0]
    for w, y in pairs:
        if w.shape != y.shape or w.shape[0] != rows:
            raise ShapeError(
                f"all WY pairs must share the row space; got {w.shape} vs rows={rows}"
            )
    eng = engine if engine is not None else PlainEngine()

    def merge(lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        if hi - lo == 1:
            return pairs[lo]
        mid = (lo + hi) // 2
        w_l, y_l = merge(lo, mid)
        w_r, y_r = merge(mid, hi)
        ylt_wr = eng.gemm(y_l.T, w_r, tag=tag)
        w_new = w_r - eng.gemm(w_l, ylt_wr, tag=tag)
        return np.hstack([w_l, w_new]), np.hstack([y_l, y_r])

    return merge(0, len(pairs))


def form_q_from_blocks(
    blocks: "list[WYBlock]",
    n: int,
    *,
    engine: GemmEngine | None = None,
    method: str = "tree",
    dtype=np.float32,
    tag: str = "form_q",
) -> np.ndarray:
    """Assemble the n×n orthogonal ``Q = prod_j embed(I - W_j Y_j^T)``.

    Parameters
    ----------
    blocks : list of WYBlock
        Per-block factors in application order (as produced by the SBR
        drivers); block ``j`` acts on rows ``offset_j..n``.
    n : int
        Full matrix size.
    method : {"tree", "forward"}
        ``"tree"``: embed all blocks into the common row space of the first
        block and merge with :func:`form_wy_tree` (Algorithm 2), then one
        GEMM forms Q.  ``"forward"``: sequentially apply each block to the
        accumulating Q (the conventional ZY-era back transformation).
    """
    eng = engine if engine is not None else PlainEngine()
    q = np.eye(n, dtype=dtype)
    if not blocks:
        return q

    if method == "forward":
        for blk in blocks:
            off = blk.offset
            w = blk.w.astype(dtype, copy=False)
            y = blk.y.astype(dtype, copy=False)
            qw = eng.gemm(q[:, off:], w, tag=tag)
            q[:, off:] -= eng.gemm(qw, y.T, tag=tag)
        return q

    if method != "tree":
        raise ShapeError(f"method must be 'tree' or 'forward', got {method!r}")

    # Embed every block into the row space of the first (largest) block.
    base = min(blk.offset for blk in blocks)
    rows = n - base
    pairs: list[tuple[np.ndarray, np.ndarray]] = []
    for blk in blocks:
        pad = blk.offset - base
        w = np.zeros((rows, blk.ncols), dtype=dtype)
        y = np.zeros((rows, blk.ncols), dtype=dtype)
        w[pad:] = blk.w.astype(dtype, copy=False)
        y[pad:] = blk.y.astype(dtype, copy=False)
        pairs.append((w, y))
    w_all, y_all = form_wy_tree(pairs, engine=eng, tag="formw")

    # Q[base:, base:] = I - W Y^T  (one big GEMM).
    q[base:, base:] -= eng.gemm(w_all, y_all.T, tag=tag)
    return q
