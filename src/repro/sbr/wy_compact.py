"""Storage-efficient (compact-WY) variant of the WY-based SBR.

The paper's §7 concedes that Algorithm 1 "requires more device memory to
store the original matrix and the WY representation".  Half of that WY
cost is removable: the Schreiber–Van Loan compact form stores ``Q = I - Y
T Y^T`` with a small k×k triangular ``T`` instead of the M×k ``W = Y T``,
halving the representation's footprint during the inner loop (W is only
materialized per block — and only when eigenvectors are wanted).

The *large* GEMM shapes — the ``OA @ Y`` cache extension, the partial and
full two-sided updates — are identical to the explicit variant; the
per-panel W extension (two M-sized GEMMs) becomes a T-merge
(one M-sized GEMM plus triangular work):

    T_new = [[T, -T (Y^T Y_p) T_p], [0, T_p]].

Note the trade is memory, not flops: applying ``T`` adds (k×k)·(k×width)
products to every update, so the compact variant does slightly *more*
arithmetic while keeping the M×k ``W`` out of the inner loop's working
set (it is materialized once per block, for the back-transformation).

GEMM tags: ``form_t`` (the merge), ``wy_oay`` (cache), plus the same
``wy_right``/``wy_left``/``wy_full_*``/``sbr_strip`` tags as the explicit
variant and ``form_w`` for the per-block W materialization.
"""

from __future__ import annotations

import numpy as np

from ..gemm.engine import GemmEngine, SgemmEngine
from ..la.lu import solve_lower_unit
from ..validation import as_symmetric_matrix, check_blocksizes
from .formw import form_q_from_blocks
from .panel import PanelStrategy, make_panel_strategy
from .types import SbrResult, WYBlock

__all__ = ["sbr_wy_compact"]


def _panel_t_factor(w_p: np.ndarray, y_p: np.ndarray) -> np.ndarray:
    """Recover the compact T of a panel from its (W, Y): ``W = Y T``.

    ``Y``'s top square block is unit lower triangular, so ``T`` solves the
    small triangular system ``Y[:k] T = W[:k]``.
    """
    k = w_p.shape[1]
    return np.asarray(solve_lower_unit(y_p[:k, :], w_p[:k, :]), dtype=w_p.dtype)


def sbr_wy_compact(
    a,
    b: int,
    nb: int,
    *,
    engine: GemmEngine | None = None,
    panel: "str | PanelStrategy" = "tsqr",
    want_q: bool = True,
    q_method: str = "tree",
) -> SbrResult:
    """Algorithm 1 with the compact (Y, T) representation.

    Same contract and numerical behaviour as :func:`repro.sbr.wy.sbr_wy`
    (the two are cross-validated in the tests); the accumulated transform
    is carried as ``I - Y T Y^T`` to halve the working-set memory.
    """
    eng = engine if engine is not None else SgemmEngine()
    strategy = make_panel_strategy(panel)
    a = as_symmetric_matrix(a, dtype=eng.working_dtype)
    n = a.shape[0]
    check_blocksizes(n, b, nb)

    dtype = eng.working_dtype
    A = np.array(a, dtype=dtype, copy=True)
    blocks: list[WYBlock] = []

    j0 = 0
    while n - j0 - b >= 2:
        M = n - j0 - b
        OA = A[j0 + b :, j0 + b :].copy()
        Y: np.ndarray | None = None
        T: np.ndarray | None = None
        OAY = np.empty((M, 0), dtype=dtype)
        advance_full_block = False

        for r in range(0, nb, b):
            i = j0 + r
            m = n - i - b
            if m < 2:
                break
            w_cols = min(b, m)

            pf = strategy.factor(A[i + b :, i : i + w_cols], engine=eng)
            A[i + b : i + b + w_cols, i : i + w_cols] = pf.r.astype(dtype, copy=False)
            A[i + b + w_cols :, i : i + w_cols] = 0
            A[i : i + w_cols, i + b :] = A[i + b :, i : i + w_cols].T

            if w_cols < b:
                pw = pf.w.astype(dtype, copy=False)
                py = pf.y.astype(dtype, copy=False)
                strip = A[i + b :, i + w_cols : i + b]
                wts = eng.gemm(pw.T, strip, tag="sbr_strip")
                strip -= eng.gemm(py, wts, tag="sbr_strip")
                A[i + w_cols : i + b, i + b :] = strip.T

            # --- Extend (Y, T) over the block row space. ---------------------
            yp = np.zeros((M, w_cols), dtype=dtype)
            yp[r:] = pf.y.astype(dtype, copy=False)
            tp = _panel_t_factor(
                pf.w.astype(dtype, copy=False), pf.y.astype(dtype, copy=False)
            )
            if Y is None:
                Y, T = yp, tp
            else:
                k = Y.shape[1]
                yty = eng.gemm(Y.T, yp, tag="form_t")  # (k, w) over M rows
                upper_right = -eng.gemm(eng.gemm(T, yty, tag="form_t"), tp, tag="form_t")
                t_new = np.zeros((k + w_cols, k + w_cols), dtype=dtype)
                t_new[:k, :k] = T
                t_new[:k, k:] = upper_right
                t_new[k:, k:] = tp
                Y = np.hstack([Y, yp])
                T = t_new

            # --- Incremental OA @ Y cache (same big shape as wy_oaw). --------
            OAY = np.hstack([OAY, eng.gemm(OA, Y[:, -w_cols:], tag="wy_oay")])

            if m <= b + 1:
                _partial_update_compact(A, OA, OAY, Y, T, eng, b=b, j0=j0, r=r, cn=m)
                break
            if r + b >= nb:
                _full_update_compact(A, OA, OAY, Y, T, eng, b=b, j0=j0, r_end=r)
                advance_full_block = True
                break
            _partial_update_compact(A, OA, OAY, Y, T, eng, b=b, j0=j0, r=r, cn=b)

        if Y is not None:
            # Materialize W = Y T once per block (the back-transformation
            # work the paper's §4.4 credits as "not wasted").
            w_blk = eng.gemm(Y, T, tag="form_w")
            blocks.append(WYBlock(offset=j0 + b, w=w_blk, y=Y))
        if not advance_full_block:
            break
        j0 += nb

    A = (A + A.T) * dtype.type(0.5)
    q = None
    if want_q:
        q = form_q_from_blocks(blocks, n, engine=eng, method=q_method, dtype=dtype)
    return SbrResult(band=A, bandwidth=b, q=q, blocks=blocks)


def _partial_update_compact(A, OA, OAY, Y, T, eng, *, b, j0, r, cn) -> None:
    """Two-sided update of ``cn`` columns using the (Y, T) form.

    ``X = OA[:, c] - (OA Y) (T Y_c^T)`` then
    ``GA = X[r:] - Y[r:] (T^T (Y^T X))``.
    """
    dtype = A.dtype
    yc = Y[r : r + cn, :]
    tyc = eng.gemm(T, yc.T, tag="wy_right")          # (k, cn)
    x = OA[:, r : r + cn] - eng.gemm(OAY, tyc, tag="wy_right")
    ytx = eng.gemm(Y.T, x, tag="wy_left")            # (k, cn)
    tt_ytx = eng.gemm(T.T, ytx, tag="wy_left")
    ga = x[r:] - eng.gemm(Y[r:], tt_ytx, tag="wy_left")
    ga[:cn] = (ga[:cn] + ga[:cn].T) * dtype.type(0.5)
    lo = j0 + b + r
    A[lo:, lo : lo + cn] = ga
    A[lo : lo + cn, lo:] = ga.T


def _full_update_compact(A, OA, OAY, Y, T, eng, *, b, j0, r_end) -> None:
    """Block-boundary full trailing update using the (Y, T) form."""
    dtype = A.dtype
    yc = Y[r_end:, :]
    tyc = eng.gemm(T, yc.T, tag="wy_full_right")
    x = OA[:, r_end:] - eng.gemm(OAY, tyc, tag="wy_full_right")
    ytx = eng.gemm(Y.T, x, tag="wy_full_left")
    tt_ytx = eng.gemm(T.T, ytx, tag="wy_full_left")
    ga = x[r_end:] - eng.gemm(yc, tt_ytx, tag="wy_full_left")
    ga = (ga + ga.T) * dtype.type(0.5)
    lo = j0 + b + r_end
    A[lo:, lo:] = ga
