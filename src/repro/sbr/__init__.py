"""Successive Band Reduction (SBR) — the paper's core contribution.

Reduces a dense symmetric matrix to symmetric band form ``A = Q B Q^T``
(bandwidth ``b``), the first stage of two-stage tridiagonalization:

- :mod:`~repro.sbr.zy` — the conventional ZY-representation algorithm
  (Dongarra et al. 1989), the algorithm inside MAGMA's ``ssytrd_sy2sb``:
  per panel, a rank-2b subtractive trailing update whose GEMMs are tall
  and skinny with inner dimension ``b``.
- :mod:`~repro.sbr.wy` — the paper's **Algorithm 1**: recursive WY-based
  SBR with big-block size ``nb``.  Inside a big block only the next
  panel's columns are updated (against the *original* trailing matrix);
  the full trailing update is deferred to the block boundary, replacing
  many skinny GEMMs with few near-square GEMMs of inner dimension up to
  ``nb``.
- :mod:`~repro.sbr.formw` — the paper's **Algorithm 2**: recursive
  (tree) W construction for the back-transformation.
- :mod:`~repro.sbr.panel` — pluggable panel factorizations: TSQR +
  Householder reconstruction (the paper's), blocked Householder QR
  (cuSOLVER-like), unblocked QR (MAGMA-panel-like).
"""

from .panel import (
    BlockedQrPanel,
    PanelFactorization,
    PanelStrategy,
    TsqrPanel,
    UnblockedQrPanel,
    make_panel_strategy,
)
from .types import SbrResult, WYBlock
from .zy import sbr_zy
from .wy import sbr_wy
from .wy_compact import sbr_wy_compact
from .formw import form_wy_tree, form_q_from_blocks

__all__ = [
    "PanelStrategy",
    "PanelFactorization",
    "TsqrPanel",
    "BlockedQrPanel",
    "UnblockedQrPanel",
    "make_panel_strategy",
    "SbrResult",
    "WYBlock",
    "sbr_zy",
    "sbr_wy",
    "sbr_wy_compact",
    "form_wy_tree",
    "form_q_from_blocks",
]
