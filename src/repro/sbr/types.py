"""Result containers shared by the SBR drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WYBlock", "SbrResult"]


@dataclass
class WYBlock:
    """One accumulated WY factor ``I - W Y^T`` acting on rows ``offset..n``.

    The orthogonal transform of a whole reduction is the ordered product of
    its blocks, each embedded into the identity at ``offset``:

        Q = prod_j  embed(I - W_j Y_j^T, offset_j)

    For the WY-based SBR there is one block per big block (``k`` up to
    ``nb`` columns); for the ZY-based SBR one per panel (``k = b``).
    """

    offset: int
    w: np.ndarray
    y: np.ndarray

    @property
    def ncols(self) -> int:
        """Number of accumulated reflectors in this block."""
        return self.w.shape[1]

    @property
    def nrows(self) -> int:
        """Active row count (below ``offset``)."""
        return self.w.shape[0]


@dataclass
class SbrResult:
    """Output of a band-reduction driver.

    Attributes
    ----------
    band : numpy.ndarray
        Dense n×n symmetric band matrix ``B`` with ``A ≈ Q B Q^T``.
    bandwidth : int
        The target bandwidth ``b``.
    q : numpy.ndarray or None
        Accumulated orthogonal transform (``None`` when not requested).
    blocks : list of WYBlock
        The per-block WY factors, enough to (re)build ``Q`` lazily via
        :func:`repro.sbr.formw.form_q_from_blocks`.
    """

    band: np.ndarray
    bandwidth: int
    q: np.ndarray | None = None
    blocks: list[WYBlock] = field(default_factory=list)

    @property
    def n(self) -> int:
        """Matrix size."""
        return self.band.shape[0]
