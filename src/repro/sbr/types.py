"""Result containers shared by the SBR drivers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WYBlock", "SbrResult", "pack_wy_blocks", "unpack_wy_blocks"]


@dataclass
class WYBlock:
    """One accumulated WY factor ``I - W Y^T`` acting on rows ``offset..n``.

    The orthogonal transform of a whole reduction is the ordered product of
    its blocks, each embedded into the identity at ``offset``:

        Q = prod_j  embed(I - W_j Y_j^T, offset_j)

    For the WY-based SBR there is one block per big block (``k`` up to
    ``nb`` columns); for the ZY-based SBR one per panel (``k = b``).
    """

    offset: int
    w: np.ndarray
    y: np.ndarray

    @property
    def ncols(self) -> int:
        """Number of accumulated reflectors in this block."""
        return self.w.shape[1]

    @property
    def nrows(self) -> int:
        """Active row count (below ``offset``)."""
        return self.w.shape[0]


@dataclass
class SbrResult:
    """Output of a band-reduction driver.

    Attributes
    ----------
    band : numpy.ndarray
        Dense n×n symmetric band matrix ``B`` with ``A ≈ Q B Q^T``.
    bandwidth : int
        The target bandwidth ``b``.
    q : numpy.ndarray or None
        Accumulated orthogonal transform (``None`` when not requested).
    blocks : list of WYBlock
        The per-block WY factors, enough to (re)build ``Q`` lazily via
        :func:`repro.sbr.formw.form_q_from_blocks`.
    workspace : repro.perf.Workspace or None
        The scratch arena the reduction ran with (when the driver is
        arena-aware); its ``stats()`` feed the run manifest's ``alloc``
        line.
    """

    band: np.ndarray
    bandwidth: int
    q: np.ndarray | None = None
    blocks: list[WYBlock] = field(default_factory=list)
    workspace: "object | None" = None

    @property
    def n(self) -> int:
        """Matrix size."""
        return self.band.shape[0]


def pack_wy_blocks(blocks: "list[WYBlock]") -> tuple[dict, list[int]]:
    """Flatten a WY block list for checkpointing.

    Returns an array dict (``block<i>_w`` / ``block<i>_y`` entries, ready
    for an ``npz`` payload) and the parallel offset list (JSON scalars).
    :func:`unpack_wy_blocks` inverts it.
    """
    arrays: dict = {}
    offsets: list[int] = []
    for idx, blk in enumerate(blocks):
        arrays[f"block{idx}_w"] = blk.w
        arrays[f"block{idx}_y"] = blk.y
        offsets.append(int(blk.offset))
    return arrays, offsets


def unpack_wy_blocks(arrays: dict, offsets: "list[int]") -> "list[WYBlock]":
    """Rebuild a WY block list from checkpointed arrays + offsets."""
    return [
        WYBlock(offset=int(off), w=arrays[f"block{idx}_w"], y=arrays[f"block{idx}_y"])
        for idx, off in enumerate(offsets)
    ]
