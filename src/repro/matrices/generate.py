"""Dense symmetric test-matrix generation with prescribed spectra.

``generate_symmetric`` is the library's equivalent of MAGMA's
``magma_generate``: draw a spectrum from a named distribution, give each
singular value a random sign (making an indefinite symmetric eigenvalue
spectrum, as in symmetric-eigensolver testing), and conjugate by a
Haar-random orthogonal matrix:

    A = Q diag(lambda) Q^T.

The exact spectrum is returned alongside the matrix so accuracy
experiments can compare computed eigenvalues against ground truth without
an extra LAPACK solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .distributions import make_spectrum

__all__ = ["MatrixSpec", "TABLE_MATRIX_SPECS", "generate_symmetric", "random_orthogonal"]


@dataclass(frozen=True)
class MatrixSpec:
    """A named matrix class from the paper's Tables 3/4.

    Attributes
    ----------
    label : str
        Row label as printed in the paper (e.g. ``"SVD_Arith 1e5"``).
    distribution : str
        Spectrum distribution name (see :mod:`repro.matrices.distributions`).
    cond : float
        Target condition number (1.0 where not applicable).
    """

    label: str
    distribution: str
    cond: float = 1.0


#: The ten matrix classes of the paper's Table 3 and Table 4, in row order.
TABLE_MATRIX_SPECS: tuple[MatrixSpec, ...] = (
    MatrixSpec("Normal", "normal"),
    MatrixSpec("Uniform", "uniform"),
    MatrixSpec("SVD_Cluster0 1e5", "cluster0", 1e5),
    MatrixSpec("SVD_Cluster1 1e5", "cluster1", 1e5),
    MatrixSpec("SVD_Arith 1e1", "arith", 1e1),
    MatrixSpec("SVD_Arith 1e3", "arith", 1e3),
    MatrixSpec("SVD_Arith 1e5", "arith", 1e5),
    MatrixSpec("SVD_Geo 1e1", "geo", 1e1),
    MatrixSpec("SVD_Geo 1e3", "geo", 1e3),
    MatrixSpec("SVD_Geo 1e5", "geo", 1e5),
)


def random_orthogonal(
    n: int, *, rng: np.random.Generator | None = None, dtype=np.float64
) -> np.ndarray:
    """Haar-distributed random orthogonal n×n matrix.

    Uses the QR-of-Gaussian construction with the sign fix of Mezzadri
    (2007): the R factor's diagonal signs are absorbed into Q so the result
    is exactly Haar-distributed rather than biased by the QR sign
    convention.
    """
    if n <= 0:
        raise ConfigurationError(f"matrix size must be positive, got {n}")
    if rng is None:
        rng = np.random.default_rng()
    g = rng.standard_normal((n, n))
    q, r = np.linalg.qr(g)
    d = np.sign(np.diagonal(r))
    d[d == 0] = 1.0
    return np.ascontiguousarray((q * d).astype(dtype, copy=False))


def generate_symmetric(
    n: int,
    *,
    distribution: str = "normal",
    cond: float = 1.0,
    signs: str = "random",
    rng: np.random.Generator | None = None,
    dtype=np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Random symmetric matrix with a prescribed spectrum.

    Parameters
    ----------
    n : int
        Matrix size.
    distribution : str
        Spectrum distribution name (``normal``, ``uniform``, ``cluster0``,
        ``cluster1``, ``arith``, ``geo``).
    cond : float
        Target condition number for the condition-controlled distributions.
    signs : {"random", "positive"}
        ``"random"`` flips each singular value's sign with probability 1/2
        (symmetric indefinite, the generic eigenproblem case);
        ``"positive"`` keeps all eigenvalues positive (SPD).
    rng : numpy.random.Generator, optional
        Randomness source.
    dtype : numpy dtype
        Output dtype (spectrum is always drawn in float64).

    Returns
    -------
    a : ndarray, shape (n, n)
        The symmetric matrix ``Q diag(lam) Q^T`` (exactly symmetrized).
    lam : ndarray, shape (n,)
        Its eigenvalues, sorted ascending (ground truth for accuracy tests).
    """
    if rng is None:
        rng = np.random.default_rng()
    if signs not in ("random", "positive"):
        raise ConfigurationError(f"signs must be 'random' or 'positive', got {signs!r}")

    sigma = make_spectrum(distribution, n, cond=cond, rng=rng)
    lam = sigma.copy()
    if signs == "random":
        flips = rng.random(n) < 0.5
        lam[flips] *= -1.0

    q = random_orthogonal(n, rng=rng)
    a = (q * lam) @ q.T
    a = (a + a.T) * 0.5  # exact symmetry for two-sided updates
    order = np.argsort(lam)
    return np.ascontiguousarray(a.astype(dtype, copy=False)), lam[order]


def generate_from_spec(
    spec: MatrixSpec,
    n: int,
    *,
    rng: np.random.Generator | None = None,
    dtype=np.float64,
) -> tuple[np.ndarray, np.ndarray]:
    """Generate a matrix from a :class:`MatrixSpec` (Tables 3/4 row)."""
    return generate_symmetric(
        n, distribution=spec.distribution, cond=spec.cond, rng=rng, dtype=dtype
    )
