"""Test-matrix generation (the library's ``magma_generate`` equivalent).

The paper's accuracy experiments (Tables 3, 4) use MAGMA's matrix
generator to build random symmetric matrices whose singular values follow
named distributions (normal, uniform, cluster0, cluster1, arithmetic,
geometric) with prescribed condition numbers.  This package reimplements
that generator: a spectrum is drawn from the requested distribution and a
Haar-random orthogonal similarity transform produces the dense symmetric
matrix.
"""

from .distributions import (
    DISTRIBUTIONS,
    spectrum_arith,
    spectrum_cluster0,
    spectrum_cluster1,
    spectrum_geo,
    spectrum_normal,
    spectrum_uniform,
    make_spectrum,
)
from .generate import (
    MatrixSpec,
    TABLE_MATRIX_SPECS,
    generate_symmetric,
    random_orthogonal,
)

__all__ = [
    "DISTRIBUTIONS",
    "make_spectrum",
    "spectrum_normal",
    "spectrum_uniform",
    "spectrum_cluster0",
    "spectrum_cluster1",
    "spectrum_arith",
    "spectrum_geo",
    "MatrixSpec",
    "TABLE_MATRIX_SPECS",
    "generate_symmetric",
    "random_orthogonal",
]
