"""Singular/eigenvalue spectrum distributions (MAGMA ``magma_generate`` style).

Each generator returns ``n`` positive singular values in ``(0, 1]`` with
``max/min = cond`` (where the distribution is condition-controlled).  The
matrix generator then assigns random ± signs to turn singular values into a
symmetric-indefinite eigenvalue spectrum, matching how MAGMA's SVD-type
generators are used for symmetric eigenproblem testing.

Distributions (names follow the paper's Table 3/4 rows):

- ``normal`` — |N(0, 1)| samples, rescaled to (0, 1]; condition not
  controlled.
- ``uniform`` — U(0, 1] samples; condition not controlled.
- ``cluster0`` — one value at 1, the rest clustered at ``1/cond``
  (MAGMA's "cluster at 0" mode).
- ``cluster1`` — one value at ``1/cond``, the rest clustered at 1
  (MAGMA's "cluster at 1" mode).
- ``arith`` — arithmetic progression from 1 down to ``1/cond``.
- ``geo`` — geometric progression from 1 down to ``1/cond``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "spectrum_normal",
    "spectrum_uniform",
    "spectrum_cluster0",
    "spectrum_cluster1",
    "spectrum_arith",
    "spectrum_geo",
    "DISTRIBUTIONS",
    "make_spectrum",
]


def _check_n(n: int) -> None:
    if n <= 0:
        raise ConfigurationError(f"spectrum length must be positive, got {n}")


def _check_cond(cond: float) -> None:
    if not np.isfinite(cond) or cond < 1.0:
        raise ConfigurationError(f"condition number must be >= 1, got {cond}")


def spectrum_normal(n: int, cond: float | None, rng: np.random.Generator) -> np.ndarray:
    """|N(0,1)| spectrum rescaled so the largest value is 1 (cond ignored)."""
    _check_n(n)
    s = np.abs(rng.standard_normal(n))
    # Keep values strictly positive and bounded away from zero at float eps.
    s = np.maximum(s, np.finfo(np.float64).tiny)
    return s / s.max()


def spectrum_uniform(n: int, cond: float | None, rng: np.random.Generator) -> np.ndarray:
    """U(0, 1] spectrum (cond ignored)."""
    _check_n(n)
    return 1.0 - rng.random(n)  # in (0, 1]


def spectrum_cluster0(n: int, cond: float, rng: np.random.Generator) -> np.ndarray:
    """One value at 1, the rest tightly clustered at 1/cond."""
    _check_n(n)
    _check_cond(cond)
    s = np.full(n, 1.0 / cond)
    s[0] = 1.0
    if n > 1:
        # Small relative jitter so eigenvalues are distinct (deflation paths
        # in D&C still trigger because the cluster is tight).
        s[1:] *= 1.0 + 1e-8 * rng.standard_normal(n - 1)
    return s


def spectrum_cluster1(n: int, cond: float, rng: np.random.Generator) -> np.ndarray:
    """One value at 1/cond, the rest tightly clustered at 1."""
    _check_n(n)
    _check_cond(cond)
    s = np.ones(n)
    s[-1] = 1.0 / cond
    if n > 1:
        s[:-1] *= 1.0 + 1e-8 * rng.standard_normal(n - 1)
    return s


def spectrum_arith(n: int, cond: float, rng: np.random.Generator) -> np.ndarray:
    """Arithmetic progression from 1 down to 1/cond."""
    _check_n(n)
    _check_cond(cond)
    if n == 1:
        return np.ones(1)
    return np.linspace(1.0, 1.0 / cond, n)


def spectrum_geo(n: int, cond: float, rng: np.random.Generator) -> np.ndarray:
    """Geometric progression from 1 down to 1/cond."""
    _check_n(n)
    _check_cond(cond)
    if n == 1:
        return np.ones(1)
    return np.geomspace(1.0, 1.0 / cond, n)


#: Registry mapping distribution names to generators.
DISTRIBUTIONS = {
    "normal": spectrum_normal,
    "uniform": spectrum_uniform,
    "cluster0": spectrum_cluster0,
    "cluster1": spectrum_cluster1,
    "arith": spectrum_arith,
    "geo": spectrum_geo,
}


def make_spectrum(
    name: str,
    n: int,
    *,
    cond: float = 1.0,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Generate a named spectrum of length ``n``.

    Parameters
    ----------
    name : str
        One of :data:`DISTRIBUTIONS`.
    n : int
        Number of singular values.
    cond : float
        Target condition number (ignored by ``normal``/``uniform``).
    rng : numpy.random.Generator, optional
        Randomness source (default: a fresh default_rng()).
    """
    try:
        gen = DISTRIBUTIONS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown distribution {name!r}; expected one of {sorted(DISTRIBUTIONS)}"
        ) from None
    if rng is None:
        rng = np.random.default_rng()
    return gen(n, cond, rng)
