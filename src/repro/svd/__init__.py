"""Singular value decomposition and low-rank approximation on top of the
symmetric eigensolver.

The paper's title keywords include *Singular Value Decomposition* and
*Low Rank Approximation*, and its introduction motivates reduced-precision
EVD with exactly these consumers (PCA, randomized low-rank methods,
kernel machines).  This package builds them on the library's two-stage
eigensolver:

- :func:`svd_via_evd` — full SVD of a general matrix through either the
  Gram matrix (``A^T A``) or the Jordan–Wielandt embedding
  (``[[0, A], [A^T, 0]]``), both reduced with the (Tensor-Core) band
  reduction pipeline.
- :func:`svd_banded` — true two-stage SVD for banded matrices:
  band→bidiagonal bulge chasing (:func:`band_to_bidiagonal`, engine-routed
  WY tile updates like the EVD stage 2) + the Golub–Kahan solver.
- :func:`randomized_svd` — randomized subspace iteration (Halko et al.;
  paper refs [16, 28]) with the library's QR for orthonormalization.
- :func:`randomized_eig` — the symmetric variant (Nyström-free projection).
- :func:`block_lanczos_eig` — randomized block Lanczos (paper ref [40]),
  superlinearly convergent for the top of the spectrum.
- :func:`low_rank_approx` — rank-k approximation façade over the above.
"""

from .via_evd import svd_via_evd
from .direct import bidiagonalize, gk_bidiagonal_svd, svd_direct
from .banded import band_to_bidiagonal, svd_banded
from .randomized import block_lanczos_eig, low_rank_approx, randomized_eig, randomized_svd

__all__ = [
    "svd_via_evd",
    "svd_direct",
    "svd_banded",
    "band_to_bidiagonal",
    "gk_bidiagonal_svd",
    "bidiagonalize",
    "randomized_svd",
    "randomized_eig",
    "block_lanczos_eig",
    "low_rank_approx",
]
