"""Full SVD through the symmetric eigensolver.

Two classic reductions of ``A = U S V^T`` (m×n, m >= n) to a symmetric
eigenproblem, both solvable by the library's two-stage pipeline:

- **gram**: ``A^T A = V S^2 V^T`` — one n×n eigenproblem plus
  ``U = A V S^{-1}``.  Cheapest, but squares the condition number: small
  singular values below ``sqrt(eps) * s_max`` lose all digits (we then
  recover the corresponding ``U`` columns by completion).
- **jordan_wielandt**: the (m+n)×(m+n) symmetric embedding
  ``[[0, A], [A^T, 0]]`` whose eigenvalues are ``±s_i`` (plus m−n zeros)
  and whose eigenvectors stack ``u_i`` and ``v_i``.  Numerically the
  sound choice; twice the problem size.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ShapeError
from ..eig.driver import syevd_2stage
from ..obs import spans as obs
from ..precision.modes import Precision

__all__ = ["svd_via_evd"]


def _check_input(a) -> np.ndarray:
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.size == 0:
        raise ShapeError(f"svd_via_evd requires a non-empty 2-D matrix, got {a.shape}")
    return a


def svd_via_evd(
    a,
    *,
    method: str = "jordan_wielandt",
    precision: "Precision | str" = Precision.FP32,
    b: int = 8,
    nb: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """SVD ``A = U diag(s) V^T`` via the two-stage symmetric eigensolver.

    Parameters
    ----------
    a : array_like, (m, n)
        Input matrix (any shape; internally transposed so m >= n).
    method : {"jordan_wielandt", "gram"}
        The symmetric reduction (see module docstring).
    precision, b, nb
        Forwarded to :func:`repro.eig.syevd_2stage` for the inner
        eigenproblem.

    Returns
    -------
    u : ndarray (m, k), s : ndarray (k,), vt : ndarray (k, n)
        Thin SVD factors with ``k = min(m, n)``, singular values
        descending.
    """
    a = _check_input(a)
    if a.shape[0] < a.shape[1]:
        u, s, vt = svd_via_evd(a.T, method=method, precision=precision, b=b, nb=nb)
        return vt.T, s, u.T
    m, n = a.shape

    if method == "gram":
        with obs.span("svd_via_evd", method="gram", m=m, n=n):
            with obs.span("svd.reduce"):
                gram = a.T @ a
            with obs.span("svd.inner_evd"):
                res = syevd_2stage(
                    gram, b=min(b, max(n // 4, 1)), nb=nb, precision=precision
                )
            with obs.span("svd.recover_factors"):
                lam = res.eigenvalues[::-1]
                v = res.eigenvectors[:, ::-1]
                s = np.sqrt(np.maximum(lam, 0.0))
                # U columns: A v_i / s_i where s_i is safely nonzero; complete
                # the rest to an orthonormal basis of range(A)'s complement.
                u = np.zeros((m, n))
                safe = s > np.finfo(np.float64).eps ** 0.5 * max(
                    float(s.max(initial=0.0)), 1e-300
                )
                if np.any(safe):
                    u[:, safe] = (a @ v[:, safe]) / s[safe]
                for j in np.nonzero(~safe)[0]:
                    vec = np.random.default_rng(j).standard_normal(m)
                    vec -= u @ (u.T @ vec)
                    vec -= u @ (u.T @ vec)
                    u[:, j] = vec / np.linalg.norm(vec)
        return u, s, v.T

    if method != "jordan_wielandt":
        raise ConfigurationError(
            f"method must be 'jordan_wielandt' or 'gram', got {method!r}"
        )

    with obs.span("svd_via_evd", method="jordan_wielandt", m=m, n=n):
        # Jordan–Wielandt embedding: eigenpairs (±s_i, [u_i; ±v_i] / sqrt(2)).
        with obs.span("svd.reduce"):
            big = np.zeros((m + n, m + n))
            big[:m, m:] = a
            big[m:, :m] = a.T
        with obs.span("svd.inner_evd"):
            res = syevd_2stage(
                big, b=min(b, max((m + n) // 4, 1)), nb=nb, precision=precision
            )
        with obs.span("svd.recover_factors"):
            lam = res.eigenvalues
            x = res.eigenvectors
            # Take the n largest (positive) eigenvalues: descending order.
            order = np.argsort(lam)[::-1][:n]
            s = lam[order]
            u = x[:m, order] * np.sqrt(2.0)
            v = x[m:, order] * np.sqrt(2.0)
            # Zero singular values (rank-deficient A) leave u/v badly scaled;
            # renormalize columns defensively.
            for j in range(n):
                nu = np.linalg.norm(u[:, j])
                nv = np.linalg.norm(v[:, j])
                if nu > 0:
                    u[:, j] /= nu
                if nv > 0:
                    v[:, j] /= nv
            s = np.maximum(s, 0.0)
    return u, s, v.T
