"""Banded SVD: band→bidiagonal bulge chasing + Golub–Kahan solve.

A true two-stage SVD path for banded matrices — the workload the
memory-aware bulge-chasing paper (arXiv 2510.12705) targets — built from
the same tile machinery as the EVD wavefront chase:

1. :func:`band_to_bidiagonal` — the band analogue of the symmetric bulge
   chase: per sweep, a right reflector annihilates row ``j`` beyond the
   superdiagonal, then alternating left-QR / right-LQ hops chase the
   resulting fill block down the band.  Hop factors are WY-accumulated
   (:func:`repro.la.wy.build_wy`) and every block application — strip,
   tile, and the U/V accumulations — launches through
   :class:`repro.gemm.engine.GemmEngine` under ``bulge.svd.*`` tags with
   scratch from the :class:`repro.perf.Workspace` arena, so the stage
   joins the telemetry stream and the resilience/ABFT guards exactly
   like the EVD stage 2.
2. The bidiagonal ``(d, e)`` is solved by the shared Golub–Kahan back
   end (:func:`repro.svd.direct.gk_bidiagonal_svd`).

:func:`svd_banded` wraps the two stages for a general square banded
matrix: a matrix with lower bandwidth ``bl > 0`` first gets a banded
Householder QR pre-pass (O(n · bl · (bl + bu)) — cheap for small bands),
whose ``R`` is upper-banded with bandwidth ``bl + bu``.

Unlike :func:`repro.svd.via_evd.svd_via_evd` (dense O(n^3) embedding)
and :func:`repro.svd.direct.svd_direct` (dense bidiagonalization), the
two-stage path does O(n^2 bw) work — the same structural win the
symmetric two-stage EVD has, and the cross-validation target the tests
pin against both dense routes.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError, ValidationError
from ..gemm.engine import GemmEngine, PlainEngine
from ..la.householder import apply_reflector_left, make_reflector
from ..la.wy import build_wy
from ..obs import spans as obs
from ..perf import resolve_workspace
from .direct import gk_bidiagonal_svd

__all__ = ["band_to_bidiagonal", "svd_banded"]

#: Semantic tags of the engine-routed launches (see
#: :data:`repro.gemm.symbolic.BULGE_SVD_TAGS`).
TAG_STRIP = "bulge.svd.strip"
TAG_TILE = "bulge.svd.tile"
TAG_U = "bulge.svd.u"
TAG_V = "bulge.svd.v"


def band_to_bidiagonal(
    a,
    bw: int,
    *,
    want_uv: bool = True,
    engine: GemmEngine | None = None,
    workspace=None,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray, np.ndarray | None]:
    """Reduce an upper-banded square matrix to upper bidiagonal form.

    ``a`` must satisfy ``a[i, j] == 0`` outside ``0 <= j - i <= bw``.
    Returns ``(u, d, e, v)`` with ``a = u @ bidiag(d, e) @ v.T`` (``u``
    and ``v`` are ``None`` when ``want_uv=False``).

    Parameters
    ----------
    engine : GemmEngine, optional
        Engine for the strip/tile/U/V block updates (default: a
        dtype-neutral :class:`~repro.gemm.engine.PlainEngine`); the
        chase runs in float64.
    workspace : repro.perf.Workspace, bool, or None
        Scratch arena for the update temporaries.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1] or a.size == 0:
        raise ShapeError(
            f"band_to_bidiagonal requires a non-empty square matrix, got {a.shape}"
        )
    if bw < 1:
        raise ShapeError(f"bandwidth must be >= 1, got {bw}")
    if np.any(np.tril(a, -1)):
        raise ShapeError(
            "band_to_bidiagonal requires an upper-banded matrix "
            "(nonzero entries below the diagonal found); "
            "use svd_banded for general banded input"
        )
    n = a.shape[0]
    B = a.copy()
    u = np.eye(n) if want_uv else None
    v = np.eye(n) if want_uv else None
    if bw == 1 or n <= 2:
        return u, np.diagonal(B).copy(), np.diagonal(B, 1).copy(), v

    eng = engine if engine is not None else PlainEngine()
    ws = resolve_workspace(workspace)
    nsweeps = nhops = 0

    with obs.span("bulge.svd", n=n, bandwidth=bw) as sp:
        for j in range(n - 2):
            r0, e0 = j + 1, min(j + 1 + bw, n)
            if e0 - r0 < 2 or not np.any(B[j, r0 + 1 : e0]):
                continue
            nsweeps += 1
            # Sweep opener: right reflector annihilating row j beyond the
            # superdiagonal.  Support is rows [r0, e0): rows above j are
            # already bidiagonal, rows at/below e0 have no entries in the
            # touched columns.
            v_ref, beta, alpha = make_reflector(B[j, r0:e0])
            B[j, r0] = alpha
            B[j, r0 + 1 : e0] = 0.0
            y1 = v_ref[:, None]
            w1 = (beta * v_ref)[:, None]
            _apply_right(eng, ws, B[r0:e0, r0:e0], w1, y1, TAG_TILE)
            if v is not None:
                _apply_right(eng, ws, v[:, r0:e0], w1, y1, TAG_V)

            # Chase: left-QR the dense fill block (restoring upper
            # triangularity), right-LQ the strip it smears out of band,
            # leapfrog down the band until the fill dies or hits the edge.
            a0, a1 = r0, e0
            while True:
                nhops += 1
                y_l, betas_l = _house_qr(B[a0:a1, a0:a1])
                c1 = min(a1 + bw, n)
                if np.any(betas_l):
                    w_l, y_l = build_wy(y_l, betas_l)
                    if c1 > a1:
                        _apply_left(eng, ws, B[a0:a1, a1:c1], w_l, y_l, TAG_STRIP)
                    if u is not None:
                        _apply_right(eng, ws, u[:, a0:a1], w_l, y_l, TAG_U)
                elif a0 > r0:
                    break  # dead chase: the previous hop's fill vanished
                if c1 - a1 < 2:
                    break
                # Right LQ of the strip: QR of S^T makes S lower-triangular
                # relative to its local diagonal — exactly the band edge.
                m_t = ws.take("svdb_st", (c1 - a1, a1 - a0), np.float64)
                np.copyto(m_t, B[a0:a1, a1:c1].T)
                y_r, betas_r = _house_qr(m_t)
                B[a0:a1, a1:c1] = m_t.T
                if np.any(betas_r):
                    w_r, y_r = build_wy(y_r, betas_r)
                    _apply_right(eng, ws, B[a1:c1, a1:c1], w_r, y_r, TAG_TILE)
                    if v is not None:
                        _apply_right(eng, ws, v[:, a1:c1], w_r, y_r, TAG_V)
                a0, a1 = a1, c1
        sp.count("sweeps", nsweeps)
        sp.count("hops", nhops)

    d = np.diagonal(B).copy()
    e = np.diagonal(B, 1).copy()
    return u, d, e, v


def svd_banded(
    a,
    bw: "int | None" = None,
    *,
    engine: GemmEngine | None = None,
    workspace=None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Two-stage SVD of a square banded matrix ``A = U diag(s) V^T``.

    Stage 1 is :func:`band_to_bidiagonal` (band→bidiagonal bulge
    chasing, O(n^2 bw)); stage 2 the shared Golub–Kahan divide & conquer
    back end.  A matrix with content below the diagonal first gets a
    banded Householder QR pre-pass.  ``bw``, when given, is validated
    against the matrix's actual bandwidth; when omitted it is detected.
    Returns ``(u, s, vt)`` with singular values descending.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] != a.shape[1] or a.size == 0:
        raise ShapeError(
            f"svd_banded requires a non-empty square matrix, got {a.shape}"
        )
    n = a.shape[0]
    bl, bu = _lower_upper_bandwidth(a)
    if bw is not None:
        if not isinstance(bw, (int, np.integer)) or bw < 1:
            raise ValidationError(
                f"bw must be a positive integer, got {bw!r}", field="bw"
            )
        if max(bl, bu) > bw:
            raise ValidationError(
                f"matrix has bandwidth ({bl}, {bu}), larger than the "
                f"declared bw={bw}",
                field="bw",
            )

    with obs.span("svd_banded", n=n, bl=bl, bu=bu):
        if bl > 0:
            q0, r = _banded_qr(a, bl, bu)
            bw_eff = max(min(bl + bu, n - 1), 1)
        else:
            q0, r = None, a
            bw_eff = max(min(bu, n - 1), 1)
        u_b, d, e, v_b = band_to_bidiagonal(
            r, bw_eff, engine=engine, workspace=workspace
        )
        u_small, s, v_small = gk_bidiagonal_svd(d, e)
        u = u_b @ u_small if q0 is None else q0 @ (u_b @ u_small)
        vt = (v_b @ v_small).T
    return u, s, vt


def _lower_upper_bandwidth(a) -> tuple[int, int]:
    """(lower, upper) bandwidth of a dense square matrix."""
    rows, cols = np.nonzero(a)
    if rows.size == 0:
        return 0, 0
    diag = cols - rows
    return int(max(0, -int(diag.min()))), int(max(0, int(diag.max())))


def _banded_qr(a, bl: int, bu: int) -> tuple[np.ndarray, np.ndarray]:
    """Householder QR of a banded matrix, exploiting the band structure.

    Column ``j`` has nonzeros only in rows ``[j, j + bl]``, so each
    reflector has length ``bl + 1`` and touches columns up to
    ``j + bl + bu``; ``R`` comes out upper-banded with bandwidth
    ``bl + bu``.  O(n · bl · (bl + bu)) panel-style work.
    """
    n = a.shape[0]
    r = a.copy()
    q = np.eye(n)
    for j in range(n - 1):
        lo, hi = j, min(j + bl + 1, n)
        if hi - lo < 2 or not np.any(r[lo + 1 : hi, j]):
            continue
        v_ref, beta, alpha = make_reflector(r[lo:hi, j])
        r[lo, j] = alpha
        r[lo + 1 : hi, j] = 0.0
        if beta != 0.0:
            c1 = min(j + bl + bu + 1, n)
            if c1 > j + 1:
                apply_reflector_left(r[lo:hi, j + 1 : c1], v_ref, beta)
            # q <- q H (H symmetric): q[:, lo:hi] -= beta (q v) v^T
            qb = q[:, lo:hi]
            qb -= np.multiply.outer(qb @ (beta * v_ref), v_ref)
    return q, r


def _house_qr(block) -> tuple[np.ndarray, np.ndarray]:
    """In-place Householder QR of one hop block; returns ``(Y, betas)``.

    ``block`` (m × w) becomes R; reflector columns land in ``Y`` with
    unit diagonal.  All-zero ``betas`` means there was nothing below the
    diagonal (dead chase).  Panel-style scalar work, like the stage-1
    panel factorizations.
    """
    m, w = block.shape
    kk = min(max(m - 1, 0), w)
    y = np.zeros((m, max(kk, 1)))
    y[0, 0] = 1.0
    betas = np.zeros(max(kk, 1))
    for jl in range(kk):
        v_ref, beta, alpha = make_reflector(block[jl:, jl])
        block[jl, jl] = alpha
        block[jl + 1 :, jl] = 0.0
        y[jl:, jl] = v_ref
        betas[jl] = beta
        if beta != 0.0 and jl + 1 < w:
            apply_reflector_left(block[jl:, jl + 1 :], v_ref, beta)
    return y, betas


def _apply_left(eng, ws, s, w_f, y_f, tag) -> None:
    """``S <- (I - W Y^T)^T S = S - Y (W^T S)``, engine-routed."""
    t = eng.gemm(
        w_f, s, ta=True, tag=tag,
        out=ws.take("svdb_t", (w_f.shape[1], s.shape[1]), np.float64),
    )
    upd = eng.gemm(y_f, t, tag=tag, out=ws.take("svdb_u", s.shape, np.float64))
    np.subtract(s, upd, out=s)


def _apply_right(eng, ws, d, w_f, y_f, tag) -> None:
    """``D <- D (I - W Y^T) = D - (D W) Y^T``, engine-routed."""
    p = eng.gemm(
        d, w_f, tag=tag,
        out=ws.take("svdb_p", (d.shape[0], w_f.shape[1]), np.float64),
    )
    upd = eng.gemm(p, y_f, tb=True, tag=tag, out=ws.take("svdb_r", d.shape, np.float64))
    np.subtract(d, upd, out=d)
