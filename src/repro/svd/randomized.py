"""Randomized low-rank factorizations (paper refs [16, 28, 40]).

The paper's related work singles out two randomized algorithms "proven
efficient on modern high-performance architectures": randomized subspace
iteration (Halko/Martinsson/Tropp; Gu 2015) and randomized block Lanczos
(Yuan, Gu & Li 2018).  Both are GEMM-dominated — exactly the workload the
Tensor-Core pipeline feeds — and both tolerate reduced precision, which is
why the paper's introduction lists them among the motivating consumers.

All orthonormalizations use the library's own QR; the projected small
eigen/SVD problems use the library's two-stage solver (float64 — they are
tiny).
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError, ShapeError
from ..gemm.engine import GemmEngine, PlainEngine, make_engine
from ..la.qr import qr_explicit
from ..obs import spans as obs
from ..precision.modes import Precision
from ..validation import as_symmetric_matrix

__all__ = ["randomized_svd", "randomized_eig", "block_lanczos_eig", "low_rank_approx"]


def _validate_rank(k: int, limit: int) -> None:
    if not isinstance(k, (int, np.integer)) or k < 1 or k > limit:
        raise ShapeError(f"rank k must be an int in [1, {limit}], got {k!r}")


def randomized_svd(
    a,
    k: int,
    *,
    oversample: int = 10,
    power_iterations: int = 2,
    engine: "GemmEngine | Precision | str | None" = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Rank-k randomized SVD by subspace iteration.

    Parameters
    ----------
    a : array_like (m, n)
        Input matrix.
    k : int
        Target rank.
    oversample : int
        Extra sketch columns (Halko et al. recommend 5–10).
    power_iterations : int
        Power (subspace) iterations; 1–2 sharpen the spectrum decay.
    engine : GemmEngine, Precision, or str, optional
        Precision policy for the big GEMMs (default: operand precision).

    Returns
    -------
    (u, s, vt) : rank-k factors, singular values descending.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.size == 0:
        raise ShapeError(f"randomized_svd requires a 2-D matrix, got {a.shape}")
    m, n = a.shape
    _validate_rank(k, min(m, n))
    eng = _resolve_engine(engine)
    if rng is None:
        rng = np.random.default_rng()

    ell = min(k + oversample, n)
    with obs.span("randomized_svd", m=m, n=n, k=k, ell=ell):
        with obs.span("rand.sketch"):
            sketch = eng.gemm(a, rng.standard_normal((n, ell)), tag="rand_sketch")
            q, _ = qr_explicit(sketch, engine=eng)
        with obs.span("rand.power", iterations=power_iterations):
            for _ in range(power_iterations):
                q, _ = qr_explicit(eng.gemm(a.T, q, tag="rand_power"), engine=eng)
                q, _ = qr_explicit(eng.gemm(a, q, tag="rand_power"), engine=eng)

        # Small projected problem, solved exactly.
        with obs.span("rand.project_solve"):
            b = eng.gemm(q.T, a, tag="rand_project")
            ub, s, vt = np.linalg.svd(
                np.asarray(b, dtype=np.float64), full_matrices=False
            )
            u = np.asarray(q, dtype=np.float64) @ ub
    return u[:, :k], s[:k], vt[:k, :]


def randomized_eig(
    a,
    k: int,
    *,
    oversample: int = 10,
    power_iterations: int = 2,
    engine: "GemmEngine | Precision | str | None" = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k eigenpairs (by magnitude) of a symmetric matrix, randomized.

    Returns ``(lam, v)`` with ``|lam|`` descending; exact for matrices of
    rank <= k + oversample.
    """
    a = as_symmetric_matrix(a, dtype=np.float64)
    n = a.shape[0]
    _validate_rank(k, n)
    eng = _resolve_engine(engine)
    if rng is None:
        rng = np.random.default_rng()

    ell = min(k + oversample, n)
    with obs.span("randomized_eig", n=n, k=k, ell=ell):
        with obs.span("rand.sketch"):
            q, _ = qr_explicit(
                eng.gemm(a, rng.standard_normal((n, ell)), tag="rand_sketch"),
                engine=eng,
            )
        with obs.span("rand.power", iterations=power_iterations):
            for _ in range(power_iterations):
                q, _ = qr_explicit(eng.gemm(a, q, tag="rand_power"), engine=eng)

        with obs.span("rand.project_solve"):
            t = np.asarray(
                eng.gemm(q.T, eng.gemm(a, q, tag="rand_project"), tag="rand_project"),
                dtype=np.float64,
            )
            lam, u = np.linalg.eigh((t + t.T) / 2.0)
            order = np.argsort(np.abs(lam))[::-1][:k]
    return lam[order], np.asarray(q, dtype=np.float64) @ u[:, order]


def block_lanczos_eig(
    a,
    k: int,
    *,
    block_size: int | None = None,
    n_blocks: int = 4,
    engine: "GemmEngine | Precision | str | None" = None,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k eigenpairs by randomized block Lanczos (paper ref [40]).

    Builds the block Krylov basis ``[Q_0, A Q_0, ..., A^{q-1} Q_0]`` with
    full reorthogonalization, projects, and solves the small problem —
    superlinearly more accurate than subspace iteration for the same
    number of matrix products.

    Returns ``(lam, v)`` with ``|lam|`` descending.
    """
    a = as_symmetric_matrix(a, dtype=np.float64)
    n = a.shape[0]
    _validate_rank(k, n)
    if n_blocks < 1:
        raise ConfigurationError(f"n_blocks must be >= 1, got {n_blocks}")
    eng = _resolve_engine(engine)
    if rng is None:
        rng = np.random.default_rng()
    if block_size is None:
        block_size = max(k // 2, 4)
    block_size = min(block_size, n)

    with obs.span("block_lanczos_eig", n=n, k=k, block_size=block_size, n_blocks=n_blocks):
        with obs.span("lanczos.basis"):
            q, _ = qr_explicit(rng.standard_normal((n, block_size)), engine=eng)
            basis = [np.asarray(q, dtype=np.float64)]
            for _ in range(n_blocks - 1):
                w = np.asarray(
                    eng.gemm(a, basis[-1], tag="lanczos_matvec"), dtype=np.float64
                )
                # Full reorthogonalization against all previous blocks (twice).
                for _pass in range(2):
                    for qb in basis:
                        w -= qb @ (qb.T @ w)
                nrm = np.linalg.norm(w, axis=0)
                keep = nrm > 1e-12 * max(float(nrm.max(initial=0.0)), 1.0)
                if not np.any(keep):
                    break
                qb, _ = qr_explicit(w[:, keep], engine=PlainEngine())
                basis.append(np.asarray(qb, dtype=np.float64))
            qq = np.hstack(basis)
        if qq.shape[1] < k:
            raise ConfigurationError(
                f"Krylov basis rank {qq.shape[1]} < k={k}; increase block_size/n_blocks"
            )

        with obs.span("lanczos.project_solve"):
            t = qq.T @ a @ qq
            lam, u = np.linalg.eigh((t + t.T) / 2.0)
            order = np.argsort(np.abs(lam))[::-1][:k]
    return lam[order], qq @ u[:, order]


def low_rank_approx(
    a,
    k: int,
    *,
    method: str = "randomized",
    **kwargs,
) -> np.ndarray:
    """Best-effort rank-k approximation of ``a``.

    ``method="randomized"`` uses :func:`randomized_svd`;
    ``method="evd"`` (symmetric input) truncates :func:`randomized_eig`'s
    exhaustive cousin via the full two-stage eigensolver.
    """
    a = np.asarray(a, dtype=np.float64)
    if method == "randomized":
        u, s, vt = randomized_svd(a, k, **kwargs)
        return (u * s) @ vt
    if method == "evd":
        from ..eig.driver import syevd_2stage

        sym = as_symmetric_matrix(a)
        res = syevd_2stage(sym, **kwargs) if kwargs else syevd_2stage(sym, b=8)
        lam, v = res.eigenvalues, res.eigenvectors
        order = np.argsort(np.abs(lam))[::-1][:k]
        vk = np.asarray(v[:, order], dtype=np.float64)
        return (vk * lam[order]) @ vk.T
    raise ConfigurationError(f"method must be 'randomized' or 'evd', got {method!r}")


def _resolve_engine(engine) -> GemmEngine:
    if engine is None:
        return PlainEngine()
    if isinstance(engine, GemmEngine):
        return engine
    return make_engine(engine)
