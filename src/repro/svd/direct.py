"""Direct SVD: Householder bidiagonalization + Golub–Kahan tridiagonal.

The LAPACK-style route (``gebrd`` + a bidiagonal solver), built entirely
from this library's pieces:

1. :func:`bidiagonalize` — alternating left/right Householder reflectors
   reduce ``A`` (m >= n) to upper bidiagonal ``B`` with ``A = U_b B V_b^T``.
2. The **Golub–Kahan trick**: under the perfect-shuffle ordering
   ``(v_1, u_1, v_2, u_2, ...)`` the Jordan–Wielandt embedding of ``B``
   becomes a symmetric *tridiagonal* matrix with zero diagonal and
   off-diagonals ``[d_1, e_1, d_2, e_2, ..., d_n]`` — which the library's
   divide & conquer (:func:`repro.eig.tridiag_eig_dc`) diagonalizes.
   Positive eigenvalues are the singular values; the shuffled eigenvector
   halves are the singular vectors of ``B``.

Compared with :func:`repro.svd.via_evd.svd_via_evd` (which embeds the
*dense* matrix), this reduces the O(n³) stage to one bidiagonalization and
works on a 2n tridiagonal rather than a 2n dense problem — the same
structural advantage the real two-stage SVD has.
"""

from __future__ import annotations

import numpy as np

from ..eig.dc import tridiag_eig_dc
from ..errors import ShapeError
from ..la.householder import apply_reflector_left, apply_reflector_right, make_reflector
from ..obs import spans as obs

__all__ = ["bidiagonalize", "gk_bidiagonal_svd", "svd_direct"]


def bidiagonalize(
    a,
    *,
    want_uv: bool = True,
) -> tuple[np.ndarray | None, np.ndarray, np.ndarray, np.ndarray | None]:
    """Householder bidiagonalization ``A = U_b B V_b^T`` (m >= n).

    Returns
    -------
    u : ndarray (m, m) or None
        Left orthogonal factor (``None`` if ``want_uv=False``).
    d : ndarray (n,)
        Diagonal of the upper bidiagonal ``B``.
    e : ndarray (n-1,)
        Superdiagonal of ``B``.
    v : ndarray (n, n) or None
        Right orthogonal factor.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.shape[0] < a.shape[1] or a.size == 0:
        raise ShapeError(f"bidiagonalize requires m >= n >= 1, got shape {a.shape}")
    m, n = a.shape
    work = a.copy()
    left: list[tuple[int, np.ndarray, float]] = []
    right: list[tuple[int, np.ndarray, float]] = []

    for j in range(n):
        # Left reflector: zero column j below the diagonal.
        if m - j >= 2:
            v_ref, beta, alpha = make_reflector(work[j:, j])
            work[j, j] = alpha
            work[j + 1 :, j] = 0.0
            if beta != 0.0 and j + 1 < n:
                apply_reflector_left(work[j:, j + 1 :], v_ref, beta)
            left.append((j, v_ref, beta))
        # Right reflector: zero row j beyond the superdiagonal.
        if n - j >= 3:
            v_ref, beta, alpha = make_reflector(work[j, j + 1 :])
            work[j, j + 1] = alpha
            work[j, j + 2 :] = 0.0
            if beta != 0.0:
                apply_reflector_right(work[j + 1 :, j + 1 :], v_ref, beta)
            right.append((j + 1, v_ref, beta))

    d = np.diagonal(work)[:n].copy()
    e = np.diagonal(work, offset=1)[: n - 1].copy() if n > 1 else np.empty(0)

    u = v = None
    if want_uv:
        u = np.eye(m)
        for off, v_ref, beta in reversed(left):
            block = u[off:, off:]
            w_row = v_ref @ block
            block -= np.multiply.outer(v_ref * beta, w_row)
        v = np.eye(n)
        for off, v_ref, beta in reversed(right):
            block = v[off:, off:]
            w_row = v_ref @ block
            block -= np.multiply.outer(v_ref * beta, w_row)
    return u, d, e, v


def svd_direct(a) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Thin SVD via bidiagonalization + Golub–Kahan D&C.

    Returns ``(u, s, vt)`` with ``k = min(m, n)`` columns/rows and
    singular values descending.
    """
    a = np.asarray(a, dtype=np.float64)
    if a.ndim != 2 or a.size == 0:
        raise ShapeError(f"svd_direct requires a non-empty 2-D matrix, got {a.shape}")
    if a.shape[0] < a.shape[1]:
        u, s, vt = svd_direct(a.T)
        return vt.T, s, u.T
    m, n = a.shape

    with obs.span("svd_direct", m=m, n=n):
        with obs.span("bidiagonalize"):
            u_b, d, e, v_b = bidiagonalize(a, want_uv=True)

        u_small, s, v_small = gk_bidiagonal_svd(d, e)
        u = u_b[:, :n] @ u_small
        vt = (v_b @ v_small).T
    return u, s, vt


def gk_bidiagonal_svd(
    d, e
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Full SVD of an upper-bidiagonal matrix ``B = U_s diag(s) V_s^T``.

    ``d`` (n,) and ``e`` (n-1,) are B's diagonal and superdiagonal.  The
    shared back end of :func:`svd_direct` and
    :func:`repro.svd.banded.svd_banded`: the Golub–Kahan perfect-shuffle
    embedding solved by the library's tridiagonal divide & conquer, with
    degenerate (sigma ~ 0) columns completed to an orthonormal basis.
    Returns ``(u_small, s, v_small)`` — both factors n×n orthogonal,
    singular values descending.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    n = d.shape[0]
    if n == 0 or e.shape[0] != max(n - 1, 0):
        raise ShapeError(
            f"gk_bidiagonal_svd requires (n,) and (n-1,) arrays, "
            f"got {d.shape} and {e.shape}"
        )
    with obs.span("gk_tridiag_solve"):
        # Golub–Kahan tridiagonal: zero diagonal, off-diagonals interleave
        # B's diagonal and superdiagonal under the (v_1, u_1, v_2, u_2, ...)
        # perfect shuffle.
        off = np.empty(2 * n - 1)
        off[0::2] = d
        if n > 1:
            off[1::2] = e
        lam, z = tridiag_eig_dc(np.zeros(2 * n), off)

    with obs.span("assemble_factors"):
        # The n largest eigenvalues are the singular values (descending).
        order = np.argsort(lam)[::-1][:n]
        s = np.maximum(lam[order], 0.0)
        zk = z[:, order]
        v_small = zk[0::2, :] * np.sqrt(2.0)
        u_small = zk[1::2, :] * np.sqrt(2.0)

        # For sigma ~ 0 the ± eigenpair degenerates: a zero-eigenvalue
        # vector of the Golub-Kahan matrix can be purely u-type or purely
        # v-type, so the shuffled halves are neither unit nor mutually
        # orthonormal there.  Normalize the well-separated columns and
        # complete the degenerate block with an orthonormal basis of the
        # remaining subspace.
        good = s > 1e-12 * max(float(s.max(initial=0.0)), 1.0)
        u_small = _fix_degenerate_columns(u_small, good)
        v_small = _fix_degenerate_columns(v_small, good)
    return u_small, s, v_small


def _fix_degenerate_columns(block: np.ndarray, good: np.ndarray) -> np.ndarray:
    """Normalize 'good' columns; replace the rest by an orthonormal completion."""
    n, k = block.shape
    out = block.copy()
    out[:, good] /= np.linalg.norm(out[:, good], axis=0, keepdims=True)
    bad_idx = np.nonzero(~good)[0]
    if bad_idx.size == 0:
        return out
    q_good = out[:, good]
    # Candidates: the raw degenerate halves (possibly informative), padded
    # with random vectors, projected off the accepted subspace twice.
    rng = np.random.default_rng(2023)
    cand = np.hstack([out[:, bad_idx], rng.standard_normal((n, bad_idx.size))])
    for _ in range(2):
        if q_good.shape[1]:
            cand -= q_good @ (q_good.T @ cand)
    from scipy.linalg import qr as scipy_qr

    q, r, _ = scipy_qr(cand, mode="economic", pivoting=True)
    rdiag = np.abs(np.diagonal(r))
    rank = int(np.sum(rdiag > 1e-10 * max(float(rdiag.max(initial=0.0)), 1e-300)))
    if rank < bad_idx.size:
        raise ShapeError("failed to complete an orthonormal singular-vector basis")
    out[:, bad_idx] = q[:, : bad_idx.size]
    return out
