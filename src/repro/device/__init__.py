"""Analytic A100 performance model (the wall-clock substitute).

Without an A100, absolute wall-clock cannot be measured — but the paper's
performance figures are functions of (a) the exact GEMM shape streams of
the algorithms, which :mod:`repro.gemm.symbolic` reproduces exactly, and
(b) the device's shape-dependent GEMM throughput, which the paper itself
publishes in Table 1.  This package turns Table 1 into an interpolated
throughput model and layers launch-latency, memory-roofline, panel,
bulge-chasing, divide & conquer, and PCIe estimators on top, giving model
times for every configuration in Figures 5–11.

Calibration sources, in order of authority:

1. Table 1 (TC-GEMM / SGEMM TFLOPS vs inner dimension, two shape
   families) — used verbatim as interpolation anchors.
2. Published A100 specs (peaks, HBM bandwidth) and the paper's §5.3
   EC-TCGEMM rates (33 TFLOPS full-exponent) and §6.4 PCIe rate (12 GB/s).
3. Panel/CPU-stage constants fitted so the *ratios* the paper reports
   (TSQR ~5x panels, SBR up to 3.7x, EVD up to 2.3x) are reproduced;
   these are documented in :mod:`repro.device.specs` and EXPERIMENTS.md.
"""

from .specs import A100Spec, DeviceSpec
from .calibration import (
    TABLE1_K,
    TABLE1_SGEMM_OUTER,
    TABLE1_SGEMM_TS,
    TABLE1_TC_OUTER,
    TABLE1_TC_TS,
    ThroughputCurve,
)
from .perf_model import PerfModel

__all__ = [
    "DeviceSpec",
    "A100Spec",
    "ThroughputCurve",
    "TABLE1_K",
    "TABLE1_TC_TS",
    "TABLE1_TC_OUTER",
    "TABLE1_SGEMM_TS",
    "TABLE1_SGEMM_OUTER",
    "PerfModel",
]
