"""Composable performance estimators for the modeled A100 pipeline.

``PerfModel`` prices individual GEMMs (Table-1-calibrated throughput +
launch latency + HBM roofline floor), whole GEMM traces, panel
factorizations (TSQR / cuSOLVER / MAGMA), and the CPU-side stages (bulge
chasing, divide & conquer, PCIe transfer), then composes them into the
end-to-end configurations of Figures 5–11:

========================  ==============================================
``sbr_time``              our SBR (WY or ZY) under any engine/panel
``magma_sy2sb_time``      the MAGMA ``ssytrd_sy2sb`` baseline (ZY +
                          ``ssymm``/``ssyr2k`` on SIMT cores + its panel)
``evd_time``              two-stage EVD, ours or MAGMA's, eigenvalues only
========================  ==============================================

Family selection: a GEMM ``(m, n, k)`` whose *contraction* dimension is
the smallest is priced on the "outer" curve (rank-k-update-like); if the
smallest dimension is an output dimension, on the "ts" curve
(skinny-output, ``A @ W``-like).  This mirrors exactly how the two shape
families of Table 1 differ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ConfigurationError
from ..gemm.symbolic import trace_sbr_wy, trace_sbr_zy
from ..gemm.trace import GemmRecord, GemmTrace
from ..validation import check_blocksizes
from .calibration import (
    SGEMM_OUTER_CURVE,
    SGEMM_TS_CURVE,
    TC_OUTER_CURVE,
    TC_TS_CURVE,
    ThroughputCurve,
)
from .specs import A100Spec, DeviceSpec

__all__ = ["PerfModel", "SbrTimeBreakdown", "EvdTimeBreakdown"]


@dataclass
class SbrTimeBreakdown:
    """Model time of one band reduction, split by component (seconds)."""

    gemm: float
    panel: float
    label: str = ""
    gemm_by_tag: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.gemm + self.panel


@dataclass
class EvdTimeBreakdown:
    """Model time of a two-stage EVD, eigenvalues only (seconds)."""

    sbr: float
    transfer: float
    bulge: float
    solver: float
    label: str = ""

    @property
    def total(self) -> float:
        return self.sbr + self.transfer + self.bulge + self.solver


class PerfModel:
    """Analytic wall-clock model of the paper's A100 + host pipeline."""

    #: GEMM engines the model can price.
    ENGINES = ("tc", "sgemm", "ectc")
    #: Panel strategies the model can price.
    PANELS = ("tsqr", "cusolver", "magma")

    def __init__(self, spec: DeviceSpec = A100Spec):
        self.spec = spec
        ec_factor = spec.ec_tcgemm_rate / (TC_TS_CURVE.tflops[-2] * 1e12)
        # EC-TCGEMM: same shape sensitivity as TC, scaled so the large-k
        # plateau hits the paper's measured 33 TFLOPS (full exponent), but
        # floored at the SGEMM curve — the error-corrected GEMM reads the
        # same FP32 data as SGEMM, so in the memory/latency-bound small-k
        # regime it is never slower than SGEMM (and the paper's Fig 10
        # shows WY+EC still beating the all-SGEMM MAGMA baseline).
        ec_ts = ThroughputCurve(
            TC_TS_CURVE.k_anchors,
            tuple(
                max(t * ec_factor, s)
                for t, s in zip(TC_TS_CURVE.tflops, SGEMM_TS_CURVE.tflops)
            ),
            "ectc/ts",
        )
        ec_outer = ThroughputCurve(
            TC_OUTER_CURVE.k_anchors,
            tuple(
                max(t * ec_factor, s)
                for t, s in zip(TC_OUTER_CURVE.tflops, SGEMM_OUTER_CURVE.tflops)
            ),
            "ectc/outer",
        )
        self._curves: dict[str, tuple[ThroughputCurve, ThroughputCurve]] = {
            "tc": (TC_TS_CURVE, TC_OUTER_CURVE),
            "sgemm": (SGEMM_TS_CURVE, SGEMM_OUTER_CURVE),
            "ectc": (ec_ts, ec_outer),
        }
        self._in_bytes = {"tc": 2, "sgemm": 4, "ectc": 4}

    # ------------------------------------------------------------------
    # GEMM-level pricing
    # ------------------------------------------------------------------
    def gemm_rate(self, m: int, n: int, k: int, engine: str = "tc") -> float:
        """Effective flop/s of one GEMM under the engine's throughput curve."""
        ts_curve, outer_curve = self._lookup_engine(engine)
        min_dim = min(m, n, k)
        curve = outer_curve if k == min_dim else ts_curve
        return float(curve.rate(min_dim))

    def gemm_time(self, m: int, n: int, k: int, engine: str = "tc") -> float:
        """Model time of one GEMM: launch + max(compute, HBM roofline)."""
        if min(m, n, k) < 1:
            raise ConfigurationError(f"GEMM dims must be positive, got {(m, n, k)}")
        flops = 2.0 * m * n * k
        in_b = self._in_bytes[engine]
        nbytes = in_b * (m * k + k * n) + 4.0 * m * n
        compute = flops / self.gemm_rate(m, n, k, engine)
        memory = nbytes / self.spec.hbm_bandwidth
        return self.spec.kernel_launch + max(compute, memory)

    def syr2k_time(self, m: int, k: int, engine: str = "sgemm") -> float:
        """Model time of a *native* symmetric rank-2k update (m×m output).

        Exists on SIMT cores (cuBLAS ``ssyr2k``, used by MAGMA) and as the
        hypothetical Tensor-Core syr2k of the paper's future work: half the
        flops of the two explicit GEMMs, one kernel, and only half the
        output matrix written.
        """
        if min(m, k) < 1:
            raise ConfigurationError(f"syr2k dims must be positive, got {(m, k)}")
        _, outer_curve = self._lookup_engine(engine)
        rate = float(outer_curve.rate(min(m, k)))
        in_b = self._in_bytes[engine]
        nbytes = in_b * 2 * m * k + 2.0 * m * m
        return self.spec.kernel_launch + max(2.0 * m * m * k / rate, nbytes / self.spec.hbm_bandwidth)

    def record_time(self, rec: GemmRecord, engine: str = "tc") -> float:
        """Model time of one trace record (GEMM, batched GEMM, or syr2k)."""
        if rec.op == "syr2k":
            return self.syr2k_time(rec.m, rec.k, engine)
        if rec.op == "gemm_batched":
            # One kernel launch amortized across the whole product stack.
            one = self.gemm_time(rec.m, rec.n, rec.k, engine) - self.spec.kernel_launch
            return self.spec.kernel_launch + rec.batch * one
        return self.gemm_time(rec.m, rec.n, rec.k, engine)

    def trace_time(self, trace: GemmTrace, engine: str = "tc") -> float:
        """Total model time of a GEMM trace."""
        return sum(self.record_time(r, engine) for r in trace)

    def trace_time_by_tag(self, trace: GemmTrace, engine: str = "tc") -> dict[str, float]:
        """Per-tag model time of a GEMM trace."""
        out: dict[str, float] = {}
        for r in trace:
            out[r.tag] = out.get(r.tag, 0.0) + self.record_time(r, engine)
        return out

    def trace_tflops(self, trace: GemmTrace, engine: str = "tc") -> float:
        """Aggregate sustained TFLOPS of a trace under the model."""
        t = self.trace_time(trace, engine)
        return trace.total_flops / t / 1e12 if t > 0 else 0.0

    def _lookup_engine(self, engine: str) -> tuple[ThroughputCurve, ThroughputCurve]:
        try:
            return self._curves[engine]
        except KeyError:
            raise ConfigurationError(
                f"unknown engine {engine!r}; expected one of {self.ENGINES}"
            ) from None

    # ------------------------------------------------------------------
    # Panel factorization pricing (Figure 8)
    # ------------------------------------------------------------------
    def tsqr_panel_time(self, m: int, w: int, *, engine: str = "tc") -> float:
        """One TSQR panel (m×w): tree QR + WY reconstruction (paper §5.1–5.2)."""
        import math

        launch = self.spec.kernel_launch
        leaf = max(4 * w, 64)
        depth = max(int(math.ceil(math.log2(max(m / leaf, 1.0)))), 0)
        # Leaf factorization + per-level stacked-R QR: custom warp kernels.
        qr_flops = 2.0 * w * w * (m - w / 3.0)
        leaf_time = launch + qr_flops / self.spec.tsqr_kernel_rate
        # One reduction kernel up and one Q-propagation launch down per level.
        merge_kernels = 2 * depth * launch
        # Q back-propagation GEMMs: ~2 m w^2 flops per level, TC-priced.
        prop = sum(self.gemm_time(m, w, w, engine) for _ in range(depth))
        # Reconstruction: LU(w×w) + two triangular solves + W = Y T GEMM.
        rec = 4 * launch + (2.0 * m * w * w) / self.spec.tsqr_kernel_rate
        rec += self.gemm_time(m, w, w, engine)
        return leaf_time + merge_kernels + prop + rec

    def cusolver_panel_time(self, m: int, w: int) -> float:
        """One cuSOLVER panel (``sgeqrf`` + ``sorgqr``), column-at-a-time BLAS2."""
        flops = 2.0 * 2.0 * w * w * (m - w / 3.0)  # factor + form Q
        return w * self.spec.cusolver_col_overhead + flops / self.spec.cusolver_panel_rate

    def magma_panel_time(self, m: int, w: int) -> float:
        """One MAGMA ``sy2sb`` panel (LAPACK-style, host round trips)."""
        flops = 2.0 * 2.0 * w * w * (m - w / 3.0)
        return w * self.spec.magma_col_overhead + flops / self.spec.magma_panel_rate

    def panel_time(self, m: int, w: int, kind: str, *, engine: str = "tc") -> float:
        """One panel under the named strategy."""
        if kind == "tsqr":
            return self.tsqr_panel_time(m, w, engine=engine)
        if kind == "cusolver":
            return self.cusolver_panel_time(m, w)
        if kind == "magma":
            return self.magma_panel_time(m, w)
        raise ConfigurationError(f"unknown panel kind {kind!r}; expected {self.PANELS}")

    def sbr_panel_total(self, n: int, b: int, kind: str, *, engine: str = "tc") -> float:
        """Total panel time over the whole band reduction (Figure 8 series)."""
        check_blocksizes(n, b)
        total = 0.0
        i = 0
        while n - i - b >= 2:
            m = n - i - b
            w = min(b, m)
            total += self.panel_time(m, w, kind, engine=engine)
            i += b
        return total

    # ------------------------------------------------------------------
    # Band reduction compositions (Figures 9, 10)
    # ------------------------------------------------------------------
    def sbr_time(
        self,
        n: int,
        b: int,
        nb: int | None = None,
        *,
        method: str = "wy",
        engine: str = "tc",
        panel: str = "tsqr",
        want_q: bool = False,
    ) -> SbrTimeBreakdown:
        """Model time of our band reduction in a given configuration."""
        if method == "wy":
            if nb is None:
                raise ConfigurationError("WY-based SBR requires nb")
            trace = trace_sbr_wy(n, b, nb, want_q=want_q)
            label = f"wy(nb={nb})/{engine}/{panel}"
        elif method == "zy":
            trace = trace_sbr_zy(n, b, want_q=want_q)
            label = f"zy/{engine}/{panel}"
        else:
            raise ConfigurationError(f"method must be 'wy' or 'zy', got {method!r}")
        gemm = self.trace_time(trace, engine)
        pan = self.sbr_panel_total(n, b, panel, engine=engine)
        return SbrTimeBreakdown(
            gemm=gemm,
            panel=pan,
            label=label,
            gemm_by_tag=self.trace_time_by_tag(trace, engine),
        )

    def magma_sy2sb_time(self, n: int, b: int) -> SbrTimeBreakdown:
        """The MAGMA ``ssytrd_sy2sb`` baseline (ZY + ``ssymm``/``ssyr2k``).

        MAGMA's trailing update exploits symmetry: ``Z = A W`` via ``ssymm``
        (same flops/shape as the GEMM our trace records) and the rank-2b
        update via a native ``ssyr2k`` (half the flops of the two explicit
        GEMMs the Tensor-Core version needs) — i.e. exactly the ZY shape
        stream with ``use_syr2k=True`` priced on the SGEMM curves.
        """
        check_blocksizes(n, b)
        trace = trace_sbr_zy(n, b, want_q=False, use_syr2k=True)
        return SbrTimeBreakdown(
            gemm=self.trace_time(trace, "sgemm"),
            panel=self.sbr_panel_total(n, b, "magma"),
            label="magma_sy2sb",
            gemm_by_tag=self.trace_time_by_tag(trace, "sgemm"),
        )

    # ------------------------------------------------------------------
    # CPU stages and end-to-end EVD (Figure 11)
    # ------------------------------------------------------------------
    def transfer_time(self, nbytes: float) -> float:
        """Host-device transfer over PCIe (paper §6.4.1: ~12 GB/s)."""
        return nbytes / self.spec.pcie_bandwidth

    def bulge_time(self, n: int, b: int) -> float:
        """MAGMA multicore bulge chasing: Θ(n² b) flops."""
        return 6.0 * n * n * b / self.spec.cpu_bulge_rate

    def dc_time(self, n: int, *, want_vectors: bool = False) -> float:
        """Divide & conquer on the tridiagonal matrix (CPU)."""
        if want_vectors:
            return (4.0 / 3.0) * n**3 / self.spec.cpu_dc_rate
        # Eigenvalues only: deflation-rich O(n^2)-ish behaviour.
        return 20.0 * n * n / self.spec.cpu_dc_rate

    def bulge_q_time(self, n: int, b: int) -> float:
        """Accumulating Q2 during bulge chasing: Θ(n³) rotation applications.

        Each of the ~n²(b-1)/b · (1/b)-chase... in aggregate every rotation
        touches two length-n columns of Q (6n flops); the standard count is
        ~3 n³ regardless of b, the known O(n³) price of eigenvectors in
        two-stage methods.
        """
        return 3.0 * n**3 / self.spec.cpu_bulge_rate

    def back_transform_time(
        self, n: int, b: int, nb: int, *, method: str = "tree", engine: str = "tc"
    ) -> float:
        """Stage-1 back-transformation (paper §4.4): assemble/apply Q_sbr.

        Prices the FormW/Q GEMM stream (tree = Algorithm 2, forward = the
        conventional accumulation) on the chosen engine.
        """
        blocks: list[tuple[int, int]] = []
        j0 = 0
        while n - j0 - b >= 2:
            k = min(nb, max(((n - j0 - b - 1) // b) * b, b))
            blocks.append((j0 + b, k))
            if n - j0 - b <= nb:
                break
            j0 += nb
        from ..gemm.symbolic import trace_form_q

        return self.trace_time(trace_form_q(n, blocks, method=method), engine)

    def evd_time(
        self,
        n: int,
        b: int,
        nb: int | None = None,
        *,
        variant: str = "ours",
        engine: str = "tc",
        want_vectors: bool = False,
    ) -> EvdTimeBreakdown:
        """Two-stage EVD, eigenvalues only by default (paper §6.4.1).

        ``variant="ours"``: WY-based TC band reduction on the GPU, band
        matrix shipped to the host, MAGMA bulge chasing + D&C.
        ``variant="magma"``: everything MAGMA (its sy2sb runs on the GPU
        too, so only the band travels in both variants).
        """
        nb_eff = nb if nb is not None else 8 * b
        if variant == "ours":
            sbr = self.sbr_time(n, b, nb_eff, method="wy", engine=engine, panel="tsqr").total
            if want_vectors:
                sbr += self.back_transform_time(n, b, nb_eff, method="tree", engine=engine)
        elif variant == "magma":
            sbr = self.magma_sy2sb_time(n, b).total
            if want_vectors:
                sbr += self.back_transform_time(n, b, b, method="forward", engine="sgemm")
        else:
            raise ConfigurationError(f"variant must be 'ours' or 'magma', got {variant!r}")
        bulge = self.bulge_time(n, b)
        if want_vectors:
            # Q2 accumulation + the final X = Q_sbr (Q2 V) products (device).
            bulge += self.bulge_q_time(n, b)
            sbr += 2 * self.gemm_time(n, n, n, engine if variant == "ours" else "sgemm")
        # Band matrix in LAPACK band storage: (b+1) × n singles.
        transfer = self.transfer_time(4.0 * (b + 1) * n)
        if want_vectors:
            # Eigenvector matrix comes back across PCIe as well.
            transfer += self.transfer_time(4.0 * n * n)
        return EvdTimeBreakdown(
            sbr=sbr,
            transfer=transfer,
            bulge=bulge,
            solver=self.dc_time(n, want_vectors=want_vectors),
            label=f"evd/{variant}",
        )
