"""Device specification constants.

Two classes of constants live here:

- **Published hardware facts** (A100 peaks, HBM bandwidth, PCIe rate):
  taken from NVIDIA documentation and the paper's §5.3/§6.4.
- **Fitted constants** (panel-kernel efficiencies, launch latency, CPU
  stage rates): chosen so the model reproduces the *ratios* the paper
  reports (TSQR ≈5x faster panels than MAGMA/cuSOLVER in Fig 8, SBR
  speedups of Figs 9–10, EVD speedups of Fig 11).  Every fitted constant
  is marked ``# fitted`` below and discussed in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DeviceSpec", "A100Spec"]


@dataclass(frozen=True)
class DeviceSpec:
    """Rates and latencies of the modeled machine (SI units: s, B, flop/s)."""

    name: str

    # --- Published hardware facts. ---------------------------------------
    #: Dense FP16 Tensor-Core peak (A100: 312 TFLOPS).
    tc_fp16_peak: float
    #: FP32 SIMT (CUDA-core) peak (A100: 19.5 TFLOPS).
    fp32_peak: float
    #: HBM2e bandwidth (A100-PCIE-40GB: ~1.555 TB/s).
    hbm_bandwidth: float
    #: Host-device transfer rate (paper §6.4.1 measures ~12 GB/s).
    pcie_bandwidth: float
    #: EC-TCGEMM sustained rate.  The paper's §5.3 measures 51 TFLOPS for
    #: the limited exponent range and 33 TFLOPS for the full range; band
    #: reduction scales its operands (part of the EC scheme), so the
    #: limited-range rate applies.
    ec_tcgemm_rate: float

    # --- Fitted constants (see module docstring). -------------------------
    #: Kernel launch + scheduling overhead per GEMM call.
    kernel_launch: float = 8e-6  # fitted
    #: Effective rate of the TSQR leaf/merge factorization kernels (custom
    #: warp-per-column kernels; BLAS2-grade work).
    tsqr_kernel_rate: float = 6.0e12  # fitted
    #: Effective rate of cuSOLVER's panel path (geqrf+orgqr on tall-skinny).
    cusolver_panel_rate: float = 1.2e12  # fitted
    #: Per-column overhead of the cuSOLVER panel (BLAS2 kernel launches).
    cusolver_col_overhead: float = 8e-6  # fitted
    #: Effective rate of MAGMA's sy2sb panel (LAPACK-style, host-involved).
    magma_panel_rate: float = 0.9e12  # fitted
    #: Per-column overhead of the MAGMA panel.
    magma_col_overhead: float = 10e-6  # fitted
    #: Multicore CPU rate for the MAGMA bulge-chasing stage (MKL-threaded).
    cpu_bulge_rate: float = 3.5e11  # fitted
    #: Multicore CPU rate for divide & conquer (eigenvalues only).
    cpu_dc_rate: float = 1.0e11  # fitted

    def __post_init__(self) -> None:
        for name in (
            "tc_fp16_peak",
            "fp32_peak",
            "hbm_bandwidth",
            "pcie_bandwidth",
            "ec_tcgemm_rate",
            "kernel_launch",
            "tsqr_kernel_rate",
            "cusolver_panel_rate",
            "magma_panel_rate",
            "cpu_bulge_rate",
            "cpu_dc_rate",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"DeviceSpec.{name} must be positive")


#: The paper's machine: NVIDIA A100-PCIE-40GB, CUDA 11.2 host.
A100Spec = DeviceSpec(
    name="A100-PCIE-40GB",
    tc_fp16_peak=312e12,
    fp32_peak=19.5e12,
    hbm_bandwidth=1.555e12,
    pcie_bandwidth=12e9,
    ec_tcgemm_rate=51e12,
)
