"""Throughput curves calibrated to the paper's Table 1.

Table 1 measures GEMM TFLOPS on the A100 at ``m = 32768`` for inner/outer
dimension ``k`` from 32 to 4096, in two shape families:

- **ts** ("tall-skinny output"): ``A (m×m) @ B (m×k)`` — the GEMM's
  *output* is skinny; this is the ``A @ W`` shape of both SBR algorithms.
- **outer**: ``A (m×k) @ B (k×m)`` — the *contraction* dimension is
  small; this is the rank-k-update shape (``Z Y^T``, trailing updates).

A :class:`ThroughputCurve` interpolates effective TFLOPS in ``log2(k)``
between the measured anchors and clamps outside them (with one
extrapolated anchor at k = 32768 for the Tensor-Core curves, consistent
with the ~240 TFLOPS the paper reports for the most square GEMMs in
Fig 6).  All four Table 1 columns are exposed as module constants so the
Table 1 benchmark can print the calibration back out.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TABLE1_K",
    "TABLE1_TC_TS",
    "TABLE1_TC_OUTER",
    "TABLE1_SGEMM_TS",
    "TABLE1_SGEMM_OUTER",
    "ThroughputCurve",
    "TC_TS_CURVE",
    "TC_OUTER_CURVE",
    "SGEMM_TS_CURVE",
    "SGEMM_OUTER_CURVE",
]

#: Inner-dimension grid of Table 1.
TABLE1_K: tuple[int, ...] = (32, 64, 128, 256, 512, 1024, 2048, 4096)

#: TC-GEMM TFLOPS, ts family (A m×m, B m×k), Table 1 columns 2.
TABLE1_TC_TS: tuple[float, ...] = (6.28, 11.69, 24.44, 42.65, 66.57, 85.73, 112.08, 133.17)
#: SGEMM TFLOPS, ts family, Table 1 column 3.
TABLE1_SGEMM_TS: tuple[float, ...] = (9.36, 9.65, 10.22, 10.33, 10.36, 10.40, 12.91, 15.31)
#: TC-GEMM TFLOPS, outer family (A m×k, B k×m), Table 1 column 4.
TABLE1_TC_OUTER: tuple[float, ...] = (20.02, 33.30, 49.83, 97.41, 122.89, 138.82, 121.55, 140.85)
#: SGEMM TFLOPS, outer family, Table 1 column 5.
TABLE1_SGEMM_OUTER: tuple[float, ...] = (9.31, 9.85, 10.02, 10.23, 10.33, 10.37, 13.13, 14.33)


@dataclass(frozen=True)
class ThroughputCurve:
    """Effective GEMM rate (flop/s) as a function of the small dimension.

    Piecewise-linear in ``log2(k)`` between anchors; clamped outside.
    """

    k_anchors: tuple[int, ...]
    tflops: tuple[float, ...]
    label: str = ""

    def __post_init__(self) -> None:
        if len(self.k_anchors) != len(self.tflops) or len(self.k_anchors) < 2:
            raise ValueError("need >= 2 matching anchors")
        if any(k2 <= k1 for k1, k2 in zip(self.k_anchors, self.k_anchors[1:])):
            raise ValueError("k anchors must be strictly increasing")
        if any(t <= 0 for t in self.tflops):
            raise ValueError("throughputs must be positive")

    def rate(self, k) -> np.ndarray:
        """Effective rate in flop/s for small-dimension ``k`` (scalar or array)."""
        k = np.maximum(np.asarray(k, dtype=np.float64), 1.0)
        logk = np.log2(k)
        xs = np.log2(np.asarray(self.k_anchors, dtype=np.float64))
        ys = np.asarray(self.tflops, dtype=np.float64)
        return np.interp(logk, xs, ys) * 1e12

    def scaled(self, factor: float, label: str | None = None) -> "ThroughputCurve":
        """A copy of the curve with all throughputs multiplied by ``factor``."""
        return ThroughputCurve(
            k_anchors=self.k_anchors,
            tflops=tuple(t * factor for t in self.tflops),
            label=label if label is not None else f"{self.label}*{factor:g}",
        )


# Extended TC anchors: one extrapolated point at k = 32768 consistent with
# the ~240 TFLOPS the paper reports for its most square in-algorithm GEMMs.
TC_TS_CURVE = ThroughputCurve(TABLE1_K + (32768,), TABLE1_TC_TS + (240.0,), "tc/ts")
TC_OUTER_CURVE = ThroughputCurve(TABLE1_K + (32768,), TABLE1_TC_OUTER + (245.0,), "tc/outer")
# SGEMM saturates near the FP32 peak for square shapes.
SGEMM_TS_CURVE = ThroughputCurve(TABLE1_K + (32768,), TABLE1_SGEMM_TS + (18.0,), "sgemm/ts")
SGEMM_OUTER_CURVE = ThroughputCurve(TABLE1_K + (32768,), TABLE1_SGEMM_OUTER + (18.0,), "sgemm/outer")
