"""Non-pivoting LU factorization and triangular solves.

The Householder-vector reconstruction (paper Algorithm 3, Ballard et al.
2014) relies on the fact that ``I - Q S`` of an orthonormal ``Q`` with the
right diagonal sign matrix ``S`` has a *unique, stable* LU factorization
without pivoting — its diagonal entries are ``1 + |Q_ii|`` >= 1.  We
therefore implement plain right-looking LU with no pivot search (the
LAPACK ``getrf`` structure minus the pivoting), raising
:class:`repro.errors.SingularMatrixError` only if a pivot collapses, which
for valid inputs cannot happen.

Triangular solves delegate to ``scipy.linalg.solve_triangular`` (LAPACK
``trtrs``) — the solve itself is standard; what the paper contributes is
*where* it is used.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from ..errors import ShapeError, SingularMatrixError

__all__ = ["lu_nopivot", "solve_lower_unit", "solve_upper", "solve_upper_right"]


def lu_nopivot(a, *, pivot_tol: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """LU factorization without pivoting: ``A = L @ U``.

    Parameters
    ----------
    a : array_like, shape (n, n)
        Matrix to factor.
    pivot_tol : float
        A pivot with absolute value <= ``pivot_tol * max|A|`` raises
        :class:`SingularMatrixError`.  The default 0.0 only rejects exact
        zeros.

    Returns
    -------
    l : ndarray
        Unit lower-triangular factor.
    u : ndarray
        Upper-triangular factor.
    """
    a = np.array(a, copy=True)
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ShapeError(f"lu_nopivot requires a square matrix, got shape {a.shape}")
    dtype = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    a = a.astype(dtype, copy=False)
    n = a.shape[0]
    scale = float(np.max(np.abs(a))) if a.size else 0.0
    threshold = pivot_tol * scale

    for j in range(n - 1):
        piv = a[j, j]
        if abs(piv) <= threshold or piv == 0:
            raise SingularMatrixError(
                f"zero/tiny pivot {piv!r} at step {j} in non-pivoting LU"
            )
        a[j + 1 :, j] /= piv
        # Rank-1 trailing update (right-looking), vectorized.
        a[j + 1 :, j + 1 :] -= np.multiply.outer(a[j + 1 :, j], a[j, j + 1 :])
    if n and (a[n - 1, n - 1] == 0 or abs(a[n - 1, n - 1]) <= threshold):
        raise SingularMatrixError(f"zero/tiny final pivot in non-pivoting LU")

    l = np.tril(a, k=-1)
    idx = np.arange(n)
    l[idx, idx] = 1
    return l, np.triu(a)


def solve_lower_unit(l: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``L @ X = B`` for unit lower-triangular ``L``."""
    if l.ndim != 2 or l.shape[0] != l.shape[1] or l.shape[1] != b.shape[0]:
        raise ShapeError(f"shape mismatch: L {l.shape} vs B {b.shape}")
    return solve_triangular(l, b, lower=True, unit_diagonal=True)


def solve_upper(u: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``U @ X = B`` for upper-triangular ``U``."""
    if u.ndim != 2 or u.shape[0] != u.shape[1] or u.shape[1] != b.shape[0]:
        raise ShapeError(f"shape mismatch: U {u.shape} vs B {b.shape}")
    return solve_triangular(u, b, lower=False)


def solve_upper_right(b: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Solve ``X @ U = B`` for upper-triangular ``U`` (right-side TRSM)."""
    if u.ndim != 2 or u.shape[0] != u.shape[1] or b.shape[1] != u.shape[0]:
        raise ShapeError(f"shape mismatch: B {b.shape} vs U {u.shape}")
    # X U = B  <=>  U^T X^T = B^T with U^T lower triangular.
    return solve_triangular(u.T, b.T, lower=True).T
