"""Recursive (divide & conquer) QR factorization — the paper's ref [41].

Zhang, Baharlouei & Wu (HPDC 2020) showed that restructuring blocked QR
*recursively* — factor the left half, apply its accumulated WY transform
to the right half **once**, recurse on the bottom-right — replaces the
stream of skinny trailing updates with near-square GEMMs whose inner
dimension is half the current column count.  The paper's §4.2 takes this
as the starting point for Algorithm 1 and explains why the trick does
*not* transfer directly to the two-sided band reduction (the trailing
matrix cannot be split left/right) — which is precisely what the
WY-deferred update works around.

This module implements the one-sided recursion (Elmroth–Gustavson
``RGEQR3`` structure, WY form) so the library contains the lineage:

    recursive_qr(A):                      # A is m×n, m >= n
        if n small: panel QR              # leaf
        (W1, Y1, R1) = recursive_qr(A_left)
        A_right <- (I - W1 Y1^T)^T A_right      # ONE big update (tag rqr_update)
        (W2, Y2, R2) = recursive_qr(A_right[bottom])
        (W, Y) = merge(W1, Y1, W2, Y2)          # WY product     (tag rqr_merge)

GEMM tags: ``rqr_update`` (the trailing applications), ``rqr_merge``
(WY merges); leaves use the unblocked Householder kernel.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from ..gemm.trace import GemmTrace
from .qr import householder_qr
from .wy import build_wy

__all__ = ["recursive_qr", "trace_recursive_qr"]


def recursive_qr(
    a,
    *,
    leaf_cols: int = 32,
    engine: GemmEngine | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recursive QR in WY form: ``A = (I - W Y^T)[:, :n] @ R``.

    Parameters
    ----------
    a : array_like (m, n), m >= n
        Matrix to factor.
    leaf_cols : int
        Column count below which the unblocked Householder kernel runs.
    engine : GemmEngine, optional
        Engine for the trailing-update and merge GEMMs.

    Returns
    -------
    w, y : ndarrays (m, n)
        WY pair of the orthogonal factor.
    r : ndarray (n, n)
        Upper-triangular factor.
    """
    a = np.asarray(a)
    if a.ndim != 2 or a.shape[0] < a.shape[1] or a.size == 0:
        raise ShapeError(f"recursive_qr requires m >= n >= 1, got shape {a.shape}")
    if leaf_cols < 1:
        raise ShapeError(f"leaf_cols must be >= 1, got {leaf_cols}")
    dtype = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    eng = engine if engine is not None else PlainEngine()
    work = np.array(a, dtype=dtype, copy=True)
    return _rqr(work, leaf_cols, eng)


def _rqr(a: np.ndarray, leaf_cols: int, eng: GemmEngine):
    m, n = a.shape
    if n <= leaf_cols:
        v, betas, r = householder_qr(a)
        w, y = build_wy(v, betas)
        return w, y, r

    n1 = n // 2
    w1, y1, r1 = _rqr(a[:, :n1], leaf_cols, eng)

    # One big trailing application: A_right <- Q1^T A_right.
    right = a[:, n1:]
    wtr = eng.gemm(w1.T, right, tag="rqr_update")
    right = right - eng.gemm(y1, wtr, tag="rqr_update")

    top = right[:n1, :]
    w2, y2, r2 = _rqr(right[n1:, :], leaf_cols, eng)

    # Embed the bottom factor and merge the WY pairs: Q = Q1 Q2.
    w2p = np.zeros((m, n - n1), dtype=a.dtype)
    y2p = np.zeros((m, n - n1), dtype=a.dtype)
    w2p[n1:] = w2
    y2p[n1:] = y2
    ytw = eng.gemm(y1.T, w2p, tag="rqr_merge")
    w_new = w2p - eng.gemm(w1, ytw, tag="rqr_merge")

    w = np.hstack([w1, w_new])
    y = np.hstack([y1, y2p])
    r = np.zeros((n, n), dtype=a.dtype)
    r[:n1, :n1] = r1
    r[:n1, n1:] = top
    r[n1:, n1:] = r2
    return w, y, r


def trace_recursive_qr(m: int, n: int, *, leaf_cols: int = 32) -> GemmTrace:
    """Symbolic GEMM shape stream of :func:`recursive_qr` (update + merge tags)."""
    if m < n or n < 1:
        raise ShapeError(f"need m >= n >= 1, got {(m, n)}")
    trace = GemmTrace()

    def rec(rows: int, cols: int) -> None:
        if cols <= leaf_cols:
            return
        n1 = cols // 2
        rec(rows, n1)
        trace.record(n1, cols - n1, rows, tag="rqr_update")
        trace.record(rows, cols - n1, n1, tag="rqr_update")
        rec(rows - n1, cols - n1)
        trace.record(n1, cols - n1, rows, tag="rqr_merge")
        trace.record(rows, cols - n1, n1, tag="rqr_merge")

    rec(m, n)
    return trace


def trace_blocked_qr(m: int, n: int, *, block: int = 32) -> GemmTrace:
    """Symbolic GEMM shape stream of :func:`repro.la.qr.blocked_qr`."""
    if m < n or n < 1:
        raise ShapeError(f"need m >= n >= 1, got {(m, n)}")
    trace = GemmTrace()
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        if j1 < n:
            rows = m - j0
            trace.record(j1 - j0, n - j1, rows, tag="qr_trailing")
            trace.record(rows, n - j1, j1 - j0, tag="qr_trailing")
    return trace
