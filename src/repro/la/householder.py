"""Householder reflector generation and application.

Conventions follow LAPACK ``larfg``/``larf``: a reflector is

    H = I - beta * v @ v.T,   v[0] = 1,

and for an input vector ``x`` the generated ``H`` satisfies
``H @ x = [alpha, 0, ..., 0]`` with ``|alpha| = ||x||_2``.  The sign of
``alpha`` is chosen opposite to ``x[0]`` so the computation of ``v`` never
cancels (backward stability).

These are BLAS2 kernels: they are used inside panel factorizations, which
the paper's performance model charges separately from the BLAS3 (GEMM)
stream.
"""

from __future__ import annotations

import numpy as np

from ..errors import NumericalBreakdownError, ShapeError

__all__ = [
    "make_reflector",
    "apply_reflector_left",
    "apply_reflector_right",
    "reflector_matrix",
]


def make_reflector(x) -> tuple[np.ndarray, float, float]:
    """Compute a Householder reflector annihilating ``x[1:]``.

    Parameters
    ----------
    x : array_like
        1-D vector of length >= 1.

    Returns
    -------
    v : numpy.ndarray
        Householder vector with ``v[0] == 1`` (same dtype as ``x``).
    beta : float
        Reflector coefficient; ``H = I - beta * outer(v, v)``.
    alpha : float
        The value ``(H @ x)[0]`` (signed norm of ``x``).

    Notes
    -----
    When ``x[1:]`` is already zero the reflector degenerates: ``beta = 0``
    and ``H = I`` (LAPACK convention), with ``alpha = x[0]``.
    """
    x = np.asarray(x)
    if x.ndim != 1 or x.size == 0:
        raise ShapeError(f"make_reflector requires a non-empty 1-D vector, got shape {x.shape}")
    dtype = x.dtype if x.dtype.kind == "f" else np.dtype(np.float64)
    x = x.astype(dtype, copy=False)

    v = x.copy()
    if x.size == 1:
        v[0] = dtype.type(1)
        return v, 0.0, float(x[0])

    # LAPACK larfg-style rescaling: for entries near the under/overflow
    # thresholds the squared norm loses (or destroys) all precision, so
    # compute the reflector on x / scale and restore alpha afterwards
    # (v and beta are scale-invariant).
    finfo = np.finfo(dtype)
    safe_lo = float(finfo.tiny) ** 0.5
    scale = float(np.max(np.abs(x)))
    if not np.isfinite(scale):
        # A NaN/Inf column cannot be rescaled into range (it used to send
        # the rescaling below into infinite recursion): report breakdown
        # so the resilience layer can retry the enclosing panel.
        raise NumericalBreakdownError(
            "non-finite column passed to Householder reflector",
            detector="nonfinite", site="make_reflector",
        )
    if scale != 0.0 and not (safe_lo < scale < 1.0 / safe_lo):
        v_s, beta, alpha_s = make_reflector(x / dtype.type(scale))
        return v_s, beta, alpha_s * scale

    sigma = float(np.dot(x[1:], x[1:]))
    x0 = float(x[0])
    if sigma == 0.0:
        v[0] = dtype.type(1)
        return v, 0.0, x0

    norm = np.hypot(x0, np.sqrt(sigma))
    # alpha gets the sign opposite to x0 so v0 = x0 - alpha never cancels.
    alpha = -norm if x0 >= 0 else norm
    v0 = x0 - alpha
    v[1:] /= dtype.type(v0)
    v[0] = dtype.type(1)
    beta = (alpha - x0) / alpha  # == -v0 / alpha, the LAPACK tau
    return v, float(beta), float(alpha)


def apply_reflector_left(a: np.ndarray, v: np.ndarray, beta: float) -> None:
    """In-place ``A <- H @ A`` with ``H = I - beta * v v^T`` (A modified).

    ``a`` must be 2-D with ``a.shape[0] == v.size``.  Rank-1 update done with
    one matvec and one outer-product subtraction (BLAS2).
    """
    if beta == 0.0:
        return
    if a.ndim != 2 or a.shape[0] != v.size:
        raise ShapeError(f"shape mismatch: A {a.shape} vs v ({v.size},)")
    w = v @ a  # v^T A
    # A -= beta * outer(v, w), in place to avoid a temporary the size of A.
    a -= np.multiply.outer(v * a.dtype.type(beta), w)


def apply_reflector_right(a: np.ndarray, v: np.ndarray, beta: float) -> None:
    """In-place ``A <- A @ H`` with ``H = I - beta * v v^T`` (A modified)."""
    if beta == 0.0:
        return
    if a.ndim != 2 or a.shape[1] != v.size:
        raise ShapeError(f"shape mismatch: A {a.shape} vs v ({v.size},)")
    w = a @ v  # A v
    a -= np.multiply.outer(w * a.dtype.type(beta), v)


def reflector_matrix(v: np.ndarray, beta: float, *, n: int | None = None) -> np.ndarray:
    """Dense ``H = I - beta * v v^T``, optionally embedded in an n×n identity.

    For testing and small reference computations only — O(n^2) memory.
    If ``n`` is given and larger than ``v.size``, the reflector occupies the
    trailing ``v.size`` rows/columns of an identity (the usual embedding in
    factorization sweeps).
    """
    v = np.asarray(v)
    m = v.size
    if n is None:
        n = m
    if n < m:
        raise ShapeError(f"embedding size n={n} smaller than reflector size {m}")
    h = np.eye(n, dtype=v.dtype)
    h[n - m :, n - m :] -= beta * np.multiply.outer(v, v)
    return h
