"""Tridiagonal matrix helpers shared by the second-stage eigensolvers."""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..validation import as_square_matrix

__all__ = ["tridiag_to_dense", "dense_to_tridiag"]


def tridiag_to_dense(d, e) -> np.ndarray:
    """Dense symmetric tridiagonal matrix from diagonal ``d`` and off-diagonal ``e``.

    Parameters
    ----------
    d : array_like, shape (n,)
        Main diagonal.
    e : array_like, shape (n-1,)
        Sub/super-diagonal.
    """
    d = np.asarray(d)
    e = np.asarray(e)
    if d.ndim != 1 or e.ndim != 1 or e.size != max(d.size - 1, 0):
        raise ShapeError(f"need d (n,) and e (n-1,), got {d.shape} and {e.shape}")
    out = np.diag(d).astype(np.result_type(d, e), copy=False)
    if e.size:
        n = d.size
        idx = np.arange(n - 1)
        out[idx + 1, idx] = e
        out[idx, idx + 1] = e
    return out


def dense_to_tridiag(a, *, tol: float | None = None) -> tuple[np.ndarray, np.ndarray]:
    """Extract ``(d, e)`` from a dense (near-)tridiagonal symmetric matrix.

    If ``tol`` is given, entries outside the tridiagonal band larger than
    ``tol * max|A|`` raise :class:`repro.errors.ShapeError` — a guard used
    by tests on the bulge-chasing output.
    """
    a = as_square_matrix(a, name="a")
    n = a.shape[0]
    if tol is not None and n > 2:
        offsets = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
        spill = np.abs(a[offsets > 1])
        bound = tol * max(float(np.max(np.abs(a))), 1e-300)
        if spill.size and float(spill.max()) > bound:
            raise ShapeError(
                f"matrix is not tridiagonal: max off-band entry {spill.max():.3e} "
                f"exceeds {bound:.3e}"
            )
    d = np.diagonal(a).copy()
    e = np.diagonal(a, offset=-1).copy() if n > 1 else np.empty(0, dtype=a.dtype)
    return d, e
