"""Dense linear-algebra kernels built from scratch on NumPy.

This package is the substrate beneath the band-reduction algorithms:

- :mod:`~repro.la.householder` — Householder reflector generation and
  application (the BLAS2 core).
- :mod:`~repro.la.wy` — WY and compact-WY accumulation of reflector
  products (Bischof & Van Loan 1987; Schreiber & Van Loan 1989).
- :mod:`~repro.la.qr` — unblocked and blocked Householder QR (the
  cuSOLVER-style panel baseline).
- :mod:`~repro.la.tsqr` — communication-avoiding Tall-Skinny QR with
  Householder local factorizations (paper §5.1).
- :mod:`~repro.la.lu` — non-pivoting LU and triangular solves.
- :mod:`~repro.la.reconstruct` — Householder-vector reconstruction from an
  explicit Q via non-pivoted LU (Ballard et al. 2014; paper Algorithm 3).
- :mod:`~repro.la.band` — symmetric band storage and verification helpers.
- :mod:`~repro.la.tridiagonal` — tridiagonal extraction/assembly helpers.
"""

from .householder import (
    apply_reflector_left,
    apply_reflector_right,
    make_reflector,
    reflector_matrix,
)
from .wy import (
    WYAccumulator,
    apply_q_left,
    apply_q_right,
    apply_qt_left,
    build_compact_wy,
    build_wy,
    extend_wy,
    wy_matrix,
)
from .qr import blocked_qr, householder_qr, qr_explicit
from .recursive_qr import recursive_qr, trace_recursive_qr
from .tsqr import tsqr
from .lu import lu_nopivot, solve_lower_unit, solve_upper, solve_upper_right
from .reconstruct import reconstruct_wy
from .band import (
    band_to_dense,
    bandwidth_of,
    extract_band,
    is_banded,
    to_symmetric_band_storage,
    from_symmetric_band_storage,
)
from .tridiagonal import tridiag_to_dense, dense_to_tridiag

__all__ = [
    "WYAccumulator",
    "make_reflector",
    "apply_reflector_left",
    "apply_reflector_right",
    "reflector_matrix",
    "build_wy",
    "build_compact_wy",
    "extend_wy",
    "wy_matrix",
    "apply_q_left",
    "apply_q_right",
    "apply_qt_left",
    "householder_qr",
    "blocked_qr",
    "qr_explicit",
    "recursive_qr",
    "trace_recursive_qr",
    "tsqr",
    "lu_nopivot",
    "solve_lower_unit",
    "solve_upper",
    "solve_upper_right",
    "reconstruct_wy",
    "bandwidth_of",
    "extract_band",
    "band_to_dense",
    "is_banded",
    "to_symmetric_band_storage",
    "from_symmetric_band_storage",
    "tridiag_to_dense",
    "dense_to_tridiag",
]
