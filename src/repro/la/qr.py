"""Householder QR factorizations: unblocked and blocked (cuSOLVER-style).

The unblocked routine is the leaf kernel of both the blocked QR and the
TSQR tree.  The blocked routine mirrors LAPACK ``geqrf``: factor a panel,
accumulate its WY form, apply ``Q_p^T`` to the trailing columns with two
GEMMs per panel.  This is the "cuSOLVER panel" baseline of the paper's
Figure 8.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from .householder import apply_reflector_left, make_reflector
from .wy import build_wy

__all__ = ["householder_qr", "blocked_qr", "qr_explicit"]


def householder_qr(a) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Unblocked Householder QR of an m×n matrix (m >= n).

    Returns
    -------
    v_cols : ndarray, shape (m, n)
        Householder vectors in columns; ``v_cols[j, j] == 1`` and entries
        above the diagonal are zero.
    betas : ndarray, shape (n,)
        Reflector coefficients.
    r : ndarray, shape (n, n)
        Upper-triangular factor, so ``A = (H_1 ... H_n) @ [R; 0]``.
    """
    a = np.array(a, copy=True)
    if a.ndim != 2:
        raise ShapeError(f"householder_qr requires a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"householder_qr requires m >= n, got shape {a.shape}")
    dtype = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    a = a.astype(dtype, copy=False)

    v_cols = np.zeros((m, n), dtype=dtype)
    betas = np.zeros(n, dtype=np.float64)
    for j in range(n):
        v, beta, alpha = make_reflector(a[j:, j])
        v_cols[j:, j] = v
        betas[j] = beta
        a[j, j] = dtype.type(alpha)
        a[j + 1 :, j] = 0
        if beta != 0.0 and j + 1 < n:
            apply_reflector_left(a[j:, j + 1 :], v, beta)
    return v_cols, betas, np.triu(a[:n, :n]).copy()


def blocked_qr(
    a,
    *,
    block: int = 32,
    engine: GemmEngine | None = None,
    tag: str = "qr_trailing",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blocked Householder QR (LAPACK ``geqrf`` / cuSOLVER ``sgeqrf`` shape).

    Factors panels of ``block`` columns with the unblocked kernel, then
    updates the trailing columns with the panel's WY form (two GEMMs per
    panel, routed through ``engine`` under ``tag``).

    Returns the same ``(v_cols, betas, r)`` triple as
    :func:`householder_qr`.
    """
    a = np.array(a, copy=True)
    if a.ndim != 2:
        raise ShapeError(f"blocked_qr requires a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"blocked_qr requires m >= n, got shape {a.shape}")
    if block <= 0:
        raise ShapeError(f"block must be positive, got {block}")
    dtype = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    a = a.astype(dtype, copy=False)
    eng = engine if engine is not None else PlainEngine()

    v_cols = np.zeros((m, n), dtype=dtype)
    betas = np.zeros(n, dtype=np.float64)
    for j0 in range(0, n, block):
        j1 = min(j0 + block, n)
        pv, pb, pr = householder_qr(a[j0:, j0:j1])
        v_cols[j0:, j0:j1] = pv
        betas[j0:j1] = pb
        a[j0 : j0 + (j1 - j0), j0:j1] = pr
        a[j0 + (j1 - j0) :, j0:j1] = 0
        if j1 < n:
            w, y = build_wy(pv, pb)
            trailing = a[j0:, j1:]
            # trailing <- Q_p^T trailing = trailing - Y (W^T trailing)
            wt_t = eng.gemm(w.T, trailing, tag=tag)
            a[j0:, j1:] = trailing - eng.gemm(y, wt_t, tag=tag)
    return v_cols, betas, np.triu(a[:n, :n]).copy()


def qr_explicit(
    a,
    *,
    block: int = 32,
    engine: GemmEngine | None = None,
    tag: str = "qr_formq",
) -> tuple[np.ndarray, np.ndarray]:
    """QR with an explicit thin Q (``Q`` m×n, ``R`` n×n upper triangular).

    Equivalent to cuSOLVER ``sgeqrf`` + ``sorgqr``.  The thin Q is formed
    from the full WY pair: ``Q = I_{m×n} - W @ (Y[:n, :])^T``.
    """
    v_cols, betas, r = blocked_qr(a, block=block, engine=engine)
    eng = engine if engine is not None else PlainEngine()
    w, y = build_wy(v_cols, betas)
    n = r.shape[0]
    q = -eng.gemm(w, y[:n, :].T, tag=tag)
    idx = np.arange(n)
    q[idx, idx] += q.dtype.type(1)
    return q, r
