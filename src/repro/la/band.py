"""Symmetric band matrix helpers.

Band reduction produces a symmetric matrix whose nonzeros lie within
``|i - j| <= b``.  These helpers extract, verify, and convert between dense
and LAPACK-style symmetric band storage (lower form: ``ab[k, j] =
A[j + k, j]`` for ``k = 0..b``).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..validation import as_square_matrix

__all__ = [
    "bandwidth_of",
    "extract_band",
    "band_to_dense",
    "is_banded",
    "to_symmetric_band_storage",
    "from_symmetric_band_storage",
]


def bandwidth_of(a, *, tol: float = 0.0) -> int:
    """Smallest ``b`` such that ``|A[i, j]| <= tol`` whenever ``|i-j| > b``.

    With the default ``tol=0`` this is the exact bandwidth of the nonzero
    pattern.  Returns 0 for a diagonal matrix.
    """
    a = as_square_matrix(a, name="a")
    n = a.shape[0]
    offsets = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    mask = np.abs(a) > tol
    if not np.any(mask):
        return 0
    return int(offsets[mask].max())


def is_banded(a, b: int, *, tol: float = 0.0) -> bool:
    """Whether all entries of ``a`` outside bandwidth ``b`` are <= ``tol``."""
    if b < 0:
        raise ShapeError(f"bandwidth must be non-negative, got {b}")
    return bandwidth_of(a, tol=tol) <= b


def extract_band(a, b: int) -> np.ndarray:
    """Dense copy of ``a`` with entries outside bandwidth ``b`` zeroed."""
    a = as_square_matrix(a, name="a")
    if b < 0:
        raise ShapeError(f"bandwidth must be non-negative, got {b}")
    n = a.shape[0]
    offsets = np.abs(np.subtract.outer(np.arange(n), np.arange(n)))
    out = a.copy()
    out[offsets > b] = 0
    return out


def band_to_dense(ab: np.ndarray, n: int) -> np.ndarray:
    """Dense symmetric matrix from lower band storage ``ab`` ((b+1) × n)."""
    ab = np.asarray(ab)
    if ab.ndim != 2 or ab.shape[1] != n:
        raise ShapeError(f"band storage must be (b+1, {n}), got {ab.shape}")
    b = ab.shape[0] - 1
    out = np.zeros((n, n), dtype=ab.dtype)
    for k in range(b + 1):
        m = n - k
        if m <= 0:
            break
        diag = ab[k, :m]
        out[np.arange(k, n), np.arange(m)] = diag
        if k > 0:
            out[np.arange(m), np.arange(k, n)] = diag
    return out


def to_symmetric_band_storage(a, b: int) -> np.ndarray:
    """Lower symmetric band storage ((b+1) × n) of a dense symmetric matrix.

    ``ab[k, j] = A[j + k, j]`` for ``0 <= k <= b`` and ``j + k < n``;
    positions past the matrix edge are zero.
    """
    a = as_square_matrix(a, name="a")
    if b < 0:
        raise ShapeError(f"bandwidth must be non-negative, got {b}")
    n = a.shape[0]
    ab = np.zeros((b + 1, n), dtype=a.dtype)
    for k in range(b + 1):
        m = n - k
        if m <= 0:
            break
        ab[k, :m] = a[np.arange(k, n), np.arange(m)]
    return ab


def from_symmetric_band_storage(ab: np.ndarray, n: int) -> np.ndarray:
    """Alias of :func:`band_to_dense` with argument order matching its inverse."""
    return band_to_dense(ab, n)
