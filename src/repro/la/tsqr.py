"""Tall-Skinny QR (TSQR) with Householder local factorizations.

TSQR (a special case of Communication-Avoiding QR, Demmel et al.) factors a
tall matrix by a binary reduction tree: leaves factor row blocks
independently, and each internal node factors the two stacked R factors of
its children.  The explicit Q is recovered by propagating the small inner
Q factors back down the tree with GEMMs — exactly the shape of work Tensor
Cores accelerate, which is why the paper's TSQR panel beats the
column-at-a-time MAGMA/cuSOLVER panels by ~5x (Figure 8).

Two modifications from the reference GPU implementation are reflected
here (paper §5.1): local factorizations use **Householder reflections**
(not modified Gram–Schmidt) for stability, and the leaf kernel works on
column-major blocks (a data-layout detail with no numerical effect, noted
for completeness).

The output is an **explicit Q** — downstream band reduction needs
Householder vectors, which :func:`repro.la.reconstruct.reconstruct_wy`
recovers via non-pivoted LU (Algorithm 3 of the paper).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from ..obs import spans as obs
from .qr import householder_qr, qr_explicit

__all__ = ["tsqr"]


def _leaf_qr(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Explicit-Q Householder QR of one leaf block (unblocked)."""
    v_cols, betas, r = householder_qr(block)
    m, n = block.shape
    # Thin Q via backward reflector application to the identity: cheap at
    # leaf sizes, avoids forming the full WY pair.
    q = np.zeros((m, n), dtype=v_cols.dtype)
    idx = np.arange(n)
    q[idx, idx] = 1
    for j in range(n - 1, -1, -1):
        beta = betas[j]
        if beta == 0.0:
            continue
        v = v_cols[j:, j]
        w = v @ q[j:, :]
        q[j:, :] -= np.multiply.outer(v * q.dtype.type(beta), w)
    return q, r


def tsqr(
    a,
    *,
    leaf_rows: int | None = None,
    engine: GemmEngine | None = None,
    tag: str = "tsqr",
    max_threads: int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Tall-skinny QR via a binary reduction tree.

    Parameters
    ----------
    a : array_like, shape (m, n) with m >= n
        The tall matrix to factor.
    leaf_rows : int, optional
        Row count per leaf block.  Defaults to ``max(16 * n, 256)``
        serially and the GPU-style ``max(4 * n, 64)`` when
        ``max_threads > 1`` (see Notes).  Each leaf must have at least
        ``n`` rows; the last leaf absorbs the remainder.
    engine : GemmEngine, optional
        Engine used for the Q back-propagation GEMMs (tagged ``tag``).
    max_threads : int, optional
        Factor the independent leaf blocks on up to this many threads
        (default serial).  The leaves are independent and gathered in
        order, so the result is bitwise identical to the serial path.

    Notes
    -----
    The Q back-propagation GEMMs of each tree level are issued as grouped
    ``gemm_batched`` calls (per operand shape, order-preserving), which
    cuts the per-call precision-conversion overhead of the emulated
    Tensor-Core engines; a batched product is computed slice by slice and
    is bitwise identical to the per-merge GEMM loop.

    Returns
    -------
    q : ndarray, shape (m, n)
        Explicit orthonormal factor.
    r : ndarray, shape (n, n)
        Upper-triangular factor with ``A = Q @ R``.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"tsqr requires a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"tsqr requires m >= n, got shape {a.shape}")
    dtype = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    a = np.ascontiguousarray(a, dtype=dtype)
    eng = engine if engine is not None else PlainEngine()

    if leaf_rows is None:
        # A GPU TSQR wants many small leaves for occupancy (the paper's
        # 4n); this emulation's serial leaf stage is dominated by
        # per-leaf interpreter overhead instead, so default to taller
        # leaves unless the leaves actually run concurrently.  Any
        # leaf_rows >= n is numerically valid — this only moves work
        # between the leaf and tree stages.
        if max_threads is not None and max_threads > 1:
            leaf_rows = max(4 * n, 64)
        else:
            leaf_rows = max(16 * n, 256)
    if leaf_rows < n:
        raise ShapeError(f"leaf_rows={leaf_rows} must be >= n={n}")

    # --- Leaf stage: independent QR of each row block. -------------------
    splits = list(range(0, m, leaf_rows))
    # Merge a too-short trailing leaf into its predecessor.
    if len(splits) > 1 and m - splits[-1] < n:
        splits.pop()
    bounds = [(s, (splits[i + 1] if i + 1 < len(splits) else m)) for i, s in enumerate(splits)]

    with obs.span("tsqr.leaf", leaves=len(bounds), cols=n):
        if max_threads is not None and max_threads > 1 and len(bounds) > 1:
            with ThreadPoolExecutor(
                max_workers=min(int(max_threads), len(bounds)),
                thread_name_prefix="tsqr-leaf",
            ) as pool:
                # wrap_context: worker threads inherit the caller's span
                # path, so leaf GEMMs attribute to the right phase.
                leaves = list(pool.map(
                    obs.wrap_context(lambda lh: _leaf_qr(a[lh[0] : lh[1], :])),
                    bounds,
                ))
        else:
            leaves = [_leaf_qr(a[lo:hi, :]) for lo, hi in bounds]
    q_blocks = [q for q, _ in leaves]
    r_blocks = [r for _, r in leaves]

    # --- Reduction tree: pairwise QR of stacked R factors. ---------------
    # Each level halves the number of active R factors.  The inner Q of a
    # merge is (2n × n); its top/bottom halves update the two children's
    # explicit Q blocks by GEMM — the Tensor-Core-friendly part.
    #
    # q_blocks[i] always maps the i-th surviving R factor's coordinates
    # back to original rows.
    with obs.span("tsqr.tree", leaves=len(r_blocks)):
        while len(r_blocks) > 1:
            pairs = list(range(0, len(r_blocks) - 1, 2))
            halves: list[tuple[np.ndarray, np.ndarray]] = []
            next_r: list[np.ndarray] = []
            jobs: list[tuple[np.ndarray, np.ndarray]] = []
            for i in pairs:
                stacked = np.vstack([r_blocks[i], r_blocks[i + 1]])
                q_inner, r_merged = qr_explicit(stacked, engine=None)
                halves.append((q_inner[:n, :], q_inner[n:, :]))
                next_r.append(r_merged)
            for p, i in enumerate(pairs):
                top, bot = halves[p]
                jobs.append((q_blocks[i], top))
                jobs.append((q_blocks[i + 1], bot))
            outs = _grouped_gemms(eng, jobs, tag)
            next_q = [
                np.vstack([outs[2 * p], outs[2 * p + 1]])
                for p in range(len(pairs))
            ]
            if len(r_blocks) % 2 == 1:
                next_q.append(q_blocks[-1])
                next_r.append(r_blocks[-1])
            q_blocks, r_blocks = next_q, next_r

    return q_blocks[0], r_blocks[0]


def _grouped_gemms(eng, jobs, tag):
    """Run ``[a @ b for a, b in jobs]``, batching same-shape products.

    Groups by left-operand shape (the right operands are all n×n inner-Q
    halves), issues each group of two or more as one ``gemm_batched``
    call, and scatters the slices back in order — bitwise identical to
    the plain loop, one precision-conversion pass per group.
    """
    outs: list = [None] * len(jobs)
    groups: dict = {}
    for idx, (qa, _) in enumerate(jobs):
        groups.setdefault(qa.shape, []).append(idx)
    for idxs in groups.values():
        if len(idxs) == 1:
            qa, qb = jobs[idxs[0]]
            outs[idxs[0]] = eng.gemm(qa, qb, tag=tag)
        else:
            sa = np.stack([jobs[i][0] for i in idxs])
            sb = np.stack([jobs[i][1] for i in idxs])
            res = eng.gemm_batched(sa, sb, tag=tag)
            for slot, i in enumerate(idxs):
                outs[i] = res[slot]
    return outs
