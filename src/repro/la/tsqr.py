"""Tall-Skinny QR (TSQR) with Householder local factorizations.

TSQR (a special case of Communication-Avoiding QR, Demmel et al.) factors a
tall matrix by a binary reduction tree: leaves factor row blocks
independently, and each internal node factors the two stacked R factors of
its children.  The explicit Q is recovered by propagating the small inner
Q factors back down the tree with GEMMs — exactly the shape of work Tensor
Cores accelerate, which is why the paper's TSQR panel beats the
column-at-a-time MAGMA/cuSOLVER panels by ~5x (Figure 8).

Two modifications from the reference GPU implementation are reflected
here (paper §5.1): local factorizations use **Householder reflections**
(not modified Gram–Schmidt) for stability, and the leaf kernel works on
column-major blocks (a data-layout detail with no numerical effect, noted
for completeness).

The output is an **explicit Q** — downstream band reduction needs
Householder vectors, which :func:`repro.la.reconstruct.reconstruct_wy`
recovers via non-pivoted LU (Algorithm 3 of the paper).
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, PlainEngine
from ..obs import spans as obs
from .qr import householder_qr, qr_explicit

__all__ = ["tsqr"]


def _leaf_qr(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Explicit-Q Householder QR of one leaf block (unblocked)."""
    v_cols, betas, r = householder_qr(block)
    m, n = block.shape
    # Thin Q via backward reflector application to the identity: cheap at
    # leaf sizes, avoids forming the full WY pair.
    q = np.zeros((m, n), dtype=v_cols.dtype)
    idx = np.arange(n)
    q[idx, idx] = 1
    for j in range(n - 1, -1, -1):
        beta = betas[j]
        if beta == 0.0:
            continue
        v = v_cols[j:, j]
        w = v @ q[j:, :]
        q[j:, :] -= np.multiply.outer(v * q.dtype.type(beta), w)
    return q, r


def tsqr(
    a,
    *,
    leaf_rows: int | None = None,
    engine: GemmEngine | None = None,
    tag: str = "tsqr",
) -> tuple[np.ndarray, np.ndarray]:
    """Tall-skinny QR via a binary reduction tree.

    Parameters
    ----------
    a : array_like, shape (m, n) with m >= n
        The tall matrix to factor.
    leaf_rows : int, optional
        Row count per leaf block (default ``max(4 * n, 64)``).  Each leaf
        must have at least ``n`` rows; the last leaf absorbs the remainder.
    engine : GemmEngine, optional
        Engine used for the Q back-propagation GEMMs (tagged ``tag``).

    Returns
    -------
    q : ndarray, shape (m, n)
        Explicit orthonormal factor.
    r : ndarray, shape (n, n)
        Upper-triangular factor with ``A = Q @ R``.
    """
    a = np.asarray(a)
    if a.ndim != 2:
        raise ShapeError(f"tsqr requires a 2-D matrix, got shape {a.shape}")
    m, n = a.shape
    if m < n:
        raise ShapeError(f"tsqr requires m >= n, got shape {a.shape}")
    dtype = a.dtype if a.dtype.kind == "f" else np.dtype(np.float64)
    a = np.ascontiguousarray(a, dtype=dtype)
    eng = engine if engine is not None else PlainEngine()

    if leaf_rows is None:
        leaf_rows = max(4 * n, 64)
    if leaf_rows < n:
        raise ShapeError(f"leaf_rows={leaf_rows} must be >= n={n}")

    # --- Leaf stage: independent QR of each row block. -------------------
    splits = list(range(0, m, leaf_rows))
    # Merge a too-short trailing leaf into its predecessor.
    if len(splits) > 1 and m - splits[-1] < n:
        splits.pop()
    bounds = [(s, (splits[i + 1] if i + 1 < len(splits) else m)) for i, s in enumerate(splits)]

    q_blocks: list[np.ndarray] = []
    r_blocks: list[np.ndarray] = []
    with obs.span("tsqr.leaf", leaves=len(bounds), cols=n):
        for lo, hi in bounds:
            q_leaf, r_leaf = _leaf_qr(a[lo:hi, :])
            q_blocks.append(q_leaf)
            r_blocks.append(r_leaf)

    # --- Reduction tree: pairwise QR of stacked R factors. ---------------
    # Each level halves the number of active R factors.  The inner Q of a
    # merge is (2n × n); its top/bottom halves update the two children's
    # explicit Q blocks by GEMM — the Tensor-Core-friendly part.
    #
    # q_blocks[i] always maps the i-th surviving R factor's coordinates
    # back to original rows.
    with obs.span("tsqr.tree", leaves=len(r_blocks)):
        while len(r_blocks) > 1:
            next_q: list[np.ndarray] = []
            next_r: list[np.ndarray] = []
            for i in range(0, len(r_blocks) - 1, 2):
                stacked = np.vstack([r_blocks[i], r_blocks[i + 1]])
                q_inner, r_merged = qr_explicit(stacked, engine=None)
                top, bot = q_inner[:n, :], q_inner[n:, :]
                q_upper = eng.gemm(q_blocks[i], top, tag=tag)
                q_lower = eng.gemm(q_blocks[i + 1], bot, tag=tag)
                next_q.append(np.vstack([q_upper, q_lower]))
                next_r.append(r_merged)
            if len(r_blocks) % 2 == 1:
                next_q.append(q_blocks[-1])
                next_r.append(r_blocks[-1])
            q_blocks, r_blocks = next_q, next_r

    return q_blocks[0], r_blocks[0]
