"""Householder-vector reconstruction from an explicit Q (paper Algorithm 3).

TSQR produces an *explicit* orthonormal ``Q`` (m×n), but the band-reduction
trailing updates need the WY form ``I - W Y^T`` built from genuine
Householder vectors — applying an explicit Q directly is unstable in the
two-sided update chain (paper §5.2).  Ballard et al. (2014) showed how to
recover the vectors from ``Q`` itself:

For a diagonal sign matrix ``S`` matching the sign choices a Householder
QR of ``Q`` would make, ``Q S`` is exactly a product of n reflectors,
``Q S = I - Y T Y^T`` with ``Y`` unit lower trapezoidal and ``T`` upper
triangular.  Rearranging,

    Q - S = -Y T Y_1^T S  =  L @ U,

an LU factorization with ``L = Y`` (unit lower trapezoidal, all m rows) and
``U = -T Y_1^T S`` — *unique and needing no pivoting*.  The sign ``S_jj``
must be chosen **during** the elimination: at step j the partially
eliminated diagonal entry ``q̃_jj`` is the quantity whose sign the
Householder QR would have seen, and ``S_jj = -sign(q̃_jj)`` makes the
pivot ``q̃_jj - S_jj = q̃_jj + sign(q̃_jj)`` at least 1 in magnitude
(this is also why no pivoting is required).  A static sign choice from
``diag(Q)`` is wrong from the second column on and loses half the digits —
the tests pin this down.

After the LU, ``T`` follows from one triangular solve and ``W = Y T``.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import solve_triangular

from ..errors import ShapeError, SingularMatrixError
from ..gemm.engine import GemmEngine, PlainEngine

__all__ = ["reconstruct_wy"]


def _lu_with_signs(q: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Trapezoidal non-pivoting LU of ``Q - S`` with on-the-fly signs.

    Returns ``(y, u, s)`` where ``y`` is the unit lower-trapezoidal L over
    all m rows, ``u`` the n×n upper factor, and ``s`` the chosen sign
    diagonal.
    """
    m, n = q.shape
    work = np.array(q, copy=True)
    s = np.empty(n, dtype=work.dtype)
    for j in range(n):
        d = work[j, j]
        # The Householder QR sign choice: alpha opposite to the transformed
        # diagonal, so the pivot d - s_j = d + sign(d) never cancels.
        s[j] = -1.0 if d >= 0 else 1.0
        work[j, j] = d - s[j]
        piv = work[j, j]
        if piv == 0.0 or not np.isfinite(piv):
            # For an orthonormal Q the sign trick guarantees |piv| >= 1, so
            # a zero or NaN/Inf pivot means the panel's Q is degenerate
            # (rank-deficient or corrupted upstream).  A NaN pivot used to
            # pass the `== 0` check and silently poison W/Y downstream,
            # losing the pivot location entirely.
            raise SingularMatrixError(
                "degenerate pivot reconstructing Householder vectors "
                f"(pivot {piv!r})",
                column=j,
            )
        work[j + 1 :, j] /= piv
        if j + 1 < n:
            work[j + 1 :, j + 1 : n] -= np.multiply.outer(
                work[j + 1 :, j], work[j, j + 1 : n]
            )
    y = np.tril(work[:, :n], k=-1)
    idx = np.arange(n)
    y[idx, idx] = 1
    u = np.triu(work[:n, :n])
    return y, u, s


def reconstruct_wy(
    q,
    *,
    engine: GemmEngine | None = None,
    tag: str = "reconstruct",
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Recover the WY representation from an explicit orthonormal Q.

    Parameters
    ----------
    q : array_like, shape (m, n) with m >= n
        Explicit orthonormal factor (e.g. from :func:`repro.la.tsqr.tsqr`).
    engine : GemmEngine, optional
        Engine for the ``W = Y @ T`` GEMM (tagged ``tag``).

    Returns
    -------
    w, y : ndarrays, shape (m, n)
        WY pair with ``Q @ diag(s) = (I - W Y^T)[:, :n]``.
    s : ndarray, shape (n,)
        The diagonal of the sign matrix ``S`` (entries ±1).  If the panel
        factorization was ``A = Q R``, then ``A = (I - W Y^T)[:, :n] @
        (diag(s) @ R)``.
    """
    q = np.asarray(q)
    if q.ndim != 2:
        raise ShapeError(f"reconstruct_wy requires a 2-D matrix, got shape {q.shape}")
    m, n = q.shape
    if m < n:
        raise ShapeError(f"reconstruct_wy requires m >= n, got shape {q.shape}")
    dtype = q.dtype if q.dtype.kind == "f" else np.dtype(np.float64)
    q = np.asarray(q, dtype=dtype)
    eng = engine if engine is not None else PlainEngine()

    y, u, s = _lu_with_signs(q)

    # U = -T Y_1^T S  =>  T = (-U S) Y_1^{-T}; with V = -U S (scale columns),
    # solve T Y_1^T = V via Y_1 T^T = V^T (unit lower solve).
    v = -(u * s[np.newaxis, :])
    t = solve_triangular(y[:n, :], v.T, lower=True, unit_diagonal=True).T
    w = eng.gemm(y, t, tag=tag)
    return w, y, s
