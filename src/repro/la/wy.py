"""WY-representation accumulation of Householder reflector products.

For reflectors ``H_j = I - beta_j v_j v_j^T`` (j = 1..k) the WY
representation (Bischof & Van Loan 1987) writes the product

    Q = H_1 H_2 ... H_k = I - W Y^T,

with ``Y = [v_1 | ... | v_k]`` and ``W`` built by the recurrence

    W_1 = [beta_1 v_1],
    W_{j} = [W_{j-1} | beta_j v_j - W_{j-1} (Y_{j-1}^T (beta_j v_j))].

(The paper states the recurrence for ``H_k ... H_1``; because each ``H_j``
is symmetric, ``H_k ... H_1 = Q^T = I - Y W^T`` — the same pair (W, Y)
serves both orders, and we fix the convention ``Q = H_1 ... H_k = I - W
Y^T`` throughout the library.)

The compact WY form (Schreiber & Van Loan 1989) stores ``Q = I - Y T Y^T``
with a small k×k upper-triangular ``T``; the two are related by
``W = Y @ T``.

Blocked extension (used by Algorithm 1's inner loop) merges an existing
(W, Y) with a freshly factorized panel's (W_p, Y_p):

    Q_new = Q_old Q_p = I - [W | W_p - W (Y^T W_p)] [Y | Y_p]^T,

costing two GEMMs of shapes (k×m)(m×b) and (m×k)(k×b) — these are the
"form W" operations whose cost Table 2 accounts for.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from ..gemm.engine import GemmEngine, PlainEngine

__all__ = [
    "build_wy",
    "build_compact_wy",
    "extend_wy",
    "wy_matrix",
    "apply_q_left",
    "apply_qt_left",
    "apply_q_right",
    "WYAccumulator",
]


def _check_reflectors(v_cols: np.ndarray, betas: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    v_cols = np.asarray(v_cols)
    betas = np.asarray(betas, dtype=np.float64)
    if v_cols.ndim != 2:
        raise ShapeError(f"V must be 2-D (reflectors in columns), got shape {v_cols.shape}")
    if betas.ndim != 1 or betas.size != v_cols.shape[1]:
        raise ShapeError(
            f"betas must be 1-D with one entry per reflector column: "
            f"V has {v_cols.shape[1]} columns, betas has shape {betas.shape}"
        )
    return v_cols, betas


def build_wy(v_cols, betas) -> tuple[np.ndarray, np.ndarray]:
    """Build (W, Y) with ``H_1 ... H_k = I - W Y^T`` from reflector columns.

    Parameters
    ----------
    v_cols : array_like, shape (m, k)
        Householder vectors in columns (``v_cols[j, j] == 1`` for panel
        factorizations, but any vectors are accepted).
    betas : array_like, shape (k,)
        Reflector coefficients.

    Returns
    -------
    (W, Y) : pair of ndarrays, each (m, k)
    """
    v_cols, betas = _check_reflectors(v_cols, betas)
    dtype = v_cols.dtype if v_cols.dtype.kind == "f" else np.dtype(np.float64)
    m, k = v_cols.shape
    y = np.ascontiguousarray(v_cols, dtype=dtype)
    w = np.empty_like(y)
    w[:, 0] = dtype.type(betas[0]) * y[:, 0]
    for j in range(1, k):
        bv = dtype.type(betas[j]) * y[:, j]
        # w_j = beta v - W_{j-1} (Y_{j-1}^T (beta v))
        w[:, j] = bv - w[:, :j] @ (y[:, :j].T @ bv)
    return w, y


def build_compact_wy(v_cols, betas) -> np.ndarray:
    """Build the compact-WY triangular factor T with ``Q = I - Y T Y^T``.

    Follows LAPACK ``larft`` (forward, columnwise): ``T[j, j] = beta_j`` and
    ``T[:j, j] = -beta_j * T[:j, :j] @ (Y[:, :j]^T v_j)``.
    """
    v_cols, betas = _check_reflectors(v_cols, betas)
    dtype = v_cols.dtype if v_cols.dtype.kind == "f" else np.dtype(np.float64)
    y = np.asarray(v_cols, dtype=dtype)
    k = y.shape[1]
    t = np.zeros((k, k), dtype=dtype)
    for j in range(k):
        bj = dtype.type(betas[j])
        if j > 0:
            t[:j, j] = -bj * (t[:j, :j] @ (y[:, :j].T @ y[:, j]))
        t[j, j] = bj
    return t


def extend_wy(
    w: np.ndarray,
    y: np.ndarray,
    w_p: np.ndarray,
    y_p: np.ndarray,
    *,
    engine: GemmEngine | None = None,
    tag: str = "form_w",
) -> tuple[np.ndarray, np.ndarray]:
    """Merge (W, Y) with a new panel's (W_p, Y_p): ``Q_new = Q_old @ Q_p``.

    All four arguments are (m, ·) matrices over the same row space.  Returns
    the concatenated pair; the correction GEMMs are routed through
    ``engine`` (default: a dtype-neutral plain engine) under ``tag``.
    """
    if w.shape != y.shape or w_p.shape != y_p.shape or w.shape[0] != w_p.shape[0]:
        raise ShapeError(
            f"inconsistent WY shapes: W{w.shape} Y{y.shape} Wp{w_p.shape} Yp{y_p.shape}"
        )
    eng = engine if engine is not None else PlainEngine()
    ytwp = eng.gemm(y, w_p, ta=True, tag=tag)  # (k, b)
    w_new_cols = w_p - eng.gemm(w, ytwp, tag=tag)
    return np.hstack([w, w_new_cols]), np.hstack([y, y_p])


def wy_matrix(w: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Dense ``Q = I - W Y^T`` (testing / small reference use)."""
    if w.shape != y.shape:
        raise ShapeError(f"W and Y must have equal shapes, got {w.shape} and {y.shape}")
    return np.eye(w.shape[0], dtype=w.dtype) - w @ y.T


def apply_q_left(
    a: np.ndarray,
    w: np.ndarray,
    y: np.ndarray,
    *,
    engine: GemmEngine | None = None,
    tag: str = "apply_q",
) -> np.ndarray:
    """Return ``(I - W Y^T) @ A`` using two GEMMs."""
    eng = engine if engine is not None else PlainEngine()
    return a - eng.gemm(w, eng.gemm(y, a, ta=True, tag=tag), tag=tag)


def apply_qt_left(
    a: np.ndarray,
    w: np.ndarray,
    y: np.ndarray,
    *,
    engine: GemmEngine | None = None,
    tag: str = "apply_qt",
) -> np.ndarray:
    """Return ``(I - W Y^T)^T @ A = A - Y (W^T A)`` using two GEMMs."""
    eng = engine if engine is not None else PlainEngine()
    return a - eng.gemm(y, eng.gemm(w, a, ta=True, tag=tag), tag=tag)


def apply_q_right(
    a: np.ndarray,
    w: np.ndarray,
    y: np.ndarray,
    *,
    engine: GemmEngine | None = None,
    tag: str = "apply_q",
) -> np.ndarray:
    """Return ``A @ (I - W Y^T) = A - (A W) Y^T`` using two GEMMs."""
    eng = engine if engine is not None else PlainEngine()
    return a - eng.gemm(eng.gemm(a, w, tag=tag), y, tb=True, tag=tag)


class WYAccumulator:
    """Incrementally accumulated WY pair over a fixed row space.

    Used by the SBR drivers: reflector panels arrive one at a time (each
    embedded into the full trailing row range with leading zeros), and the
    accumulator maintains (W, Y) for the product of everything seen so far.

    Parameters
    ----------
    m : int
        Row dimension of the accumulated W and Y.
    dtype : numpy dtype
        Storage dtype (float32 for TC/SGEMM policies, float64 for FP64).
    engine : GemmEngine, optional
        Engine used for the extension GEMMs.
    """

    def __init__(self, m: int, *, dtype=np.float32, engine: GemmEngine | None = None):
        if m <= 0:
            raise ShapeError(f"row dimension must be positive, got {m}")
        self.m = int(m)
        self.dtype = np.dtype(dtype)
        self.engine = engine if engine is not None else PlainEngine()
        self._w: np.ndarray | None = None
        self._y: np.ndarray | None = None

    @property
    def ncols(self) -> int:
        """Number of accumulated reflector columns."""
        return 0 if self._w is None else self._w.shape[1]

    @property
    def w(self) -> np.ndarray:
        """The accumulated W (empty (m, 0) before any append)."""
        if self._w is None:
            return np.empty((self.m, 0), dtype=self.dtype)
        return self._w

    @property
    def y(self) -> np.ndarray:
        """The accumulated Y (empty (m, 0) before any append)."""
        if self._y is None:
            return np.empty((self.m, 0), dtype=self.dtype)
        return self._y

    def append_block(self, w_p: np.ndarray, y_p: np.ndarray, *, tag: str = "form_w") -> None:
        """Append a panel's (W_p, Y_p), merging with the running product."""
        if w_p.shape != y_p.shape or w_p.shape[0] != self.m:
            raise ShapeError(
                f"panel WY must be ({self.m}, b); got Wp{w_p.shape} Yp{y_p.shape}"
            )
        w_p = np.ascontiguousarray(w_p, dtype=self.dtype)
        y_p = np.ascontiguousarray(y_p, dtype=self.dtype)
        if self._w is None:
            self._w, self._y = w_p.copy(), y_p.copy()
            return
        self._w, self._y = extend_wy(
            self._w, self._y, w_p, y_p, engine=self.engine, tag=tag
        )

    def q_matrix(self) -> np.ndarray:
        """Dense ``I - W Y^T`` of the accumulated product (testing aid)."""
        return wy_matrix(
            self.w if self.ncols else np.zeros((self.m, 1), dtype=self.dtype),
            self.y if self.ncols else np.zeros((self.m, 1), dtype=self.dtype),
        )
