"""Huang–Abraham-style ABFT checksums for checkpointed arrays.

Algorithm-based fault tolerance (Huang & Abraham 1984) augments a matrix
with row/column checksum vectors; any single corrupted entry breaks the
sum of its row *and* its column, localizing the fault.  Here the idea
guards checkpoints *at rest*: at save time the checkpoint records, per
array, the float64 row-sum and column-sum vectors (compressed to a CRC32
of their bytes plus an exact grand total), and at load time the sums are
recomputed from the loaded bytes and compared **exactly**.

Exact comparison is deliberate: the stored array is bit-identical to the
saved one when nothing corrupted it (NumPy summation over the same bytes
is deterministic), so any mismatch is real corruption, and the row/column
split names which axis disagrees.  This is a second, independent layer
under the file-level CRC32: the file checksum catches torn writes; the
ABFT sums catch silent in-payload corruption — a flipped sign, a patched
block — introduced by anything that kept the container consistent (e.g.
a rewritten npz member with a fixed-up file CRC, or in-memory corruption
between compute and serialization).
"""

from __future__ import annotations

import zlib

import numpy as np

from ..errors import CheckpointCorruptionError

__all__ = ["abft_signature", "verify_abft"]


def _sum_vectors(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Float64 row/column sum vectors of an array (1-D: one axis only)."""
    a64 = np.asarray(arr, dtype=np.float64)
    if a64.ndim >= 2:
        # Collapse any leading axes so "row" is axis -2 and "col" axis -1.
        a64 = a64.reshape(-1, a64.shape[-1])
        return a64.sum(axis=1), a64.sum(axis=0)
    flat = a64.ravel()
    return flat, np.asarray([flat.sum()])


def _crc(vec: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(vec, dtype=np.float64).tobytes()) & 0xFFFFFFFF


def abft_signature(arr: np.ndarray) -> dict:
    """Compact ABFT signature of one array (JSON-serializable).

    The full checksum vectors are compressed to their CRC32s; the grand
    total is kept exactly (as a ``float.hex`` string) so a signature
    mismatch can report the magnitude of the disagreement.
    """
    rows, cols = _sum_vectors(np.asarray(arr))
    total = float(np.asarray(arr, dtype=np.float64).sum())
    return {
        "shape": list(np.asarray(arr).shape),
        "dtype": str(np.asarray(arr).dtype),
        "row_crc": _crc(rows),
        "col_crc": _crc(cols),
        "total": total.hex(),
    }


def verify_abft(name: str, arr: np.ndarray, sig: dict, *,
                path: str | None = None) -> None:
    """Check a loaded array against its stored signature.

    Raises
    ------
    CheckpointCorruptionError
        With ``field`` naming the array and the failing check
        (``"abft:<name>.shape"`` / ``.dtype`` / ``.row`` / ``.col`` /
        ``.total``), so the caller sees *where* the checkpoint lied.
    """
    arr = np.asarray(arr)
    if list(arr.shape) != list(sig.get("shape", [])):
        raise CheckpointCorruptionError(
            f"array {name!r} has shape {list(arr.shape)}, "
            f"checkpoint recorded {sig.get('shape')}",
            path=path, field=f"abft:{name}.shape", reason="abft",
        )
    if str(arr.dtype) != sig.get("dtype"):
        raise CheckpointCorruptionError(
            f"array {name!r} has dtype {arr.dtype}, "
            f"checkpoint recorded {sig.get('dtype')}",
            path=path, field=f"abft:{name}.dtype", reason="abft",
        )
    rows, cols = _sum_vectors(arr)
    if _crc(rows) != sig.get("row_crc"):
        raise CheckpointCorruptionError(
            f"array {name!r} failed its ABFT row-checksum "
            f"(silent corruption in the stored payload)",
            path=path, field=f"abft:{name}.row", reason="abft",
        )
    if _crc(cols) != sig.get("col_crc"):
        raise CheckpointCorruptionError(
            f"array {name!r} failed its ABFT column-checksum",
            path=path, field=f"abft:{name}.col", reason="abft",
        )
    stored = sig.get("total")
    if stored is not None:
        total = float(np.asarray(arr, dtype=np.float64).sum())
        if total.hex() != stored:
            raise CheckpointCorruptionError(
                f"array {name!r} grand total {total!r} disagrees with the "
                f"checkpointed total {float.fromhex(stored)!r}",
                path=path, field=f"abft:{name}.total", reason="abft",
            )
