"""Huang–Abraham ABFT checksums for checkpointed arrays (re-export).

The checksum implementation moved to :mod:`repro.resilience.abft` when
the same row/column encoding started guarding the *live* GEMM stream
(online ABFT): one sum-vector/CRC implementation now serves both the
at-rest signatures here and the in-flight launch verification.  This
module remains the stable import path for checkpoint code and existing
callers.
"""

from __future__ import annotations

from ..resilience.abft import (  # noqa: F401 (re-exports)
    abft_signature,
    checksum_crc,
    sum_vectors,
    verify_abft,
)

# Backward-compatible aliases of the pre-promotion private helpers.
_sum_vectors = sum_vectors
_crc = checksum_crc

__all__ = ["abft_signature", "verify_abft", "sum_vectors", "checksum_crc"]
