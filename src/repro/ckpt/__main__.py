"""CLI for the checkpoint subsystem: run, resume, list, verify.

::

    python -m repro.ckpt run --run-dir runs/job --n 96 --b 8
    python -m repro.ckpt run --run-dir runs/job --kill-at 'ckpt.save.sbr_panel.post:2'
    python -m repro.ckpt resume runs/job
    python -m repro.ckpt list runs/job
    python -m repro.ckpt verify runs/job

``run`` executes a deterministic seeded ``syevd_2stage`` under
checkpointing and prints the result digest; pointing it at a directory
holding an earlier interrupted run resumes it (the run header pins the
configuration and the input digest, so mismatched re-runs are refused).
``--kill-at SITE[:CALL_INDEX[:KIND]]`` arms the crash injector
(``--hard`` makes kills terminate the process with exit code 137, like a
real SIGKILL) — the harness the CI crash-recovery job and the recovery
tests drive.  ``verify`` integrity-checks every checkpoint (CRC + ABFT)
without loading the run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..errors import CheckpointCorruptionError, ConfigurationError, SimulatedCrashError
from ..ioutils import sigterm_as_interrupt
from ..resilience.crash import CrashInjector, parse_kill_site
from .store import CheckpointConfig, CheckpointManager


def _crash_from_args(args) -> "CrashInjector | None":
    specs = [parse_kill_site(text) for text in (args.kill_at or [])]
    if not specs:
        return None
    return CrashInjector(specs, hard=args.hard)


def _test_matrix(n: int, seed: int):
    import numpy as np

    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    return (m + m.T) / 2.0


def _print_result(res) -> None:
    from .driver import result_digest

    rep = res.checkpoint_report
    if rep is not None and rep.resumed_from:
        print(f"resumed from {rep.resumed_from}")
    print(f"eigenvalues: {res.eigenvalues.size}  "
          f"[{res.eigenvalues[0]:+.6e} .. {res.eigenvalues[-1]:+.6e}]")
    print(f"digest: {result_digest(res)}")
    if rep is not None:
        print(rep.summary())


def _cmd_run(args) -> int:
    from ..eig.driver import syevd_2stage

    cfg = CheckpointConfig(
        run_dir=args.run_dir, every=args.every,
        strict=not args.no_strict, crash=_crash_from_args(args),
    )
    a = _test_matrix(args.n, args.seed)
    try:
        with sigterm_as_interrupt():
            res = syevd_2stage(
                a, b=args.b, nb=args.nb, method=args.method,
                precision=args.precision, want_vectors=not args.no_vectors,
                tridiag_solver=args.solver, checkpoint=cfg,
            )
    except KeyboardInterrupt:
        print("interrupted; checkpoint flushed, resume with "
              f"'python -m repro.ckpt resume {args.run_dir}'", file=sys.stderr)
        return 130
    except SimulatedCrashError as exc:
        print(f"crashed (simulated): {exc}", file=sys.stderr)
        return CrashInjector.HARD_EXIT_CODE
    _print_result(res)
    return 0


def _cmd_resume(args) -> int:
    from .driver import resume

    try:
        with sigterm_as_interrupt():
            res = resume(
                args.run_dir, strict=not args.no_strict,
                crash=_crash_from_args(args),
            )
    except KeyboardInterrupt:
        print("interrupted; checkpoint flushed, resume again with "
              f"'python -m repro.ckpt resume {args.run_dir}'", file=sys.stderr)
        return 130
    except SimulatedCrashError as exc:
        print(f"crashed (simulated): {exc}", file=sys.stderr)
        return CrashInjector.HARD_EXIT_CODE
    except CheckpointCorruptionError as exc:
        print(f"corrupt checkpoint: {exc}", file=sys.stderr)
        return 2
    _print_result(res)
    return 0


def _cmd_list(args) -> int:
    mgr = CheckpointManager(CheckpointConfig(run_dir=args.run_dir))
    entries = mgr.list()
    if not entries:
        print(f"no checkpoints under {args.run_dir}")
        return 0
    for seq, step, meta_path in entries:
        arrays_path = meta_path[: -len(".json")] + ".npz"
        try:
            size = os.path.getsize(arrays_path)
        except OSError:
            size = 0
        print(f"{seq:6d}  {step:<10s}  {size:>12d} B  {os.path.basename(meta_path)}")
    return 0


def _cmd_verify(args) -> int:
    mgr = CheckpointManager(CheckpointConfig(run_dir=args.run_dir))
    failures: list[dict] = []
    try:
        mgr.input_matrix()
        print("input.npz: ok")
    except CheckpointCorruptionError as exc:
        failures.append(exc.to_dict())
        print(f"input.npz: CORRUPT ({exc})")
    for seq, step, meta_path in mgr.list():
        name = os.path.basename(meta_path)
        try:
            mgr.load_path(meta_path)
            print(f"{name}: ok")
        except CheckpointCorruptionError as exc:
            failures.append(exc.to_dict())
            print(f"{name}: CORRUPT ({exc})")
    if args.json:
        print(json.dumps({"failures": failures}, indent=1))
    return 1 if failures else 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description="Durable checkpoint/restart for EVD runs.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _add_crash_opts(p):
        p.add_argument(
            "--kill-at", action="append", metavar="SITE[:IDX[:KIND]]",
            help="arm a crash at a save site, e.g. 'ckpt.save.band.post' or "
                 "'ckpt.save.sbr_panel.post:2:torn_write' (repeatable)",
        )
        p.add_argument(
            "--hard", action="store_true",
            help="kills use os._exit(137) instead of raising (real-SIGKILL mode)",
        )
        p.add_argument(
            "--no-strict", action="store_true",
            help="skip corrupt checkpoints (fall back to older ones) instead of raising",
        )

    p_run = sub.add_parser("run", help="run a seeded syevd_2stage under checkpointing")
    p_run.add_argument("--run-dir", required=True)
    p_run.add_argument("--n", type=int, default=96)
    p_run.add_argument("--b", type=int, default=8)
    p_run.add_argument("--nb", type=int, default=None)
    p_run.add_argument("--method", choices=("wy", "zy"), default="wy")
    p_run.add_argument("--precision", default="fp32")
    p_run.add_argument("--solver", choices=("dc", "ql", "bisect"), default="dc")
    p_run.add_argument("--no-vectors", action="store_true")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--every", type=int, default=1,
                       help="checkpoint every N-th SBR panel")
    _add_crash_opts(p_run)
    p_run.set_defaults(func=_cmd_run)

    p_res = sub.add_parser("resume", help="resume an interrupted run directory")
    p_res.add_argument("run_dir")
    _add_crash_opts(p_res)
    p_res.set_defaults(func=_cmd_resume)

    p_list = sub.add_parser("list", help="list committed checkpoints")
    p_list.add_argument("run_dir")
    p_list.set_defaults(func=_cmd_list)

    p_ver = sub.add_parser("verify", help="integrity-check every checkpoint")
    p_ver.add_argument("run_dir")
    p_ver.add_argument("--json", action="store_true")
    p_ver.set_defaults(func=_cmd_verify)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ConfigurationError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
