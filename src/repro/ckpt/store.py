"""Durable checkpoint store: versioned, checksummed, atomically committed.

One :class:`CheckpointManager` owns one *run directory* — the durable
identity of a long EVD run.  The directory is fully self-contained: the
input matrix, the run configuration, and a sequence of checkpoints, so a
crashed or preempted process can be resumed by any later process from the
directory alone (``python -m repro.ckpt resume <run_dir>``).

Layout::

    <run_dir>/
      run.json                    run header: schema, config, input digest
      input.npz                   the input matrix (array "a")
      ckpt-<seq>-<step>.npz       checkpoint payload (NumPy arrays, exact bits)
      ckpt-<seq>-<step>.json      commit record: schema, step, scalars,
                                  payload CRC32, per-array ABFT signatures

Commit protocol (crash-safe ordering):

1. the ``.npz`` payload is written via tempfile + ``os.replace``;
2. the ``.json`` commit record — containing the payload's CRC32 — is
   written the same way, *after* the payload is durable.

A checkpoint exists only once its commit record does; a crash between the
two steps leaves an orphan payload the loader ignores.  At load time the
payload CRC and the Huang–Abraham ABFT row/column checksums
(:mod:`repro.ckpt.abft`) are verified, so torn writes and silent
corruption surface as a structured
:class:`~repro.errors.CheckpointCorruptionError` naming the file and
field — never as wrong numbers in a resumed run.

Steps written by the drivers, in pipeline order: ``sbr_panel`` (many, one
per panel iteration — pruned to the most recent few), then the phase
boundaries ``band``, ``tridiag``, ``trieig``, ``result`` (kept forever).
"""

from __future__ import annotations

import io
import json
import os
import re
import time
from dataclasses import dataclass, field

import numpy as np

from ..errors import (
    CheckpointCorruptionError,
    CheckpointSchemaError,
    ConfigurationError,
)
from ..ioutils import atomic_write_bytes, atomic_write_json, file_crc32, sweep_orphans
from ..obs import spans as obs
from ..obs.live import registry as _live
from .abft import abft_signature, verify_abft

__all__ = [
    "CKPT_SCHEMA_VERSION",
    "PHASE_STEPS",
    "CheckpointConfig",
    "Checkpoint",
    "CheckpointReport",
    "CheckpointManager",
    "resilience_snapshot",
    "restore_resilience",
]

CKPT_SCHEMA_VERSION = 1

#: Phase-boundary steps, in pipeline order.  ``sbr_panel`` checkpoints
#: precede all of them and are pruned once ``band`` lands.
PHASE_STEPS = ("band", "tridiag", "trieig", "result")

_CKPT_RE = re.compile(r"^ckpt-(\d{6})-([a-z0-9_]+)\.json$")


@dataclass(frozen=True)
class CheckpointConfig:
    """How (and where) a run checkpoints itself.

    Parameters
    ----------
    run_dir : str
        The run directory (created on first use).
    every : int
        Checkpoint every ``every``-th SBR panel (1 = every panel).  Phase
        boundaries always checkpoint.
    abft : bool
        Record/verify ABFT row+column checksums per array (cheap at
        library scale; disable only for throughput experiments).
    keep_panels : int
        ``sbr_panel`` checkpoints retained (older ones are pruned after
        each save; phase checkpoints are never pruned).
    strict : bool
        Load behavior: raise on a corrupt checkpoint (True, the default —
        corruption should be *seen*) or skip it and fall back to the
        newest older valid checkpoint (False).
    crash : object, optional
        A :class:`repro.resilience.crash.CrashInjector` fired around every
        save (test/CI harness; never serialized into ``run.json``).
    trace : dict, optional
        A serialized :class:`repro.obs.tracing.TraceContext` persisted as
        its *own* run-header key (never part of the pinned ``config``, so
        resuming an old or trace-less directory still validates) — this
        is what lets a served job killed here continue the same trace
        when a later process resumes the directory.
    """

    run_dir: str
    every: int = 1
    abft: bool = True
    keep_panels: int = 2
    strict: bool = True
    crash: object | None = None
    trace: dict | None = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ConfigurationError(f"every must be >= 1, got {self.every}")
        if self.keep_panels < 1:
            raise ConfigurationError(
                f"keep_panels must be >= 1, got {self.keep_panels}"
            )


@dataclass
class Checkpoint:
    """One loaded-and-verified checkpoint."""

    step: str
    seq: int
    arrays: dict
    scalars: dict
    path: str

    @property
    def name(self) -> str:
        return f"ckpt-{self.seq:06d}-{self.step}"


@dataclass
class CheckpointReport:
    """What the checkpoint layer did during one run (for the manifest)."""

    run_dir: str = ""
    saves: int = 0
    loads: int = 0
    bytes_written: int = 0
    pruned: int = 0
    resumed_from: str | None = None
    skipped_corrupt: list = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "run_dir": self.run_dir,
            "saves": self.saves,
            "loads": self.loads,
            "bytes_written": self.bytes_written,
            "pruned": self.pruned,
            "resumed_from": self.resumed_from,
            "skipped_corrupt": list(self.skipped_corrupt),
        }

    def summary(self) -> str:
        """One-line human summary for logs."""
        parts = [f"{self.saves} checkpoint(s) written ({self.bytes_written} B)"]
        if self.resumed_from:
            parts.append(f"resumed from {self.resumed_from}")
        if self.skipped_corrupt:
            parts.append(f"{len(self.skipped_corrupt)} corrupt skipped")
        return "checkpoint: " + ", ".join(parts)


class CheckpointManager:
    """Owns one run directory: writes, verifies, lists, prunes, loads."""

    def __init__(self, config: CheckpointConfig) -> None:
        self.config = config
        self.run_dir = config.run_dir
        self.report = CheckpointReport(run_dir=config.run_dir)
        self._next_seq: int | None = None

    # -- run header ----------------------------------------------------------
    @property
    def run_path(self) -> str:
        return os.path.join(self.run_dir, "run.json")

    @property
    def input_path(self) -> str:
        return os.path.join(self.run_dir, "input.npz")

    def begin(self, a: np.ndarray, config: dict) -> None:
        """Open the run directory: create it, or validate it matches.

        A fresh directory gets the input matrix and the run header.  An
        existing directory (the resume case) is validated: the header
        schema must be supported and the stored configuration and input
        digest must match what the caller is about to run — resuming a
        directory under a *different* problem is refused up front.
        """
        os.makedirs(self.run_dir, exist_ok=True)
        swept = sweep_orphans(self.run_dir)
        if swept:
            self.report.pruned += len(swept)
        a = np.asarray(a)
        if os.path.exists(self.run_path):
            header = self._load_run_header()
            stored = header.get("config", {})
            if stored != config:
                raise ConfigurationError(
                    f"run directory {self.run_dir!r} was created with config "
                    f"{stored}, which differs from the requested {config}; "
                    f"resume with the stored config or use a fresh directory"
                )
            sig = header.get("input_abft")
            if sig is not None:
                verify_abft("input", a, sig, path=self.input_path)
            return
        payload = _arrays_payload({"a": a})
        atomic_write_bytes(self.input_path, payload)
        header = {
            "kind": "ckpt_run",
            "schema": CKPT_SCHEMA_VERSION,
            "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
            "config": config,
            "input_crc": file_crc32(self.input_path),
            "input_abft": abft_signature(a),
        }
        if self.config.trace is not None:
            # Separate header key, outside the pinned config: the causal
            # identity of the request this run belongs to.
            header["trace"] = dict(self.config.trace)
        atomic_write_json(self.run_path, header, indent=1)

    def trace(self) -> "dict | None":
        """The serialized trace context persisted in the run header.

        None for directories created without one (pre-tracing runs stay
        resumable) or not yet begun.
        """
        if not os.path.exists(self.run_path):
            return self.config.trace
        return self._load_run_header().get("trace")

    def _load_run_header(self) -> dict:
        try:
            with open(self.run_path) as fh:
                header = json.load(fh)
        except FileNotFoundError:
            raise CheckpointCorruptionError(
                f"run directory {self.run_dir!r} has no run.json header",
                path=self.run_path, reason="missing",
            ) from None
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptionError(
                f"run header is not valid JSON: {exc}",
                path=self.run_path, reason="parse",
            ) from None
        schema = header.get("schema")
        if schema != CKPT_SCHEMA_VERSION:
            raise CheckpointSchemaError(
                f"run header schema {schema!r} is not the supported "
                f"version {CKPT_SCHEMA_VERSION}",
                path=self.run_path, field="schema", reason="schema",
            )
        return header

    def run_config(self) -> dict:
        """The driver configuration stored in the run header."""
        return dict(self._load_run_header().get("config", {}))

    def input_matrix(self) -> np.ndarray:
        """Load and integrity-check the stored input matrix."""
        header = self._load_run_header()
        crc = header.get("input_crc")
        if crc is not None and file_crc32(self.input_path) != crc:
            raise CheckpointCorruptionError(
                "stored input matrix failed its payload CRC",
                path=self.input_path, field="crc", reason="crc",
            )
        arrays = _load_npz(self.input_path)
        a = arrays.get("a")
        if a is None:
            raise CheckpointCorruptionError(
                "input payload has no array 'a'",
                path=self.input_path, field="a", reason="missing",
            )
        sig = header.get("input_abft")
        if sig is not None:
            verify_abft("input", a, sig, path=self.input_path)
        self.report.loads += 1
        return a

    # -- save ----------------------------------------------------------------
    def should_save_panel(self, panel_index: int) -> bool:
        """Whether this SBR panel index is a checkpointing one."""
        return panel_index % self.config.every == 0

    def _seq(self) -> int:
        if self._next_seq is None:
            top = 0
            for seq, _step, _p in self._list_raw():
                top = max(top, seq + 1)
            self._next_seq = top
        seq = self._next_seq
        self._next_seq = seq + 1
        return seq

    def save(self, step: str, arrays: "dict | None" = None,
             scalars: "dict | None" = None) -> str:
        """Commit one checkpoint; returns the commit-record path.

        Crash-injection sites ``ckpt.save.<step>.pre`` and
        ``ckpt.save.<step>.post`` fire around the commit (no-ops without
        an injector).
        """
        arrays = {k: np.asarray(v) for k, v in (arrays or {}).items() if v is not None}
        scalars = dict(scalars or {})
        crash = self.config.crash
        if crash is not None:
            crash.fire(f"ckpt.save.{step}.pre")
        seq = self._seq()
        base = os.path.join(self.run_dir, f"ckpt-{seq:06d}-{step}")
        arrays_path, meta_path = base + ".npz", base + ".json"
        with obs.span("ckpt.save", step=step, seq=seq):
            payload = _arrays_payload(arrays)
            atomic_write_bytes(arrays_path, payload)
            meta = {
                "kind": "ckpt",
                "schema": CKPT_SCHEMA_VERSION,
                "step": step,
                "seq": seq,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
                "scalars": scalars,
                "crc": file_crc32(arrays_path),
                "arrays": sorted(arrays),
            }
            if self.config.abft:
                meta["abft"] = {k: abft_signature(v) for k, v in arrays.items()}
            atomic_write_json(meta_path, meta, indent=1)
            self.report.saves += 1
            self.report.bytes_written += len(payload)
            obs.counter("bytes", len(payload))
            _live.inc("repro_ckpt_saves_total", step=step)
            _live.inc("repro_ckpt_bytes_total", float(len(payload)))
        if step == "sbr_panel":
            self.prune("sbr_panel", keep=self.config.keep_panels)
        if crash is not None:
            crash.fire(
                f"ckpt.save.{step}.post",
                paths={"arrays": arrays_path, "meta": meta_path},
            )
        return meta_path

    # -- load ----------------------------------------------------------------
    def _list_raw(self) -> list[tuple[int, str, str]]:
        """All committed checkpoints as (seq, step, meta_path), ascending."""
        out: list[tuple[int, str, str]] = []
        if not os.path.isdir(self.run_dir):
            return out
        for name in os.listdir(self.run_dir):
            m = _CKPT_RE.match(name)
            if m:
                out.append((int(m.group(1)), m.group(2), os.path.join(self.run_dir, name)))
        out.sort()
        return out

    def list(self) -> list[tuple[int, str, str]]:
        """Committed checkpoints as (seq, step, meta_path), ascending."""
        return self._list_raw()

    def load_path(self, meta_path: str) -> Checkpoint:
        """Load one checkpoint by commit-record path, verifying integrity.

        Raises
        ------
        CheckpointCorruptionError / CheckpointSchemaError
            Torn or checksum-violating payloads, unparsable or missing
            commit records, unsupported schema versions.
        """
        with obs.span("ckpt.load", path=os.path.basename(meta_path)):
            try:
                with open(meta_path) as fh:
                    meta = json.load(fh)
            except FileNotFoundError:
                raise CheckpointCorruptionError(
                    "checkpoint commit record is missing",
                    path=meta_path, reason="missing",
                ) from None
            except json.JSONDecodeError as exc:
                raise CheckpointCorruptionError(
                    f"checkpoint commit record is not valid JSON (torn write?): {exc}",
                    path=meta_path, reason="parse",
                ) from None
            schema = meta.get("schema")
            if schema != CKPT_SCHEMA_VERSION:
                raise CheckpointSchemaError(
                    f"checkpoint schema {schema!r} is not the supported "
                    f"version {CKPT_SCHEMA_VERSION}; re-run instead of resuming",
                    path=meta_path, field="schema", reason="schema",
                )
            arrays_path = meta_path[: -len(".json")] + ".npz"
            crc = meta.get("crc")
            if crc is None:
                raise CheckpointCorruptionError(
                    "checkpoint commit record carries no payload CRC",
                    path=meta_path, field="crc", reason="parse",
                )
            try:
                actual = file_crc32(arrays_path)
            except FileNotFoundError:
                raise CheckpointCorruptionError(
                    "checkpoint payload file is missing",
                    path=arrays_path, reason="missing",
                ) from None
            if actual != crc:
                raise CheckpointCorruptionError(
                    f"checkpoint payload failed its CRC32 "
                    f"(stored {crc}, actual {actual}; torn write or bit rot)",
                    path=arrays_path, field="crc", reason="torn",
                )
            arrays = _load_npz(arrays_path)
            expected = meta.get("arrays")
            if expected is not None and sorted(arrays) != list(expected):
                raise CheckpointCorruptionError(
                    f"payload arrays {sorted(arrays)} disagree with the "
                    f"commit record's {list(expected)}",
                    path=arrays_path, field="arrays", reason="abft",
                )
            for name, sig in (meta.get("abft") or {}).items():
                if name not in arrays:
                    raise CheckpointCorruptionError(
                        f"commit record signs array {name!r} absent from the payload",
                        path=arrays_path, field=f"abft:{name}", reason="missing",
                    )
                verify_abft(name, arrays[name], sig, path=arrays_path)
            self.report.loads += 1
            return Checkpoint(
                step=meta.get("step", ""),
                seq=int(meta.get("seq", -1)),
                arrays=arrays,
                scalars=dict(meta.get("scalars", {})),
                path=meta_path,
            )

    def latest(self, steps: "tuple[str, ...] | None" = None) -> "Checkpoint | None":
        """Newest verified checkpoint (optionally restricted to steps).

        ``strict`` (from the config) decides what a corrupt candidate
        does: raise (default), or get recorded in the report's
        ``skipped_corrupt`` and skipped in favor of the next-older one.
        """
        candidates = [
            (seq, step, p) for seq, step, p in self._list_raw()
            if steps is None or step in steps
        ]
        for _seq, _step, meta_path in reversed(candidates):
            try:
                return self.load_path(meta_path)
            except CheckpointCorruptionError as exc:
                if self.config.strict:
                    raise
                self.report.skipped_corrupt.append(
                    {"path": meta_path, "error": str(exc)}
                )
        return None

    def phase(self, step: str) -> "Checkpoint | None":
        """Newest verified checkpoint of one named step."""
        return self.latest(steps=(step,))

    # -- maintenance ---------------------------------------------------------
    def prune(self, step: str, *, keep: int = 0) -> int:
        """Drop all but the newest ``keep`` checkpoints of one step."""
        items = [(seq, p) for seq, s, p in self._list_raw() if s == step]
        victims = items if keep == 0 else items[:-keep]
        removed = 0
        for _seq, meta_path in victims:
            for path in (meta_path, meta_path[: -len(".json")] + ".npz"):
                try:
                    os.unlink(path)
                except OSError:
                    continue
            removed += 1
        self.report.pruned += removed
        return removed

    def mark_resumed(self, ck: Checkpoint) -> None:
        """Record the restart point in the report (and as an obs span)."""
        self.report.resumed_from = ck.name
        with obs.span("ckpt.resume", checkpoint=ck.name, step=ck.step):
            pass


# -- payload helpers ----------------------------------------------------------

def _arrays_payload(arrays: dict) -> bytes:
    """Serialize an array dict to npz bytes (uncompressed, exact bits)."""
    buf = io.BytesIO()
    np.savez(buf, **arrays)
    return buf.getvalue()


def _load_npz(path: str) -> dict:
    try:
        with np.load(path, allow_pickle=False) as npz:
            return {k: npz[k] for k in npz.files}
    except (OSError, ValueError, EOFError) as exc:
        raise CheckpointCorruptionError(
            f"checkpoint payload is unreadable (torn write?): {exc}",
            path=path, reason="torn",
        ) from None


# -- resilience-state capture --------------------------------------------------

def resilience_snapshot(ctx, engine) -> "dict | None":
    """Serializable snapshot of the resilience-ladder position.

    Captures the per-run report (detections/escalations/retries so far)
    and, when the engine is a
    :class:`~repro.resilience.context.ResilientEngine`, the precision it
    is currently escalated to — so a resumed run continues at the same
    rung instead of re-failing its way up the ladder.
    """
    if ctx is None:
        return None
    snap: dict = {"report": ctx.report.to_dict()}
    base = getattr(engine, "base", None)
    if base is not None:
        snap["base_precision"] = base.precision.value
        snap["current_precision"] = engine.precision.value
    return snap


def restore_resilience(ctx, engine, snap: "dict | None") -> None:
    """Re-arm a fresh context/engine from a checkpointed snapshot."""
    if ctx is None or not snap:
        return
    from ..precision.modes import Precision
    from ..resilience.policy import ResilienceReport

    report = snap.get("report")
    if report:
        ctx.report = ResilienceReport.from_dict(report)
    current = snap.get("current_precision")
    base = getattr(engine, "base", None)
    if base is not None and current and current != base.precision.value:
        engine.escalate_to(Precision(current))
