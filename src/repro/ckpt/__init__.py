"""repro.ckpt — durable checkpoint/restart for long EVD runs.

A long two-stage eigendecomposition — at the paper's scale, hours of
Tensor-Core band reduction — must survive preemption, OOM-kills, and
power loss without restarting from scratch.  This package makes the
drivers *resumable*:

- :mod:`repro.ckpt.store` — the versioned, CRC- and ABFT-checksummed,
  atomically committed checkpoint files under one run directory
  (:class:`CheckpointConfig` / :class:`CheckpointManager`).
- :mod:`repro.ckpt.abft` — Huang–Abraham row/column checksum signatures
  guarding checkpointed matrices against silent corruption at rest.
- :mod:`repro.ckpt.driver` — :func:`resume`: reconstruct a run from its
  directory alone and continue it to the same result the uninterrupted
  run would have produced (bitwise-identical per precision mode — every
  stage is deterministic, so a restored bit-exact state replays
  bit-exactly).

Library use::

    from repro import syevd_2stage
    from repro.ckpt import CheckpointConfig, resume

    res = syevd_2stage(a, b=8, checkpoint=CheckpointConfig("runs/job-17"))
    # ... process dies mid-run; later, any process:
    res = resume("runs/job-17")

CLI::

    python -m repro.ckpt run --n 96 --run-dir runs/job-17
    python -m repro.ckpt resume runs/job-17
    python -m repro.ckpt list runs/job-17
    python -m repro.ckpt verify runs/job-17

Crash-fault injection (:class:`repro.resilience.crash.CrashInjector`)
drives the recovery tests: kills at named save sites, torn writes, and
stale-schema corruption, each of which must surface as a structured
:class:`~repro.errors.CheckpointCorruptionError` — never as silently
wrong numbers.
"""

from .abft import abft_signature, verify_abft
from .store import (
    CKPT_SCHEMA_VERSION,
    PHASE_STEPS,
    Checkpoint,
    CheckpointConfig,
    CheckpointManager,
    CheckpointReport,
    resilience_snapshot,
    restore_resilience,
)
from .driver import resume, result_digest

__all__ = [
    "CKPT_SCHEMA_VERSION",
    "PHASE_STEPS",
    "Checkpoint",
    "CheckpointConfig",
    "CheckpointManager",
    "CheckpointReport",
    "abft_signature",
    "verify_abft",
    "resilience_snapshot",
    "restore_resilience",
    "resume",
    "result_digest",
]
