"""Resume a checkpointed EVD run from its directory alone.

:func:`resume` is the recovery half of the checkpoint subsystem: given a
run directory written by ``syevd_2stage(..., checkpoint=...)``, it
re-reads the run header (driver configuration + input-matrix digest),
integrity-checks and loads the input, and re-enters the driver with the
same :class:`~repro.ckpt.store.CheckpointManager` — the driver then skips
every phase that already has a verified checkpoint and continues from
the furthest restart point (possibly mid-SBR, mid-big-block).

Because every stage of the pipeline is deterministic (NumPy arithmetic
over bit-exact restored state; no randomized algorithms on this path),
the resumed run reaches a **bitwise-identical** result to the run that
was never interrupted, at every precision mode.  :func:`result_digest`
is the equality witness the tests and the CI crash-recovery job compare.
"""

from __future__ import annotations

import hashlib

import numpy as np

from .store import CheckpointConfig, CheckpointManager

__all__ = ["resume", "result_digest"]

#: run-header config keys forwarded verbatim into ``syevd_2stage``.
_FORWARDED = (
    "b", "nb", "method", "precision", "panel",
    "want_vectors", "tridiag_solver", "on_breakdown",
)


def resume(
    run_dir: str,
    *,
    strict: bool = True,
    crash=None,
    record_trace: bool = False,
    every: int = 1,
    keep_panels: int = 2,
    **overrides,
):
    """Continue an interrupted ``syevd_2stage`` run to completion.

    Parameters
    ----------
    run_dir : str
        A run directory previously created via
        ``syevd_2stage(..., checkpoint=CheckpointConfig(run_dir))``.
    strict : bool
        ``True`` (default): a corrupt checkpoint raises
        :class:`~repro.errors.CheckpointCorruptionError`.  ``False``:
        corrupt checkpoints are recorded in the report and the resume
        falls back to the newest older valid one.
    crash : CrashInjector, optional
        Crash-fault injection for the *resumed* run (recovery tests kill
        a run more than once).
    record_trace : bool
        Record the stage-1 GEMM stream on the resumed run's engine.
    every, keep_panels : int
        Checkpoint cadence for the continuation (see
        :class:`~repro.ckpt.store.CheckpointConfig`).
    **overrides
        Extra keyword arguments forwarded to ``syevd_2stage`` for the
        continuation — run-environment knobs only (``faults=``,
        ``metrics=``, ``live=``, ``workspace=``, ``check_input=``, ...).
        Arguments pinned in the stored run config (``b``, ``precision``,
        ``method``, ...) cannot be overridden: the checkpoint store
        validates config equality on ``begin`` and raises
        :class:`~repro.errors.ConfigurationError` on a mismatch, since
        changing them would break bitwise-identical resume.

    Returns
    -------
    EvdResult
        With ``checkpoint_report.resumed_from`` naming the restart point
        (``None`` if the directory already held a complete result).
    """
    from ..eig.driver import syevd_2stage  # deferred: driver imports this package

    mgr = CheckpointManager(CheckpointConfig(
        run_dir=run_dir, strict=strict, crash=crash,
        every=every, keep_panels=keep_panels,
    ))
    config = mgr.run_config()
    # Rehydrate the request's causal identity: a run dir written on
    # behalf of a traced job carries its TraceContext in the header, and
    # the continuation must join the same trace (not mint a new one).
    stored_trace = mgr.trace()
    if stored_trace is not None and "trace" not in overrides:
        overrides["trace"] = stored_trace
    if config.get("driver") != "syevd_2stage":
        from ..errors import ConfigurationError
        raise ConfigurationError(
            f"run directory {run_dir!r} was written by driver "
            f"{config.get('driver')!r}; resume supports 'syevd_2stage'"
        )
    a = mgr.input_matrix()
    kwargs = {k: config[k] for k in _FORWARDED if k in config}
    clash = set(kwargs) & set(overrides)
    if clash:
        from ..errors import ConfigurationError
        raise ConfigurationError(
            f"cannot override pinned run config on resume: {sorted(clash)}"
        )
    kwargs.update(overrides)
    return syevd_2stage(a, checkpoint=mgr, record_trace=record_trace, **kwargs)


def result_digest(result) -> str:
    """SHA-256 over the result's exact bytes (eigenvalues + vectors).

    The pipeline is deterministic end to end, so an uninterrupted run and
    a crash-resumed run of the same problem must produce the *same
    digest* — the property the recovery tests and the CI crash-recovery
    job assert.
    """
    h = hashlib.sha256()
    lam = np.ascontiguousarray(result.eigenvalues)
    h.update(str(lam.dtype).encode())
    h.update(lam.tobytes())
    if result.eigenvectors is not None:
        x = np.ascontiguousarray(result.eigenvectors)
        h.update(str(x.dtype).encode())
        h.update(x.tobytes())
    return h.hexdigest()
