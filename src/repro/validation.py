"""Input validation helpers shared across the library.

These are deliberately cheap: validation is O(n) or O(n^2) on already-dense
inputs and is skipped inside inner loops.  Public entry points validate once
and then call private kernels that trust their inputs, following the usual
HPC-library layering.

Every rejection raises a structured
:class:`~repro.errors.ValidationError` subclass whose ``field`` attribute
names the check that failed (``"ndim"``, ``"empty"``, ``"square"``,
``"symmetry"``, ``"finite"``), so callers — and the serving layer's
admission control — can map a bad input to a client error without
parsing message strings.  The drivers expose the gates behind a
``check_input=`` knob defaulting on.
"""

from __future__ import annotations

import numpy as np

from .errors import NotSymmetricError, ShapeError

__all__ = [
    "as_matrix",
    "as_square_matrix",
    "as_symmetric_matrix",
    "check_finite_matrix",
    "check_finite_vector",
    "check_tridiagonal",
    "check_positive_int",
    "check_blocksizes",
]


def as_matrix(a, *, name: str = "a", dtype=None) -> np.ndarray:
    """Return ``a`` as a 2-D contiguous ndarray, validating dimensionality.

    Parameters
    ----------
    a : array_like
        Input to coerce.
    name : str
        Argument name used in error messages.
    dtype : numpy dtype, optional
        If given, the result is converted to this dtype.
    """
    arr = np.asarray(a, dtype=dtype)
    if arr.ndim != 2:
        raise ShapeError(
            f"{name} must be 2-D, got ndim={arr.ndim}", field="ndim", name=name
        )
    if arr.size == 0:
        raise ShapeError(
            f"{name} must be non-empty, got shape {arr.shape}",
            field="empty", name=name,
        )
    return np.ascontiguousarray(arr)


def as_square_matrix(a, *, name: str = "a", dtype=None) -> np.ndarray:
    """Return ``a`` as a square 2-D ndarray or raise :class:`ShapeError`."""
    arr = as_matrix(a, name=name, dtype=dtype)
    if arr.shape[0] != arr.shape[1]:
        raise ShapeError(
            f"{name} must be square, got shape {arr.shape}",
            field="square", name=name,
        )
    return arr


def as_symmetric_matrix(
    a, *, name: str = "a", dtype=None, rtol: float = 1e-5, atol: float = 1e-6,
    check: bool = True,
) -> np.ndarray:
    """Return ``a`` as a symmetric square ndarray.

    Symmetry is checked up to a tolerance scaled for single-precision inputs;
    the returned matrix is explicitly symmetrized (``(A + A.T) / 2``) so
    downstream two-sided updates see an exactly symmetric operand.
    ``check=False`` skips the tolerance comparison (the symmetrization
    still runs) for callers that already validated the input.
    """
    arr = as_square_matrix(a, name=name, dtype=dtype)
    if check and not np.allclose(arr, arr.T, rtol=rtol, atol=atol):
        raise NotSymmetricError(
            f"{name} is not symmetric within tolerance", name=name
        )
    # Exact symmetrization: two-sided updates assume A == A.T bitwise.
    sym = (arr + arr.T) * arr.dtype.type(0.5)
    return np.ascontiguousarray(sym)


def check_finite_matrix(arr: np.ndarray, *, name: str = "a") -> np.ndarray:
    """Reject matrices containing NaN/Inf with a clear, early error.

    A non-finite entry anywhere in the input silently poisons every
    downstream GEMM, so the drivers gate on this up front (skippable with
    ``check_input=False`` for callers that already validated).  Raises
    :class:`repro.errors.ShapeError` (a :class:`ValidationError` with
    ``field="finite"``) naming the first offending position.
    """
    finite = np.isfinite(arr)
    if not finite.all():
        bad = np.argwhere(~finite)
        i, j = (int(x) for x in bad[0])
        kind = "nan" if np.isnan(arr[i, j]) else "inf"
        raise ShapeError(
            f"{name} contains {bad.shape[0]} non-finite entr"
            f"{'y' if bad.shape[0] == 1 else 'ies'} (first: {kind} at "
            f"[{i}, {j}]); pass check_finite=False to skip this gate",
            field="finite", name=name,
        )
    return arr


def check_finite_vector(arr: np.ndarray, *, name: str = "d") -> np.ndarray:
    """Reject 1-D inputs containing NaN/Inf (``field="finite"``)."""
    finite = np.isfinite(arr)
    if not finite.all():
        i = int(np.argwhere(~finite)[0][0])
        kind = "nan" if np.isnan(arr[i]) else "inf"
        raise ShapeError(
            f"{name} contains a non-finite entry ({kind} at [{i}])",
            field="finite", name=name,
        )
    return arr


def check_tridiagonal(d, e, *, check_finite: bool = True):
    """Validate a symmetric tridiagonal ``(d, e)`` pair up front.

    ``d`` must be a non-empty 1-D diagonal, ``e`` its 1-D off-diagonal of
    length ``len(d) - 1``; both must be finite.  Returns the pair as
    float64 arrays.  The iterative tridiagonal solvers gate on this via
    ``check_input=`` instead of failing mid-sweep on a NaN rotation.
    """
    d = np.asarray(d, dtype=np.float64)
    e = np.asarray(e, dtype=np.float64)
    if d.ndim != 1 or d.size == 0:
        raise ShapeError(
            f"d must be a non-empty 1-D array, got shape {d.shape}",
            field="ndim", name="d",
        )
    if e.ndim != 1 or e.shape[0] != max(d.shape[0] - 1, 0):
        raise ShapeError(
            f"e must have shape ({d.shape[0] - 1},) for d of shape "
            f"{d.shape}, got {e.shape}",
            field="square", name="e",
        )
    if check_finite:
        check_finite_vector(d, name="d")
        if e.size:
            check_finite_vector(e, name="e")
    return d, e


def check_positive_int(value: int, *, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ShapeError(
            f"{name} must be an int, got {type(value).__name__}",
            field="type", name=name,
        )
    if value <= 0:
        raise ShapeError(
            f"{name} must be positive, got {value}", field="positive", name=name
        )
    return int(value)


def check_blocksizes(n: int, b: int, nb: int | None = None) -> None:
    """Validate SBR block sizes: bandwidth ``b`` and big-block size ``nb``.

    ``nb`` (when given) must be a multiple of ``b``; both must not exceed
    ``n``.  Raises :class:`repro.errors.ConfigurationError` on violation.
    """
    from .errors import ConfigurationError

    check_positive_int(n, name="n")
    check_positive_int(b, name="b")
    if b > n:
        raise ConfigurationError(f"bandwidth b={b} exceeds matrix size n={n}")
    if nb is not None:
        check_positive_int(nb, name="nb")
        if nb % b != 0:
            raise ConfigurationError(f"nb={nb} must be a multiple of b={b}")
        if nb > n:
            raise ConfigurationError(f"nb={nb} exceeds matrix size n={n}")
