"""Precision-escalation policy and the per-run resilience report.

When a detector fires, the :class:`EscalationLadder` decides the retry:
climb to the next-safer :class:`~repro.precision.modes.Precision`
(``FP16_TC -> FP16_EC_TC -> TF32_TC -> FP32 -> FP64``), re-run the failed
unit (a panel and its trailing update, or a whole stage) from its
checkpoint, and widen exponentially on repeated failures — retry ``k``
climbs ``2**(k-1)`` rungs, so a unit that keeps failing reaches FP64
within the retry budget instead of crawling one rung per attempt.

Everything the run detected, retried, and escalated is accumulated in a
:class:`ResilienceReport`, attached to the driver's ``EvdResult`` and
persisted as a ``resilience`` line in the obs manifest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..precision.modes import Precision

__all__ = [
    "backoff",
    "EscalationLadder",
    "DetectionRecord",
    "EscalationRecord",
    "ResilienceReport",
]


def backoff(
    attempt: int,
    *,
    base: float = 0.05,
    cap: float = 5.0,
    jitter: float = 0.5,
    rng: "np.random.Generator | None" = None,
) -> float:
    """Exponential-backoff delay (seconds) for retry ``attempt`` (1-based).

    The deterministic part doubles per attempt and saturates at ``cap``:
    ``min(cap, base * 2**(attempt-1))``.  ``jitter`` is the fraction of
    that delay randomized away ("decorrelated" tail): the result is drawn
    uniformly from ``[delay * (1 - jitter), delay]``, so concurrent
    retriers spread out instead of stampeding in lockstep.  With
    ``jitter=0`` or ``rng=None`` the delay is fully deterministic, which
    is what the escalation ladder (same-thread retry, no herd) and seeded
    tests use; the serve retry policy passes a seeded
    ``numpy.random.Generator`` so soak runs are reproducible.

    ``attempt <= 0`` or ``base <= 0`` returns ``0.0`` (no sleep before
    the first try, and a zero base disables backoff entirely).
    """
    if attempt <= 0 or base <= 0.0:
        return 0.0
    delay = min(float(cap), float(base) * (2.0 ** (attempt - 1)))
    if jitter > 0.0 and rng is not None:
        frac = min(max(float(jitter), 0.0), 1.0)
        delay = delay * (1.0 - frac * float(rng.random()))
    return delay


@dataclass
class EscalationLadder:
    """Retry policy: how far and how fast to escalate precision.

    Parameters
    ----------
    max_retries : int
        Retry budget per unit (panel / stage).  The budget of 4 reaches
        FP64 from FP16_TC even one rung at a time.
    widen : int
        Base rung count for the first retry; retry ``k`` climbs
        ``widen * 2**(k-1)`` rungs ("exponential widening").  ``widen=1``
        gives the 1, 2, 4, ... schedule.
    sticky : bool
        Whether an escalated precision persists for subsequent units of
        the same phase (True, the safe default) or reverts to the base
        precision after the failed unit recovers.
    backoff_base : float
        Base delay (seconds) for :meth:`delay`.  Defaults to 0.0 —
        in-process numerical retries re-run immediately; only callers
        that retry against shared external state (the serving layer)
        opt into a non-zero base.
    backoff_cap : float
        Saturation point for the exponential delay.
    backoff_jitter : float
        Fraction of the delay randomized away when an rng is supplied
        to :meth:`delay`.
    """

    max_retries: int = 4
    widen: int = 1
    sticky: bool = True
    backoff_base: float = 0.0
    backoff_cap: float = 5.0
    backoff_jitter: float = 0.5

    def rungs_for_attempt(self, attempt: int) -> int:
        """Rungs to climb on retry ``attempt`` (1-based)."""
        return self.widen * (2 ** max(attempt - 1, 0))

    def delay(self, attempt: int, rng=None) -> float:
        """Seconds to wait before retry ``attempt`` (see :func:`backoff`)."""
        return backoff(
            attempt, base=self.backoff_base, cap=self.backoff_cap,
            jitter=self.backoff_jitter, rng=rng,
        )

    def escalate(self, current: Precision, attempt: int) -> "Precision | None":
        """Next precision for retry ``attempt`` of a unit now at ``current``.

        Returns ``None`` when already at the top of the ladder (nowhere
        safer to go).  The caller enforces ``max_retries`` separately.
        """
        mode = current
        for _ in range(self.rungs_for_attempt(attempt)):
            nxt = mode.next_safer
            if nxt is None:
                break
            mode = nxt
        return None if mode is current else mode


@dataclass(frozen=True)
class DetectionRecord:
    """One detector firing (whether or not recovery followed)."""

    phase: str
    detector: str
    site: str = ""
    panel: "int | None" = None
    value: "float | None" = None
    threshold: "float | None" = None
    precision: str = ""

    def to_dict(self) -> dict:
        return {
            "phase": self.phase, "detector": self.detector, "site": self.site,
            "panel": self.panel, "value": self.value,
            "threshold": self.threshold, "precision": self.precision,
        }


@dataclass(frozen=True)
class EscalationRecord:
    """One precision escalation taken in response to a detection."""

    phase: str
    from_precision: str
    to_precision: str
    attempt: int
    panel: "int | None" = None
    reason: str = ""

    def to_dict(self) -> dict:
        return {
            "phase": self.phase, "from": self.from_precision,
            "to": self.to_precision, "attempt": self.attempt,
            "panel": self.panel, "reason": self.reason,
        }


@dataclass
class ResilienceReport:
    """What the resilience layer saw and did during one driver run.

    Attributes
    ----------
    detections : list of DetectionRecord
        Every detector firing, in order.
    escalations : list of EscalationRecord
        Every precision escalation taken.
    faults_injected : list of dict
        Faults the (test-only) injector actually fired.
    final_precision : dict
        Precision each phase finished at (phase path -> precision name).
    retries : int
        Total unit retries across the run.
    best_effort : list of str
        Phases that exhausted the ladder and continued under
        ``on_breakdown="best_effort"`` (empty in healthy runs).
    """

    detections: list = field(default_factory=list)
    escalations: list = field(default_factory=list)
    faults_injected: list = field(default_factory=list)
    final_precision: dict = field(default_factory=dict)
    retries: int = 0
    best_effort: list = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """True when the run saw no detections, faults, or escalations."""
        return not (
            self.detections or self.escalations
            or self.faults_injected or self.best_effort or self.retries
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (the manifest's ``resilience`` line body)."""
        return {
            "detections": [d.to_dict() for d in self.detections],
            "escalations": [e.to_dict() for e in self.escalations],
            "faults_injected": list(self.faults_injected),
            "final_precision": dict(self.final_precision),
            "retries": self.retries,
            "best_effort": list(self.best_effort),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ResilienceReport":
        """Rebuild a report from its :meth:`to_dict` form.

        Used by the checkpoint layer (:mod:`repro.ckpt`) so a resumed run
        continues accumulating into the history the interrupted run
        already built, instead of reporting a spuriously clean run.
        """
        return cls(
            detections=[
                DetectionRecord(
                    phase=r.get("phase", ""), detector=r.get("detector", ""),
                    site=r.get("site", ""), panel=r.get("panel"),
                    value=r.get("value"), threshold=r.get("threshold"),
                    precision=r.get("precision", ""),
                )
                for r in d.get("detections", [])
            ],
            escalations=[
                EscalationRecord(
                    phase=r.get("phase", ""),
                    from_precision=r.get("from", ""),
                    to_precision=r.get("to", ""),
                    attempt=int(r.get("attempt", 0)),
                    panel=r.get("panel"), reason=r.get("reason", ""),
                )
                for r in d.get("escalations", [])
            ],
            faults_injected=list(d.get("faults_injected", [])),
            final_precision=dict(d.get("final_precision", {})),
            retries=int(d.get("retries", 0)),
            best_effort=list(d.get("best_effort", [])),
        )

    def summary(self) -> str:
        """One-line human summary for logs and reports."""
        if self.empty:
            return "resilience: clean run (no detections, no escalations)"
        parts = [
            f"{len(self.detections)} detection(s)",
            f"{len(self.escalations)} escalation(s)",
            f"{self.retries} retr{'y' if self.retries == 1 else 'ies'}",
        ]
        if self.faults_injected:
            parts.append(f"{len(self.faults_injected)} injected fault(s)")
        if self.best_effort:
            parts.append(f"best-effort phases: {', '.join(self.best_effort)}")
        return "resilience: " + ", ".join(parts)
