"""CLI for the resilience subsystem: audit a recorded run's ABFT layer.

::

    python -m repro.resilience abft-verify runs/
    python -m repro.resilience abft-verify runs/syevd-wy-fp32-n256.jsonl --json

``abft-verify`` loads one manifest (or every ``*.jsonl`` manifest under
a directory), replays its GEMM-stream summary against the archived
``abft`` line, and reports per-phase ABFT verification overhead plus the
SDC event counts (detected / corrected in place / recomputed /
escalated).  The per-phase overhead joins two views of the same run: the
checker's own per-site accounting (the ``abft`` line) and the
``abft.verify`` spans on the telemetry timeline, grouped under their
parent phase.  Exits non-zero when no manifest carries an ``abft`` line
— the run was recorded without online verification.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from .abft import AbftReport

_EXIT_NO_ABFT = 1
_EXIT_USAGE = 2


def _manifest_paths(target: str) -> "list[str]":
    """One file, or every ``*.jsonl`` directly under a directory."""
    if os.path.isfile(target):
        return [target]
    if os.path.isdir(target):
        return sorted(
            os.path.join(target, name)
            for name in os.listdir(target)
            if name.endswith(".jsonl")
        )
    raise FileNotFoundError(target)


def _verify_spans_by_phase(man) -> "dict[str, tuple[int, float]]":
    """``abft.verify``/``abft.correct`` span time grouped by parent path."""
    out: "dict[str, tuple[int, float]]" = {}
    for span in man.spans:
        path = span.path
        if not (path.endswith("/abft.verify") or path.endswith("/abft.correct")
                or path in ("abft.verify", "abft.correct")):
            continue
        phase = path.rsplit("/", 1)[0] if "/" in path else "<top>"
        count, seconds = out.get(phase, (0, 0.0))
        out[phase] = (count + 1, seconds + span.duration)
    return out


def _audit_one(path: str, *, as_json: bool) -> "dict | None":
    """Audit one manifest; returns its summary dict, or None without abft."""
    from ..obs.manifest import load_manifest

    man = load_manifest(path)
    if man.abft is None:
        return None
    rep = AbftReport.from_dict(man.abft)
    gemm_seconds = float(man.gemm_summary.get("seconds", 0.0) or 0.0)
    launches = rep.verified + rep.probed
    overhead = rep.verify_seconds / gemm_seconds if gemm_seconds > 0 else None
    summary = {
        "path": path,
        "label": man.label,
        "mode": rep.mode,
        "launches": launches,
        "probed": rep.probed,
        "gemm_launches": int(man.gemm_summary.get("launches",
                                                  man.gemm_summary.get("calls", 0)) or 0),
        "verify_seconds": rep.verify_seconds,
        "gemm_seconds": gemm_seconds,
        "overhead": overhead,
        "detected": rep.detected,
        "corrected": rep.corrected,
        "recomputed": rep.recomputed,
        "raised": rep.raised,
        "by_site": rep.by_phase,
        "by_phase": {
            phase: {"spans": count, "seconds": seconds}
            for phase, (count, seconds) in _verify_spans_by_phase(man).items()
        },
        "events": rep.events,
    }
    if as_json:
        return summary

    print(f"{path}: {rep.summary()}")
    if overhead is not None:
        print(f"  gemm stream: {summary['gemm_launches']} launches, "
              f"{gemm_seconds * 1e3:.1f} ms measured; verification overhead "
              f"{overhead * 100.0:.1f}%")
    if rep.by_phase:
        width = max(len(site) for site in rep.by_phase)
        print(f"  {'site'.ljust(width)}  verified  sdc  verify-ms")
        for site in sorted(rep.by_phase):
            slot = rep.by_phase[site]
            print(f"  {site.ljust(width)}  "
                  f"{int(slot.get('verified', 0)):>8d}  "
                  f"{int(slot.get('detected', 0)):>3d}  "
                  f"{float(slot.get('seconds', 0.0)) * 1e3:>9.2f}")
    phases = summary["by_phase"]
    if phases:
        print("  timeline phases carrying verification:")
        for phase in sorted(phases):
            slot = phases[phase]
            print(f"    {phase}: {slot['spans']} spans, "
                  f"{slot['seconds'] * 1e3:.2f} ms")
    for ev in rep.events:
        print(f"  event: {ev.get('action', '?')} at {ev.get('site', '?')}"
              f"[{ev.get('call_index', '?')}] "
              f"op={ev.get('op', '?')} row={ev.get('row')} col={ev.get('col')}")
    return summary


def _cmd_abft_verify(args) -> int:
    try:
        paths = _manifest_paths(args.target)
    except FileNotFoundError:
        print(f"error: no such file or directory: {args.target}",
              file=sys.stderr)
        return _EXIT_USAGE
    audited: "list[dict]" = []
    skipped = 0
    for path in paths:
        try:
            summary = _audit_one(path, as_json=args.json)
        except ValueError as exc:
            print(f"{path}: unreadable manifest ({exc})", file=sys.stderr)
            skipped += 1
            continue
        if summary is None:
            skipped += 1
        else:
            audited.append(summary)
    if args.json:
        print(json.dumps({"manifests": audited, "skipped": skipped}, indent=1))
    if not audited:
        print(f"error: no manifest under {args.target} carries an 'abft' "
              f"line ({skipped} without online verification)", file=sys.stderr)
        return _EXIT_NO_ABFT
    if not args.json and skipped:
        print(f"({skipped} manifest(s) without an abft line skipped)")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.resilience",
        description="Resilience-layer audits over recorded run manifests.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_ver = sub.add_parser(
        "abft-verify",
        help="replay a manifest's GEMM-stream summary against its archived "
             "ABFT report: per-phase overhead + SDC event counts",
    )
    p_ver.add_argument("target", help="manifest file or directory of *.jsonl")
    p_ver.add_argument("--json", action="store_true",
                       help="machine-readable output")
    p_ver.set_defaults(func=_cmd_abft_verify)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
