"""Crash-fault injection: process death and storage faults, on schedule.

The PR 2 :class:`~repro.resilience.faults.FaultInjector` corrupts *data
in flight* (GEMM outputs) to exercise the numerical detectors.  This
module extends the same deterministic site/call-index idiom to the
*durability* failure modes a checkpointed run must survive:

``kill``          raise :class:`~repro.errors.SimulatedCrashError` at the
                  site (or hard-exit the process in ``hard`` mode) —
                  models preemption / OOM-kill / power loss.
``torn_write``    truncate the just-committed payload file to a prefix,
                  then crash — models a non-atomic filesystem tearing a
                  write.  The resulting checkpoint must be *detected* at
                  load time (file CRC mismatch), never silently used.
``stale_schema``  rewrite the checkpoint's metadata schema version to an
                  unsupported value, then crash — models a run directory
                  left behind by an incompatible library version.

Sites are fired by the checkpoint manager around every save:
``ckpt.save.<step>.pre`` (before any byte is written — a kill here leaves
the previous checkpoint as the restart point) and
``ckpt.save.<step>.post`` (after the checkpoint is durable — a kill here
restarts from the brand-new checkpoint; the corruption kinds damage the
files it just committed).  Specs match sites by ``fnmatch`` glob, fire at
a chosen per-site call index, and at most ``count`` times, exactly like
:class:`FaultSpec`.
"""

from __future__ import annotations

import fnmatch
import json
import os
import threading
from dataclasses import dataclass

from ..errors import SimulatedCrashError

__all__ = ["CRASH_KINDS", "CrashFaultSpec", "CrashInjector", "parse_kill_site"]

CRASH_KINDS = ("kill", "torn_write", "stale_schema")


@dataclass(frozen=True)
class CrashFaultSpec:
    """One planned crash: *where*, *when*, *what*.

    Parameters
    ----------
    site : str
        Site pattern (``fnmatch`` glob) matched against crash sites, e.g.
        ``"ckpt.save.sbr_panel.post"``, ``"ckpt.save.*.pre"``.
    kind : str
        One of :data:`CRASH_KINDS`.
    call_index : int
        Which matching firing opportunity to take (0-based, counted per
        exact site name).
    count : int
        Maximum number of firings (default 1 — one crash, then the
        injector stays quiet so the resumed run can finish).
    truncate_fraction : float
        For ``torn_write``: fraction of the payload retained.
    schema : int
        For ``stale_schema``: the bogus schema version written.
    """

    site: str
    kind: str = "kill"
    call_index: int = 0
    count: int = 1
    truncate_fraction: float = 0.5
    schema: int = -1

    def __post_init__(self) -> None:
        if self.kind not in CRASH_KINDS:
            raise ValueError(
                f"unknown crash kind {self.kind!r}; expected one of {CRASH_KINDS}"
            )
        if not 0.0 <= self.truncate_fraction < 1.0:
            raise ValueError(
                f"truncate_fraction must be in [0, 1), got {self.truncate_fraction}"
            )


def parse_kill_site(text: str) -> CrashFaultSpec:
    """Parse a CLI crash spec ``SITE[:CALL_INDEX[:KIND]]``.

    Examples: ``ckpt.save.sbr_panel.post:2``,
    ``ckpt.save.band.post:0:torn_write``.
    """
    parts = text.split(":")
    site = parts[0]
    index = int(parts[1]) if len(parts) > 1 and parts[1] else 0
    kind = parts[2] if len(parts) > 2 and parts[2] else "kill"
    return CrashFaultSpec(site=site, kind=kind, call_index=index)


class CrashInjector:
    """Fires :class:`CrashFaultSpec` crashes at named durability sites.

    Parameters
    ----------
    specs : CrashFaultSpec or list thereof
        The planned crashes.
    hard : bool
        When True, a ``kill`` terminates the process with ``os._exit``
        (exit code 137, mimicking SIGKILL) instead of raising — the CI
        crash-recovery job uses this so the interpreter gets no chance to
        run cleanup, exactly like real preemption.  Corruption kinds
        still damage the files first.

    Thread-safe; reusable across runs via :meth:`reset`.
    """

    #: Exit code used in ``hard`` mode (128 + SIGKILL).
    HARD_EXIT_CODE = 137

    def __init__(self, specs: "list[CrashFaultSpec] | CrashFaultSpec | None" = None,
                 *, hard: bool = False) -> None:
        if specs is None:
            specs = []
        if isinstance(specs, CrashFaultSpec):
            specs = [specs]
        self.specs = list(specs)
        self.hard = hard
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._firings: dict[int, int] = {}
        self.fired: list[dict] = []

    def reset(self) -> None:
        """Forget all call counters and firing history."""
        with self._lock:
            self._counters.clear()
            self._firings.clear()
            self.fired = []

    # -- corruption payloads -------------------------------------------------
    @staticmethod
    def _tear_file(path: str, fraction: float) -> None:
        try:
            size = os.path.getsize(path)
        except OSError:
            return
        keep = int(size * fraction)
        with open(path, "r+b") as fh:
            fh.truncate(keep)

    @staticmethod
    def _stale_schema(path: str, schema: int) -> None:
        try:
            with open(path) as fh:
                meta = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return
        meta["schema"] = schema
        # Plain rewrite on purpose: the fault models an *old writer*, not
        # this library's atomic committer.
        with open(path, "w") as fh:
            json.dump(meta, fh)
            fh.write("\n")

    # -- the site hook -------------------------------------------------------
    def fire(self, site: str, *, paths: "dict[str, str] | None" = None) -> None:
        """Pass a durability site; crash here if a spec is due.

        Parameters
        ----------
        site : str
            Site name (``ckpt.save.<step>.pre`` / ``.post``).
        paths : dict, optional
            Files the site just committed (``{"arrays": ..., "meta": ...}``)
            — the corruption kinds' targets.  A corruption kind at a site
            with no usable path degrades to a plain ``kill``.
        """
        if not self.specs:
            return
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
            due: "CrashFaultSpec | None" = None
            for sid, spec in enumerate(self.specs):
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                if self._firings.get(sid, 0) >= spec.count:
                    continue
                if index < spec.call_index:
                    continue
                if index != spec.call_index and self._firings.get(sid, 0) == 0:
                    continue
                self._firings[sid] = self._firings.get(sid, 0) + 1
                due = spec
                break
            if due is not None:
                self.fired.append(
                    {"site": site, "call_index": index, "kind": due.kind}
                )
        if due is None:
            return
        paths = paths or {}
        if due.kind == "torn_write" and paths.get("arrays"):
            self._tear_file(paths["arrays"], due.truncate_fraction)
        elif due.kind == "stale_schema" and paths.get("meta"):
            self._stale_schema(paths["meta"], due.schema)
        if self.hard:  # pragma: no cover - terminates the interpreter
            os._exit(self.HARD_EXIT_CODE)
        raise SimulatedCrashError(
            f"injected crash at {site} (call {index})", site=site, kind=due.kind
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CrashInjector {len(self.specs)} specs, {len(self.fired)} fired>"
