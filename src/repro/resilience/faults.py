"""Deterministic fault injection for the resilience test harness.

A :class:`FaultInjector` corrupts arrays at named *sites* — the GEMM tags
of the band-reduction stream (``panel_tsqr``, ``wy_right``, ``form_q``,
...) plus driver-level sites (``bulge``) — at a chosen call index, with a
chosen corruption kind, reproducibly from a seed.  The injector is wired
into :class:`repro.resilience.engine.ResilientEngine` (GEMM outputs) and
into the driver-level injection points, so tests can prove that every
detector fires and every fallback path recovers.

Corruption kinds
----------------
``nan``             overwrite sampled entries with NaN
``inf``             overwrite sampled entries with +Inf
``sign_flip``       negate sampled entries (silent corruption — invisible
                    to NaN scans; caught by invariant-drift detectors)
``mantissa_noise``  multiply sampled entries by ``1 + noise`` (silent)
``overflow``        multiply sampled entries by ``scale`` (default 1e30 —
                    finite in FP32, caught by the magnitude detector)
``bitflip``         XOR one bit of a single entry's storage word — the
                    canonical silent-data-corruption model the online
                    ABFT layer (:mod:`repro.resilience.abft`) detects,
                    localizes, and corrects.  ``bit`` selects the bit
                    position (default: the dtype's top exponent bit, so
                    the flip is numerically large in either direction);
                    exactly one element is corrupted per firing.

Faults are *transient* by default (``count=1``): each spec fires at most
``count`` times, so a retry of the corrupted unit sees clean data — the
model of a transient bit-flip/overflow the escalation ladder is designed
to recover from.  Persistent faults (``count`` large) exhaust the retry
budget and exercise the ``raise``/``best_effort`` paths.
"""

from __future__ import annotations

import fnmatch
import threading
import zlib
from dataclasses import dataclass, field

import numpy as np

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultRecord", "FaultInjector"]

FAULT_KINDS = ("nan", "inf", "sign_flip", "mantissa_noise", "overflow", "bitflip")

#: Top exponent bit per float itemsize — the default ``bitflip`` target.
_TOP_EXPONENT_BIT = {2: 14, 4: 30, 8: 62}


@dataclass(frozen=True)
class FaultSpec:
    """One planned corruption: *where*, *when*, *what*, *how reproducibly*.

    Parameters
    ----------
    site : str
        Injection-site pattern (``fnmatch`` glob) matched against GEMM
        tags and driver sites, e.g. ``"panel_tsqr"``, ``"wy_*"``,
        ``"bulge"``.
    kind : str
        One of :data:`FAULT_KINDS`.
    call_index : int
        Which matching call to corrupt (0-based, per site pattern).
    count : int
        Maximum number of firings (default 1: a transient fault).
    fraction : float
        Fraction of entries corrupted (at least one entry).
    scale : float
        Multiplier for ``overflow``; relative amplitude for
        ``mantissa_noise``.
    seed : int
        Base seed; combined with the site name and call index so every
        firing is independently deterministic.
    bit : int or None
        ``bitflip`` only: which bit of the element's storage word is
        XORed (0 = least-significant mantissa bit).  ``None`` picks the
        dtype's top exponent bit at firing time, which perturbs the
        value by many orders of magnitude whether set or clear.
    """

    site: str
    kind: str = "nan"
    call_index: int = 0
    count: int = 1
    fraction: float = 0.02
    scale: float = 1e30
    seed: int = 0
    bit: "int | None" = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {self.fraction}")
        if self.bit is not None and self.bit < 0:
            raise ValueError(f"bit must be non-negative, got {self.bit}")


@dataclass(frozen=True)
class FaultRecord:
    """One fault that actually fired (for the resilience report)."""

    site: str
    call_index: int
    kind: str
    entries: int

    def to_dict(self) -> dict:
        return {
            "site": self.site, "call_index": self.call_index,
            "kind": self.kind, "entries": self.entries,
        }


class FaultInjector:
    """Applies :class:`FaultSpec` corruptions to arrays flowing past sites.

    Thread-safe (per-site counters are lock-guarded); reusable across
    runs via :meth:`reset`.
    """

    def __init__(self, specs: "list[FaultSpec] | FaultSpec | None" = None) -> None:
        if specs is None:
            specs = []
        if isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs = list(specs)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._firings: dict[int, int] = {}
        self.fired: list[FaultRecord] = []

    def reset(self) -> None:
        """Forget all call counters and firing history."""
        with self._lock:
            self._counters.clear()
            self._firings.clear()
            self.fired = []

    def _rng(self, spec: FaultSpec, site: str, index: int) -> np.random.Generator:
        # Stable per-(spec, site, call) stream: same seed -> same corruption.
        return np.random.default_rng(
            np.random.SeedSequence([spec.seed, zlib.crc32(site.encode()), index])
        )

    def _corrupt(self, arr: np.ndarray, spec: FaultSpec, site: str, index: int) -> tuple[np.ndarray, int]:
        rng = self._rng(spec, site, index)
        out = np.array(arr, copy=True)
        flat = out.ravel()
        if spec.kind == "bitflip":
            # A single flipped storage bit in one element — the SDC model.
            pos = int(rng.integers(flat.size))
            bits = max(1, out.dtype.itemsize) * 8
            bit = spec.bit if spec.bit is not None else \
                _TOP_EXPONENT_BIT.get(out.dtype.itemsize, bits - 2)
            word = flat[pos:pos + 1].view(f"u{out.dtype.itemsize}")
            word ^= word.dtype.type(1 << (bit % bits))
            return out, 1
        n_bad = max(1, int(round(spec.fraction * flat.size)))
        idx = rng.choice(flat.size, size=min(n_bad, flat.size), replace=False)
        if spec.kind == "nan":
            flat[idx] = np.nan
        elif spec.kind == "inf":
            flat[idx] = np.inf
        elif spec.kind == "sign_flip":
            flat[idx] = -flat[idx]
        elif spec.kind == "mantissa_noise":
            noise = spec.scale if spec.scale < 1.0 else 0.25
            flat[idx] = flat[idx] * (1.0 + noise * rng.standard_normal(idx.size))
        elif spec.kind == "overflow":
            with np.errstate(over="ignore"):
                flat[idx] = flat[idx] * out.dtype.type(spec.scale)
        return out, int(idx.size)

    def apply(self, site: str, arr: np.ndarray) -> np.ndarray:
        """Pass ``arr`` through the injection site, corrupting if due.

        Returns the (possibly corrupted, always copied-on-corrupt) array.
        """
        if not self.specs:
            return arr
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
            due = []
            for sid, spec in enumerate(self.specs):
                if not fnmatch.fnmatchcase(site, spec.site):
                    continue
                if index != spec.call_index and self._firings.get(sid, 0) == 0:
                    continue
                if self._firings.get(sid, 0) >= spec.count:
                    continue
                if index < spec.call_index:
                    continue
                self._firings[sid] = self._firings.get(sid, 0) + 1
                due.append(spec)
        for spec in due:
            arr, entries = self._corrupt(arr, spec, site, index)
            rec = FaultRecord(site=site, call_index=index, kind=spec.kind, entries=entries)
            with self._lock:
                self.fired.append(rec)
        return arr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FaultInjector {len(self.specs)} specs, {len(self.fired)} fired>"
