"""Online ABFT: checksum-encoded verification of the live GEMM stream.

Huang & Abraham (1984) encode a matrix product with row/column checksum
vectors: for ``C = A @ B``, the identities ``C·e = A·(B·e)`` and
``eᵀ·C = (eᵀ·A)·B`` hold up to rounding, and a single corrupted element
``C[i, j]`` breaks exactly row sum ``i`` and column sum ``j`` — the
mismatch intersection *localizes* the fault.  :mod:`repro.ckpt` has used
this at rest since PR 4 (checkpoint payload signatures); this module
moves the same encoding *in flight*: every launch of a guarded
:class:`~repro.gemm.engine.GemmEngine` is verified right after it
returns, while the cost of the corruption is still one launch, not a
poisoned eigendecomposition.

The detect → locate → correct → recompute → escalate ladder:

1. **detect** — compare the float64 row/column sums of the output
   against references computed from the operands, with a dtype-aware
   tolerance floored at :func:`~repro.resilience.detectors.effective_eps`
   and scaled by the |A|·|B| checksum magnitudes (so cancellation-heavy
   products don't false-positive).
2. **locate** — exactly one bad row and one bad column ⇒ a single
   corrupted element at their intersection.
3. **correct** (``abft="correct"``) — deterministically replay the
   launch through the raw engine and patch the corrupted element in
   place.  The replay, not the checksum delta, supplies the value: the
   float64 delta carries the reference reduction's own rounding and
   would break the bitwise-replay guarantee.
4. **recompute** — multi-element damage (or a patch that fails
   re-verification) replaces the whole output with the replay.
5. **escalate** — damage that survives recomputation raises
   :class:`~repro.errors.SdcError`, a
   :class:`~repro.errors.NumericalBreakdownError` subclass the PR-2
   precision-escalation ladder retries like any other breakdown.

Large batched launches use a Freivalds-style randomized probe instead of
full checksums (one ±1 projection per stack, seeded deterministically
per site/call so replays agree); a probe hit falls back to the full
checksum pass for localization.

In ``abft="detect"`` mode step 1 raises immediately — the mode for
canaries and CI, where you want the fault surfaced, not absorbed.
``abft="off"`` costs one attribute read and a ``None`` check per launch
(tracemalloc-asserted in the tests).

The checkpoint-at-rest helpers (``abft_signature``/``verify_abft``)
live here as the shared implementation; :mod:`repro.ckpt.abft`
re-exports them for backward compatibility.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from ..errors import CheckpointCorruptionError, ConfigurationError, SdcError
from ..obs import spans as _obs
from ..obs.live import registry as _live
from .detectors import effective_eps

__all__ = [
    "ABFT_MODES",
    "AbftPolicy",
    "AbftEvent",
    "AbftReport",
    "AbftChecker",
    "Syr2kPre",
    "sum_vectors",
    "checksum_crc",
    "abft_signature",
    "verify_abft",
]

#: Valid values of the driver-level ``abft=`` knob.
ABFT_MODES = ("off", "detect", "correct")

#: Events kept verbatim in an :class:`AbftReport` (counters are exact).
_MAX_EVENTS = 64


# ---------------------------------------------------------------------------
# Shared checksum helpers (in-flight verification + at-rest signatures)
# ---------------------------------------------------------------------------

def sum_vectors(arr: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Float64 row/column sum vectors of an array (1-D: one axis only).

    2-D and higher: leading axes are collapsed so "row" is axis ``-2``
    and "col" axis ``-1``.  1-D: the flat vector itself plus its total.
    """
    a64 = np.asarray(arr, dtype=np.float64)
    if a64.ndim >= 2:
        a64 = a64.reshape(-1, a64.shape[-1])
        return a64.sum(axis=1), a64.sum(axis=0)
    flat = a64.ravel()
    return flat, np.asarray([flat.sum()])


def checksum_crc(vec: np.ndarray) -> int:
    """CRC32 of a checksum vector's float64 bytes (compact signature)."""
    return zlib.crc32(np.ascontiguousarray(vec, dtype=np.float64).tobytes()) & 0xFFFFFFFF


def abft_signature(arr: np.ndarray) -> dict:
    """Compact ABFT signature of one array (JSON-serializable).

    The full checksum vectors are compressed to their CRC32s; the grand
    total is kept exactly (as a ``float.hex`` string) so a signature
    mismatch can report the magnitude of the disagreement.
    """
    arr = np.asarray(arr)
    rows, cols = sum_vectors(arr)
    total = float(np.asarray(arr, dtype=np.float64).sum())
    return {
        "shape": list(arr.shape),
        "dtype": str(arr.dtype),
        "row_crc": checksum_crc(rows),
        "col_crc": checksum_crc(cols),
        "total": total.hex(),
    }


def _storage_eps(dtype) -> float:
    """Effective epsilon of a storage dtype (floored at float64 eps)."""
    eps = float(np.finfo(np.float64).eps)
    dt = np.dtype(dtype)
    if dt.kind == "f":
        eps = max(eps, float(np.finfo(dt).eps))
    return eps


def verify_abft(name: str, arr: np.ndarray, sig: dict, *,
                path: str | None = None) -> None:
    """Check a loaded array against its stored signature.

    The row/column CRCs are compared exactly — the stored array is
    bit-identical to the saved one when nothing corrupted it, and NumPy
    summation over the same bytes within one process is deterministic,
    so any CRC mismatch is real corruption.  The *grand total* is
    compared with a tolerance floored at the storage dtype's effective
    epsilon (scaled by the payload's 1-norm): the float64 re-reduction
    that produces it is the one quantity whose exact bit pattern may
    legally differ (summation-order changes across NumPy builds), and an
    exact compare false-positives on FP16 checkpoints of large
    ill-scaled matrices where the total carries ``~n·eps₁₆·‖A‖₁`` of
    benign noise.

    Raises
    ------
    CheckpointCorruptionError
        With ``field`` naming the array and the failing check
        (``"abft:<name>.shape"`` / ``.dtype`` / ``.row`` / ``.col`` /
        ``.total``), so the caller sees *where* the checkpoint lied.
    """
    arr = np.asarray(arr)
    if list(arr.shape) != list(sig.get("shape", [])):
        raise CheckpointCorruptionError(
            f"array {name!r} has shape {list(arr.shape)}, "
            f"checkpoint recorded {sig.get('shape')}",
            path=path, field=f"abft:{name}.shape", reason="abft",
        )
    if str(arr.dtype) != sig.get("dtype"):
        raise CheckpointCorruptionError(
            f"array {name!r} has dtype {arr.dtype}, "
            f"checkpoint recorded {sig.get('dtype')}",
            path=path, field=f"abft:{name}.dtype", reason="abft",
        )
    rows, cols = sum_vectors(arr)
    if checksum_crc(rows) != sig.get("row_crc"):
        raise CheckpointCorruptionError(
            f"array {name!r} failed its ABFT row-checksum "
            f"(silent corruption in the stored payload)",
            path=path, field=f"abft:{name}.row", reason="abft",
        )
    if checksum_crc(cols) != sig.get("col_crc"):
        raise CheckpointCorruptionError(
            f"array {name!r} failed its ABFT column-checksum",
            path=path, field=f"abft:{name}.col", reason="abft",
        )
    stored = sig.get("total")
    if stored is not None:
        a64 = np.asarray(arr, dtype=np.float64)
        total = float(a64.sum())
        ref = float.fromhex(stored)
        tol = _storage_eps(arr.dtype) * max(1.0, float(np.abs(a64).sum()))
        if not abs(total - ref) <= tol:
            raise CheckpointCorruptionError(
                f"array {name!r} grand total {total!r} disagrees with the "
                f"checkpointed total {ref!r} beyond the {arr.dtype} "
                f"effective-eps tolerance {tol:.3e}",
                path=path, field=f"abft:{name}.total", reason="abft",
            )


# ---------------------------------------------------------------------------
# Policy / report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AbftPolicy:
    """Configuration of the in-flight verification layer.

    Parameters
    ----------
    mode : {"detect", "correct"}
        ``detect`` raises :class:`~repro.errors.SdcError` on the first
        checksum mismatch; ``correct`` patches single-element damage in
        place (value sourced from a deterministic launch replay),
        recomputes on multi-element damage, and raises only when damage
        survives recomputation.  (``"off"`` is expressed by not
        constructing a checker at all.)
    eps_factor : float
        Multiplier on the rounding-error bound that separates engine
        rounding from corruption.  The per-entry tolerance is
        ``eps_factor · effective_eps · (|A|·|B|)``-scale, so it tracks
        both the precision policy and the operand magnitudes.
    freivalds_batch : int
        Batched launches with at least this many stack entries are
        verified by the randomized Freivalds probe instead of full
        row+column checksums (half the reduction passes); a probe hit
        falls back to the full pass for localization.  ``0`` disables
        the probe.
    freivalds_seed : int
        Base seed of the probe's ±1 projection vectors.  Combined with
        the site name and call index, so each launch's probe is
        independently deterministic and replays agree.
    max_recomputes : int
        Full-launch replays allowed per launch before the damage is
        declared persistent and escalated.
    """

    mode: str = "detect"
    eps_factor: float = 64.0
    freivalds_batch: int = 4
    freivalds_seed: int = 0
    max_recomputes: int = 2

    def __post_init__(self) -> None:
        if self.mode not in ("detect", "correct"):
            raise ConfigurationError(
                f"abft mode must be 'detect' or 'correct', got {self.mode!r}"
            )
        if self.eps_factor <= 0.0:
            raise ConfigurationError(
                f"eps_factor must be positive, got {self.eps_factor}"
            )

    @staticmethod
    def from_knob(abft) -> "AbftPolicy | None":
        """Resolve the driver-level ``abft=`` knob to a policy (or None).

        Accepts ``None``/``"off"`` (→ None), a mode string, or an
        :class:`AbftPolicy` passed through unchanged.
        """
        if abft is None or abft == "off" or abft is False:
            return None
        if isinstance(abft, AbftPolicy):
            return abft
        if isinstance(abft, str):
            if abft not in ABFT_MODES:
                raise ConfigurationError(
                    f"abft must be one of {ABFT_MODES}, got {abft!r}"
                )
            return AbftPolicy(mode=abft)
        raise ConfigurationError(
            f"abft must be a mode string or AbftPolicy, got {type(abft).__name__}"
        )


@dataclass
class AbftEvent:
    """One SDC that the checker saw (detected / corrected / recomputed)."""

    site: str
    call_index: int
    op: str
    action: str  #: "corrected", "recomputed", or "raised"
    phase: "str | None" = None
    row: "int | None" = None
    col: "int | None" = None
    magnitude: "float | None" = None

    def to_dict(self) -> dict:
        return {
            "site": self.site, "call_index": self.call_index, "op": self.op,
            "action": self.action, "phase": self.phase,
            "row": self.row, "col": self.col, "magnitude": self.magnitude,
        }


@dataclass
class AbftReport:
    """Per-run accounting of the in-flight verification layer.

    Attached to :class:`~repro.eig.driver.EvdResult` as ``abft_report``
    and serialized as the manifest's ``abft`` line.
    """

    mode: str = "detect"
    verified: int = 0      #: launches checked with full row+column sums
    probed: int = 0        #: launches checked with the Freivalds probe
    detected: int = 0      #: launches on which a mismatch was found
    corrected: int = 0     #: single elements patched in place
    recomputed: int = 0    #: full-launch replays substituted
    raised: int = 0        #: SdcErrors escalated to the retry ladder
    verify_seconds: float = 0.0
    by_phase: dict = field(default_factory=dict)
    events: list = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return self.detected == 0

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "verified": self.verified,
            "probed": self.probed,
            "detected": self.detected,
            "corrected": self.corrected,
            "recomputed": self.recomputed,
            "raised": self.raised,
            "verify_seconds": self.verify_seconds,
            "by_phase": {k: dict(v) for k, v in self.by_phase.items()},
            "events": [e.to_dict() if isinstance(e, AbftEvent) else dict(e)
                       for e in self.events],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AbftReport":
        rep = cls(mode=d.get("mode", "detect"))
        for key in ("verified", "probed", "detected", "corrected",
                    "recomputed", "raised"):
            setattr(rep, key, int(d.get(key, 0)))
        rep.verify_seconds = float(d.get("verify_seconds", 0.0))
        rep.by_phase = {k: dict(v) for k, v in (d.get("by_phase") or {}).items()}
        rep.events = [dict(e) for e in (d.get("events") or [])]
        return rep

    def summary(self) -> str:
        bits = [
            f"abft[{self.mode}]: {self.verified + self.probed} launches verified"
            f" ({self.probed} probed) in {self.verify_seconds * 1e3:.1f} ms"
        ]
        if self.detected:
            bits.append(
                f"{self.detected} SDC detected, {self.corrected} corrected, "
                f"{self.recomputed} recomputed, {self.raised} escalated"
            )
        else:
            bits.append("no SDC")
        return "; ".join(bits)


@dataclass
class Syr2kPre:
    """Pre-launch checksums of a syr2k accumulator (``beta != 0`` fusion).

    The fused update ``beta·C + alpha·(Y Zᵀ + Z Yᵀ)`` overwrites ``C``,
    so its contribution to the output checksums must be captured before
    the launch.  Sums only — the full snapshot needed for a correct-mode
    replay is taken separately by the resilient wrapper.
    """

    row: np.ndarray
    col: np.ndarray
    absrow: np.ndarray
    abscol: np.ndarray

    @staticmethod
    def capture(c: np.ndarray) -> "Syr2kPre":
        ac = np.abs(c)
        return Syr2kPre(
            row=c.sum(axis=1, dtype=np.float64),
            col=c.sum(axis=0, dtype=np.float64),
            absrow=ac.sum(axis=1, dtype=np.float64),
            abscol=ac.sum(axis=0, dtype=np.float64),
        )


# ---------------------------------------------------------------------------
# The in-flight checker
# ---------------------------------------------------------------------------

def _view(x) -> np.ndarray:
    """Operand view for checksum math (unwraps prepared EC operands)."""
    arr = getattr(x, "array", x)
    return np.asarray(arr)


class AbftChecker:
    """Verifies guarded engine launches and drives the correction ladder.

    One checker lives inside one :class:`~repro.resilience.ResilienceContext`
    (mirroring the detectors/injector); its per-site launch counters align
    with the fault injector's, so an :class:`~repro.errors.SdcError`'s
    ``call_index`` names the same launch a :class:`FaultSpec` targeted.
    Thread-safe: counters and report updates are lock-guarded, and the
    checksum math itself only reads the launch's own arrays.
    """

    def __init__(self, policy: AbftPolicy) -> None:
        self.policy = policy
        self.report = AbftReport(mode=policy.mode)
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}

    # -- bookkeeping --------------------------------------------------------
    def _next_index(self, site: str) -> int:
        with self._lock:
            index = self._counters.get(site, 0)
            self._counters[site] = index + 1
            return index

    def _account(self, *, phase: "str | None", seconds: float,
                 probed: bool) -> None:
        with self._lock:
            if probed:
                self.report.probed += 1
            else:
                self.report.verified += 1
            self.report.verify_seconds += seconds
            slot = self.report.by_phase.setdefault(
                phase or "?", {"verified": 0, "detected": 0, "seconds": 0.0}
            )
            slot["verified"] += 1
            slot["seconds"] += seconds

    def _record_event(self, event: AbftEvent) -> None:
        with self._lock:
            self.report.detected += 1
            slot = self.report.by_phase.setdefault(
                event.phase or "?", {"verified": 0, "detected": 0, "seconds": 0.0}
            )
            slot["detected"] += 1
            if event.action == "corrected":
                self.report.corrected += 1
            elif event.action == "recomputed":
                self.report.recomputed += 1
            elif event.action == "raised":
                self.report.raised += 1
            if len(self.report.events) < _MAX_EVENTS:
                self.report.events.append(event)
        _live.inc("repro_sdc_detected_total")
        if event.action == "corrected":
            _live.inc("repro_sdc_corrected_total")
        elif event.action == "recomputed":
            _live.inc("repro_sdc_recomputed_total")
        if event.action in ("corrected", "recomputed"):
            with _obs.span("abft.correct", **event.to_dict()):
                pass

    # -- checksum math ------------------------------------------------------
    @staticmethod
    def _gemm_sums(out, av, bv):
        """Output row/col sums vs operand-derived references + tolerances."""
        row = out.sum(axis=-1, dtype=np.float64)
        col = out.sum(axis=-2, dtype=np.float64)
        a64 = av if av.dtype == np.float64 else av.astype(np.float64)
        b64 = bv if bv.dtype == np.float64 else bv.astype(np.float64)
        row_ref = a64 @ b64.sum(axis=-1, dtype=np.float64)[..., None]
        row_ref = row_ref[..., 0]
        col_ref = (a64.sum(axis=-2, dtype=np.float64)[..., None, :] @ b64)
        col_ref = col_ref[..., 0, :]
        absa = np.abs(a64)
        absb = np.abs(b64)
        row_scale = (absa @ absb.sum(axis=-1, dtype=np.float64)[..., None])[..., 0]
        col_scale = (absa.sum(axis=-2, dtype=np.float64)[..., None, :] @ absb)[..., 0, :]
        return row, row_ref, row_scale, col, col_ref, col_scale

    def _mismatch(self, got, ref, scale, eps):
        """Indices where |got - ref| exceeds the rounding-error bound.

        NaN/Inf disagreements count as mismatches (``<=`` is False), so
        nonfinite corruption localizes like any other.
        """
        tol = self.policy.eps_factor * eps * scale
        with np.errstate(invalid="ignore"):
            ok = np.abs(got - ref) <= tol
        return ~ok

    def _freivalds_rng(self, site: str, index: int) -> np.random.Generator:
        return np.random.default_rng(np.random.SeedSequence(
            [self.policy.freivalds_seed, zlib.crc32(site.encode()), index]
        ))

    # -- GEMM (2-D) ---------------------------------------------------------
    def guard_gemm(self, out, av, bv, *, precision, site: str,
                   phase: "str | None" = None, panel: "int | None" = None,
                   recompute=None, op: str = "gemm") -> np.ndarray:
        """Verify one 2-D launch; localize/correct per the policy.

        ``av``/``bv`` are the effective operand views (transposes applied,
        prepared operands unwrapped) such that ``out ≈ av @ bv``.
        ``recompute`` replays the launch deterministically and returns a
        fresh output array (correct mode only).
        """
        index = self._next_index(site)
        t0 = time.perf_counter()
        with _obs.span("abft.verify", site=site, op=op):
            eps = effective_eps(precision, out, av, bv)
            row, row_ref, row_scale, col, col_ref, col_scale = \
                self._gemm_sums(out, av, bv)
            bad_rows = np.flatnonzero(self._mismatch(row, row_ref, row_scale, eps))
            bad_cols = np.flatnonzero(self._mismatch(col, col_ref, col_scale, eps))
        self._account(phase=phase, seconds=time.perf_counter() - t0, probed=False)
        if bad_rows.size == 0 and bad_cols.size == 0:
            return out
        return self._handle_damage(
            out, bad_rows, bad_cols, site=site, index=index, op=op,
            phase=phase, panel=panel, precision=precision, recompute=recompute,
            reverify=lambda o: self._gemm_clean(o, av, bv, precision),
        )

    def _gemm_clean(self, out, av, bv, precision) -> bool:
        eps = effective_eps(precision, out, av, bv)
        row, row_ref, row_scale, col, col_ref, col_scale = \
            self._gemm_sums(out, av, bv)
        return (not self._mismatch(row, row_ref, row_scale, eps).any()
                and not self._mismatch(col, col_ref, col_scale, eps).any())

    # -- batched GEMM -------------------------------------------------------
    def guard_batched(self, out, av, bv, *, precision, site: str,
                      phase: "str | None" = None, panel: "int | None" = None,
                      recompute=None) -> np.ndarray:
        """Verify a 3-D stack — Freivalds probe for large batches.

        The probe projects every stack entry onto one deterministic ±1
        vector (``C·x`` vs ``A·(B·x)``): half the reduction passes of the
        full check.  A probe hit falls back to the full row+column pass
        so localization and correction work exactly as in the 2-D path.
        """
        batch = out.shape[0]
        use_probe = (0 < self.policy.freivalds_batch <= batch)
        index = self._next_index(site)
        suspicious = True
        if use_probe:
            t0 = time.perf_counter()
            with _obs.span("abft.verify", site=site, op="freivalds", batch=batch):
                eps = effective_eps(precision, out, av, bv)
                x = self._freivalds_rng(site, index).choice(
                    np.asarray([-1.0, 1.0]), size=out.shape[-1]
                )
                lhs = out @ x
                a64 = av if av.dtype == np.float64 else av.astype(np.float64)
                b64 = bv if bv.dtype == np.float64 else bv.astype(np.float64)
                rhs = (a64 @ (b64 @ x)[..., None])[..., 0]
                scale = (np.abs(a64) @ np.abs(b64).sum(axis=-1, dtype=np.float64)[..., None])[..., 0]
                suspicious = bool(self._mismatch(lhs, rhs, scale, eps).any())
            self._account(phase=phase, seconds=time.perf_counter() - t0, probed=True)
            if not suspicious:
                return out
        # Full pass: per-stack row/col checksums, handled entry by entry.
        t0 = time.perf_counter()
        with _obs.span("abft.verify", site=site, op="gemm_batched", batch=batch):
            eps = effective_eps(precision, out, av, bv)
            row, row_ref, row_scale, col, col_ref, col_scale = \
                self._gemm_sums(out, av, bv)
            bad_row_mask = self._mismatch(row, row_ref, row_scale, eps)
            bad_col_mask = self._mismatch(col, col_ref, col_scale, eps)
        if not use_probe:
            self._account(phase=phase, seconds=time.perf_counter() - t0,
                          probed=False)
        else:
            # Probe already counted the launch; fold in the fallback cost.
            with self._lock:
                self.report.verify_seconds += time.perf_counter() - t0
        bad_stacks = np.flatnonzero(bad_row_mask.any(axis=-1) | bad_col_mask.any(axis=-1))
        if bad_stacks.size == 0:
            return out
        clean_holder: list = [None]

        def stack_recompute(s):
            def _inner():
                if clean_holder[0] is None:
                    clean_holder[0] = recompute()
                return clean_holder[0][s]
            return _inner if recompute is not None else None

        for s in bad_stacks:
            out = self._handle_damage(
                out, np.flatnonzero(bad_row_mask[s]), np.flatnonzero(bad_col_mask[s]),
                site=site, index=index, op="gemm_batched", phase=phase,
                panel=panel, precision=precision,
                recompute=stack_recompute(int(s)), stack=int(s),
                reverify=lambda o, s=int(s): self._gemm_clean(
                    o[s], _view(av)[s], _view(bv)[s], precision),
            )
        return out

    # -- syr2k --------------------------------------------------------------
    def guard_syr2k(self, out, y, z, *, precision, site: str, alpha: float,
                    beta: float, pre, phase: "str | None" = None,
                    panel: "int | None" = None, recompute=None) -> np.ndarray:
        """Verify ``beta·C + alpha·(Y Zᵀ + Z Yᵀ)``.

        ``pre`` carries the float64 row/col sums (and |·| sums) of the
        accumulator *before* the launch when ``beta != 0`` (captured by
        the resilient wrapper); without it the update term is verified
        alone.
        """
        index = self._next_index(site)
        t0 = time.perf_counter()
        with _obs.span("abft.verify", site=site, op="syr2k"):
            eps = effective_eps(precision, out, y, z)
            y64 = y.astype(np.float64) if y.dtype != np.float64 else y
            z64 = z.astype(np.float64) if z.dtype != np.float64 else z
            # (Y Zᵀ + Z Yᵀ)·e = Y·(Zᵀe) + Z·(Yᵀe); the output is symmetric
            # so its column reference is the same vector.
            upd = alpha * (y64 @ z64.sum(axis=0, dtype=np.float64)
                           + z64 @ y64.sum(axis=0, dtype=np.float64))
            absy, absz = np.abs(y64), np.abs(z64)
            upd_scale = abs(alpha) * (absy @ absz.sum(axis=0, dtype=np.float64)
                                      + absz @ absy.sum(axis=0, dtype=np.float64))
            if pre is not None:
                row_ref = beta * pre.row + upd
                col_ref = beta * pre.col + upd
                row_scale = abs(beta) * pre.absrow + upd_scale
                col_scale = abs(beta) * pre.abscol + upd_scale
            else:
                row_ref = col_ref = upd
                row_scale = col_scale = upd_scale
            row = out.sum(axis=1, dtype=np.float64)
            col = out.sum(axis=0, dtype=np.float64)
            bad_rows = np.flatnonzero(self._mismatch(row, row_ref, row_scale, eps))
            bad_cols = np.flatnonzero(self._mismatch(col, col_ref, col_scale, eps))
        self._account(phase=phase, seconds=time.perf_counter() - t0, probed=False)
        if bad_rows.size == 0 and bad_cols.size == 0:
            return out

        def reverify(o):
            r = o.sum(axis=1, dtype=np.float64)
            c = o.sum(axis=0, dtype=np.float64)
            return (not self._mismatch(r, row_ref, row_scale, eps).any()
                    and not self._mismatch(c, col_ref, col_scale, eps).any())

        return self._handle_damage(
            out, bad_rows, bad_cols, site=site, index=index, op="syr2k",
            phase=phase, panel=panel, precision=precision, recompute=recompute,
            reverify=reverify,
        )

    # -- driver-level copies (bulge band input) ------------------------------
    def guard_copy(self, out, ref, *, site: str, phase: "str | None" = None,
                   panel: "int | None" = None) -> np.ndarray:
        """Verify a driver-level array copy against its pristine source.

        Used where data crosses a phase boundary outside the engine (the
        bulge chaser consumes a copy of the band): the reference is in
        memory, so the comparison is exact and correction is a patch
        from the source.  Detect mode raises like any other site.
        """
        index = self._next_index(site)
        t0 = time.perf_counter()
        with _obs.span("abft.verify", site=site, op="copy"):
            with np.errstate(invalid="ignore"):
                equal = (out == ref) | (np.isnan(out) & np.isnan(ref))
        self._account(phase=phase, seconds=time.perf_counter() - t0, probed=False)
        if equal.all():
            return out
        bad = np.argwhere(~equal)
        row = col = None
        if bad.shape[0] == 1 and out.ndim == 2:
            row, col = (int(v) for v in bad[0])
        if self.policy.mode == "correct":
            action = "corrected" if bad.shape[0] == 1 else "recomputed"
            np.copyto(out, ref, where=~equal)
            self._record_event(AbftEvent(
                site=site, call_index=index, op="copy", action=action,
                phase=phase, row=row, col=col, magnitude=float(bad.shape[0]),
            ))
            return out
        event = AbftEvent(site=site, call_index=index, op="copy",
                          action="raised", phase=phase, row=row, col=col,
                          magnitude=float(bad.shape[0]))
        self._record_event(event)
        raise SdcError(
            f"ABFT copy guard at site {site!r}: {bad.shape[0]} element(s) "
            f"differ from the pristine source",
            phase=phase, panel=panel, site=site, call_index=index,
            row=row, col=col, op="copy",
        )

    # -- damage handling -----------------------------------------------------
    def _handle_damage(self, out, bad_rows, bad_cols, *, site, index, op,
                       phase, panel, precision, recompute, reverify,
                       stack: "int | None" = None):
        """Locate → correct → recompute → escalate one damaged launch."""
        target = out if stack is None else out[stack]
        single = (bad_rows.size == 1 and bad_cols.size == 1 and target.ndim == 2)
        row = int(bad_rows[0]) if single else None
        col = int(bad_cols[0]) if single else None
        magnitude = float(max(bad_rows.size, bad_cols.size))
        prec_name = getattr(precision, "value", str(precision))

        if self.policy.mode == "correct" and recompute is not None:
            for attempt in range(self.policy.max_recomputes):
                clean = recompute()
                if single and attempt == 0:
                    target[row, col] = clean[row, col]
                    action = "corrected"
                else:
                    np.copyto(target, clean, casting="same_kind")
                    action = "recomputed"
                if reverify is None or reverify(out):
                    self._record_event(AbftEvent(
                        site=site, call_index=index, op=op, action=action,
                        phase=phase, row=row, col=col, magnitude=magnitude,
                    ))
                    return out
        self._record_event(AbftEvent(
            site=site, call_index=index, op=op, action="raised",
            phase=phase, row=row, col=col, magnitude=magnitude,
        ))
        mode_note = ("persistent damage survived recomputation"
                     if self.policy.mode == "correct" else "detect mode")
        raise SdcError(
            f"ABFT checksum mismatch at site {site!r}: {bad_rows.size} row / "
            f"{bad_cols.size} column checksum(s) disagree ({mode_note})",
            phase=phase, panel=panel, site=site, precision=prec_name,
            call_index=index, row=row, col=col, op=op,
        )
