"""repro.resilience — numerical-resilience: detectors, escalation, faults.

The solvers run FP16 Tensor-Core GEMMs at the edge of numerical safety
(machine eps ~1e-4, rescued only by error correction), so overflow, NaN
propagation, lost orthogonality, and norm explosion are first-class
failure modes.  This package makes the library detect them mid-run and
degrade gracefully instead of returning silently-wrong eigenpairs:

- :mod:`repro.resilience.detectors` — cheap invariant monitors (NaN/Inf
  scans, panel-Q orthogonality drift, norm growth, symmetry drift,
  residual probes) raising :class:`repro.errors.NumericalBreakdownError`
  with phase/panel context.
- :mod:`repro.resilience.abft` — online ABFT: Huang–Abraham row/column
  checksum verification of every guarded GEMM launch, single-element
  localization and bitwise-exact correction, a Freivalds probe for
  batched launches, and :class:`repro.errors.SdcError` escalation into
  the retry ladder (knob ``abft="off"|"detect"|"correct"``).  Also the
  shared implementation behind the at-rest checkpoint signatures.
- :mod:`repro.resilience.policy` — the precision-escalation ladder
  (``FP16_TC -> FP16_EC_TC -> TF32_TC -> FP32 -> FP64``) with a retry
  budget and exponential widening, plus the per-run
  :class:`ResilienceReport`.
- :mod:`repro.resilience.context` — the per-run orchestrator: wraps GEMM
  engines, drives per-panel checkpoint/retry in the SBR drivers, and
  emits every detection/escalation as obs spans.
- :mod:`repro.resilience.faults` — the deterministic fault-injection
  harness tests use to prove every detector fires and every fallback
  path recovers.
- :mod:`repro.resilience.crash` — crash-fault injection for the durable
  checkpoint/restart subsystem (:mod:`repro.ckpt`): kill-at-site,
  torn-write, and stale-schema faults that drive the recovery tests.

Driver-level use::

    from repro import syevd_2stage
    res = syevd_2stage(a, b=16, precision="fp16_tc", on_breakdown="escalate")
    res.resilience_report.empty      # True on a healthy run
    res.resilience_report.summary()  # what was detected/escalated

See ``docs/resilience.md`` for the detector catalogue, ladder semantics,
and the fault-injection cookbook.
"""

from .context import BREAKDOWN_MODES, ResilienceContext, ResilientEngine
from .crash import CRASH_KINDS, CrashFaultSpec, CrashInjector, parse_kill_site
from .abft import (
    ABFT_MODES,
    AbftChecker,
    AbftEvent,
    AbftPolicy,
    AbftReport,
    Syr2kPre,
    abft_signature,
    checksum_crc,
    sum_vectors,
    verify_abft,
)
from .detectors import (
    DetectorBank,
    DetectorConfig,
    has_nonfinite,
    max_abs,
    panel_orthogonality_defect,
    residual_probe,
    symmetry_defect,
)
from .faults import FAULT_KINDS, FaultInjector, FaultRecord, FaultSpec
from .policy import (
    DetectionRecord,
    EscalationLadder,
    EscalationRecord,
    ResilienceReport,
    backoff,
)

__all__ = [
    "BREAKDOWN_MODES",
    "ResilienceContext",
    "ResilientEngine",
    "ABFT_MODES",
    "AbftChecker",
    "AbftEvent",
    "AbftPolicy",
    "AbftReport",
    "Syr2kPre",
    "abft_signature",
    "checksum_crc",
    "sum_vectors",
    "verify_abft",
    "CRASH_KINDS",
    "CrashFaultSpec",
    "CrashInjector",
    "parse_kill_site",
    "DetectorBank",
    "DetectorConfig",
    "has_nonfinite",
    "max_abs",
    "panel_orthogonality_defect",
    "residual_probe",
    "symmetry_defect",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultRecord",
    "FaultSpec",
    "DetectionRecord",
    "EscalationLadder",
    "EscalationRecord",
    "ResilienceReport",
    "backoff",
]
