"""The per-run resilience orchestrator: wraps engines, records, retries.

One :class:`ResilienceContext` lives for one driver invocation.  It owns

- the wrapped :class:`ResilientEngine` (fault injection + post-GEMM
  detectors on every matrix multiply),
- the :class:`~repro.resilience.policy.EscalationLadder` and the retry
  decision (:meth:`ResilienceContext.handle_breakdown`),
- the :class:`~repro.resilience.policy.ResilienceReport` the driver
  attaches to its result,
- the phase/panel stack that gives every raised
  :class:`~repro.errors.NumericalBreakdownError` its context, and
- the obs emission: every detection and escalation is also recorded as a
  zero-duration ``resilience.detect`` / ``resilience.escalate`` span so
  it lands in run manifests next to the phase timeline.

Drivers use it via the *unit protocol*: wrap each retryable unit (a
panel plus its trailing update, a stage) in :meth:`unit`, checkpoint the
mutable state first, and on :class:`NumericalBreakdownError` ask
:meth:`handle_breakdown` whether to restore + retry (possibly at an
escalated precision) or to propagate.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..errors import ConfigurationError, NumericalBreakdownError, SdcError
from ..gemm.engine import GemmEngine, make_engine
from ..gemm.trace import GemmRecord
from ..obs import spans as obs
from ..obs.live import registry as _live
from ..precision.modes import Precision
from .abft import AbftChecker, AbftPolicy, Syr2kPre
from .detectors import DetectorBank, DetectorConfig
from .faults import FaultInjector
from .policy import DetectionRecord, EscalationLadder, EscalationRecord, ResilienceReport

__all__ = ["BREAKDOWN_MODES", "ResilientEngine", "ResilienceContext"]

BREAKDOWN_MODES = ("raise", "escalate", "best_effort")


class ResilientEngine:
    """GEMM engine wrapper: inject faults, run detectors, allow escalation.

    Duck-types the :class:`~repro.gemm.engine.GemmEngine` interface the
    drivers consume (``gemm``/``syr2k``/``precision``/``working_dtype``/
    ``trace``).  The *base* engine implements the run's requested
    precision policy; :meth:`escalate_to` swaps in a safer engine, and
    GEMMs executed while escalated are still appended to the base
    engine's trace (tagged with the escalated engine's name) so the
    recorded stream stays complete.
    """

    def __init__(self, base: GemmEngine, ctx: "ResilienceContext") -> None:
        self.base = base
        self._inner = base
        self._ctx = ctx
        self._lock = threading.Lock()

    # -- GemmEngine surface -------------------------------------------------
    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def precision(self) -> Precision:
        return self._inner.precision

    @property
    def working_dtype(self) -> np.dtype:
        # The *storage* dtype must stay the base policy's: escalation
        # re-runs a unit in wider arithmetic but writes back into the
        # same matrices.
        return self.base.working_dtype

    @property
    def trace(self):
        return self.base.trace

    def reset_trace(self) -> None:
        self.base.reset_trace()

    @property
    def workspace(self):
        return self.base.workspace

    def gemm(self, a, b, *, tag: str = "", out=None, ta: bool = False,
             tb: bool = False) -> np.ndarray:
        """Policy GEMM with injection + detection.

        Note: even with ``out=`` the *returned* array is authoritative —
        fault injection may substitute a different array than the buffer
        the inner engine wrote.  All callers must use the return value.
        """
        inner = self._inner
        res = inner.gemm(a, b, tag=tag, out=out, ta=ta, tb=tb)
        if inner is not self.base and self.base.trace is not None:
            rec = GemmRecord(
                m=res.shape[0], n=res.shape[1], k=np.asarray(a).shape[0 if ta else 1],
                tag=tag, engine=inner.name,
            )
            with self.base._trace_lock:
                self.base.trace.add(rec)
        # Zero-overhead-off contract: with ABFT off this is one attribute
        # read and a None check on the hot path.
        if self._ctx.abft is None:
            return self._ctx.after_gemm(res, site=tag, precision=inner.precision)
        return self._ctx.after_gemm_abft(
            res, a, b, inner=inner, site=tag, ta=ta, tb=tb, out_buf=out,
        )

    def gemm_batched(self, a, b, *, tag: str = "", out=None, ta: bool = False,
                     tb: bool = False) -> np.ndarray:
        """Batched policy GEMM with injection + detection (one stack check)."""
        inner = self._inner
        res = inner.gemm_batched(a, b, tag=tag, out=out, ta=ta, tb=tb)
        if inner is not self.base and self.base.trace is not None:
            rec = GemmRecord(
                m=res.shape[1], n=res.shape[2],
                k=np.asarray(a).shape[1 if ta else 2],
                tag=tag, engine=inner.name, op="gemm_batched", batch=res.shape[0],
            )
            with self.base._trace_lock:
                self.base.trace.add(rec)
        if self._ctx.abft is None:
            return self._ctx.after_gemm(res, site=tag, precision=inner.precision)
        return self._ctx.after_batched_abft(
            res, a, b, inner=inner, site=tag, ta=ta, tb=tb, out_buf=out,
        )

    def syr2k(self, y, z, *, tag: str = "", out=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        inner = self._inner
        ab = self._ctx.abft
        pre = snapshot = None
        if ab is not None and out is not None and beta != 0.0:
            # The accumulator's checksums (and, in correct mode, its full
            # contents for the replay) must be captured before the launch
            # scales them away.
            pre = Syr2kPre.capture(out)
            if ab.policy.mode == "correct":
                snapshot = np.array(out, copy=True)
        res = inner.syr2k(y, z, tag=tag, out=out, alpha=alpha, beta=beta)
        if inner is not self.base and self.base.trace is not None:
            yy = np.asarray(y)
            rec = GemmRecord(
                m=yy.shape[0], n=yy.shape[0], k=yy.shape[1],
                tag=tag, engine=inner.name, op="syr2k",
            )
            with self.base._trace_lock:
                self.base.trace.add(rec)
        if ab is None:
            return self._ctx.after_gemm(res, site=tag, precision=inner.precision)
        return self._ctx.after_syr2k_abft(
            res, y, z, inner=inner, site=tag, alpha=alpha, beta=beta,
            pre=pre, snapshot=snapshot,
        )

    # -- escalation ---------------------------------------------------------
    def escalate_to(self, precision: Precision) -> None:
        """Swap in an engine implementing a safer precision policy."""
        with self._lock:
            if precision is self.base.precision:
                self._inner = self.base
            else:
                self._inner = make_engine(precision)

    def restore_base(self) -> None:
        """Return to the run's requested base precision."""
        with self._lock:
            self._inner = self.base

    @property
    def escalated(self) -> bool:
        return self._inner is not self.base

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"escalated->{self._inner.name}" if self.escalated else "base"
        return f"<ResilientEngine {self.base.name} ({state})>"


class _Unit:
    """Context manager for one retryable unit (see ResilienceContext.unit)."""

    __slots__ = ("_ctx", "phase", "panel")

    def __init__(self, ctx: "ResilienceContext", phase: str, panel: "int | None") -> None:
        self._ctx = ctx
        self.phase = phase
        self.panel = panel

    def __enter__(self) -> "_Unit":
        self._ctx._stack.append((self.phase, self.panel))
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ctx = self._ctx
        ctx._stack.pop()
        if exc_type is None:
            ctx._on_unit_success(self.phase)
        return False


class ResilienceContext:
    """Per-run resilience state: detectors, ladder, injector, report.

    Parameters
    ----------
    on_breakdown : {"escalate", "raise", "best_effort"}
        What to do when a detector fires: retry at escalated precision
        (default), propagate the :class:`NumericalBreakdownError`, or
        escalate and — if even the top of the ladder fails — finish the
        unit with detectors suppressed and record it in the report.
    ladder : EscalationLadder, optional
        Retry budget / widening / stickiness policy.
    detectors : DetectorConfig or DetectorBank, optional
        Which invariant monitors run and how strict they are.
    injector : FaultInjector, optional
        Test-only deterministic fault injection.
    abft : {"off", "detect", "correct"} or AbftPolicy, optional
        Online ABFT over every guarded engine launch
        (:mod:`repro.resilience.abft`).  ``None``/``"off"`` keeps the
        layer out of the hot path entirely.
    """

    def __init__(
        self,
        *,
        on_breakdown: str = "escalate",
        ladder: EscalationLadder | None = None,
        detectors: "DetectorConfig | DetectorBank | None" = None,
        injector: FaultInjector | None = None,
        abft=None,
    ) -> None:
        if on_breakdown not in BREAKDOWN_MODES:
            raise ConfigurationError(
                f"on_breakdown must be one of {BREAKDOWN_MODES}, got {on_breakdown!r}"
            )
        self.mode = on_breakdown
        self.ladder = ladder if ladder is not None else EscalationLadder()
        if isinstance(detectors, DetectorBank):
            self.detectors = detectors
        else:
            self.detectors = DetectorBank(detectors)
        self.injector = injector
        policy = AbftPolicy.from_knob(abft)
        #: AbftChecker or None — the single attribute the engine wrapper
        #: reads per launch (the zero-overhead-off contract).
        self.abft = AbftChecker(policy) if policy is not None else None
        self.report = ResilienceReport()
        self._stack: list[tuple[str, "int | None"]] = []
        self._engines: list[ResilientEngine] = []
        self._suppress = False

    # -- wiring -------------------------------------------------------------
    @property
    def can_retry(self) -> bool:
        return self.mode in ("escalate", "best_effort")

    def wrap_engine(self, engine: GemmEngine) -> ResilientEngine:
        """Wrap a numeric engine for injection + detection + escalation."""
        if isinstance(engine, ResilientEngine):
            return engine
        wrapped = ResilientEngine(engine, self)
        self._engines.append(wrapped)
        return wrapped

    def unit(self, phase: str, *, panel: "int | None" = None) -> _Unit:
        """Enter one retryable unit; gives detector errors their context."""
        return _Unit(self, phase, panel)

    def current_unit(self) -> tuple["str | None", "int | None"]:
        if self._stack:
            return self._stack[-1]
        return None, None

    # -- hooks (called by ResilientEngine and by drivers) --------------------
    def inject(self, site: str, arr: np.ndarray) -> np.ndarray:
        """Pass an array through a driver-level fault-injection site."""
        if self.injector is None:
            return arr
        before = len(self.injector.fired)
        out = self.injector.apply(site, arr)
        for rec in self.injector.fired[before:]:
            self.report.faults_injected.append(rec.to_dict())
            _live.inc("repro_resilience_faults_total")
            with obs.span("resilience.fault", **rec.to_dict()):
                pass
        return out

    def after_gemm(self, out: np.ndarray, *, site: str, precision: Precision) -> np.ndarray:
        """Engine hook: inject due faults, then run the output detectors."""
        out = self.inject(site, out)
        self._run_detectors(out, site=site, precision=precision)
        return out

    def _run_detectors(self, out: np.ndarray, *, site: str,
                       precision: Precision) -> None:
        if self._suppress:
            return
        phase, panel = self.current_unit()
        try:
            self.detectors.check_output(
                out, site=site, phase=phase, panel=panel, precision=precision
            )
        except NumericalBreakdownError as exc:
            self._record_detection(exc)
            raise

    # -- online ABFT hooks ---------------------------------------------------
    @staticmethod
    def _operand_view(x, transpose: bool) -> np.ndarray:
        """Effective operand view: prepared operands unwrapped, ``ta``/``tb``
        applied — the matrix the engine actually multiplied."""
        arr = np.asarray(getattr(x, "array", x))
        if transpose:
            arr = arr.swapaxes(-2, -1)
        return arr

    def _guard(self, check, out, *, site: str, precision: Precision) -> np.ndarray:
        """Run one checker call, recording any SdcError like a detection."""
        try:
            out = check()
        except SdcError as exc:
            self._record_detection(exc)
            raise
        self._run_detectors(out, site=site, precision=precision)
        return out

    def after_gemm_abft(self, out, a, b, *, inner, site: str,
                        ta: bool = False, tb: bool = False,
                        out_buf=None) -> np.ndarray:
        """Engine hook with online ABFT: inject, verify, correct, detect."""
        out = self.inject(site, out)
        av = self._operand_view(a, ta)
        bv = self._operand_view(b, tb)
        if out_buf is not None and (np.may_share_memory(out_buf, av)
                                    or np.may_share_memory(out_buf, bv)):
            # The launch clobbered its own operand (aliased out=); the
            # checksum references are gone — fall back to the detectors.
            self._run_detectors(out, site=site, precision=inner.precision)
            return out
        phase, panel = self.current_unit()
        recompute = None
        if self.abft.policy.mode == "correct":
            def recompute():
                # Deterministic replay through the raw engine; routed back
                # through the injector so persistent faults stay visible.
                return self.inject(site, inner.gemm(a, b, tag=site, ta=ta, tb=tb))
        return self._guard(
            lambda: self.abft.guard_gemm(
                out, av, bv, precision=inner.precision, site=site,
                phase=phase, panel=panel, recompute=recompute,
            ),
            out, site=site, precision=inner.precision,
        )

    def after_batched_abft(self, out, a, b, *, inner, site: str,
                           ta: bool = False, tb: bool = False,
                           out_buf=None) -> np.ndarray:
        """Batched-GEMM hook with online ABFT (Freivalds for big stacks)."""
        out = self.inject(site, out)
        av = self._operand_view(a, ta)
        bv = self._operand_view(b, tb)
        if out_buf is not None and (np.may_share_memory(out_buf, av)
                                    or np.may_share_memory(out_buf, bv)):
            self._run_detectors(out, site=site, precision=inner.precision)
            return out
        phase, panel = self.current_unit()
        recompute = None
        if self.abft.policy.mode == "correct":
            def recompute():
                return self.inject(
                    site, inner.gemm_batched(a, b, tag=site, ta=ta, tb=tb)
                )
        return self._guard(
            lambda: self.abft.guard_batched(
                out, av, bv, precision=inner.precision, site=site,
                phase=phase, panel=panel, recompute=recompute,
            ),
            out, site=site, precision=inner.precision,
        )

    def after_syr2k_abft(self, out, y, z, *, inner, site: str, alpha: float,
                         beta: float, pre, snapshot) -> np.ndarray:
        """syr2k hook with online ABFT (pre-launch accumulator checksums)."""
        out = self.inject(site, out)
        yv = np.asarray(y)
        zv = np.asarray(z)
        phase, panel = self.current_unit()
        recompute = None
        if self.abft.policy.mode == "correct":
            def recompute():
                if beta != 0.0:
                    buf = np.array(snapshot, copy=True)
                    r = inner.syr2k(y, z, tag=site, out=buf, alpha=alpha,
                                    beta=beta)
                else:
                    r = inner.syr2k(y, z, tag=site, alpha=alpha)
                return self.inject(site, r)
        return self._guard(
            lambda: self.abft.guard_syr2k(
                out, yv, zv, precision=inner.precision, site=site,
                alpha=alpha, beta=beta, pre=pre, phase=phase, panel=panel,
                recompute=recompute,
            ),
            out, site=site, precision=inner.precision,
        )

    def guard_copy(self, site: str, arr: np.ndarray,
                   ref: np.ndarray) -> np.ndarray:
        """Driver hook: ABFT copy guard for data crossing a phase boundary."""
        if self.abft is None:
            return arr
        phase, panel = self.current_unit()
        try:
            return self.abft.guard_copy(arr, ref, site=site, phase=phase,
                                        panel=panel)
        except SdcError as exc:
            self._record_detection(exc)
            raise

    def check_array(self, arr: np.ndarray, *, site: str,
                    precision: Precision = Precision.FP64) -> None:
        """Driver hook: NaN/Inf + magnitude scan of a stage output."""
        if self._suppress:
            return
        phase, panel = self.current_unit()
        try:
            self.detectors.check_output(
                arr, site=site, phase=phase, panel=panel, precision=precision
            )
        except NumericalBreakdownError as exc:
            self._record_detection(exc)
            raise

    def check_panel(self, w: np.ndarray, y: np.ndarray, *, precision: Precision) -> None:
        """Driver hook: panel-Q orthogonality drift."""
        if self._suppress:
            return
        phase, panel = self.current_unit()
        try:
            self.detectors.check_panel_q(
                w, y, phase=phase, panel=panel, precision=precision
            )
        except NumericalBreakdownError as exc:
            self._record_detection(exc)
            raise

    def check_norm_growth(self, arr: np.ndarray, baseline: float, *,
                          precision: Precision, site: str = "") -> None:
        """Driver hook: trailing-matrix norm growth vs. phase baseline."""
        if self._suppress:
            return
        phase, panel = self.current_unit()
        try:
            self.detectors.check_norm_growth(
                arr, baseline, phase=phase, panel=panel,
                precision=precision, site=site,
            )
        except NumericalBreakdownError as exc:
            self._record_detection(exc)
            raise

    def check_symmetry(self, a: np.ndarray, *, precision: Precision,
                       norm: "float | None" = None) -> None:
        """Driver hook: symmetry drift of a trailing block (sampled)."""
        if self._suppress:
            return
        phase, panel = self.current_unit()
        try:
            self.detectors.check_symmetry(
                a, phase=phase, panel=panel, precision=precision, norm=norm
            )
        except NumericalBreakdownError as exc:
            self._record_detection(exc)
            raise

    def check_residual(self, a: np.ndarray, q: np.ndarray, band: np.ndarray, *,
                       precision: Precision) -> None:
        """Driver hook: sampled factorization-residual probe."""
        if self._suppress:
            return
        phase, _ = self.current_unit()
        try:
            self.detectors.check_residual(
                a, q, band, phase=phase, precision=precision
            )
        except NumericalBreakdownError as exc:
            self._record_detection(exc)
            raise

    # -- retry decision -----------------------------------------------------
    def handle_breakdown(
        self,
        exc: Exception,
        *,
        engine: "ResilientEngine | None",
        attempt: int,
        phase: str,
        panel: "int | None" = None,
    ) -> bool:
        """Decide whether the failed unit retries (escalating the engine).

        Parameters
        ----------
        exc : Exception
            The breakdown (``NumericalBreakdownError`` or an escalatable
            factorization error like ``SingularMatrixError``).
        engine : ResilientEngine or None
            The unit's engine (None for engine-less stages such as bulge
            chasing, which retry without a precision change).
        attempt : int
            Retries already taken for this unit (0 on first failure).

        Returns
        -------
        bool
            True: restore the checkpoint and re-run the unit.  False:
            propagate ``exc`` to the caller.
        """
        if not self.can_retry:
            return False
        if attempt >= self.ladder.max_retries:
            if self.mode == "best_effort" and not self._suppress:
                # Final pass: top of the ladder, detectors off — return
                # *something* and say so in the report.  Granted at most
                # once per unit: if the suppressed pass *still* fails (a
                # structural guard like a degenerate pivot trips even with
                # detectors off), the error propagates rather than
                # retrying forever.
                if engine is not None:
                    engine.escalate_to(Precision.FP64)
                self._suppress = True
                if phase not in self.report.best_effort:
                    self.report.best_effort.append(phase)
                self.report.retries += 1
                return True
            return False
        self.report.retries += 1
        if engine is not None:
            current = engine.precision
            target = self.ladder.escalate(current, attempt + 1)
            if target is not None:
                engine.escalate_to(target)
                rec = EscalationRecord(
                    phase=phase,
                    from_precision=current.value,
                    to_precision=target.value,
                    attempt=attempt + 1,
                    panel=panel,
                    reason=getattr(exc, "detector", None) or type(exc).__name__,
                )
                self.report.escalations.append(rec)
                _live.inc("repro_resilience_escalations_total")
                with obs.span("resilience.escalate", **rec.to_dict()):
                    pass
        wait = self.ladder.delay(attempt + 1)
        if wait > 0.0:
            # Only pauses when the ladder opts into a non-zero backoff base
            # (the serving layer does; in-process retries keep base=0).
            time.sleep(wait)
        return True

    def note_precision(self, phase: str, precision: "Precision | str") -> None:
        """Record the precision a phase finished at (engine-less phases)."""
        name = precision.value if isinstance(precision, Precision) else str(precision)
        self.report.final_precision[phase] = name

    # -- internals ----------------------------------------------------------
    def _record_detection(self, exc: NumericalBreakdownError) -> None:
        rec = DetectionRecord(
            phase=exc.phase or "", detector=exc.detector or "",
            site=exc.site or "", panel=exc.panel,
            value=exc.value, threshold=exc.threshold,
            precision=exc.precision or "",
        )
        self.report.detections.append(rec)
        _live.inc("repro_resilience_detections_total",
                  detector=rec.detector or "unknown")
        with obs.span("resilience.detect", **rec.to_dict()):
            pass

    def _on_unit_success(self, phase: str) -> None:
        self._suppress = False
        if not self.ladder.sticky:
            for eng in self._engines:
                eng.restore_base()
