"""Failure detectors: cheap invariant monitors for the numerical hot path.

The solvers run at the edge of numerical safety (FP16 Tensor-Core GEMMs
whose accuracy is rescued only by error correction), so overflow, NaN
propagation, lost orthogonality, and norm explosion are first-class
failure modes.  This module provides the *measurements*; thresholds and
the decision to raise :class:`repro.errors.NumericalBreakdownError` live
in :class:`DetectorBank` (configured per-run by the resilience context).

Detector catalogue
------------------
``nonfinite``      NaN/Inf scan of GEMM outputs and stage boundaries
``magnitude``      max-abs overflow guard (catches pre-Inf blowup)
``orthogonality``  panel-Q drift ``max|Q^T Q - I|`` of the WY factors
``norm_growth``    trailing-matrix max-norm growth vs. the phase baseline
``symmetry``       drift ``max|A - A^T|`` of (sampled) trailing blocks
``residual``       sampled matvec residual ``|A x - Q B Q^T x| / (|A| |x|)``

All measurements are O(rows·cols) or cheaper — negligible next to the
O(m·n·k) GEMMs they guard.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import NumericalBreakdownError
from ..precision.modes import Precision

__all__ = [
    "DetectorConfig",
    "DetectorBank",
    "effective_eps",
    "has_nonfinite",
    "max_abs",
    "panel_orthogonality_defect",
    "symmetry_defect",
    "residual_probe",
]


def has_nonfinite(arr: np.ndarray) -> bool:
    """Whether ``arr`` contains any NaN or Inf entry (full scan)."""
    return not bool(np.isfinite(arr).all())


def max_abs(arr: np.ndarray) -> float:
    """``max|arr|`` ignoring NaNs (0.0 for empty input)."""
    if arr.size == 0:
        return 0.0
    with np.errstate(invalid="ignore"):
        return float(np.nanmax(np.abs(arr))) if np.isfinite(arr).any() else float("inf")


def panel_orthogonality_defect(w: np.ndarray, y: np.ndarray) -> float:
    """Orthogonality drift ``max|Q^T Q - I|`` of a panel's WY factor.

    ``Q = (I - W Y^T)[:, :k]`` is the panel's orthonormal factor; its
    first ``k`` columns are ``E - W Y_1^T`` (``Y_1`` = leading k rows),
    computable in O(m k^2) — the same order as the panel factorization
    itself, and far below the trailing updates it guards.
    """
    k = w.shape[1]
    if k == 0:
        return 0.0
    qp = -w @ y[:k, :].T
    idx = np.arange(k)
    qp[idx, idx] += 1.0
    gram = qp.T @ qp
    gram[idx, idx] -= 1.0
    return max_abs(gram)


def symmetry_defect(a: np.ndarray, *, sample: int | None = 64) -> float:
    """Symmetry drift ``max|A - A^T|`` (optionally over a sampled grid).

    For large blocks a strided index sample keeps the probe O(sample^2)
    while still catching broad corruption; ``sample=None`` scans fully.
    """
    n = a.shape[0]
    if n < 2:
        return 0.0
    if sample is not None and n > sample:
        idx = np.linspace(0, n - 1, sample).astype(np.intp)
        sub = a[np.ix_(idx, idx)]
        return float(max_abs(sub - sub.T))
    return float(max_abs(a - a.T))


def residual_probe(
    a: np.ndarray,
    q: np.ndarray,
    band: np.ndarray,
    *,
    samples: int = 2,
    seed: int = 0,
) -> float:
    """Sampled band-reduction residual ``max_x |A x - Q B Q^T x| / (|A| |x|)``.

    Probes the factorization ``A ≈ Q B Q^T`` with a few random vectors —
    O(n^2) per sample instead of the O(n^3) dense residual — enough to
    catch a corrupted trailing update that left ``Q``/``B`` inconsistent
    with ``A``.
    """
    rng = np.random.default_rng(seed)
    n = a.shape[0]
    a64 = np.asarray(a, dtype=np.float64)
    q64 = np.asarray(q, dtype=np.float64)
    b64 = np.asarray(band, dtype=np.float64)
    norm_a = float(np.linalg.norm(a64, ord=np.inf)) or 1.0
    worst = 0.0
    for _ in range(samples):
        x = rng.standard_normal(n)
        lhs = a64 @ x
        rhs = q64 @ (b64 @ (q64.T @ x))
        denom = norm_a * float(np.linalg.norm(x)) or 1.0
        worst = max(worst, float(np.linalg.norm(lhs - rhs)) / denom)
    return worst


def effective_eps(precision: Precision, *arrays: np.ndarray) -> float:
    """Largest machine epsilon among the compute precision and the
    storage dtypes of ``arrays``.

    Escalated retries compute in wider arithmetic but still read/write
    the run's storage dtype, so drift tolerances must floor at the
    storage eps — an FP64 retry of an FP32 run cannot beat FP32 accuracy.
    """
    eps = precision.machine_eps
    for arr in arrays:
        if arr.dtype.kind == "f":
            eps = max(eps, float(np.finfo(arr.dtype).eps))
    return eps


@dataclass
class DetectorConfig:
    """Which detectors run, and how strict they are.

    Thresholds for the drift detectors scale with the active precision's
    machine epsilon (``eps_factor * k * eps``) so the same config is
    usable from FP16 through FP64 without spurious trips.
    """

    nonfinite: bool = True
    magnitude: bool = True
    magnitude_limit: float = 1e25
    orthogonality: bool = True
    orthogonality_eps_factor: float = 200.0
    norm_growth: bool = True
    norm_growth_factor: float = 1e4
    symmetry: bool = True
    symmetry_eps_factor: float = 500.0
    symmetry_sample: int = 64
    residual: bool = False
    residual_eps_factor: float = 1e4
    probe_stride: int = 1  # run drift probes every k-th panel

    def orthogonality_tol(self, k: int, eps: float) -> float:
        return self.orthogonality_eps_factor * max(k, 1) * eps

    def symmetry_tol(self, norm: float, eps: float) -> float:
        return self.symmetry_eps_factor * max(norm, 1.0) * eps

    def residual_tol(self, eps: float) -> float:
        return self.residual_eps_factor * eps


class DetectorBank:
    """Runs the configured detectors and raises on violation.

    The bank is stateless apart from its config; the caller (the
    resilience context) supplies phase/panel/site context so the raised
    :class:`NumericalBreakdownError` is actionable.
    """

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()

    # Each check returns None when healthy, or raises NumericalBreakdownError.
    def check_output(
        self,
        arr: np.ndarray,
        *,
        site: str,
        phase: str | None,
        panel: int | None,
        precision: Precision,
    ) -> None:
        """Post-GEMM output check: NaN/Inf scan plus magnitude guard."""
        cfg = self.config
        if cfg.nonfinite and has_nonfinite(arr):
            raise NumericalBreakdownError(
                "non-finite entries in GEMM output",
                phase=phase, panel=panel, detector="nonfinite", site=site,
                precision=precision.value,
            )
        if cfg.magnitude:
            mx = max_abs(arr)
            if mx > cfg.magnitude_limit:
                raise NumericalBreakdownError(
                    "GEMM output magnitude exceeds overflow guard",
                    phase=phase, panel=panel, detector="magnitude", site=site,
                    value=mx, threshold=cfg.magnitude_limit,
                    precision=precision.value,
                )

    def check_panel_q(
        self,
        w: np.ndarray,
        y: np.ndarray,
        *,
        phase: str | None,
        panel: int | None,
        precision: Precision,
    ) -> None:
        """Panel-Q orthogonality drift ``max|Q^T Q - I|``."""
        if not self.config.orthogonality:
            return
        defect = panel_orthogonality_defect(w, y)
        tol = self.config.orthogonality_tol(
            w.shape[1], effective_eps(precision, w, y)
        )
        if not np.isfinite(defect) or defect > tol:
            raise NumericalBreakdownError(
                "panel Q lost orthogonality",
                phase=phase, panel=panel, detector="orthogonality",
                value=float(defect), threshold=tol, precision=precision.value,
            )

    def check_norm_growth(
        self,
        arr: np.ndarray,
        baseline: float,
        *,
        phase: str | None,
        panel: int | None,
        precision: Precision,
        site: str = "",
    ) -> None:
        """Trailing-matrix norm growth against the phase-entry baseline."""
        if not self.config.norm_growth:
            return
        mx = max_abs(arr)
        limit = self.config.norm_growth_factor * max(baseline, 1e-30)
        if not np.isfinite(mx) or mx > limit:
            raise NumericalBreakdownError(
                "trailing-matrix norm growth exceeds baseline bound",
                phase=phase, panel=panel, detector="norm_growth", site=site,
                value=float(mx), threshold=limit, precision=precision.value,
            )

    def check_symmetry(
        self,
        a: np.ndarray,
        *,
        phase: str | None,
        panel: int | None,
        precision: Precision,
        norm: float | None = None,
    ) -> None:
        """Symmetry drift of a trailing block (sampled)."""
        if not self.config.symmetry:
            return
        defect = symmetry_defect(a, sample=self.config.symmetry_sample)
        tol = self.config.symmetry_tol(
            norm if norm is not None else max_abs(a), effective_eps(precision, a)
        )
        if not np.isfinite(defect) or defect > tol:
            raise NumericalBreakdownError(
                "symmetry drift in trailing matrix",
                phase=phase, panel=panel, detector="symmetry",
                value=float(defect), threshold=tol, precision=precision.value,
            )

    def check_residual(
        self,
        a: np.ndarray,
        q: np.ndarray,
        band: np.ndarray,
        *,
        phase: str | None,
        precision: Precision,
    ) -> None:
        """Sampled factorization-residual probe at a stage boundary."""
        if not self.config.residual:
            return
        res = residual_probe(a, q, band)
        tol = self.config.residual_tol(effective_eps(precision, band))
        if not np.isfinite(res) or res > tol:
            raise NumericalBreakdownError(
                "band-reduction residual probe failed",
                phase=phase, detector="residual",
                value=float(res), threshold=tol, precision=precision.value,
            )
