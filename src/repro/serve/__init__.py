"""Fault-tolerant EVD-as-a-service (async serving layer).

Public surface::

    from repro.serve import EvdService, JobSpec, RetryPolicy

    with EvdService(workers=4) as svc:
        job_id = svc.submit(a, priority="interactive", deadline_seconds=2.0)
        res = svc.result(job_id)

See ``docs/serving.md`` for the full tour: priority classes, SLO
deadlines, retry/backoff layered on the precision-escalation ladder,
checkpoint-backed preemption, admission control, circuit breaking,
graceful degradation, and the batching coalescer.
"""

from .coalesce import Coalescer, evd_stack
from .degrade import DegradationPolicy, cheaper_precision
from .job import (
    PRIORITIES,
    TERMINAL_STATES,
    Job,
    JobResult,
    JobSpec,
    RetryPolicy,
)
from .policy import AdmissionController, CircuitBreaker
from .queue import BoundedJobQueue
from .scheduler import Scheduler
from .service import EvdService
from .worker import PreemptionToken, Worker

__all__ = [
    "PRIORITIES",
    "TERMINAL_STATES",
    "AdmissionController",
    "BoundedJobQueue",
    "CircuitBreaker",
    "Coalescer",
    "DegradationPolicy",
    "EvdService",
    "Job",
    "JobResult",
    "JobSpec",
    "PreemptionToken",
    "RetryPolicy",
    "Scheduler",
    "Worker",
    "cheaper_precision",
    "evd_stack",
]
