"""Batching coalescer: pack same-shape small requests into one EVD stack.

Small EVDs are launch-bound, not flop-bound — the fix the paper's
tensor-core pipeline applies everywhere is the same one that helps here:
fewer, fatter GEMM launches.  The coalescer groups same-shape
eigenvalue+vector requests that opted in (``coalescible=True``) and runs
them as a stack: per-matrix tridiagonalization and tridiagonal solve
(scalar-heavy, already cheap), then **one** ``gemm_batched`` call for
the back-transform ``X_i = Q1_i @ Vtri_i`` — the dominant O(n^3) step —
through the shared engine, so the batch lands in the perf model, the
GEMM telemetry stream, and the live registry as a single batched launch.
"""

from __future__ import annotations

import numpy as np

from ..eig.qliter import tridiag_eig_ql
from ..eig.tridiag_direct import householder_tridiagonalize
from ..gemm.engine import make_engine
from ..obs import spans as obs

__all__ = ["Coalescer", "evd_stack"]


def evd_stack(mats, *, engine=None, want_vectors: bool = True):
    """Eigendecompose a stack of same-shape symmetric float64 matrices.

    Returns a list of ``(eigenvalues, eigenvectors_or_None)`` aligned
    with ``mats``.  All matrices must share one shape; the back-transform
    runs as a single ``gemm_batched`` launch.
    """
    mats = [np.asarray(m, dtype=np.float64) for m in mats]
    if not mats:
        return []
    n = mats[0].shape[0]
    for m in mats:
        if m.shape != (n, n):
            raise ValueError(
                f"coalesced stack must share one shape, got {m.shape} != {(n, n)}"
            )
    eng = engine if engine is not None else make_engine("fp64")
    with obs.span("serve.evd_stack", batch=len(mats), n=n):
        lams, q1s, vts = [], [], []
        for m in mats:
            d, e, q1 = householder_tridiagonalize(m, want_q=want_vectors)
            lam, v_tri = tridiag_eig_ql(
                d, e, want_vectors=want_vectors, check_input=False
            )
            lams.append(lam)
            q1s.append(q1)
            vts.append(v_tri)
        if not want_vectors:
            return [(lam, None) for lam in lams]
        xs = eng.gemm_batched(
            np.stack(q1s), np.stack(vts), tag="serve_batched_back"
        )
        return [
            (lam, np.ascontiguousarray(xs[i])) for i, lam in enumerate(lams)
        ]


class Coalescer:
    """Greedy same-shape batcher over the pending queue.

    When a worker dequeues a coalescible job, it asks the coalescer for
    companions: up to ``max_batch - 1`` further *queued* jobs with the
    same matrix shape, vector flag, and priority-compatible deadline
    slack.  Matching is deliberately conservative — a batch ties the
    jobs' fates together, so only jobs that would make the same
    latency/fidelity trade ride along.
    """

    def __init__(self, *, max_batch: int = 8, max_n: int = 128) -> None:
        if max_batch < 2:
            raise ValueError(f"max_batch must be >= 2, got {max_batch}")
        self.max_batch = max_batch
        self.max_n = max_n

    def eligible(self, job) -> bool:
        return (
            job.spec.coalescible
            and not job.spec.checkpointed
            and job.spec.a.shape[0] <= self.max_n
        )

    def companions(self, queue, lead) -> list:
        """Pop queued jobs batchable with ``lead`` (may be empty)."""
        if not self.eligible(lead):
            return []
        shape = lead.spec.a.shape

        def match(job) -> bool:
            return (
                self.eligible(job)
                and job.spec.a.shape == shape
                and job.want_vectors == lead.want_vectors
                and not job.past_deadline
            )

        return queue.take_matching(match, limit=self.max_batch - 1)
