"""CLI demo / soak harness for the EVD serving layer.

Demo (a small mixed burst)::

    python -m repro.serve --jobs 12 --workers 2

CI soak (mixed-priority burst, injected crash faults, induced overload)::

    python -m repro.serve --jobs 24 --workers 2 --queue-cap 8 \\
        --inject-faults --crash-one --overload --bench-out runs/BENCH_serve.json

The soak asserts the serving layer's core robustness invariants and
exits non-zero if any is violated:

- **zero jobs lost** — every submitted job reached a terminal state
  (rejected submissions got an explicit AdmissionError, which is the
  backpressure contract, not a loss);
- **no orphaned run dirs** — every checkpoint spool entry belongs to a
  known, terminal job;
- **crash-resume correctness** — a job whose run was crash-killed at a
  checkpoint commit still finished, and (when preempted) its result is
  bitwise-identical to an uninterrupted run;
- **latency rows exported** — per-class p50/p99 landed in the bench
  store for the regression gate.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading

import numpy as np

from ..errors import AdmissionError
from ..obs.analytics import serve_trace_to_chrome
from ..obs.live.sinks import parse_prometheus
from ..obs.tracing import check_trace_continuity, load_serve_manifest
from ..resilience.crash import CrashFaultSpec, CrashInjector
from .job import JobSpec, RetryPolicy
from .service import EvdService


def _sym(rng, n: int) -> np.ndarray:
    b = rng.standard_normal((n, n))
    return (b + b.T) / 2.0


def _mixed_specs(args, rng) -> "list[JobSpec]":
    """Round-robin mixed-priority burst: interactive coalescible smalls,
    standard mediums, checkpointed batch jobs with deadlines."""
    specs = []
    for i in range(args.jobs):
        kind = i % 3
        if kind == 0:
            specs.append(JobSpec(
                a=_sym(rng, args.n // 2), priority="interactive",
                coalescible=True, deadline_seconds=30.0,
                tag=f"interactive-{i}",
            ))
        elif kind == 1:
            specs.append(JobSpec(
                a=_sym(rng, args.n), priority="standard",
                deadline_seconds=60.0, tag=f"standard-{i}",
            ))
        else:
            specs.append(JobSpec(
                a=_sym(rng, args.n), b=4, priority="batch",
                checkpointed=True, deadline_seconds=120.0,
                retry=RetryPolicy(max_attempts=4, backoff_base=0.01),
                tag=f"batch-{i}",
            ))
    return specs


def _install_faults(svc: EvdService, args) -> "set[str]":
    """Plant one crash-kill per tagged job on its first attempt only."""
    crash_tags: "set[str]" = set()
    if not (args.inject_faults or args.crash_one):
        return crash_tags

    def factory(job):
        if (
            job.spec.tag in crash_tags
            and job.spec.checkpointed
            and job.attempts == 1
        ):
            return CrashInjector(CrashFaultSpec(
                site="ckpt.save.*.post", call_index=2, kind="kill",
            ))
        return None

    svc.fault_factory = factory
    return crash_tags


def _preempt_one(svc: EvdService, job_ids: "list[str]", fired: "list[str]") -> None:
    """Evict the first running checkpointed job we catch (priority evict).

    Runs on a helper thread: polls the submitted jobs until one is
    running with a live preemption token, requests eviction once, and
    records which job it hit so the soak can assert the preempt→resume
    trace afterwards.
    """
    for _ in range(2000):
        for jid in job_ids:
            try:
                job = svc.job(jid)
            except KeyError:
                continue
            token = job.token
            if (
                job.spec.checkpointed
                and job.state == "running"
                and token is not None
                and not token.requested
            ):
                token.request("priority")
                fired.append(jid)
                return
        svc.sleep(0.005)


def _sdc_chaos(svc: EvdService, args) -> "list[str]":
    """SDC chaos segment (``--faults bitflip``): prove the ABFT contract.

    Three correct-mode jobs take a transient single-bit flip at distinct
    GEMM sites (SBR trailing update, full trailing update, back
    transform); each must finish with eigenpairs bitwise-identical to an
    uninjected run of the same config.  One detect-mode job takes a
    persistent flip that exhausts the in-driver escalation ladder; the
    propagated :class:`~repro.errors.SdcError` must surface as the
    worker's distinct ``sdc`` retry class and the job must still finish.
    """
    from ..eig.driver import syevd_2stage
    from ..resilience.faults import FaultInjector, FaultSpec

    problems: "list[str]" = []
    rng = np.random.default_rng(args.seed + 9001)
    a = _sym(rng, args.n)
    clean = syevd_2stage(a, b=8, precision="fp32", check_input=False)

    # wy_full_right launches once per run at soak sizes, so its flip
    # targets call index 0; the other sites take their second launch.
    for i, (site, call_index) in enumerate((
        ("wy_right", 1), ("wy_full_right", 0), ("back_transform", 1),
    )):
        inj = FaultInjector(FaultSpec(
            site=site, kind="bitflip", call_index=call_index,
            seed=args.seed + i,
        ))
        jid = svc.submit(spec=JobSpec(
            a=a, b=8, precision="fp32", abft="correct", faults=inj,
            tag=f"sdc-correct-{site}",
        ))
        res = svc.result(jid, timeout=300.0)
        if res is None or not res.ok:
            problems.append(
                f"sdc-correct-{site}: job not ok "
                f"({res.outcome if res else 'lost'}: "
                f"{res.error if res else '?'})"
            )
        elif not inj.fired:
            problems.append(f"sdc-correct-{site}: bitflip never fired")
        elif not np.array_equal(clean.eigenvalues, res.eigenvalues) or not (
            np.array_equal(clean.eigenvectors, res.eigenvectors)
        ):
            problems.append(
                f"sdc-correct-{site}: corrected result diverged from the "
                f"uninjected run"
            )
        else:
            print(f"sdc-correct-{site}: {len(inj.fired)} flip(s) corrected "
                  f"in-flight, result bitwise-identical")

    # Persistent damage: the flip re-fires on every in-driver retry until
    # the ladder gives up, so the SdcError reaches the worker; spare
    # worker attempts drain the remaining firings.
    inj = FaultInjector(FaultSpec(
        site="wy_right", kind="bitflip", call_index=1, count=5,
        seed=args.seed,
    ))
    jid = svc.submit(spec=JobSpec(
        a=a, b=8, precision="fp32", abft="detect", faults=inj,
        retry=RetryPolicy(max_attempts=4, backoff_base=0.001),
        tag="sdc-detect-persistent",
    ))
    res = svc.result(jid, timeout=300.0)
    if res is None or not res.ok:
        problems.append(
            f"sdc-detect-persistent: job not ok "
            f"({res.outcome if res else 'lost'}: {res.error if res else '?'})"
        )
    elif res.sdc_retries < 1:
        problems.append(
            f"sdc-detect-persistent: expected an sdc-class retry, got "
            f"attempts={res.attempts} sdc_retries={res.sdc_retries}"
        )
    else:
        print(f"sdc-detect-persistent: recovered after "
              f"{res.sdc_retries} sdc-class retr"
              f"{'y' if res.sdc_retries == 1 else 'ies'}")
    return problems


def _bitwise_reference(spec: JobSpec, result) -> bool:
    """Re-run an evicted job's config uninterrupted; compare bitwise."""
    from ..eig.driver import syevd_2stage

    with tempfile.TemporaryDirectory(prefix="serve-ref-") as ref_dir:
        ref = syevd_2stage(
            spec.a, b=spec.b, nb=spec.nb, method=spec.method,
            precision=result.precision_used,
            want_vectors=result.eigenvectors is not None,
            tridiag_solver=spec.tridiag_solver,
            checkpoint=os.path.join(ref_dir, "run"),
        )
    if not np.array_equal(ref.eigenvalues, result.eigenvalues):
        return False
    if result.eigenvectors is not None:
        return np.array_equal(ref.eigenvectors, result.eigenvectors)
    return True


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="EVD-as-a-service demo / soak harness",
    )
    ap.add_argument("--jobs", type=int, default=12, help="burst size")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--n", type=int, default=48, help="base matrix size")
    ap.add_argument("--queue-cap", type=int, default=32)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--spool", default=None, help="spool dir (default: temp)")
    ap.add_argument("--bench-out", default=None,
                    help="bench session path (default: runs/BENCH_serve.json)")
    ap.add_argument("--faults", choices=["bitflip"], default=None,
                    help="SDC chaos: inject single-bit flips into the GEMM "
                         "stream and assert the online ABFT layer detects, "
                         "corrects in place, and surfaces uncorrectable "
                         "damage as sdc-class retries")
    ap.add_argument("--inject-faults", action="store_true",
                    help="crash-kill every 4th checkpointed job at a "
                         "checkpoint commit (retry-resume path)")
    ap.add_argument("--crash-one", action="store_true",
                    help="crash-kill exactly one checkpointed job")
    ap.add_argument("--overload", action="store_true",
                    help="submit the whole burst at once against the "
                         "bounded queue (exercises backpressure/shedding)")
    ap.add_argument("--no-bench", action="store_true")
    ap.add_argument("--preempt-one", action="store_true",
                    help="priority-evict one running checkpointed job "
                         "mid-flight and assert it resumed on the same "
                         "trace id")
    ap.add_argument("--trace-out", default=None, metavar="FILE",
                    help="export the soak as one Chrome trace (per-worker "
                         "lanes + flow arrows) after shutdown")
    args = ap.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    specs = _mixed_specs(args, rng)

    svc = EvdService(
        workers=args.workers, queue_capacity=args.queue_cap,
        spool_dir=args.spool, seed=args.seed,
    )
    crash_tags = _install_faults(svc, args)
    ckpt_tags = [s.tag for s in specs if s.checkpointed]
    if args.inject_faults:
        crash_tags.update(ckpt_tags[::4] or ckpt_tags[:1])
    elif args.crash_one:
        crash_tags.update(ckpt_tags[:1])

    submitted: "list[tuple[str, JobSpec]]" = []
    rejected = 0
    ckpt_ids: "list[str]" = []
    preempted_ids: "list[str]" = []
    evictor = None
    with svc:
        if args.preempt_one:
            evictor = threading.Thread(
                target=_preempt_one, args=(svc, ckpt_ids, preempted_ids),
                name="soak-evictor", daemon=True,
            )
            evictor.start()
        for spec in specs:
            try:
                jid = svc.submit(spec=spec)
                submitted.append((jid, spec))
                if spec.checkpointed and spec.tag not in crash_tags:
                    ckpt_ids.append(jid)
            except AdmissionError as exc:
                rejected += 1
                print(f"rejected ({exc.reason}): {spec.tag}", file=sys.stderr)
            if not args.overload:
                # Pace the burst so the queue breathes between arrivals.
                svc.sleep(0.01)
        results = {
            jid: svc.result(jid, timeout=300.0) for jid, _ in submitted
        }
        if evictor is not None:
            evictor.join(timeout=5.0)
        sdc_failures = _sdc_chaos(svc, args) if args.faults == "bitflip" else []
    # -- report ------------------------------------------------------------
    stats = svc.stats()
    print(f"submitted={len(submitted)} rejected={rejected} "
          f"outcomes={stats['outcomes']}")
    failures: "list[str]" = list(sdc_failures)

    lost = [jid for jid, res in results.items() if res is None]
    if lost or stats["jobs_pending"]:
        failures.append(f"jobs lost/non-terminal: {lost or stats['jobs_pending']}")

    # No orphaned run dirs: every spool entry belongs to a terminal job.
    known = {jid for jid, _ in submitted}
    for entry in sorted(os.listdir(svc.spool_dir)):
        path = os.path.join(svc.spool_dir, entry)
        if not os.path.isdir(path):
            continue
        if entry not in known:
            failures.append(f"orphaned run dir: {entry}")
        elif results.get(entry) is None:
            failures.append(f"run dir for non-terminal job: {entry}")

    # Crash-killed jobs must still have terminated (resume or retry).
    for jid, spec in submitted:
        res = results[jid]
        if res is None:
            continue
        if spec.tag in crash_tags and res.outcome == "failed":
            failures.append(
                f"{spec.tag}: crash-killed job failed outright "
                f"(attempts={res.attempts}): {res.error}"
            )

    # Evicted jobs that finished must match an uninterrupted run bitwise.
    checked = 0
    for jid, spec in submitted:
        res = results[jid]
        if (
            res is not None and res.ok and res.preemptions > 0
            and spec.checkpointed and spec.tag not in crash_tags
            and checked < 2
        ):
            checked += 1
            if not _bitwise_reference(spec, res):
                failures.append(f"{spec.tag}: evicted job result diverged")
            else:
                print(f"{spec.tag}: preempted x{res.preemptions}, "
                      f"resume bitwise-identical")

    if not args.no_bench:
        out = svc.write_bench(args.bench_out)
        if out is None:
            failures.append("no latency rows to export")
        else:
            print(f"bench session: {out}")
            for row in svc.latency_rows():
                line = (f"  {row['key']}: jobs={row['jobs']} "
                        f"p50={row['p50'] * 1e3:.1f}ms "
                        f"p99={row['p99'] * 1e3:.1f}ms")
                if "queue_wait_p50" in row:
                    line += (f" qwait_p50={row['queue_wait_p50'] * 1e3:.1f}ms "
                             f"qwait_p99={row['queue_wait_p99'] * 1e3:.1f}ms")
                print(line)

    # -- SLO accounting ----------------------------------------------------
    slo_rows = svc.slo.rows()
    if slo_rows:
        print("slo:")
        for row in slo_rows:
            print(f"  {row['priority']}: good={row['good']} bad={row['bad']} "
                  f"target={row['target']:.3f} "
                  f"burn_rate={row['burn_rate']:.2f} "
                  f"budget_left={row['error_budget_remaining']:.2f}")

    # -- trace continuity --------------------------------------------------
    try:
        records = load_serve_manifest(svc.spool_dir)
    except (OSError, ValueError) as exc:
        records = []
        failures.append(f"serve manifest unreadable: {exc}")
    if submitted and not records:
        failures.append("no serve_job records in spool manifest")
    for problem in check_trace_continuity(records):
        failures.append(f"trace continuity: {problem}")

    if args.preempt_one:
        if not preempted_ids:
            failures.append("--preempt-one: evictor never caught a "
                            "running checkpointed job")
        else:
            jid = preempted_ids[0]
            rec = next((r for r in records if r.get("job") == jid), None)
            names = [ev.get("name") for ev in (rec or {}).get("timeline", [])]
            if rec is None:
                failures.append(f"--preempt-one: no manifest record for {jid}")
            elif "serve.preempt" not in names or "serve.resume" not in names:
                failures.append(
                    f"--preempt-one: {jid} timeline lacks preempt+resume "
                    f"(got {names})"
                )
            else:
                res = results.get(jid)
                print(f"preempted {jid}: resumed on same trace "
                      f"(attempts={res.attempts if res else '?'})")

    # Burn-rate gauges must have landed in the Prometheus snapshot.
    prom_path = os.path.join(svc.spool_dir, "metrics.prom")
    if os.path.exists(prom_path):
        with open(prom_path) as fh:
            prom = parse_prometheus(fh.read())
        if not any(
            key.startswith("repro_serve_slo_burn_rate") for key in prom
        ):
            failures.append("metrics.prom lacks repro_serve_slo_burn_rate")
    else:
        failures.append("service did not write metrics.prom")

    if args.trace_out:
        parent = os.path.dirname(args.trace_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(args.trace_out, "w") as fh:
            json.dump(serve_trace_to_chrome(records), fh, indent=1)
            fh.write("\n")
        print(f"chrome trace: {args.trace_out}")

    if failures:
        for f in failures:
            print(f"SOAK FAIL: {f}", file=sys.stderr)
        return 1
    print("soak ok: all jobs terminal, spool clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
