"""CLI demo / soak harness for the EVD serving layer.

Demo (a small mixed burst)::

    python -m repro.serve --jobs 12 --workers 2

CI soak (mixed-priority burst, injected crash faults, induced overload)::

    python -m repro.serve --jobs 24 --workers 2 --queue-cap 8 \\
        --inject-faults --crash-one --overload --bench-out runs/BENCH_serve.json

The soak asserts the serving layer's core robustness invariants and
exits non-zero if any is violated:

- **zero jobs lost** — every submitted job reached a terminal state
  (rejected submissions got an explicit AdmissionError, which is the
  backpressure contract, not a loss);
- **no orphaned run dirs** — every checkpoint spool entry belongs to a
  known, terminal job;
- **crash-resume correctness** — a job whose run was crash-killed at a
  checkpoint commit still finished, and (when preempted) its result is
  bitwise-identical to an uninterrupted run;
- **latency rows exported** — per-class p50/p99 landed in the bench
  store for the regression gate.
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile

import numpy as np

from ..errors import AdmissionError
from ..resilience.crash import CrashFaultSpec, CrashInjector
from .job import JobSpec, RetryPolicy
from .service import EvdService


def _sym(rng, n: int) -> np.ndarray:
    b = rng.standard_normal((n, n))
    return (b + b.T) / 2.0


def _mixed_specs(args, rng) -> "list[JobSpec]":
    """Round-robin mixed-priority burst: interactive coalescible smalls,
    standard mediums, checkpointed batch jobs with deadlines."""
    specs = []
    for i in range(args.jobs):
        kind = i % 3
        if kind == 0:
            specs.append(JobSpec(
                a=_sym(rng, args.n // 2), priority="interactive",
                coalescible=True, deadline_seconds=30.0,
                tag=f"interactive-{i}",
            ))
        elif kind == 1:
            specs.append(JobSpec(
                a=_sym(rng, args.n), priority="standard",
                deadline_seconds=60.0, tag=f"standard-{i}",
            ))
        else:
            specs.append(JobSpec(
                a=_sym(rng, args.n), b=4, priority="batch",
                checkpointed=True, deadline_seconds=120.0,
                retry=RetryPolicy(max_attempts=4, backoff_base=0.01),
                tag=f"batch-{i}",
            ))
    return specs


def _install_faults(svc: EvdService, args) -> "set[str]":
    """Plant one crash-kill per tagged job on its first attempt only."""
    crash_tags: "set[str]" = set()
    if not (args.inject_faults or args.crash_one):
        return crash_tags

    def factory(job):
        if (
            job.spec.tag in crash_tags
            and job.spec.checkpointed
            and job.attempts == 1
        ):
            return CrashInjector(CrashFaultSpec(
                site="ckpt.save.*.post", call_index=2, kind="kill",
            ))
        return None

    svc.fault_factory = factory
    return crash_tags


def _bitwise_reference(spec: JobSpec, result) -> bool:
    """Re-run an evicted job's config uninterrupted; compare bitwise."""
    from ..eig.driver import syevd_2stage

    with tempfile.TemporaryDirectory(prefix="serve-ref-") as ref_dir:
        ref = syevd_2stage(
            spec.a, b=spec.b, nb=spec.nb, method=spec.method,
            precision=result.precision_used,
            want_vectors=result.eigenvectors is not None,
            tridiag_solver=spec.tridiag_solver,
            checkpoint=os.path.join(ref_dir, "run"),
        )
    if not np.array_equal(ref.eigenvalues, result.eigenvalues):
        return False
    if result.eigenvectors is not None:
        return np.array_equal(ref.eigenvectors, result.eigenvectors)
    return True


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="EVD-as-a-service demo / soak harness",
    )
    ap.add_argument("--jobs", type=int, default=12, help="burst size")
    ap.add_argument("--workers", type=int, default=2)
    ap.add_argument("--n", type=int, default=48, help="base matrix size")
    ap.add_argument("--queue-cap", type=int, default=32)
    ap.add_argument("--seed", type=int, default=0)
    ap.add_argument("--spool", default=None, help="spool dir (default: temp)")
    ap.add_argument("--bench-out", default=None,
                    help="bench session path (default: runs/BENCH_serve.json)")
    ap.add_argument("--inject-faults", action="store_true",
                    help="crash-kill every 4th checkpointed job at a "
                         "checkpoint commit (retry-resume path)")
    ap.add_argument("--crash-one", action="store_true",
                    help="crash-kill exactly one checkpointed job")
    ap.add_argument("--overload", action="store_true",
                    help="submit the whole burst at once against the "
                         "bounded queue (exercises backpressure/shedding)")
    ap.add_argument("--no-bench", action="store_true")
    args = ap.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    specs = _mixed_specs(args, rng)

    svc = EvdService(
        workers=args.workers, queue_capacity=args.queue_cap,
        spool_dir=args.spool, seed=args.seed,
    )
    crash_tags = _install_faults(svc, args)
    ckpt_tags = [s.tag for s in specs if s.checkpointed]
    if args.inject_faults:
        crash_tags.update(ckpt_tags[::4] or ckpt_tags[:1])
    elif args.crash_one:
        crash_tags.update(ckpt_tags[:1])

    submitted: "list[tuple[str, JobSpec]]" = []
    rejected = 0
    with svc:
        for spec in specs:
            try:
                submitted.append((svc.submit(spec=spec), spec))
            except AdmissionError as exc:
                rejected += 1
                print(f"rejected ({exc.reason}): {spec.tag}", file=sys.stderr)
            if not args.overload:
                # Pace the burst so the queue breathes between arrivals.
                svc.sleep(0.01)
        results = {
            jid: svc.result(jid, timeout=300.0) for jid, _ in submitted
        }
    # -- report ------------------------------------------------------------
    stats = svc.stats()
    print(f"submitted={len(submitted)} rejected={rejected} "
          f"outcomes={stats['outcomes']}")
    failures: "list[str]" = []

    lost = [jid for jid, res in results.items() if res is None]
    if lost or stats["jobs_pending"]:
        failures.append(f"jobs lost/non-terminal: {lost or stats['jobs_pending']}")

    # No orphaned run dirs: every spool entry belongs to a terminal job.
    known = {jid for jid, _ in submitted}
    for entry in sorted(os.listdir(svc.spool_dir)):
        path = os.path.join(svc.spool_dir, entry)
        if not os.path.isdir(path):
            continue
        if entry not in known:
            failures.append(f"orphaned run dir: {entry}")
        elif results.get(entry) is None:
            failures.append(f"run dir for non-terminal job: {entry}")

    # Crash-killed jobs must still have terminated (resume or retry).
    for jid, spec in submitted:
        res = results[jid]
        if res is None:
            continue
        if spec.tag in crash_tags and res.outcome == "failed":
            failures.append(
                f"{spec.tag}: crash-killed job failed outright "
                f"(attempts={res.attempts}): {res.error}"
            )

    # Evicted jobs that finished must match an uninterrupted run bitwise.
    checked = 0
    for jid, spec in submitted:
        res = results[jid]
        if (
            res is not None and res.ok and res.preemptions > 0
            and spec.checkpointed and spec.tag not in crash_tags
            and checked < 2
        ):
            checked += 1
            if not _bitwise_reference(spec, res):
                failures.append(f"{spec.tag}: evicted job result diverged")
            else:
                print(f"{spec.tag}: preempted x{res.preemptions}, "
                      f"resume bitwise-identical")

    if not args.no_bench:
        out = svc.write_bench(args.bench_out)
        if out is None:
            failures.append("no latency rows to export")
        else:
            print(f"bench session: {out}")
            for row in svc.latency_rows():
                print(f"  {row['key']}: jobs={row['jobs']} "
                      f"p50={row['p50'] * 1e3:.1f}ms "
                      f"p99={row['p99'] * 1e3:.1f}ms")

    if failures:
        for f in failures:
            print(f"SOAK FAIL: {f}", file=sys.stderr)
        return 1
    print("soak ok: all jobs terminal, spool clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
