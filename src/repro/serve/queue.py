"""Bounded priority queue with explicit backpressure.

The queue is the service's only buffer, and it is *bounded*: accepting
unlimited work just converts overload into unbounded latency and memory.
When full it applies one of two explicit backpressure disciplines:

- ``"reject"`` (default): :meth:`put` raises
  :class:`~repro.errors.AdmissionError` with ``reason="queue_full"`` and
  a ``retry_after`` hint — load is pushed back to the client, which is
  the only party that can actually slow down.
- ``"block"``: :meth:`put` waits (bounded by ``timeout``) for space —
  appropriate for in-process producers that want flow control instead
  of failures.

Ordering is priority class first (interactive < standard < batch), then
submission sequence — preempted jobs keep their original sequence number
so they re-enter *ahead* of later arrivals of the same class.
"""

from __future__ import annotations

import heapq
import threading

from ..errors import AdmissionError
from .job import Job, priority_rank

__all__ = ["BoundedJobQueue"]


class BoundedJobQueue:
    def __init__(
        self,
        capacity: int = 64,
        *,
        backpressure: str = "reject",
        retry_after: float = 0.25,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if backpressure not in ("reject", "block"):
            raise ValueError(
                f"backpressure must be 'reject' or 'block', got {backpressure!r}"
            )
        self.capacity = capacity
        self.backpressure = backpressure
        self.retry_after = retry_after
        self._heap: list = []  # (class_rank, seq, Job)
        self._count = 0  # live (non-removed) entries
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    # -- producers ---------------------------------------------------------
    def put(self, job: Job, *, timeout: "float | None" = None) -> None:
        """Enqueue, applying the configured backpressure when full."""
        with self._lock:
            if self._closed:
                raise AdmissionError("queue is shut down", reason="shutdown")
            if self._count >= self.capacity:
                if self.backpressure == "reject":
                    raise AdmissionError(
                        f"queue full ({self._count}/{self.capacity})",
                        reason="queue_full", retry_after=self.retry_after,
                    )
                deadline = timeout
                while self._count >= self.capacity and not self._closed:
                    if not self._not_full.wait(timeout=deadline):
                        raise AdmissionError(
                            f"queue full ({self._count}/{self.capacity}); "
                            f"timed out blocking for space",
                            reason="queue_full", retry_after=self.retry_after,
                        )
                if self._closed:
                    raise AdmissionError("queue is shut down", reason="shutdown")
            self._push(job)

    def _push(self, job: Job) -> None:
        heapq.heappush(
            self._heap, (priority_rank(job.spec.priority), job.seq, job)
        )
        self._count += 1
        self._not_empty.notify()

    def requeue(self, job: Job) -> None:
        """Re-enter a preempted job, bypassing the capacity bound.

        A preempted job already holds a queue slot morally — evicting it
        must never be lossy, so requeue cannot be refused.  Its original
        sequence number puts it ahead of later same-class arrivals.
        """
        with self._lock:
            if self._closed:
                raise AdmissionError("queue is shut down", reason="shutdown")
            self._push(job)

    # -- consumers ---------------------------------------------------------
    def get(self, *, timeout: "float | None" = None) -> "Job | None":
        """Pop the most urgent pending job (None on timeout/shutdown)."""
        with self._lock:
            while True:
                job = self._pop_live()
                if job is not None:
                    return job
                if self._closed:
                    return None
                if not self._not_empty.wait(timeout=timeout):
                    return None

    def _pop_live(self) -> "Job | None":
        while self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state == "queued":
                self._count -= 1
                self._not_full.notify()
                return job
            # Lazily dropped (cancelled/shed while queued).
            self._count -= 1
            self._not_full.notify()
        return None

    def take_matching(self, predicate, *, limit: int) -> "list[Job]":
        """Pop up to ``limit`` additional queued jobs matching ``predicate``.

        The coalescer uses this to pack same-shape requests into one
        batched stack.  Non-matching jobs stay queued in order.
        """
        taken: list = []
        with self._lock:
            keep: list = []
            while self._heap and len(taken) < limit:
                entry = heapq.heappop(self._heap)
                job = entry[2]
                if job.state != "queued":
                    self._count -= 1
                    self._not_full.notify()
                    continue
                if predicate(job):
                    taken.append(job)
                    self._count -= 1
                    self._not_full.notify()
                else:
                    keep.append(entry)
            for entry in keep:
                heapq.heappush(self._heap, entry)
        return taken

    # -- management --------------------------------------------------------
    def remove(self, job_id: str) -> "Job | None":
        """Mark a queued job for lazy removal (cancel path)."""
        with self._lock:
            for _, _, job in self._heap:
                if job.id == job_id and job.state == "queued":
                    return job
        return None

    def drain_class(self, priority: str) -> "list[Job]":
        """Pop every queued job of one priority class (overload shedding)."""
        drained: list = []
        with self._lock:
            keep: list = []
            while self._heap:
                entry = heapq.heappop(self._heap)
                job = entry[2]
                if job.state != "queued":
                    self._count -= 1
                    self._not_full.notify()
                    continue
                if job.spec.priority == priority:
                    drained.append(job)
                    self._count -= 1
                    self._not_full.notify()
                else:
                    keep.append(entry)
            for entry in keep:
                heapq.heappush(self._heap, entry)
        return drained

    def depth(self) -> int:
        with self._lock:
            return self._count

    def depth_by_class(self) -> dict:
        with self._lock:
            out: dict = {}
            for _, _, job in self._heap:
                if job.state == "queued":
                    out[job.spec.priority] = out.get(job.spec.priority, 0) + 1
            return out

    def fullness(self) -> float:
        with self._lock:
            return self._count / self.capacity

    def close(self) -> None:
        """Stop accepting work and wake every waiter."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
