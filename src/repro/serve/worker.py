"""Worker pool: executes jobs with retry, escalation, resume, preemption.

One worker is one thread running one job at a time.  The failure
taxonomy decides the retry shape:

- **Numerical breakdown / non-convergence** — the driver's in-run
  escalation ladder already retried per-panel; if the whole call still
  fails, the worker retries the job at the next-safer precision rung
  (``retry-escalate``).  A checkpointed job's precision is pinned in its
  run config, so the escalated retry starts a *fresh* run directory.
- **Crash** (:class:`~repro.errors.SimulatedCrashError` in the harness;
  a real worker death in production) — the worker retries by re-running
  against the *same* run directory, which resumes from the newest
  committed checkpoint (``retry-resume``) to a bitwise-identical result.
- **Silent data corruption** (:class:`~repro.errors.SdcError`) — the
  in-driver ABFT layer detected damage it could not correct in place and
  the escalation ladder gave up.  The data is transiently corrupt, not
  numerically out of range, so the worker retries at the *same*
  precision (``retry-sdc``) — escalating would waste the safer rung on a
  fault that a clean re-run fixes.  SDC retries are a distinct class in
  the retry taxonomy and SLO bad-event accounting.
- **Preemption** (:class:`~repro.errors.JobPreempted`) — not a failure:
  the scheduler asked for the slot.  The job re-enters the queue with
  its original position and resumes later from its checkpoint.
- **Validation / configuration errors** — non-retryable, fail fast.
- **Anything else** — fails the job and feeds the circuit breaker.

Retries sleep :func:`repro.resilience.policy.backoff` delays
(deterministic under the service's seeded rng).
"""

from __future__ import annotations

import shutil
import threading

import numpy as np

from ..errors import (
    BudgetExceededError,
    ConfigurationError,
    ConvergenceError,
    JobPreempted,
    NumericalBreakdownError,
    SdcError,
    SimulatedCrashError,
    SingularMatrixError,
    ValidationError,
)
from ..precision.modes import Precision
from ..resilience.policy import backoff
from .job import Job

__all__ = ["PreemptionToken", "Worker"]


class PreemptionToken:
    """Cooperative eviction: fires only where the job is durably resumable.

    Duck-types the crash injector's ``fire(site, **kw)`` hook that the
    checkpoint store already calls around every commit, and raises
    :class:`JobPreempted` **only at ``.post`` sites** — i.e. immediately
    after a checkpoint committed — so an evicted job never loses work
    past its newest durable state.  An inner injector (the soak
    harness's real crash faults) composes underneath.
    """

    def __init__(self, inner=None) -> None:
        self.inner = inner
        self.reason: "str | None" = None
        self._evt = threading.Event()

    def request(self, reason: str) -> None:
        self.reason = reason
        self._evt.set()

    @property
    def requested(self) -> bool:
        return self._evt.is_set()

    def fire(self, site: str, **kw) -> None:
        if self.inner is not None:
            self.inner.fire(site, **kw)
        if self._evt.is_set() and site.endswith(".post"):
            raise JobPreempted(
                "evicted at durable checkpoint",
                reason=self.reason, site=site,
            )


class Worker(threading.Thread):
    """One serving thread; ``service`` provides every shared component."""

    def __init__(self, service, index: int) -> None:
        super().__init__(name=f"serve-worker-{index}", daemon=True)
        self.service = service
        self.index = index
        self.current_job: "Job | None" = None
        self._rng = np.random.default_rng(service.seed + index)
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    # -- main loop ---------------------------------------------------------
    def run(self) -> None:
        svc = self.service
        while not self._halt.is_set():
            job = svc.queue.get(timeout=svc.tick)
            if job is None:
                if svc.queue_closed and svc.queue.depth() == 0:
                    return
                continue
            self.current_job = job
            try:
                self._process(job)
            except Exception as exc:  # never let a worker die silently
                svc.breaker.record_failure()
                job.finish("failed", error=exc)
                svc.on_terminal(job)
            finally:
                self.current_job = None

    # -- one job -----------------------------------------------------------
    def _process(self, job: Job) -> None:
        svc = self.service
        job.started = svc.clock()
        job.state = "running"
        svc.admission.job_started()
        svc.reg.touch_worker(self.name)
        # One queue-wait segment per dequeue (requeues refresh the
        # anchor), plus time-to-first-attempt into the SLO sketches the
        # first time the job reaches a worker.
        job.record_event(
            "serve.queue_wait",
            start=job.enqueued - job.epoch,
            duration=max(job.started - job.enqueued, 0.0),
            worker=self.name,
        )
        if job.first_attempt_at is None:
            job.first_attempt_at = job.started
            svc.slo.record_first_attempt(
                job.spec.priority, job.started - job.submitted
            )
        try:
            # Deadline gate at the front of the queue: a job already past
            # its SLO runs degraded or is shed, per policy.
            if job.past_deadline and not job.deadline_missed:
                if not svc.degrade.apply_deadline_miss(job):
                    job.finish("shed", error="deadline passed while queued")
                    svc.on_terminal(job)
                    return
            if svc.overloaded and not job.degradations:
                if not svc.degrade.apply_overload(job):
                    job.finish("shed", error="overload shed")
                    svc.on_terminal(job)
                    return

            # Batching: pack same-shape coalescible companions into one
            # gemm_batched EVD stack.
            if svc.coalescer is not None and svc.coalescer.eligible(job):
                companions = svc.coalescer.companions(svc.queue, job)
                if companions:
                    self._process_batch(job, companions)
                    return

            self._run_with_retries(job)
        finally:
            svc.admission.job_ended()

    def _record_attempt(self, job: Job, t0: float, k: int, outcome: str) -> None:
        """Close attempt ``k``'s lifecycle span with its outcome."""
        job.last_attempt_span = job.record_event(
            "serve.attempt",
            start=t0,
            duration=max(job.now() - t0, 0.0),
            attempt=k,
            worker=self.name,
            outcome=outcome,
            precision=job.precision,
        )

    def _run_with_retries(self, job: Job) -> None:
        svc = self.service
        policy = job.spec.retry
        while True:
            job.attempts += 1
            k = job.attempts
            token = PreemptionToken(inner=svc.crash_for(job))
            job.token = token
            # A checkpointed attempt after a preemption or crash is a
            # *resume* of the same trace: link it to the interrupted
            # attempt so the exporter can draw the flow arrow.
            if job.resume_pending:
                job.resume_pending = False
                job.record_event(
                    "serve.resume", attempt=k, worker=self.name,
                    link_from=job.last_attempt_span,
                )
            t0 = job.now()
            try:
                # SLO deadline, enforced through the wall-clock budget at
                # every attempt boundary.  Once the job has accepted the
                # degraded deadline-missed path it runs to completion —
                # re-raising here would just burn the retry budget.
                if not job.deadline_missed:
                    job.budget.check(iterations=job.attempts - 1)
                res = self._solve(job, token)
            except JobPreempted as exc:
                job.token = None
                job.preemptions += 1
                self._record_attempt(job, t0, k, "preempted")
                job.record_event(
                    "serve.preempt", attempt=k, worker=self.name,
                    reason=exc.reason,
                )
                if exc.reason == "cancel":
                    job.finish("cancelled", error=exc)
                    svc.on_terminal(job)
                elif exc.reason == "deadline":
                    if job.spec.priority in svc.degrade.shed_classes:
                        job.finish("shed", error=exc)
                        svc.on_terminal(job)
                    else:
                        job.deadline_missed = True
                        job.resume_pending = job.spec.checkpointed
                        svc.requeue(job)
                else:
                    job.resume_pending = job.spec.checkpointed
                    svc.requeue(job)
                return
            except SimulatedCrashError as exc:
                # Crash: retry-resume from the committed checkpoint in the
                # same run directory.
                self._record_attempt(job, t0, k, "crash")
                job.resume_pending = job.spec.checkpointed
                if not self._retry(job, policy, exc, kind="crash"):
                    return
            except BudgetExceededError as exc:
                job.deadline_missed = True
                self._record_attempt(job, t0, k, "deadline")
                if not svc.degrade.apply_deadline_miss(job):
                    job.finish("shed", error=exc)
                    svc.on_terminal(job)
                    return
                # Degraded re-run still honors the retry budget; fresh
                # run dir since want_vectors changed the run config.
                self._reset_run_dir(job)
                if not self._retry(job, policy, exc, kind="deadline"):
                    return
            except SdcError as exc:
                # Silent data corruption the driver-side ABFT could not
                # repair: retry at the same precision (the fault is in
                # the data, not the numerics) and surface it as its own
                # retry class.  Must precede NumericalBreakdownError —
                # SdcError subclasses it.
                self._record_attempt(job, t0, k, "sdc")
                job.sdc_retries += 1
                svc.reg.inc(
                    "repro_serve_sdc_retries_total", priority=job.spec.priority
                )
                if not self._retry(job, policy, exc, kind="sdc"):
                    return
            except (
                NumericalBreakdownError, ConvergenceError, SingularMatrixError,
            ) as exc:
                # Numerical: retry-escalate to the next-safer precision.
                self._record_attempt(job, t0, k, "numerical")
                safer = Precision.from_name(job.precision).next_safer
                if safer is None:
                    job.finish("failed", error=exc)
                    svc.on_terminal(job)
                    return
                job.add_degradation(
                    "escalate_precision", "numerical_breakdown",
                    from_precision=job.precision, to_precision=safer.value,
                )
                job.precision = safer.value
                self._reset_run_dir(job)
                if not self._retry(job, policy, exc, kind="numerical"):
                    return
            except (ValidationError, ConfigurationError) as exc:
                self._record_attempt(job, t0, k, "failed")
                job.finish("failed", error=exc)
                svc.on_terminal(job)
                return
            else:
                job.token = None
                svc.breaker.record_success()
                if job.past_deadline:
                    job.deadline_missed = True
                self._record_attempt(job, t0, k, "done")
                job.finish(
                    "done",
                    eigenvalues=res.eigenvalues,
                    eigenvectors=res.eigenvectors,
                )
                svc.on_terminal(job)
                return

    def _retry(self, job: Job, policy, exc, *, kind: str) -> bool:
        """Book-keep one failed attempt; False when the job just died."""
        svc = self.service
        job.token = None
        if job.attempts >= policy.max_attempts:
            job.finish("failed", error=exc)
            svc.on_terminal(job)
            return False
        svc.reg.inc("repro_serve_retries_total", kind=kind)
        delay = backoff(
            job.attempts,
            base=policy.backoff_base, cap=policy.backoff_cap,
            jitter=policy.backoff_jitter, rng=self._rng,
        )
        if delay > 0.0:
            svc.sleep(delay)
        job.record_event(
            "serve.backoff", duration=delay, attempt=job.attempts,
            worker=self.name, retry_kind=kind,
        )
        return True

    def _reset_run_dir(self, job: Job) -> None:
        """Drop a checkpointed job's run dir before a config-changing retry.

        The store pins the run config at ``begin`` and refuses a
        mismatch, so an escalated-precision (or degraded) retry must
        start a fresh directory; crash retries and preemption resumes
        keep it.
        """
        if job.run_dir is not None:
            shutil.rmtree(job.run_dir, ignore_errors=True)

    def _solve(self, job: Job, token: PreemptionToken):
        from ..ckpt.store import CheckpointConfig
        from ..eig.driver import syevd_2stage

        svc = self.service
        kwargs = dict(
            b=job.spec.b, nb=job.spec.nb, method=job.spec.method,
            precision=job.precision, want_vectors=job.want_vectors,
            tridiag_solver=job.spec.tridiag_solver,
            bulge_variant=job.spec.bulge_variant,
            check_input=False,  # validated once at submission
        )
        if job.spec.abft is not None:
            kwargs["abft"] = job.spec.abft
        if job.spec.faults is not None:
            kwargs["faults"] = job.spec.faults
        if job.spec.checkpointed:
            # Re-running against a directory holding an interrupted run
            # resumes it from the newest committed checkpoint — the same
            # call serves first attempts, crash retries, and
            # post-preemption resumes.
            cfg = CheckpointConfig(
                run_dir=job.run_dir, every=svc.checkpoint_every, crash=token,
                trace=job.trace.to_dict(),
            )
            return syevd_2stage(job.spec.a, checkpoint=cfg, **kwargs)
        res = syevd_2stage(job.spec.a, trace=job.trace, **kwargs)
        if token.requested and token.reason == "cancel":
            # Non-checkpointed jobs have no preemption sites; honor a
            # cancel that raced the run by discarding the result.
            raise JobPreempted("cancelled (result discarded)", reason="cancel")
        return res

    # -- batched path ------------------------------------------------------
    def _process_batch(self, lead: Job, companions: "list[Job]") -> None:
        from .coalesce import evd_stack

        svc = self.service
        jobs = [lead] + companions
        now = svc.clock()
        for job in jobs:
            job.state = "running"
            if job.started is None:
                job.started = now
                # Companions skipped _process: account their queue wait
                # and first-attempt latency here.
                job.record_event(
                    "serve.queue_wait",
                    start=job.enqueued - job.epoch,
                    duration=max(job.started - job.enqueued, 0.0),
                    worker=self.name,
                )
                if job.first_attempt_at is None:
                    job.first_attempt_at = job.started
                    svc.slo.record_first_attempt(
                        job.spec.priority, job.started - job.submitted
                    )
            job.attempts += 1
        t0 = lead.now()
        svc.reg.inc("repro_serve_batches_total")
        svc.reg.set("repro_serve_batch_size", float(len(jobs)))
        try:
            out = evd_stack(
                [j.spec.a for j in jobs],
                engine=svc.batch_engine,
                want_vectors=lead.want_vectors,
            )
        except Exception as exc:
            # The batch ties fates together only on success: the lead
            # falls back to the solo retry path, companions re-enter the
            # queue untouched.
            for job in jobs:
                self._record_attempt(job, t0, job.attempts, "batch_failed")
            for job in companions:
                svc.requeue(job)
            self._retry(lead, lead.spec.retry, exc, kind="batch")
            if not lead.terminal:
                self._run_with_retries(lead)
            return
        svc.breaker.record_success()
        for job, (lam, x) in zip(jobs, out):
            if job.past_deadline:
                job.deadline_missed = True
            self._record_attempt(job, t0, job.attempts, "done")
            job.timeline[-1]["batched"] = True
            job.finish("done", eigenvalues=lam, eigenvectors=x, batched=True)
            svc.on_terminal(job)
