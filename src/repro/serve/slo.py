"""SLO accounting: per-class error budgets and burn rates.

An SLO here is "fraction of (non-cancelled) jobs in a priority class
that end OK and inside their deadline".  The tracker folds every
terminal job into the live registry:

- ``repro_serve_slo_good_total{priority}`` / ``_bad_total`` — the raw
  tally feeding the budget math;
- ``repro_serve_slo_deadline_hits_total{priority}`` / ``_misses_total``
  — deadline outcomes for jobs that *had* a deadline;
- ``repro_serve_slo_sdc_jobs_total{priority}`` — jobs whose life
  included at least one silent-data-corruption retry (or that failed on
  an :class:`~repro.errors.SdcError`); ``_sdc_bad_total`` — the subset
  that also burned error budget, so SDC-driven badness is separable
  from deadline/overload badness;
- ``repro_serve_slo_burn_rate{priority}`` — observed bad fraction
  divided by the allowed bad fraction ``1 - target`` (1.0 = burning the
  error budget exactly as fast as the objective permits; > 1 = SLO at
  risk);
- ``repro_serve_slo_error_budget_remaining{priority}`` — fraction of
  the run's error budget left (clamped at 0);
- ``repro_serve_ttfa_seconds{priority}`` — time-to-first-attempt
  quantile sketch (admission + queue latency as the client feels it).

The burn rate is run-scoped (whole-soak window), matching the rest of
the serving bench accounting; a production deployment would window it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SloPolicy", "SloTracker", "DEFAULT_TARGET"]

#: Default per-class success objective (99% of jobs good).
DEFAULT_TARGET = 0.99


@dataclass(frozen=True)
class SloPolicy:
    """Per-priority-class success objectives (fraction of good jobs)."""

    targets: dict = field(default_factory=dict)
    default_target: float = DEFAULT_TARGET

    def target(self, priority: str) -> float:
        t = float(self.targets.get(priority, self.default_target))
        if not 0.0 < t < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {t}")
        return t


class SloTracker:
    """Folds terminal jobs into per-class error-budget gauges."""

    def __init__(self, registry, policy: "SloPolicy | None" = None) -> None:
        self.reg = registry
        self.policy = policy if policy is not None else SloPolicy()
        self._good: "dict[str, int]" = {}
        self._bad: "dict[str, int]" = {}

    # -- recording ---------------------------------------------------------
    def record_first_attempt(self, priority: str, ttfa: float) -> None:
        """Observe time-to-first-attempt (called once per job)."""
        self.reg.observe(
            "repro_serve_ttfa_seconds", max(ttfa, 0.0), priority=priority
        )

    def record_terminal(self, job) -> None:
        """Fold one terminal job into the class's budget accounting."""
        r = job.result
        if r is None or r.outcome == "cancelled":
            return  # client cancels don't burn the service's budget
        cls = job.spec.priority
        good = r.ok and not r.deadline_missed
        # getattr: result-shaped objects predating the sdc_retries field
        # (external fakes, persisted records) still account correctly.
        sdc = (getattr(r, "sdc_retries", 0) > 0
               or getattr(r, "error_type", None) == "SdcError")
        if sdc:
            self.reg.inc("repro_serve_slo_sdc_jobs_total", priority=cls)
            if not good:
                self.reg.inc("repro_serve_slo_sdc_bad_total", priority=cls)
        if good:
            self._good[cls] = self._good.get(cls, 0) + 1
            self.reg.inc("repro_serve_slo_good_total", priority=cls)
        else:
            self._bad[cls] = self._bad.get(cls, 0) + 1
            self.reg.inc("repro_serve_slo_bad_total", priority=cls)
        if job.spec.deadline_seconds is not None:
            if r.deadline_missed:
                self.reg.inc(
                    "repro_serve_slo_deadline_misses_total", priority=cls
                )
            else:
                self.reg.inc(
                    "repro_serve_slo_deadline_hits_total", priority=cls
                )
        self._update_gauges(cls)

    def _update_gauges(self, cls: str) -> None:
        good = self._good.get(cls, 0)
        bad = self._bad.get(cls, 0)
        total = good + bad
        if total == 0:
            return
        allowed = 1.0 - self.policy.target(cls)
        burn = (bad / total) / allowed
        self.reg.set("repro_serve_slo_burn_rate", burn, priority=cls)
        self.reg.set(
            "repro_serve_slo_error_budget_remaining",
            max(0.0, 1.0 - burn),
            priority=cls,
        )

    # -- reporting ---------------------------------------------------------
    def rows(self) -> "list[dict]":
        """Per-class summary rows for the soak CLI printout."""
        out = []
        for cls in sorted(set(self._good) | set(self._bad)):
            good = self._good.get(cls, 0)
            bad = self._bad.get(cls, 0)
            total = good + bad
            allowed = 1.0 - self.policy.target(cls)
            burn = (bad / total) / allowed if total else 0.0
            out.append({
                "priority": cls,
                "good": good,
                "bad": bad,
                "target": self.policy.target(cls),
                "burn_rate": burn,
                "error_budget_remaining": max(0.0, 1.0 - burn),
            })
        return out
