"""Graceful degradation under overload and deadline pressure.

The ladder, cheapest loss first:

1. ``downgrade_precision`` — run at the next-cheaper precision rung
   (``fp64 -> fp32 -> tf32_tc -> fp16_ec_tc -> fp16_tc``).  The
   in-driver escalation ladder still rescues breakdowns, so this trades
   accuracy headroom, not correctness.
2. ``drop_vectors`` — eigenvalues only, skipping both back-transforms
   (the dominant cost for vector-producing runs).
3. ``shed`` — don't run at all.  Applied lowest class first; a shed job
   terminates with outcome ``"shed"`` so the client knows immediately.

Every applied step is recorded on the job (and therefore in its result
and manifest line) — a degraded answer must say it is degraded.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..precision.modes import Precision
from .job import PRIORITIES, Job

__all__ = ["DegradationPolicy", "cheaper_precision"]

#: Escalation ladder order, safest (most expensive) first.
_COST_ORDER = ("fp64", "fp32", "tf32_tc", "fp16_ec_tc", "fp16_tc")


def cheaper_precision(precision: str) -> "str | None":
    """Next-cheaper precision rung (None at the bottom / off-ladder)."""
    name = Precision.from_name(precision).value
    try:
        idx = _COST_ORDER.index(name)
    except ValueError:
        return None
    return _COST_ORDER[idx + 1] if idx + 1 < len(_COST_ORDER) else None


@dataclass
class DegradationPolicy:
    """What the service may sacrifice, and when.

    Parameters
    ----------
    overload_threshold : float
        Queue fullness fraction at which overload mode engages.
    shed_classes : tuple
        Priority classes whose *queued* jobs are shed under overload,
        lowest class first.
    downgrade_precision : bool
        Allow running remaining jobs one precision rung cheaper while
        overloaded.
    drop_vectors_on_deadline : bool
        Allow a past-deadline job to run eigenvalues-only instead of
        being shed (applies to classes not in ``shed_classes``).
    """

    overload_threshold: float = 0.8
    shed_classes: tuple = ("batch",)
    downgrade_precision: bool = True
    drop_vectors_on_deadline: bool = True

    def overloaded(self, fullness: float) -> bool:
        return fullness >= self.overload_threshold

    def shed_order(self) -> "tuple[str, ...]":
        """Classes to shed, lowest priority first."""
        return tuple(
            cls for cls in reversed(PRIORITIES) if cls in self.shed_classes
        )

    def apply_overload(self, job: Job) -> bool:
        """Degrade one admitted job for overload; True if it may still run.

        Shed classes return False (the job must be terminated with
        outcome ``"shed"``); other classes get the precision downgrade
        when enabled and policy-compatible.
        """
        if job.spec.priority in self.shed_classes:
            return False
        if self.downgrade_precision:
            cheaper = cheaper_precision(job.precision)
            if cheaper is not None and not job.spec.checkpointed:
                # Checkpointed jobs keep their pinned precision: the run
                # config is part of the checkpoint identity and changing
                # it would forfeit bitwise-identical resume.
                job.add_degradation(
                    "downgrade_precision", "overload",
                    from_precision=job.precision, to_precision=cheaper,
                )
                job.precision = cheaper
        return True

    def apply_deadline_miss(self, job: Job) -> bool:
        """Handle a job that reached the front past its deadline.

        True: run it degraded (eigenvalues only when allowed), marked
        ``deadline_missed``.  False: shed it.
        """
        job.deadline_missed = True
        if job.spec.priority in self.shed_classes:
            return False
        if self.drop_vectors_on_deadline and job.want_vectors:
            job.add_degradation("drop_vectors", "deadline_missed")
            job.want_vectors = False
        return True
