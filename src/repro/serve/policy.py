"""Admission control: circuit breaker + health-signal gating.

Every request passes :meth:`AdmissionController.admit` before it touches
the queue.  Admission rejects — with a structured
:class:`~repro.errors.AdmissionError` the client can act on — when:

- the service is shutting down (``reason="shutdown"``),
- the circuit breaker is open after repeated worker failures
  (``reason="circuit_open"``, ``retry_after`` = cooldown remaining),
- the live-metrics registry reports no solver progress for longer than
  ``stall_after`` seconds while jobs are running (``reason="stalled"``)
  — a wedged pool should push work away, not bury it.

The queue itself raises ``reason="queue_full"`` from its backpressure
discipline; the controller deliberately does not duplicate that check
(the queue's count is the single source of truth).

The breaker is the classic three-state machine: ``closed`` (normal),
``open`` (rejecting, after ``failure_threshold`` consecutive unexpected
worker failures), ``half_open`` (after ``cooldown`` seconds, one probe
job is admitted; success closes the breaker, failure re-opens it).
Numerical breakdowns and deadline misses do **not** count — they are
per-job outcomes with their own retry/degradation path; the breaker
watches for the pool itself being broken (unexpected exceptions).
"""

from __future__ import annotations

import threading
import time

from ..errors import AdmissionError

__all__ = ["CircuitBreaker", "AdmissionController"]


class CircuitBreaker:
    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        cooldown: float = 5.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == "open"
            and self.clock() - self._opened_at >= self.cooldown
        ):
            self._state = "half_open"
            self._probing = False

    def allow(self) -> bool:
        """Whether a new job may be admitted right now.

        In ``half_open`` exactly one probe is let through; concurrent
        admits are rejected until the probe reports back.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def retry_after(self) -> float:
        with self._lock:
            if self._state != "open":
                return 0.0
            return max(self.cooldown - (self.clock() - self._opened_at), 0.0)

    def record_success(self) -> None:
        with self._lock:
            self._failures = 0
            self._state = "closed"
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or self._failures >= self.failure_threshold:
                self._state = "open"
                self._opened_at = self.clock()
                self._probing = False

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "cooldown": self.cooldown,
            }


class AdmissionController:
    def __init__(
        self,
        *,
        breaker: "CircuitBreaker | None" = None,
        registry=None,
        stall_after: "float | None" = 30.0,
        clock=time.monotonic,
    ) -> None:
        self.breaker = breaker if breaker is not None else CircuitBreaker(clock=clock)
        self.registry = registry
        self.stall_after = stall_after
        self.clock = clock
        self._shutdown = False
        #: Set by the service while at least one job is running — the
        #: stall signal is meaningful only then (an idle pool makes no
        #: progress by definition).
        self.active_jobs = 0
        self._lock = threading.Lock()

    def begin_shutdown(self) -> None:
        self._shutdown = True

    def job_started(self) -> None:
        with self._lock:
            self.active_jobs += 1

    def job_ended(self) -> None:
        with self._lock:
            self.active_jobs = max(self.active_jobs - 1, 0)

    def admit(self) -> None:
        """Raise :class:`AdmissionError` unless a new job may enter."""
        if self._shutdown:
            raise AdmissionError(
                "service is shutting down", reason="shutdown"
            )
        if not self.breaker.allow():
            raise AdmissionError(
                "circuit breaker open after repeated worker failures",
                reason="circuit_open", retry_after=self.breaker.retry_after(),
            )
        reg = self.registry
        if (
            reg is not None
            and self.stall_after is not None
            and self.active_jobs > 0
            and reg.progress_age() > self.stall_after
        ):
            raise AdmissionError(
                f"no solver progress for {reg.progress_age():.1f}s with "
                f"{self.active_jobs} job(s) running",
                reason="stalled", retry_after=self.stall_after,
            )
