"""Job model for the EVD serving layer.

A :class:`JobSpec` is everything the client asks for: the matrix, the
solver configuration, a priority class, an SLO deadline, and a retry
policy.  A :class:`Job` is the service-side lifecycle wrapper around one
spec — queued, running, possibly preempted back into the queue, and
finally one of the five terminal outcomes:

========== ====================================================
``done``       solved within policy, full-fidelity result
``degraded``   solved, but under a recorded degradation (cheaper
               precision, no eigenvectors, past-deadline finish)
``shed``       dropped by overload / deadline policy before (or
               instead of) solving
``failed``     exhausted retries or hit a non-retryable error
``cancelled``  client cancel
========== ====================================================

Zero jobs are ever *lost*: every submitted job ends in exactly one of
these states and its manifest line records which and why.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

import numpy as np

from ..eig.budget import WallClockBudget
from ..obs.tracing import TraceContext, lifecycle_span

__all__ = [
    "PRIORITIES",
    "TERMINAL_STATES",
    "RetryPolicy",
    "JobSpec",
    "JobResult",
    "Job",
]

#: Priority classes, highest first.  Lower classes are shed first under
#: overload and preempted first under deadline pressure.
PRIORITIES = ("interactive", "standard", "batch")

#: Every job ends in exactly one of these.
TERMINAL_STATES = ("done", "degraded", "shed", "failed", "cancelled")

_seq = itertools.count(1)


def priority_rank(priority: str) -> int:
    """Smaller rank = more urgent (heap order)."""
    return PRIORITIES.index(priority)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff + jitter.

    ``max_attempts`` counts *tries*, not retries: 3 means the original
    attempt plus two retries.  Numerical breakdowns retry at an
    escalated precision (layered on the in-driver escalation ladder);
    crashes retry by resuming the job's checkpoint.  Backoff delays come
    from :func:`repro.resilience.policy.backoff` and are deterministic
    under the service's seeded rng.
    """

    max_attempts: int = 3
    backoff_base: float = 0.02
    backoff_cap: float = 1.0
    backoff_jitter: float = 0.5


@dataclass
class JobSpec:
    """One EVD request as submitted by a client."""

    a: np.ndarray
    b: int = 8
    nb: "int | None" = None
    method: str = "wy"
    precision: str = "fp32"
    want_vectors: bool = True
    tridiag_solver: str = "dc"
    #: Stage-2 bulge-chase variant forwarded to the driver
    #: (``"givens"``, ``"blocked"``, or ``"wavefront"``).
    bulge_variant: str = "givens"
    priority: str = "standard"
    deadline_seconds: "float | None" = None
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    #: Durable checkpointed run directory — required for preemption and
    #: crash-resume; small throwaway requests leave it off.
    checkpointed: bool = False
    #: May be packed into a same-shape ``gemm_batched`` EVD stack.
    coalescible: bool = False
    #: Online ABFT knob forwarded to the driver: ``None``/``"off"``,
    #: ``"detect"``, or ``"correct"`` (or an ``AbftPolicy``).
    abft: "object | None" = None
    #: Fault injector forwarded to the driver (chaos harness only).
    faults: "object | None" = None
    tag: str = ""


@dataclass
class JobResult:
    """What :meth:`EvdService.result` returns for a terminal job."""

    job_id: str
    outcome: str
    eigenvalues: "np.ndarray | None" = None
    eigenvectors: "np.ndarray | None" = None
    error: "str | None" = None
    error_type: "str | None" = None
    degradations: list = field(default_factory=list)
    deadline_missed: bool = False
    attempts: int = 0
    preemptions: int = 0
    #: Attempts retried because the driver escalated an uncorrectable
    #: silent-data-corruption event (:class:`repro.errors.SdcError`).
    sdc_retries: int = 0
    wall: float = 0.0
    queue_wait: float = 0.0
    precision_used: str = ""
    batched: bool = False

    @property
    def ok(self) -> bool:
        return self.outcome in ("done", "degraded")


class Job:
    """Service-side lifecycle wrapper around one :class:`JobSpec`."""

    def __init__(
        self,
        spec: JobSpec,
        *,
        clock,
        job_id: "str | None" = None,
        epoch: float = 0.0,
    ):
        self.seq = next(_seq)
        self.id = job_id if job_id is not None else f"job-{self.seq:06d}"
        self.spec = spec
        self.clock = clock
        #: Service epoch: timeline event timestamps are relative to it so
        #: every job in a soak shares one time axis.
        self.epoch = epoch
        self.submitted = clock()
        #: Last enqueue time (submission, then refreshed on requeue) —
        #: the anchor for per-dequeue queue-wait accounting.
        self.enqueued = self.submitted
        self.started: "float | None" = None
        self.state = "queued"
        self.attempts = 0
        self.preemptions = 0
        self.sdc_retries = 0
        # Causal trace: minted once per request, carried through every
        # attempt, preemption, and checkpoint resume.  ``timeline``
        # accumulates lifecycle events for the job's manifest line.
        self.trace = TraceContext.new()
        self.timeline: "list[dict]" = []
        self.last_attempt_span: "str | None" = None
        self.resume_pending = False
        self.first_attempt_at: "float | None" = None
        self.degradations: list = []
        self.deadline_missed = False
        self.run_dir: "str | None" = None
        self.token = None  # PreemptionToken while running
        self.result: "JobResult | None" = None
        self.done = threading.Event()
        self._lock = threading.Lock()
        # The SLO deadline mapped onto the existing wall-clock budget
        # machinery: anchored at submission, checked at attempt
        # boundaries, and driving the scheduler's preemption decisions.
        self.budget = WallClockBudget(
            spec.deadline_seconds, phase=f"serve.{spec.priority}"
        )
        # Effective solver knobs — degradation rewrites these, never the
        # client's original spec.
        self.precision = spec.precision
        self.want_vectors = spec.want_vectors

    # -- deadline ----------------------------------------------------------
    @property
    def past_deadline(self) -> bool:
        return self.budget.expired

    def remaining(self) -> "float | None":
        return self.budget.remaining()

    # -- tracing -----------------------------------------------------------
    def now(self) -> float:
        """Seconds since the service epoch (the shared timeline axis)."""
        return self.clock() - self.epoch

    def record_event(
        self,
        name: str,
        *,
        start: "float | None" = None,
        duration: float = 0.0,
        worker: "str | None" = None,
        **meta,
    ) -> str:
        """Append one lifecycle event to the job's timeline.

        Mints a child span id under the job's trace, records the event
        in ``timeline`` (persisted on the manifest line), and mirrors it
        into the active PR-1 collector via :func:`lifecycle_span` (free
        when telemetry is off).  Returns the new span id so callers can
        link later events to it (preempt -> resume continuity).
        """
        end = self.now()
        if start is None:
            start = end - duration
        child = self.trace.child()
        ev = {
            "name": name,
            "t": round(start, 6),
            "dur": round(duration, 6),
            "span_id": child.span_id,
            "parent_id": self.trace.span_id,
        }
        if worker is not None:
            ev["worker"] = worker
        for key, value in meta.items():
            if value is not None:
                ev[key] = value
        self.timeline.append(ev)
        lifecycle_span(
            name, duration, trace=child, worker=worker, job=self.id,
            **{k: v for k, v in meta.items() if v is not None},
        )
        return child.span_id

    # -- lifecycle ---------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_degradation(self, kind: str, reason: str, **detail) -> None:
        self.degradations.append({"kind": kind, "reason": reason, **detail})

    def finish(
        self,
        outcome: str,
        *,
        eigenvalues=None,
        eigenvectors=None,
        error: "Exception | str | None" = None,
        batched: bool = False,
    ) -> "JobResult | None":
        """Move to a terminal state (idempotent; first finish wins)."""
        if outcome not in TERMINAL_STATES:
            raise ValueError(f"not a terminal state: {outcome!r}")
        with self._lock:
            if self.terminal:
                return None
            if outcome == "done" and (self.degradations or self.deadline_missed):
                outcome = "degraded"
            self.state = outcome
            now = self.clock()
            self.result = JobResult(
                job_id=self.id,
                outcome=outcome,
                eigenvalues=eigenvalues,
                eigenvectors=eigenvectors,
                error=str(error) if error is not None else None,
                error_type=type(error).__name__
                if isinstance(error, BaseException) else None,
                degradations=list(self.degradations),
                deadline_missed=self.deadline_missed,
                attempts=self.attempts,
                preemptions=self.preemptions,
                sdc_retries=self.sdc_retries,
                wall=now - self.submitted,
                queue_wait=(self.started - self.submitted)
                if self.started is not None else now - self.submitted,
                precision_used=self.precision,
                batched=batched,
            )
        self.done.set()
        return self.result

    def manifest_record(self) -> dict:
        """One JSONL manifest line for this job's terminal state."""
        r = self.result
        rec = {
            "kind": "serve_job",
            "job": self.id,
            "tag": self.spec.tag,
            "n": int(self.spec.a.shape[0]),
            "priority": self.spec.priority,
            "bulge_variant": self.spec.bulge_variant,
            "state": self.state,
            "attempts": self.attempts,
            "preemptions": self.preemptions,
            "sdc_retries": self.sdc_retries,
            "deadline_seconds": self.spec.deadline_seconds,
            "deadline_missed": self.deadline_missed,
            "degradations": list(self.degradations),
            "checkpointed": self.spec.checkpointed,
            "run_dir": self.run_dir,
            "trace": self.trace.to_dict(),
            "timeline": list(self.timeline),
        }
        if r is not None:
            rec.update({
                "wall": r.wall,
                "queue_wait": r.queue_wait,
                "precision_used": r.precision_used,
                "batched": r.batched,
                "error": r.error,
                "error_type": r.error_type,
            })
        return rec
