"""Scheduler: the service's control loop.

A single monitor thread ticks a few times a second and applies the
policies that need a global view:

- **Heartbeat** — emits the PR-6 liveness file each tick, so external
  watchdogs (and the admission controller's stall signal) see the pool's
  pulse even while every worker is deep inside a solve.
- **Deadline preemption** — a running *checkpointed* job whose SLO
  deadline has passed is asked to yield at its next durable checkpoint
  (``token.request("deadline")``); the worker then re-queues it degraded
  or sheds it per policy.  Non-checkpointed jobs cannot be preempted
  mid-run; their deadline is enforced at attempt boundaries instead.
- **Priority preemption** — when an ``interactive`` job is waiting and
  every worker is busy, the lowest-class running checkpointed job is
  evicted to its checkpoint (``token.request("priority")``) and resumes
  later, bitwise-identically, from where it left off.
- **Overload shedding** — when queue fullness crosses the degradation
  policy's threshold, queued jobs of the shed classes are drained and
  terminated with outcome ``"shed"``, lowest class first, and the
  service enters overload mode (remaining jobs may run
  precision-downgraded until pressure clears).
"""

from __future__ import annotations

import threading

from .job import priority_rank

__all__ = ["Scheduler"]


class Scheduler(threading.Thread):
    def __init__(self, service, *, interval: float = 0.05) -> None:
        super().__init__(name="serve-scheduler", daemon=True)
        self.service = service
        self.interval = interval
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        while not self._halt.wait(self.interval):
            try:
                self.tick()
            except Exception:  # a sick control loop must not kill serving
                self.service.reg.inc("repro_serve_scheduler_errors_total")

    def tick(self) -> None:
        svc = self.service
        if svc.heartbeat is not None:
            svc.heartbeat.beat(svc.reg)
        self._enforce_deadlines()
        self._preempt_for_priority()
        self._manage_overload()
        svc.reg.set("repro_serve_queue_depth", float(svc.queue.depth()))
        svc.reg.set("repro_serve_queue_fullness", svc.queue.fullness())

    # -- deadline-based preemption ----------------------------------------
    def _enforce_deadlines(self) -> None:
        for worker in self.service.workers:
            job = worker.current_job
            token = job.token if job is not None else None
            if (
                job is not None
                and token is not None
                and job.spec.checkpointed
                and job.past_deadline
                and not job.deadline_missed
                and not token.requested
            ):
                token.request("deadline")
                self.service.reg.inc(
                    "repro_serve_preemptions_total", reason="deadline"
                )

    # -- priority-based preemption ----------------------------------------
    def _preempt_for_priority(self) -> None:
        svc = self.service
        depth = svc.queue.depth_by_class()
        if depth.get("interactive", 0) == 0:
            return
        # Evict the lowest-priority running checkpointed job, if any
        # worker is holding one while interactive work waits.
        victim_token, victim_rank = None, -1
        for worker in svc.workers:
            job = worker.current_job
            token = job.token if job is not None else None
            if (
                job is None
                or token is None
                or not job.spec.checkpointed
                or token.requested
                or job.spec.priority == "interactive"
            ):
                continue
            rank = priority_rank(job.spec.priority)
            if rank > victim_rank:
                victim_token, victim_rank = token, rank
        if victim_token is not None:
            victim_token.request("priority")
            svc.reg.inc("repro_serve_preemptions_total", reason="priority")

    # -- overload ----------------------------------------------------------
    def _manage_overload(self) -> None:
        svc = self.service
        full = svc.queue.fullness()
        if svc.degrade.overloaded(full):
            if not svc.overloaded:
                svc.overloaded = True
                svc.reg.inc("repro_serve_overload_transitions_total")
            for cls in svc.degrade.shed_order():
                for job in svc.queue.drain_class(cls):
                    job.finish("shed", error=f"overload shed (class={cls})")
                    svc.on_terminal(job)
        elif svc.overloaded and full < svc.degrade.overload_threshold / 2.0:
            # Hysteresis: leave overload mode only once pressure clearly
            # cleared, so the mode doesn't flap at the threshold.
            svc.overloaded = False
