"""EvdService: the async EVD-as-a-service front door.

``submit`` validates the request once, passes admission control, and
enqueues; ``result`` waits for the job's terminal state; ``cancel``
removes a queued job or asks a running one to yield at its next durable
checkpoint.  A worker pool drains the queue and a scheduler thread
applies the global policies (heartbeat, deadline/priority preemption,
overload shedding).

Observability is first-class: the service owns a PR-6 metrics registry
(installed process-wide for its lifetime so driver spans/GEMM telemetry
flow into it), emits a heartbeat file, appends one manifest JSONL line
per terminal job, and exports per-class latency rows into the PR-3
bench store for the regression gate.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

import numpy as np

from ..errors import AdmissionError, ValidationError
from ..gemm.engine import make_engine
from ..ioutils import append_jsonl
from ..obs.analytics.benchstore import (
    default_session_path,
    make_session,
    write_session,
)
from ..obs.live.health import Heartbeat
from ..obs.live.registry import MetricsRegistry, install, uninstall
from ..obs.live.sinks import render_prometheus
from ..validation import as_symmetric_matrix, check_finite_matrix
from .coalesce import Coalescer
from .degrade import DegradationPolicy
from .job import PRIORITIES, Job, JobResult, JobSpec, RetryPolicy
from .policy import AdmissionController, CircuitBreaker
from .queue import BoundedJobQueue
from .scheduler import Scheduler
from .slo import SloPolicy, SloTracker
from .worker import Worker

__all__ = ["EvdService"]


class EvdService:
    """Async EVD serving: bounded queue, worker pool, control loop.

    Use as a context manager (``with EvdService(...) as svc``) or call
    :meth:`start` / :meth:`shutdown` explicitly.

    Parameters
    ----------
    workers : int
        Worker threads (one running job each).
    queue_capacity, backpressure :
        Bounded-queue size and full-queue discipline (``"reject"`` |
        ``"block"``) — see :class:`BoundedJobQueue`.
    spool_dir : str, optional
        Root for per-job checkpoint run dirs and the manifest; a temp
        dir is created when omitted.
    coalesce : bool
        Enable the same-shape batching coalescer.
    stall_after : float or None
        Admission stall gate: reject new work when the registry shows no
        solver progress for this long while jobs run (None disables).
    seed : int
        Seeds the per-worker backoff-jitter rngs (deterministic soaks).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        queue_capacity: int = 64,
        backpressure: str = "reject",
        spool_dir: "str | None" = None,
        degrade: "DegradationPolicy | None" = None,
        breaker: "CircuitBreaker | None" = None,
        coalesce: bool = True,
        max_batch: int = 8,
        checkpoint_every: int = 1,
        stall_after: "float | None" = 30.0,
        seed: int = 0,
        tick: float = 0.05,
        scheduler_interval: float = 0.05,
        heartbeat: bool = True,
        slo: "SloPolicy | None" = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.clock = time.monotonic
        self.sleep = time.sleep
        self.tick = tick
        self.seed = seed
        self.checkpoint_every = checkpoint_every
        #: Epoch anchoring every job's trace timeline on one time axis.
        self.epoch = self.clock()

        if spool_dir is None:
            spool_dir = tempfile.mkdtemp(prefix="repro-serve-")
        self.spool_dir = spool_dir
        os.makedirs(self.spool_dir, exist_ok=True)
        self.manifest_path = os.path.join(self.spool_dir, "manifest.jsonl")

        self.reg = MetricsRegistry()
        self.queue = BoundedJobQueue(queue_capacity, backpressure=backpressure)
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.admission = AdmissionController(
            breaker=self.breaker, registry=self.reg, stall_after=stall_after,
        )
        self.degrade = degrade if degrade is not None else DegradationPolicy()
        self.coalescer = Coalescer(max_batch=max_batch) if coalesce else None
        self.batch_engine = make_engine("fp64")
        self.heartbeat = (
            Heartbeat(os.path.join(self.spool_dir, "heartbeat.json"))
            if heartbeat else None
        )
        #: Fault-injection hook: ``callable(job) -> CrashInjector | None``
        #: consulted once per attempt (soak harness / tests).
        self.fault_factory = None

        self.workers = [Worker(self, i) for i in range(workers)]
        self.scheduler = Scheduler(self, interval=scheduler_interval)
        self.overloaded = False

        self.slo = SloTracker(self.reg, slo)

        self._jobs: "dict[str, Job]" = {}
        self._jobs_lock = threading.Lock()
        self._latencies = {cls: [] for cls in PRIORITIES}
        self._queue_waits = {cls: [] for cls in PRIORITIES}
        self._outcomes: "dict[str, int]" = {}
        self._started = False
        self._shut_down = False
        self._prev_registry = None

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "EvdService":
        if self._started:
            return self
        self._started = True
        # Process-wide registry for the service's lifetime: driver spans
        # and GEMM telemetry from worker threads land here, which also
        # feeds the admission controller's stall signal.
        self._prev_registry = install(self.reg)
        self.scheduler.start()
        for w in self.workers:
            w.start()
        return self

    def __enter__(self) -> "EvdService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown(wait=exc_type is None)

    @property
    def queue_closed(self) -> bool:
        return self._shut_down

    def shutdown(self, *, wait: bool = True, timeout: float = 60.0) -> None:
        """Stop accepting work; drain (``wait=True``) or cancel the queue.

        Every non-terminal job still ends in a terminal state: drained
        jobs finish normally, cancelled ones end ``"cancelled"``, and
        running jobs either complete or (checkpointed) yield at their
        next durable checkpoint and end ``"cancelled"``.
        """
        if self._shut_down:
            return
        self.admission.begin_shutdown()
        self._shut_down = True
        deadline = self.clock() + timeout
        if wait:
            while self.clock() < deadline:
                with self._jobs_lock:
                    pending = [j for j in self._jobs.values() if not j.terminal]
                if not pending:
                    break
                self.sleep(self.tick)
        # Cancel whatever is left: queued jobs terminate immediately,
        # running checkpointed jobs yield at the next commit.
        with self._jobs_lock:
            leftovers = [j for j in self._jobs.values() if not j.terminal]
        for job in leftovers:
            self._cancel_job(job, reason="shutdown")
        self.queue.close()
        self.scheduler.stop()
        for w in self.workers:
            w.stop()
        self.scheduler.join(timeout=5.0)
        for w in self.workers:
            w.join(timeout=max(deadline - self.clock(), 5.0))
        with self._jobs_lock:
            stragglers = [j for j in self._jobs.values() if not j.terminal]
        for job in stragglers:
            job.finish("cancelled", error="service shutdown")
            self.on_terminal(job)
        if self.heartbeat is not None:
            self.heartbeat.beat(self.reg)
        # Final Prometheus snapshot: the SLO burn-rate gauges and latency
        # sketches of the whole run, next to the manifest/heartbeat.
        try:
            with open(
                os.path.join(self.spool_dir, "metrics.prom"),
                "w", encoding="utf-8",
            ) as fh:
                fh.write(render_prometheus(self.reg.snapshot()))
        except OSError:
            self.reg.inc("repro_serve_manifest_errors_total")
        uninstall(self._prev_registry)

    # -- client API --------------------------------------------------------
    def submit(self, a=None, *, spec: "JobSpec | None" = None, **kwargs) -> str:
        """Validate, admit, and enqueue one request; returns the job id.

        Raises :class:`~repro.errors.ValidationError` for a bad matrix,
        :class:`~repro.errors.AdmissionError` when the service cannot
        take the job right now (full queue, open breaker, stalled pool,
        shutdown, or an invalid request shape) — ``.reason`` and
        ``.retry_after`` tell the client what to do about it.
        """
        if spec is None:
            if a is None:
                raise AdmissionError("submit needs a matrix", reason="invalid")
            spec = JobSpec(a=np.asarray(a), **kwargs)
        if spec.priority not in PRIORITIES:
            raise AdmissionError(
                f"unknown priority {spec.priority!r} (expected one of "
                f"{PRIORITIES})", reason="invalid",
            )
        if spec.deadline_seconds is not None and spec.deadline_seconds <= 0:
            raise AdmissionError(
                f"deadline_seconds must be positive, got "
                f"{spec.deadline_seconds}", reason="invalid",
            )
        if spec.retry.max_attempts < 1:
            raise AdmissionError(
                "retry.max_attempts must be >= 1", reason="invalid",
            )
        from ..eig.driver import BULGE_VARIANTS

        if spec.bulge_variant not in BULGE_VARIANTS:
            raise AdmissionError(
                f"unknown bulge_variant {spec.bulge_variant!r} (expected "
                f"one of {BULGE_VARIANTS})", reason="invalid",
            )
        # Validate the matrix once here; workers run check_input=False.
        a64 = np.asarray(spec.a, dtype=np.float64)
        if a64.ndim == 2 and a64.size:
            check_finite_matrix(a64)
        spec.a = as_symmetric_matrix(a64)
        # Fit the block sizes to the matrix so a small request never
        # bounces off the driver's blocksize validation (clients rarely
        # tune b/nb per matrix in a serving setting).
        n = spec.a.shape[0]
        spec.b = max(1, min(spec.b, n))
        if spec.nb is None and spec.method == "wy":
            spec.nb = max((min(4 * spec.b, n) // spec.b) * spec.b, spec.b)

        self.admission.admit()
        job = Job(spec, clock=self.clock, epoch=self.epoch)
        if spec.checkpointed:
            job.run_dir = os.path.join(self.spool_dir, job.id, "run")
        with self._jobs_lock:
            self._jobs[job.id] = job
        # The trace starts here: admission is the first lifecycle event
        # under the root context minted in Job.__init__.  Recorded
        # before the enqueue so a worker dequeuing immediately can never
        # write its queue-wait event ahead of the admit (a rejected put
        # below drops the job, timeline and all, so the stray event on
        # the backpressure path is never observable).
        job.record_event("serve.admit", priority=spec.priority)
        try:
            self.queue.put(job)
        except AdmissionError:
            with self._jobs_lock:
                self._jobs.pop(job.id, None)
            self.reg.inc("repro_serve_rejections_total", reason="queue_full")
            raise
        self.reg.inc(
            "repro_serve_submitted_total", priority=spec.priority,
        )
        return job.id

    def result(
        self, job_id: str, *, timeout: "float | None" = None
    ) -> "JobResult | None":
        """Block until the job is terminal; None on timeout."""
        job = self._get(job_id)
        if not job.done.wait(timeout=timeout):
            return None
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a job; True if the cancel took effect (job not already
        terminal).  Queued jobs terminate immediately; running
        checkpointed jobs yield at their next durable checkpoint."""
        job = self._get(job_id)
        return self._cancel_job(job, reason="cancel")

    def _cancel_job(self, job: Job, *, reason: str) -> bool:
        if job.terminal:
            return False
        token = job.token
        if job.state == "running" and token is not None:
            token.request(reason)
            return True
        if job.state == "running":
            # Non-checkpointed run with no preemption sites: the worker
            # discards the result on completion (cancel flag on token is
            # unavailable), so fall through to immediate finish only for
            # queued jobs.
            return False
        finished = job.finish(
            "cancelled",
            error=f"cancelled while queued ({reason})",
        )
        if finished is not None:
            self.on_terminal(job)
        return finished is not None

    def job(self, job_id: str) -> Job:
        return self._get(job_id)

    def _get(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job id: {job_id!r}")
        return job

    # -- worker/scheduler callbacks ---------------------------------------
    def crash_for(self, job: Job):
        """Per-attempt crash injector from the fault hook (or None)."""
        if self.fault_factory is None:
            return None
        return self.fault_factory(job)

    def requeue(self, job: Job) -> None:
        """Return a preempted job to the queue (never lossy)."""
        job.token = None
        job.state = "queued"
        job.enqueued = self.clock()
        try:
            self.queue.requeue(job)
        except AdmissionError:
            # Queue already closed: terminate rather than lose the job.
            job.finish("cancelled", error="service shutdown during requeue")
            self.on_terminal(job)
            return
        self.reg.inc(
            "repro_serve_requeues_total", priority=job.spec.priority,
        )

    def on_terminal(self, job: Job) -> None:
        """Record one terminal job: manifest line, metrics, latency row."""
        r = job.result
        if r is None:  # finish() lost the idempotency race; first wins
            return
        cls = job.spec.priority
        with self._jobs_lock:
            if getattr(job, "_recorded", False):
                return
            job._recorded = True
            self._outcomes[r.outcome] = self._outcomes.get(r.outcome, 0) + 1
            if r.ok:
                self._latencies[cls].append(r.wall)
                self._queue_waits[cls].append(r.queue_wait)
        job.record_event("serve.result", outcome=r.outcome)
        self.slo.record_terminal(job)
        self.reg.inc(
            "repro_serve_jobs_total", priority=cls, outcome=r.outcome,
        )
        self.reg.observe(
            "repro_serve_latency_seconds", r.wall, priority=cls,
        )
        self.reg.observe(
            "repro_serve_queue_wait_seconds", r.queue_wait, priority=cls,
        )
        try:
            append_jsonl(self.manifest_path, job.manifest_record())
        except OSError:
            self.reg.inc("repro_serve_manifest_errors_total")

    # -- introspection / export -------------------------------------------
    def stats(self) -> dict:
        with self._jobs_lock:
            outcomes = dict(self._outcomes)
            total = len(self._jobs)
            pending = sum(1 for j in self._jobs.values() if not j.terminal)
        return {
            "jobs_total": total,
            "jobs_pending": pending,
            "outcomes": outcomes,
            "queue_depth": self.queue.depth(),
            "queue_by_class": self.queue.depth_by_class(),
            "queue_fullness": self.queue.fullness(),
            "overloaded": self.overloaded,
            "breaker": self.breaker.snapshot(),
            "active_jobs": self.admission.active_jobs,
        }

    def latency_rows(self) -> "list[dict]":
        """Per-priority-class bench rows (p50/p99 latency + queue wait)."""
        rows = []
        with self._jobs_lock:
            lat = {cls: list(v) for cls, v in self._latencies.items()}
            qwait = {cls: list(v) for cls, v in self._queue_waits.items()}
        for cls in PRIORITIES:
            walls = lat.get(cls, [])
            if not walls:
                continue
            arr = np.asarray(walls)
            row = {
                "key": f"serve-{cls}",
                "priority": cls,
                "wall": walls,
                "jobs": len(walls),
                "p50": float(np.percentile(arr, 50)),
                "p99": float(np.percentile(arr, 99)),
            }
            waits = qwait.get(cls, [])
            if waits:
                warr = np.asarray(waits)
                row["queue_wait"] = waits
                row["queue_wait_p50"] = float(np.percentile(warr, 50))
                row["queue_wait_p99"] = float(np.percentile(warr, 99))
            rows.append(row)
        return rows

    def write_bench(
        self, path: "str | None" = None, *, suite: str = "serve"
    ) -> "str | None":
        """Export per-class latency rows as a PR-3 bench session.

        Lands in ``runs/BENCH_serve.json`` by default so the existing
        ``repro.obs regress`` gate can hold serving latency to a
        committed baseline.  Returns the written path (None when no job
        completed — an empty session would gate nothing).
        """
        rows = self.latency_rows()
        if not rows:
            return None
        session = make_session(
            suite, rows,
            extra={"stats": self.stats()},
        )
        if path is None:
            path = default_session_path(suite)
        return write_session(session, path)
