"""Numeric GEMM engines implementing the library's precision policies.

Every matrix multiply in the band-reduction and eigensolver code goes
through ``engine.gemm(a, b, tag=...)`` so that (1) the arithmetic follows
one precision policy end to end and (2) the exact shape stream is recorded
for the performance model.

Engines are deliberately *stateless* apart from the optional trace: they
are cheap to construct and safe to share across calls of the same
algorithm invocation.  Trace appends are guarded by a per-engine lock,
so concurrent threads may record through a shared engine; note that
interleaved records then reflect thread scheduling, not program order.

When a telemetry collector is active (:mod:`repro.obs`), every call is
additionally timed and reported as a :class:`repro.obs.spans.GemmEvent`
attributed to the enclosing phase span — the join between the semantic
GEMM stream (tags) and the wall-clock timeline.

Allocation-free calling convention (PR 5)
-----------------------------------------
All entry points accept ``out=`` — a caller-owned buffer the product is
written into via ``np.matmul(..., out=)`` — plus ``ta``/``tb`` transpose
flags so call sites pass views instead of materialized transposes, and
:meth:`~GemmEngine.gemm_batched` multiplies a 3-D stack of operands in
one call (the cuBLAS ``gemmStridedBatched`` analogue; one call for the
TSQR leaf fan-out instead of a Python loop).  When ``out`` overlaps an
operand the engine transparently computes into a temporary and copies,
so aliasing is safe (at the cost of the allocation being avoided).
Engines constructed with a :class:`repro.perf.Workspace` reuse their
kernels' internal scratch (EC split buffers, chunk accumulators) across
calls, and :meth:`~GemmEngine.prepare_operand` amortizes an engine's
operand transformation (the EC hi/lo split) across repeated multiplies
against the same matrix.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ShapeError
from ..obs import spans as _obs
from ..obs.live import registry as _live
from ..precision.ec_tcgemm import EcOperand, ec_prepare, ec_tcgemm
from ..precision.modes import Precision
from ..precision.tcgemm import tcgemm
from .trace import GemmRecord, GemmTrace

__all__ = [
    "GemmEngine",
    "PlainEngine",
    "SgemmEngine",
    "Fp64Engine",
    "TensorCoreEngine",
    "EcTensorCoreEngine",
    "make_engine",
]


class GemmEngine(ABC):
    """A matrix-multiply executor with optional call recording.

    Subclasses define :attr:`name`, :attr:`precision` and the raw
    :meth:`_matmul`.  The public :meth:`gemm` validates shapes, records the
    call (when tracing), and delegates.
    """

    #: Short engine identifier stored in trace records.
    name: str = "abstract"
    #: The precision policy this engine implements.
    precision: Precision = Precision.FP32

    def __init__(self, *, record: bool = False, workspace=None) -> None:
        self.trace: GemmTrace | None = GemmTrace() if record else None
        self._trace_lock = threading.Lock()
        #: Optional :class:`repro.perf.Workspace` for kernel-internal
        #: scratch (EC split buffers, chunked-accumulation scratch).
        self.workspace = workspace

    @property
    def working_dtype(self) -> np.dtype:
        """dtype in which matrices flow between kernels under this engine."""
        return self.precision.working_dtype

    @abstractmethod
    def _matmul(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        """Raw product of validated operands (2-D, or 3-D batched stacks).

        When ``out`` is given it does not alias the operands (the public
        entry points guarantee that) and has the product's shape; the
        implementation writes into it and returns it.
        """

    # -- shared execution path --------------------------------------------
    def _run(self, rec: GemmRecord, a, b, out):
        """Record ``rec``, time the product when telemetry is on, return it.

        ``out`` (if any) is already validated and alias-free here.
        """
        if self.trace is not None:
            with self._trace_lock:
                self.trace.add(rec)
        # One timing covers both consumers (collector event + live
        # registry); with neither installed the call costs two module
        # reads and no allocation (the zero-overhead-off contract).
        reg = _live.active_registry()
        if _obs.is_enabled() or reg is not None:
            t0 = _obs.now()
            res = self._matmul(a, b, out=out)
            dt = _obs.now() - t0
            _obs.gemm_event(
                rec.m, rec.n, rec.k,
                tag=rec.tag, engine=self.name, op=rec.op, batch=rec.batch,
                seconds=dt, start=t0,
            )
            if reg is not None:
                reg.record_gemm(
                    rec.m, rec.n, rec.k,
                    tag=rec.tag, engine=self.name, op=rec.op,
                    batch=rec.batch, seconds=dt,
                )
            return res
        return self._matmul(a, b, out=out)

    @staticmethod
    def _resolve_out(out, shape, a, b):
        """Validate ``out`` and decide whether it can be written directly.

        Returns ``(direct_out, copy_back)``: when ``out`` overlaps an
        operand the product must go through a temporary (``direct_out is
        None``) and be copied into ``out`` afterwards.
        """
        if out is None:
            return None, False
        if not isinstance(out, np.ndarray):
            raise ShapeError(f"out must be an ndarray, got {type(out).__name__}")
        if out.shape != shape:
            raise ShapeError(f"out has shape {out.shape}, expected {shape}")
        if np.may_share_memory(out, a) or np.may_share_memory(out, b):
            return None, True
        return out, False

    def prepare_operand(self, a, *, tag: str = "prep"):
        """Pre-process an operand for repeated :meth:`gemm` calls.

        Engines whose kernels transform operands before multiplying (the
        EC engine's hi/lo FP16 split) return an opaque handle that
        amortizes that transformation; all other engines return the
        array unchanged.  The handle is valid while the source array's
        contents are unchanged and may be passed as either ``gemm``
        operand (not with ``ta``/``tb``).  Results are bitwise identical
        to passing the array.
        """
        return np.asarray(a)

    def gemm(self, a, b, *, tag: str = "", out=None, ta: bool = False,
             tb: bool = False) -> np.ndarray:
        """Compute ``op(a) @ op(b)`` under this engine's precision policy.

        Parameters
        ----------
        a, b : array_like
            2-D operands with matching inner dimension (or handles from
            :meth:`prepare_operand`).
        tag : str
            Semantic label recorded in the trace (call-site identity).
        out : ndarray, optional
            Caller-owned output buffer of shape ``(m, n)``.  Written via
            ``np.matmul(..., out=)`` — no product temporary.  May alias an
            operand (the engine then computes into a temporary and
            copies).  The *returned* array is always the result; callers
            must use it rather than assume ``out`` was mutated in place
            (resilience wrappers may substitute a different array).
        ta, tb : bool
            Multiply with the operand transposed (a no-copy view) —
            ``gemm(a, b, ta=True)`` is ``a.T @ b`` without the caller
            materializing ``a.T``.  Not supported for prepared operands.
        """
        prep_a = isinstance(a, EcOperand)
        prep_b = isinstance(b, EcOperand)
        av = a.array if prep_a else np.asarray(a)
        bv = b.array if prep_b else np.asarray(b)
        if av.ndim != 2 or bv.ndim != 2:
            raise ShapeError(
                f"gemm requires 2-D operands, got {av.ndim}-D and {bv.ndim}-D"
            )
        if ta:
            if prep_a:
                raise ShapeError("ta=True is not supported for a prepared operand")
            av = a = av.T
        if tb:
            if prep_b:
                raise ShapeError("tb=True is not supported for a prepared operand")
            bv = b = bv.T
        if av.shape[1] != bv.shape[0]:
            raise ShapeError(f"inner dimensions differ: {av.shape} @ {bv.shape}")
        m, k = av.shape
        n = bv.shape[1]
        direct, copy_back = self._resolve_out(out, (m, n), av, bv)
        rec = GemmRecord(m=m, n=n, k=k, tag=tag, engine=self.name)
        res = self._run(rec, a if prep_a else av, b if prep_b else bv, direct)
        if copy_back:
            np.copyto(out, res, casting="same_kind")
            return out
        return res

    def gemm_batched(self, a, b, *, tag: str = "", out=None, ta: bool = False,
                     tb: bool = False) -> np.ndarray:
        """Multiply a stack of independent products in one call.

        ``a`` is ``(batch, m, k)``, ``b`` is ``(batch, k, n)``; the result
        is ``(batch, m, n)`` with ``result[i] = a[i] @ b[i]``.  One
        engine call (and one trace record, ``op="gemm_batched"``) covers
        the whole stack — the cuBLAS ``gemmStridedBatched`` analogue used
        by the TSQR leaf fan-out and the D&C back-transform.  ``ta``/
        ``tb`` transpose the matrix dimensions of every stack element.
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 3 or b.ndim != 3:
            raise ShapeError(
                f"gemm_batched requires 3-D operands, got {a.ndim}-D and {b.ndim}-D"
            )
        if ta:
            a = a.swapaxes(-2, -1)
        if tb:
            b = b.swapaxes(-2, -1)
        if a.shape[0] != b.shape[0]:
            raise ShapeError(f"batch dimensions differ: {a.shape} @ {b.shape}")
        if a.shape[2] != b.shape[1]:
            raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
        batch, m, k = a.shape
        n = b.shape[2]
        direct, copy_back = self._resolve_out(out, (batch, m, n), a, b)
        rec = GemmRecord(
            m=m, n=n, k=k, tag=tag, engine=self.name, op="gemm_batched", batch=batch
        )
        res = self._run(rec, a, b, direct)
        if copy_back:
            np.copyto(out, res, casting="same_kind")
            return out
        return res

    def syr2k(self, y, z, *, tag: str = "", out=None, alpha: float = 1.0,
              beta: float = 0.0) -> np.ndarray:
        """Symmetric rank-2k update ``beta*C + alpha*(Y Z^T + Z Y^T)``.

        Numerically computed as one policy GEMM plus its transpose (exactly
        symmetric output).  Recorded as a single ``syr2k`` record with the
        symmetry-exploiting flop count — the device model uses the record
        kind to price a *native* syr2k (the paper's future-work item; real
        Tensor Cores lack one and pay for two full GEMMs instead).

        With ``out`` the update is fused in place (BLAS ``syr2k``
        semantics): ``out`` is scaled by ``beta`` and accumulates
        ``alpha * (Y Z^T + Z Y^T)`` — ``syr2k(z, y, out=c, alpha=-1.0,
        beta=1.0)`` is the trailing update ``C -= Z Y^T + Y Z^T`` without
        a full-size temporary for the subtraction.  Without ``out`` the
        scaled update itself is returned (``beta`` must be 0).
        """
        y = np.asarray(y)
        z = np.asarray(z)
        if y.ndim != 2 or z.ndim != 2 or y.shape != z.shape:
            raise ShapeError(
                f"syr2k requires equal-shape 2-D operands, got {y.shape} and {z.shape}"
            )
        mm = y.shape[0]
        if out is None and beta != 0.0:
            raise ShapeError("syr2k with beta != 0 requires an out= buffer to scale")
        if out is not None:
            if not isinstance(out, np.ndarray):
                raise ShapeError(f"out must be an ndarray, got {type(out).__name__}")
            if out.shape != (mm, mm):
                raise ShapeError(f"out has shape {out.shape}, expected {(mm, mm)}")
        rec = GemmRecord(
            m=mm, n=mm, k=y.shape[1], tag=tag, engine=self.name, op="syr2k"
        )
        if self.trace is not None:
            with self._trace_lock:
                self.trace.add(rec)

        def compute():
            p = self._matmul(y, z.T)
            s = p + p.T
            if alpha != 1.0:
                s *= s.dtype.type(alpha)
            if out is None:
                return s
            if beta == 0.0:
                np.copyto(out, s, casting="same_kind")
            elif beta == 1.0:
                np.add(out, s, out=out, casting="same_kind")
            else:
                np.multiply(out, out.dtype.type(beta), out=out)
                np.add(out, s, out=out, casting="same_kind")
            return out

        reg = _live.active_registry()
        if _obs.is_enabled() or reg is not None:
            t0 = _obs.now()
            res = compute()
            dt = _obs.now() - t0
            _obs.gemm_event(
                mm, mm, y.shape[1],
                tag=tag, engine=self.name, op="syr2k",
                seconds=dt, start=t0,
            )
            if reg is not None:
                reg.record_gemm(
                    mm, mm, y.shape[1],
                    tag=tag, engine=self.name, op="syr2k", seconds=dt,
                )
            return res
        return compute()

    def reset_trace(self) -> None:
        """Clear the recorded trace (enables recording if it was off)."""
        with self._trace_lock:
            self.trace = GemmTrace()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rec = "recording" if self.trace is not None else "not recording"
        return f"<{type(self).__name__} ({rec}, {len(self.trace or [])} calls)>"


class PlainEngine(GemmEngine):
    """Dtype-neutral GEMM: plain matmul in the operands' own precision.

    This is the default for low-level kernels (:mod:`repro.la`) so that a
    float64 computation stays float64 end to end.  It imposes no precision
    *policy*; drivers that model a device pick one of the policy engines.
    """

    name = "plain"
    precision = Precision.FP32  # working dtype when a driver asks; gemm follows operands

    def _matmul(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        if out is not None:
            return np.matmul(a, b, out=out)
        return a @ b


class SgemmEngine(GemmEngine):
    """FP32 SIMT-core GEMM ("SGEMM"): plain single-precision matmul."""

    name = "sgemm"
    precision = Precision.FP32

    def _matmul(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        # No-copy fast path: operands that are already float32 go straight
        # into the BLAS call instead of round-tripping through asarray.
        if a.dtype != np.float32:
            a = a.astype(np.float32)
        if b.dtype != np.float32:
            b = b.astype(np.float32)
        if out is not None:
            return np.matmul(a, b, out=out)
        return np.matmul(a, b)


class Fp64Engine(GemmEngine):
    """Double-precision reference GEMM (used for exactness baselines)."""

    name = "fp64"
    precision = Precision.FP64

    def _matmul(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        if a.dtype != np.float64:
            a = a.astype(np.float64)
        if b.dtype != np.float64:
            b = b.astype(np.float64)
        if out is not None:
            return np.matmul(a, b, out=out)
        return np.matmul(a, b)


class TensorCoreEngine(GemmEngine):
    """Emulated Tensor-Core GEMM with a configurable operand format."""

    name = "tc"

    def __init__(
        self,
        *,
        record: bool = False,
        workspace=None,
        operand_format: str = "fp16",
        chunk_k: int | None = None,
    ) -> None:
        super().__init__(record=record, workspace=workspace)
        self.operand_format = operand_format
        self.chunk_k = chunk_k
        self.precision = {
            "fp16": Precision.FP16_TC,
            "bf16": Precision.BF16_TC,
            "tf32": Precision.TF32_TC,
            "fp32": Precision.FP32,
        }[operand_format]

    def _matmul(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        return tcgemm(
            a, b, operand_format=self.operand_format, chunk_k=self.chunk_k,
            out=out, ws=self.workspace,
        )


class EcTensorCoreEngine(GemmEngine):
    """Error-corrected Tensor-Core GEMM (FP32-accurate; paper's EC-TCGEMM)."""

    name = "ectc"
    precision = Precision.FP16_EC_TC

    def __init__(self, *, record: bool = False, workspace=None,
                 chunk_k: int | None = None) -> None:
        super().__init__(record=record, workspace=workspace)
        self.chunk_k = chunk_k

    def prepare_operand(self, a, *, tag: str = "prep"):
        """Hi/lo-split ``a`` once for repeated multiplication.

        The SBR drivers prepare the block-constant trailing matrix OA so
        its FP16 split (several full passes over an M×M array) is paid
        once per big block instead of once per panel.
        """
        return ec_prepare(a, ws=self.workspace, name=tag)

    def _matmul(self, a: np.ndarray, b: np.ndarray, out=None) -> np.ndarray:
        return ec_tcgemm(a, b, chunk_k=self.chunk_k, out=out, ws=self.workspace)


def make_engine(
    precision: "Precision | str", *, record: bool = False, workspace=None
) -> GemmEngine:
    """Construct the numeric engine implementing a :class:`Precision` policy.

    Parameters
    ----------
    precision : Precision or str
        The precision policy (enum member or its string value).
    record : bool
        Whether the engine records its calls into a :class:`GemmTrace`.
    workspace : repro.perf.Workspace, optional
        Scratch arena for kernel-internal buffers (EC operand splits,
        chunked accumulation) — reused across calls instead of
        reallocated per call.
    """
    mode = Precision.from_name(precision)
    if mode is Precision.FP64:
        return Fp64Engine(record=record, workspace=workspace)
    if mode is Precision.FP32:
        return SgemmEngine(record=record, workspace=workspace)
    if mode is Precision.FP16_EC_TC:
        return EcTensorCoreEngine(record=record, workspace=workspace)
    return TensorCoreEngine(
        record=record, workspace=workspace, operand_format=mode.operand_format
    )
