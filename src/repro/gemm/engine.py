"""Numeric GEMM engines implementing the library's precision policies.

Every matrix multiply in the band-reduction and eigensolver code goes
through ``engine.gemm(a, b, tag=...)`` so that (1) the arithmetic follows
one precision policy end to end and (2) the exact shape stream is recorded
for the performance model.

Engines are deliberately *stateless* apart from the optional trace: they
are cheap to construct and safe to share across calls of the same
algorithm invocation.  Trace appends are guarded by a per-engine lock,
so concurrent threads may record through a shared engine; note that
interleaved records then reflect thread scheduling, not program order.

When a telemetry collector is active (:mod:`repro.obs`), every call is
additionally timed and reported as a :class:`repro.obs.spans.GemmEvent`
attributed to the enclosing phase span — the join between the semantic
GEMM stream (tags) and the wall-clock timeline.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod

import numpy as np

from ..errors import ShapeError
from ..obs import spans as _obs
from ..precision.ec_tcgemm import ec_tcgemm
from ..precision.modes import Precision
from ..precision.tcgemm import tcgemm
from .trace import GemmRecord, GemmTrace

__all__ = [
    "GemmEngine",
    "PlainEngine",
    "SgemmEngine",
    "Fp64Engine",
    "TensorCoreEngine",
    "EcTensorCoreEngine",
    "make_engine",
]


class GemmEngine(ABC):
    """A matrix-multiply executor with optional call recording.

    Subclasses define :attr:`name`, :attr:`precision` and the raw
    :meth:`_matmul`.  The public :meth:`gemm` validates shapes, records the
    call (when tracing), and delegates.
    """

    #: Short engine identifier stored in trace records.
    name: str = "abstract"
    #: The precision policy this engine implements.
    precision: Precision = Precision.FP32

    def __init__(self, *, record: bool = False) -> None:
        self.trace: GemmTrace | None = GemmTrace() if record else None
        self._trace_lock = threading.Lock()

    @property
    def working_dtype(self) -> np.dtype:
        """dtype in which matrices flow between kernels under this engine."""
        return self.precision.working_dtype

    @abstractmethod
    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Raw product of validated 2-D operands."""

    def gemm(self, a, b, *, tag: str = "") -> np.ndarray:
        """Compute ``a @ b`` under this engine's precision policy.

        Parameters
        ----------
        a, b : array_like
            2-D operands with matching inner dimension.
        tag : str
            Semantic label recorded in the trace (call-site identity).
        """
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2:
            raise ShapeError(f"gemm requires 2-D operands, got {a.ndim}-D and {b.ndim}-D")
        if a.shape[1] != b.shape[0]:
            raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")
        if self.trace is not None:
            rec = GemmRecord(
                m=a.shape[0], n=b.shape[1], k=a.shape[1], tag=tag, engine=self.name
            )
            with self._trace_lock:
                self.trace.add(rec)
        if _obs.is_enabled():
            t0 = _obs.now()
            out = self._matmul(a, b)
            _obs.gemm_event(
                a.shape[0], b.shape[1], a.shape[1],
                tag=tag, engine=self.name, op="gemm",
                seconds=_obs.now() - t0, start=t0,
            )
            return out
        return self._matmul(a, b)

    def syr2k(self, y, z, *, tag: str = "") -> np.ndarray:
        """Symmetric rank-2k update ``Y Z^T + Z Y^T`` under this engine.

        Numerically computed as one policy GEMM plus its transpose (exactly
        symmetric output).  Recorded as a single ``syr2k`` record with the
        symmetry-exploiting flop count — the device model uses the record
        kind to price a *native* syr2k (the paper's future-work item; real
        Tensor Cores lack one and pay for two full GEMMs instead).
        """
        y = np.asarray(y)
        z = np.asarray(z)
        if y.ndim != 2 or z.ndim != 2 or y.shape != z.shape:
            raise ShapeError(
                f"syr2k requires equal-shape 2-D operands, got {y.shape} and {z.shape}"
            )
        if self.trace is not None:
            rec = GemmRecord(
                m=y.shape[0], n=y.shape[0], k=y.shape[1],
                tag=tag, engine=self.name, op="syr2k",
            )
            with self._trace_lock:
                self.trace.add(rec)
        if _obs.is_enabled():
            t0 = _obs.now()
            p = self._matmul(y, z.T)
            out = p + p.T
            _obs.gemm_event(
                y.shape[0], y.shape[0], y.shape[1],
                tag=tag, engine=self.name, op="syr2k",
                seconds=_obs.now() - t0, start=t0,
            )
            return out
        p = self._matmul(y, z.T)
        return p + p.T

    def reset_trace(self) -> None:
        """Clear the recorded trace (enables recording if it was off)."""
        with self._trace_lock:
            self.trace = GemmTrace()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rec = "recording" if self.trace is not None else "not recording"
        return f"<{type(self).__name__} ({rec}, {len(self.trace or [])} calls)>"


class PlainEngine(GemmEngine):
    """Dtype-neutral GEMM: plain matmul in the operands' own precision.

    This is the default for low-level kernels (:mod:`repro.la`) so that a
    float64 computation stays float64 end to end.  It imposes no precision
    *policy*; drivers that model a device pick one of the policy engines.
    """

    name = "plain"
    precision = Precision.FP32  # working dtype when a driver asks; gemm follows operands

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a @ b


class SgemmEngine(GemmEngine):
    """FP32 SIMT-core GEMM ("SGEMM"): plain single-precision matmul."""

    name = "sgemm"
    precision = Precision.FP32

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(
            np.asarray(a, dtype=np.float32) @ np.asarray(b, dtype=np.float32),
            dtype=np.float32,
        )


class Fp64Engine(GemmEngine):
    """Double-precision reference GEMM (used for exactness baselines)."""

    name = "fp64"
    precision = Precision.FP64

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.asarray(a, dtype=np.float64) @ np.asarray(b, dtype=np.float64)


class TensorCoreEngine(GemmEngine):
    """Emulated Tensor-Core GEMM with a configurable operand format."""

    name = "tc"

    def __init__(
        self,
        *,
        record: bool = False,
        operand_format: str = "fp16",
        chunk_k: int | None = None,
    ) -> None:
        super().__init__(record=record)
        self.operand_format = operand_format
        self.chunk_k = chunk_k
        self.precision = {
            "fp16": Precision.FP16_TC,
            "bf16": Precision.BF16_TC,
            "tf32": Precision.TF32_TC,
            "fp32": Precision.FP32,
        }[operand_format]

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return tcgemm(a, b, operand_format=self.operand_format, chunk_k=self.chunk_k)


class EcTensorCoreEngine(GemmEngine):
    """Error-corrected Tensor-Core GEMM (FP32-accurate; paper's EC-TCGEMM)."""

    name = "ectc"
    precision = Precision.FP16_EC_TC

    def __init__(self, *, record: bool = False, chunk_k: int | None = None) -> None:
        super().__init__(record=record)
        self.chunk_k = chunk_k

    def _matmul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ec_tcgemm(a, b, chunk_k=self.chunk_k)


def make_engine(precision: "Precision | str", *, record: bool = False) -> GemmEngine:
    """Construct the numeric engine implementing a :class:`Precision` policy.

    Parameters
    ----------
    precision : Precision or str
        The precision policy (enum member or its string value).
    record : bool
        Whether the engine records its calls into a :class:`GemmTrace`.
    """
    mode = Precision.from_name(precision)
    if mode is Precision.FP64:
        return Fp64Engine(record=record)
    if mode is Precision.FP32:
        return SgemmEngine(record=record)
    if mode is Precision.FP16_EC_TC:
        return EcTensorCoreEngine(record=record)
    return TensorCoreEngine(record=record, operand_format=mode.operand_format)
