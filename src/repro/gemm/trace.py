"""GEMM call traces: shapes, flop accounting, aggregation.

A :class:`GemmRecord` describes one matrix multiply ``C(m×n) = A(m×k) @
B(k×n)`` with a semantic ``tag`` (e.g. ``"trailing_left"``) identifying
which step of an algorithm issued it.  A :class:`GemmTrace` is an ordered
collection of records with aggregate queries used by both the tests (flop
cross-checks against the analytic formulas of Table 2) and the device
performance model (Figures 5–11).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from collections.abc import Callable, Iterable, Iterator

__all__ = ["GemmRecord", "GemmTrace"]


@dataclass(frozen=True)
class GemmRecord:
    """One BLAS3 call: ``C(m, n) += A(m, k) @ B(k, n)`` or a ``syr2k``.

    Attributes
    ----------
    m, n, k : int
        Output rows, output columns, inner (contraction) dimension.
    tag : str
        Semantic label of the call site (algorithm step).
    engine : str
        Name of the engine that executed (or would execute) the call,
        e.g. ``"tc"``, ``"sgemm"``, ``"ectc"``, ``"fp64"``.
    op : str
        ``"gemm"`` (default), ``"syr2k"`` — the symmetric rank-2k update
        ``C(m, m) += Y(m, k) Z(k, m)^T + Z Y^T`` that exploits the output's
        symmetry — or ``"gemm_batched"``, a strided-batched multiply of
        ``batch`` independent ``(m, k) @ (k, n)`` products issued as one
        call (cuBLAS ``gemmStridedBatched`` analogue).  Tensor Cores lack
        a native syr2k (paper §4.1), so TC engines emulate it with GEMMs;
        the record kind lets the device model price a hypothetical native
        implementation (the paper's future-work ablation).
    batch : int
        Number of stacked products for ``"gemm_batched"`` (1 otherwise).
    """

    m: int
    n: int
    k: int
    tag: str = ""
    engine: str = ""
    op: str = "gemm"
    batch: int = 1

    def __post_init__(self) -> None:
        if self.m <= 0 or self.n <= 0 or self.k <= 0:
            raise ValueError(f"GEMM dimensions must be positive, got {self!r}")
        if self.op not in ("gemm", "syr2k", "gemm_batched"):
            raise ValueError(
                f"op must be 'gemm', 'syr2k' or 'gemm_batched', got {self.op!r}"
            )
        if self.op == "syr2k" and self.m != self.n:
            raise ValueError(f"syr2k output must be square, got {self.m}x{self.n}")
        if self.batch < 1:
            raise ValueError(f"batch must be >= 1, got {self.batch}")
        if self.op != "gemm_batched" and self.batch != 1:
            raise ValueError(f"batch > 1 requires op='gemm_batched', got {self.op!r}")

    @property
    def flops(self) -> int:
        """Floating-point operations of the call (multiply + add).

        For ``syr2k`` this is the symmetry-exploiting count — half of the
        two explicit outer-product GEMMs it replaces.  Batched calls
        count every product in the stack.
        """
        return 2 * self.m * self.n * self.k * self.batch

    @property
    def min_dim(self) -> int:
        """Smallest of the three dimensions — the 'skinniness' of the GEMM."""
        return min(self.m, self.n, self.k)

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(m, n, k)`` triple."""
        return (self.m, self.n, self.k)

    def to_dict(self) -> dict:
        """JSON-serializable form (defaults omitted for compactness)."""
        out: dict = {"m": self.m, "n": self.n, "k": self.k}
        if self.tag:
            out["tag"] = self.tag
        if self.engine:
            out["engine"] = self.engine
        if self.op != "gemm":
            out["op"] = self.op
        if self.batch != 1:
            out["batch"] = self.batch
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "GemmRecord":
        """Inverse of :meth:`to_dict` (revalidates the dimensions)."""
        return cls(
            m=d["m"], n=d["n"], k=d["k"],
            tag=d.get("tag", ""), engine=d.get("engine", ""),
            op=d.get("op", "gemm"), batch=d.get("batch", 1),
        )


@dataclass
class GemmTrace:
    """An ordered stream of :class:`GemmRecord` with aggregate queries."""

    records: list[GemmRecord] = field(default_factory=list)

    def add(self, record: GemmRecord) -> None:
        """Append one record."""
        self.records.append(record)

    def record(self, m: int, n: int, k: int, *, tag: str = "", engine: str = "") -> None:
        """Convenience: construct and append a record."""
        self.records.append(GemmRecord(m=m, n=n, k=k, tag=tag, engine=engine))

    def extend(self, other: "GemmTrace | Iterable[GemmRecord]") -> None:
        """Append all records from another trace or iterable."""
        if isinstance(other, GemmTrace):
            self.records.extend(other.records)
        else:
            self.records.extend(other)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[GemmRecord]:
        return iter(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    @property
    def total_flops(self) -> int:
        """Total flops over all recorded calls."""
        return sum(r.flops for r in self.records)

    def filter(self, predicate: Callable[[GemmRecord], bool]) -> "GemmTrace":
        """New trace with the records satisfying ``predicate``."""
        return GemmTrace([r for r in self.records if predicate(r)])

    def by_tag(self, tag: str) -> "GemmTrace":
        """New trace restricted to records with the given tag."""
        return self.filter(lambda r: r.tag == tag)

    def tags(self) -> Counter:
        """Multiset of tags present in the trace."""
        return Counter(r.tag for r in self.records)

    def flops_by_tag(self) -> dict[str, int]:
        """Total flops grouped by tag."""
        out: dict[str, int] = {}
        for r in self.records:
            out[r.tag] = out.get(r.tag, 0) + r.flops
        return out

    def shape_multiset(self) -> Counter:
        """Multiset of ``(m, n, k)`` shapes (order-insensitive comparison aid).

        Two traces of the same algorithm run may interleave calls
        differently; comparing shape multisets (optionally per tag) is the
        robust equality notion used by the symbolic-vs-recorded tests.
        """
        return Counter(r.shape for r in self.records)

    def shape_multiset_by_tag(self) -> dict[str, Counter]:
        """Per-tag multiset of shapes."""
        out: dict[str, Counter] = {}
        for r in self.records:
            out.setdefault(r.tag, Counter())[r.shape] += 1
        return out

    def to_dict(self) -> dict:
        """JSON-serializable form: ``{"records": [...]}``.

        This is what run manifests embed (``kind: "trace"`` line), so the
        exact GEMM shape stream of a run can be diffed across PRs.
        """
        return {"records": [r.to_dict() for r in self.records]}

    @classmethod
    def from_dict(cls, data: dict) -> "GemmTrace":
        """Inverse of :meth:`to_dict`."""
        return cls([GemmRecord.from_dict(d) for d in data.get("records", [])])

    def to_json(self) -> str:
        """Compact JSON string of the trace (round-trips via :meth:`from_json`)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    @classmethod
    def from_json(cls, data: "str | bytes | dict") -> "GemmTrace":
        """Rebuild a trace from :meth:`to_json` output (or its parsed dict)."""
        if isinstance(data, (str, bytes)):
            data = json.loads(data)
        if not isinstance(data, dict):
            raise ValueError(
                f"expected a JSON object with a 'records' key, got {type(data).__name__}"
            )
        return cls.from_dict(data)

    def summary(self) -> str:
        """Human-readable multi-line summary (per-tag calls and GFLOP)."""
        lines = [f"GemmTrace: {len(self.records)} calls, {self.total_flops / 1e9:.3f} GFLOP"]
        flops = self.flops_by_tag()
        counts = self.tags()
        for tag in sorted(flops, key=flops.get, reverse=True):
            lines.append(
                f"  {tag or '<untagged>'}: {counts[tag]} calls, {flops[tag] / 1e9:.3f} GFLOP"
            )
        return "\n".join(lines)
