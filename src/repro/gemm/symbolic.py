"""Symbolic (shape-only) GEMM trace executors.

These functions replay the *control flow* of the band-reduction algorithms
without touching data, emitting the exact GEMM shape stream the numeric
drivers would issue.  This makes paper-scale shape streams (n = 32768)
available in microseconds, which is how the performance figures (5–11) are
regenerated without an A100.

Fidelity contract (enforced by tests): for any (n, b, nb), the symbolic
trace equals the numeric engine's recorded trace filtered to
*algorithm-level* tags — the trailing updates, W/Q formation — i.e.
everything except panel-internal GEMMs (tags ``panel_*``/``qr_*``/
``tsqr``), whose cost the device model charges through its panel
estimators instead.

Tag vocabulary matches :mod:`repro.sbr.zy` / :mod:`repro.sbr.wy` /
:mod:`repro.sbr.formw`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..validation import check_blocksizes
from .trace import GemmRecord, GemmTrace

__all__ = [
    "ALGORITHM_TAGS",
    "trace_sbr_zy",
    "trace_sbr_wy",
    "trace_form_q",
    "is_algorithm_tag",
]

#: Tags that belong to the algorithm-level GEMM stream (vs panel internals).
ALGORITHM_TAGS = frozenset(
    {
        "zy_aw",
        "zy_wtaw",
        "zy_z",
        "zy_zyt",
        "zy_yzt",
        "zy_syr2k",
        "form_w",
        "wy_oaw",
        "wy_right",
        "wy_left",
        "wy_full_right",
        "wy_full_left",
        "sbr_strip",
        "formw",
        "form_q",
    }
)


def is_algorithm_tag(tag: str) -> bool:
    """Whether ``tag`` belongs to the algorithm-level GEMM stream."""
    return tag in ALGORITHM_TAGS


def trace_sbr_zy(n: int, b: int, *, want_q: bool = True, use_syr2k: bool = False) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.zy.sbr_zy` (algorithm-level tags)."""
    check_blocksizes(n, b)
    trace = GemmTrace()
    i = 0
    while n - i - b >= 2:
        m = n - i - b
        w = min(b, m)
        if w < b:
            trace.record(w, b - w, m, tag="sbr_strip")
            trace.record(m, b - w, w, tag="sbr_strip")
        trace.record(m, w, m, tag="zy_aw")
        trace.record(w, w, m, tag="zy_wtaw")
        trace.record(m, w, w, tag="zy_z")
        if use_syr2k:
            trace.add(GemmRecord(m, m, w, tag="zy_syr2k", op="syr2k"))
        else:
            trace.record(m, m, w, tag="zy_zyt")
            trace.record(m, m, w, tag="zy_yzt")
        if want_q:
            trace.record(n, w, m, tag="form_q")
            trace.record(n, m, w, tag="form_q")
        i += b
    return trace


def trace_sbr_wy(
    n: int,
    b: int,
    nb: int,
    *,
    want_q: bool = True,
    q_method: str = "tree",
) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.wy.sbr_wy` (algorithm-level tags)."""
    check_blocksizes(n, b, nb)
    trace = GemmTrace()
    block_ncols: list[tuple[int, int]] = []  # (offset, accumulated columns)

    j0 = 0
    while n - j0 - b >= 2:
        M = n - j0 - b
        k = 0
        advance = False
        for r in range(0, nb, b):
            i = j0 + r
            m = n - i - b
            if m < 2:
                break
            w = min(b, m)
            if w < b:
                trace.record(w, b - w, m, tag="sbr_strip")
                trace.record(m, b - w, w, tag="sbr_strip")
            if k > 0:
                trace.record(k, w, M, tag="form_w")
                trace.record(M, w, k, tag="form_w")
            trace.record(M, w, M, tag="wy_oaw")
            k += w
            if m <= b + 1:
                _record_partial(trace, M, k, r, cn=m)
                break
            if r + b >= nb:
                mf = M - r
                trace.record(M, mf, k, tag="wy_full_right")
                trace.record(k, mf, M, tag="wy_full_left")
                trace.record(mf, mf, k, tag="wy_full_left")
                advance = True
                break
            _record_partial(trace, M, k, r, cn=b)
        if k > 0:
            block_ncols.append((j0 + b, k))
        if not advance:
            break
        j0 += nb

    if want_q and block_ncols:
        trace.extend(trace_form_q(n, block_ncols, method=q_method))
    return trace


def _record_partial(trace: GemmTrace, M: int, k: int, r: int, *, cn: int) -> None:
    trace.record(M, cn, k, tag="wy_right")
    trace.record(k, cn, M, tag="wy_left")
    trace.record(M - r, cn, k, tag="wy_left")


def trace_form_q(
    n: int,
    blocks: "list[tuple[int, int]]",
    *,
    method: str = "tree",
) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.formw.form_q_from_blocks`.

    ``blocks`` is a list of ``(offset, ncols)`` pairs in application order.
    """
    trace = GemmTrace()
    if not blocks:
        return trace
    if method == "forward":
        for offset, k in blocks:
            m = n - offset
            trace.record(n, k, m, tag="form_q")
            trace.record(n, m, k, tag="form_q")
        return trace
    if method != "tree":
        raise ConfigurationError(f"method must be 'tree' or 'forward', got {method!r}")

    base = min(offset for offset, _ in blocks)
    rows = n - base
    ncols = [k for _, k in blocks]

    def merge(lo: int, hi: int) -> int:
        if hi - lo == 1:
            return ncols[lo]
        mid = (lo + hi) // 2
        kl = merge(lo, mid)
        kr = merge(mid, hi)
        trace.record(kl, kr, rows, tag="formw")
        trace.record(rows, kr, kl, tag="formw")
        return kl + kr

    k_all = merge(0, len(blocks))
    trace.record(rows, rows, k_all, tag="form_q")
    return trace
