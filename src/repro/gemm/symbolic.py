"""Symbolic (shape-only) GEMM trace executors.

These functions replay the *control flow* of the band-reduction algorithms
without touching data, emitting the exact GEMM shape stream the numeric
drivers would issue.  This makes paper-scale shape streams (n = 32768)
available in microseconds, which is how the performance figures (5–11) are
regenerated without an A100.

Fidelity contract (enforced by tests): for any (n, b, nb), the symbolic
trace equals the numeric engine's recorded trace filtered to
*algorithm-level* tags — the trailing updates, W/Q formation — i.e.
everything except panel-internal GEMMs (tags ``panel_*``/``qr_*``/
``tsqr``), whose cost the device model charges through its panel
estimators instead.

Tag vocabulary matches :mod:`repro.sbr.zy` / :mod:`repro.sbr.wy` /
:mod:`repro.sbr.formw`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..validation import check_blocksizes
from .trace import GemmRecord, GemmTrace

__all__ = [
    "ALGORITHM_TAGS",
    "BULGE_WAVEFRONT_TAGS",
    "BULGE_SVD_TAGS",
    "WAVEFRONT_DELTA",
    "full_update_col_blocks",
    "trace_sbr_zy",
    "trace_sbr_wy",
    "trace_form_q",
    "is_algorithm_tag",
    "bulge_sweep_geometry",
    "wavefront_rounds",
    "wavefront_groups",
    "trace_bulge_wavefront",
]

#: Tags that belong to the algorithm-level GEMM stream (vs panel internals).
ALGORITHM_TAGS = frozenset(
    {
        "zy_aw",
        "zy_wtaw",
        "zy_z",
        "zy_zyt",
        "zy_yzt",
        "zy_syr2k",
        "form_w",
        "wy_oaw",
        "wy_right",
        "wy_left",
        "wy_full_right",
        "wy_full_left",
        "sbr_strip",
        "formw",
        "form_q",
    }
)


#: Tags of the stage-2 wavefront bulge chase's engine-routed tile updates
#: (:mod:`repro.eig.bulge_wavefront`).  The chase's panel-internal work —
#: the batched bulge-block QR and the WY build — stays outside the engine,
#: exactly like stage 1's ``panel_*`` work, so these four tags are the
#: complete algorithm-level stream of stage 2.
BULGE_WAVEFRONT_TAGS = frozenset(
    {
        "bulge.wavefront.strip",
        "bulge.wavefront.tile",
        "bulge.wavefront.syr2k",
        "bulge.wavefront.q",
    }
)

#: Tags of the banded-SVD bulge chase's engine-routed block updates
#: (:mod:`repro.svd.banded`): the out-of-band strip application, the
#: in-band tile application, and the U/V accumulations.
BULGE_SVD_TAGS = frozenset(
    {
        "bulge.svd.strip",
        "bulge.svd.tile",
        "bulge.svd.u",
        "bulge.svd.v",
    }
)


def is_algorithm_tag(tag: str) -> bool:
    """Whether ``tag`` belongs to the algorithm-level GEMM stream."""
    return (
        tag in ALGORITHM_TAGS
        or tag in BULGE_WAVEFRONT_TAGS
        or tag in BULGE_SVD_TAGS
    )


def full_update_col_blocks(t: int, b: int, nb: int) -> "list[tuple[int, int]]":
    """Column blocking of the mirrored block-boundary trailing update.

    The ``t``-column full update computes only the lower trapezoid of each
    column block and mirrors it, so the third ``wy_full_left`` GEMM becomes
    one GEMM per block of shape ``(t - c0) x (c1 - c0) x k``.  The first
    block is ``b`` wide: it is exactly the set of columns the *next* big
    block's first panel reads, which is what makes look-ahead overlap
    possible (the rest of the update can proceed concurrently with that
    panel's QR).  Subsequent blocks are ``nb`` wide to keep the GEMMs
    near-square.

    Shared between the numeric driver (:mod:`repro.sbr.wy`) and the
    symbolic trace so the fidelity contract holds by construction.
    """
    if t <= 0:
        return []
    blocks = [(0, min(b, t))]
    while blocks[-1][1] < t:
        c0 = blocks[-1][1]
        blocks.append((c0, min(c0 + nb, t)))
    return blocks


def trace_sbr_zy(n: int, b: int, *, want_q: bool = True, use_syr2k: bool = False) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.zy.sbr_zy` (algorithm-level tags)."""
    check_blocksizes(n, b)
    trace = GemmTrace()
    i = 0
    while n - i - b >= 2:
        m = n - i - b
        w = min(b, m)
        if w < b:
            trace.record(w, b - w, m, tag="sbr_strip")
            trace.record(m, b - w, w, tag="sbr_strip")
        trace.record(m, w, m, tag="zy_aw")
        trace.record(w, w, m, tag="zy_wtaw")
        trace.record(m, w, w, tag="zy_z")
        if use_syr2k:
            trace.add(GemmRecord(m, m, w, tag="zy_syr2k", op="syr2k"))
        else:
            trace.record(m, m, w, tag="zy_zyt")
            trace.record(m, m, w, tag="zy_yzt")
        if want_q:
            trace.record(n, w, m, tag="form_q")
            trace.record(n, m, w, tag="form_q")
        i += b
    return trace


def trace_sbr_wy(
    n: int,
    b: int,
    nb: int,
    *,
    want_q: bool = True,
    q_method: str = "tree",
    mirror: bool = False,
) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.wy.sbr_wy` (algorithm-level tags).

    With ``mirror=False`` (default) the block-boundary two-sided update is
    counted as the paper's Algorithm 1 writes it — a full ``mf x mf``
    third GEMM — which is the accounting behind Table 2 and the
    performance-model figures.  ``mirror=True`` models the implementation's
    symmetry-aware schedule instead (lower-trapezoid column blocks from
    :func:`full_update_col_blocks` plus a mirror write, ~35% fewer flops);
    the numeric-fidelity tests compare the driver's GEMM stream against
    this variant.
    """
    check_blocksizes(n, b, nb)
    trace = GemmTrace()
    block_ncols: list[tuple[int, int]] = []  # (offset, accumulated columns)

    j0 = 0
    while n - j0 - b >= 2:
        M = n - j0 - b
        k = 0
        advance = False
        for r in range(0, nb, b):
            i = j0 + r
            m = n - i - b
            if m < 2:
                break
            w = min(b, m)
            if w < b:
                trace.record(w, b - w, m, tag="sbr_strip")
                trace.record(m, b - w, w, tag="sbr_strip")
            if k > 0:
                trace.record(k, w, M, tag="form_w")
                trace.record(M, w, k, tag="form_w")
            trace.record(M, w, M, tag="wy_oaw")
            k += w
            if m <= b + 1:
                _record_partial(trace, M, k, r, cn=m)
                break
            if r + b >= nb:
                mf = M - r
                trace.record(M, mf, k, tag="wy_full_right")
                trace.record(k, mf, M, tag="wy_full_left")
                if mirror:
                    # Implementation schedule: one lower-trapezoid GEMM per
                    # column block, mirrored into the upper triangle.
                    for c0, c1 in full_update_col_blocks(mf, b, nb):
                        trace.record(mf - c0, c1 - c0, k, tag="wy_full_left")
                else:
                    trace.record(mf, mf, k, tag="wy_full_left")
                advance = True
                break
            _record_partial(trace, M, k, r, cn=b)
        if k > 0:
            block_ncols.append((j0 + b, k))
        if not advance:
            break
        j0 += nb

    if want_q and block_ncols:
        trace.extend(trace_form_q(n, block_ncols, method=q_method))
    return trace


def _record_partial(trace: GemmTrace, M: int, k: int, r: int, *, cn: int) -> None:
    trace.record(M, cn, k, tag="wy_right")
    trace.record(k, cn, M, tag="wy_left")
    trace.record(M - r, cn, k, tag="wy_left")


def trace_form_q(
    n: int,
    blocks: "list[tuple[int, int]]",
    *,
    method: str = "tree",
) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.formw.form_q_from_blocks`.

    ``blocks`` is a list of ``(offset, ncols)`` pairs in application order.
    """
    trace = GemmTrace()
    if not blocks:
        return trace
    if method == "forward":
        for offset, k in blocks:
            m = n - offset
            trace.record(n, k, m, tag="form_q")
            trace.record(n, m, k, tag="form_q")
        return trace
    if method != "tree":
        raise ConfigurationError(f"method must be 'tree' or 'forward', got {method!r}")

    base = min(offset for offset, _ in blocks)
    rows = n - base
    ncols = [k for _, k in blocks]

    def merge(lo: int, hi: int) -> int:
        if hi - lo == 1:
            return ncols[lo]
        mid = (lo + hi) // 2
        kl = merge(lo, mid)
        kr = merge(mid, hi)
        trace.record(kl, kr, rows, tag="formw")
        trace.record(rows, kr, kl, tag="formw")
        return kl + kr

    k_all = merge(0, len(blocks))
    trace.record(rows, rows, k_all, tag="form_q")
    return trace


# ---------------------------------------------------------------------------
# Stage-2 wavefront bulge chasing: schedule geometry + symbolic trace.
#
# The schedule below is *shared* with the numeric executor
# (:mod:`repro.eig.bulge_wavefront`) — the numeric code iterates the same
# rounds/groups, so the fidelity contract between this trace and the
# engine-recorded stream holds by construction (the SBR
# ``full_update_col_blocks`` idiom).  The trace assumes a *generic* band
# matrix: every sweep's chase runs its full geometric length (the numeric
# code additionally short-circuits sweeps whose bulge is exactly zero,
# e.g. an already-tridiagonal input declared with a larger bandwidth).
# ---------------------------------------------------------------------------

#: Minimum step separation between adjacent sweeps of the wavefront
#: schedule.  Step ``t`` of sweep ``j`` touches rows/columns
#: ``[j+1+(t-1)b, j+1+(t+2)b)``; steps of sweeps ``d`` apart scheduled
#: ``DELTA*d`` steps apart are disjoint iff ``(DELTA*d - 3) * b >= d``,
#: which ``DELTA = 4`` satisfies for every ``b >= 1`` — so all steps of
#: one round commute and any batching order is bitwise-identical to the
#: serial schedule.
WAVEFRONT_DELTA = 4


def bulge_sweep_geometry(n: int, b: int, j: int) -> "list[tuple]":
    """Step geometries of sweep ``j`` of the blocked/wavefront bulge chase.

    Each step is ``(kind, a0, a1, b0, b1, hi)``: ``kind == "col"`` is the
    sweep's opening reflector (annihilating column ``j`` below the
    subdiagonal; its "QR block" is the single column segment), ``"qr"``
    is one chase hop (QR of the bulge block ``A[b0:b1, a0:a1]``).  In
    both kinds ``[b0, b1)`` is the row range the step's orthogonal
    transform acts on and ``hi`` bounds the band/bulge content of those
    rows, so the step's two-sided update covers the diagonal tile
    ``[b0, b1)²`` plus the strip columns ``[b1, hi)``.
    """
    steps: "list[tuple]" = []
    r0, e0 = j + 1, min(j + 1 + b, n)
    if e0 - r0 < 2:
        return steps
    steps.append(("col", j, j + 1, r0, e0, min(e0 + b, n)))
    a0, a1 = r0, e0
    while True:
        b0 = a0 + b
        b1 = min(a1 + b, n)
        if b1 - b0 < 2:
            break
        steps.append(("qr", a0, a1, b0, b1, min(b1 + b, n)))
        a0, a1 = b0, b1
    return steps


def wavefront_rounds(n: int, b: int):
    """Yield the rounds of the wavefront schedule.

    Round ``r`` executes step ``r - WAVEFRONT_DELTA * j`` of every sweep
    ``j`` for which that index is in range — the anti-diagonal wavefront:
    all steps of one round have pairwise-disjoint row/column footprints
    (see :data:`WAVEFRONT_DELTA`), so the numeric executor may batch them
    into single ``gemm_batched`` launches.  Each yielded round is a
    non-empty list of ``(j, geometry)`` pairs in ascending ``j``.
    """
    nsweeps = max(n - 2, 0)
    geoms = [bulge_sweep_geometry(n, b, j) for j in range(nsweeps)]
    while geoms and not geoms[-1]:
        geoms.pop()
    nsweeps = len(geoms)
    lo = 0
    r = 0
    # Sweeps finish in ascending-j order (sweep j+1 has at most one step
    # fewer than sweep j, so finish rounds are strictly increasing) —
    # the active window is [lo, r // DELTA].
    while lo < nsweeps:
        while lo < nsweeps and r - WAVEFRONT_DELTA * lo >= len(geoms[lo]):
            lo += 1
        hi = min(r // WAVEFRONT_DELTA, nsweeps - 1)
        if lo <= hi:
            yield [(j, geoms[j][r - WAVEFRONT_DELTA * j]) for j in range(lo, hi + 1)]
        r += 1


def wavefront_groups(wave: "list[tuple]") -> "list[tuple[tuple, list]]":
    """Partition one round's steps into identically-shaped batch groups.

    The group key is ``(kind, L, w, c2)`` — transform row count, QR block
    width, strip width.  Steps sharing a key issue identically-shaped
    tile updates and are launched as one ``gemm_batched`` stack; the
    sorted key order fixes the launch schedule the symbolic trace pins.
    """
    groups: "dict[tuple, list]" = {}
    for j, geom in wave:
        kind, a0, a1, b0, b1, hi = geom
        key = (kind, b1 - b0, (a1 - a0) if kind == "qr" else 1, hi - b1)
        groups.setdefault(key, []).append((j, geom))
    return sorted(groups.items())


def trace_bulge_wavefront(n: int, b: int, *, want_q: bool = True) -> GemmTrace:
    """Shape stream of :func:`repro.eig.bulge_wavefront.bulge_chase_wavefront`.

    Emits exactly the engine-routed launches of the numeric executor on a
    generic band matrix (no dead sweeps): per batch group, two
    ``gemm_batched`` strip launches (when the strip is non-empty), three
    ``gemm_batched`` tile launches plus one fused ``syr2k`` per step, and
    two ``gemm_batched`` Q-accumulation launches (when ``want_q``).
    """
    trace = GemmTrace()
    if n <= 2 or b < 1:
        return trace
    for wave in wavefront_rounds(n, b):
        for (kind, L, w, c2), steps in wavefront_groups(wave):
            g = len(steps)
            kk = min(L, w)
            if c2 > 0:
                trace.add(GemmRecord(kk, c2, L, tag="bulge.wavefront.strip",
                                     op="gemm_batched", batch=g))
                trace.add(GemmRecord(L, c2, kk, tag="bulge.wavefront.strip",
                                     op="gemm_batched", batch=g))
            trace.add(GemmRecord(L, kk, L, tag="bulge.wavefront.tile",
                                 op="gemm_batched", batch=g))
            trace.add(GemmRecord(kk, kk, L, tag="bulge.wavefront.tile",
                                 op="gemm_batched", batch=g))
            trace.add(GemmRecord(L, kk, kk, tag="bulge.wavefront.tile",
                                 op="gemm_batched", batch=g))
            for _ in steps:
                trace.add(GemmRecord(L, L, kk, tag="bulge.wavefront.syr2k",
                                     op="syr2k"))
            if want_q:
                trace.add(GemmRecord(n, kk, L, tag="bulge.wavefront.q",
                                     op="gemm_batched", batch=g))
                trace.add(GemmRecord(n, L, kk, tag="bulge.wavefront.q",
                                     op="gemm_batched", batch=g))
    return trace
