"""Symbolic (shape-only) GEMM trace executors.

These functions replay the *control flow* of the band-reduction algorithms
without touching data, emitting the exact GEMM shape stream the numeric
drivers would issue.  This makes paper-scale shape streams (n = 32768)
available in microseconds, which is how the performance figures (5–11) are
regenerated without an A100.

Fidelity contract (enforced by tests): for any (n, b, nb), the symbolic
trace equals the numeric engine's recorded trace filtered to
*algorithm-level* tags — the trailing updates, W/Q formation — i.e.
everything except panel-internal GEMMs (tags ``panel_*``/``qr_*``/
``tsqr``), whose cost the device model charges through its panel
estimators instead.

Tag vocabulary matches :mod:`repro.sbr.zy` / :mod:`repro.sbr.wy` /
:mod:`repro.sbr.formw`.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..validation import check_blocksizes
from .trace import GemmRecord, GemmTrace

__all__ = [
    "ALGORITHM_TAGS",
    "full_update_col_blocks",
    "trace_sbr_zy",
    "trace_sbr_wy",
    "trace_form_q",
    "is_algorithm_tag",
]

#: Tags that belong to the algorithm-level GEMM stream (vs panel internals).
ALGORITHM_TAGS = frozenset(
    {
        "zy_aw",
        "zy_wtaw",
        "zy_z",
        "zy_zyt",
        "zy_yzt",
        "zy_syr2k",
        "form_w",
        "wy_oaw",
        "wy_right",
        "wy_left",
        "wy_full_right",
        "wy_full_left",
        "sbr_strip",
        "formw",
        "form_q",
    }
)


def is_algorithm_tag(tag: str) -> bool:
    """Whether ``tag`` belongs to the algorithm-level GEMM stream."""
    return tag in ALGORITHM_TAGS


def full_update_col_blocks(t: int, b: int, nb: int) -> "list[tuple[int, int]]":
    """Column blocking of the mirrored block-boundary trailing update.

    The ``t``-column full update computes only the lower trapezoid of each
    column block and mirrors it, so the third ``wy_full_left`` GEMM becomes
    one GEMM per block of shape ``(t - c0) x (c1 - c0) x k``.  The first
    block is ``b`` wide: it is exactly the set of columns the *next* big
    block's first panel reads, which is what makes look-ahead overlap
    possible (the rest of the update can proceed concurrently with that
    panel's QR).  Subsequent blocks are ``nb`` wide to keep the GEMMs
    near-square.

    Shared between the numeric driver (:mod:`repro.sbr.wy`) and the
    symbolic trace so the fidelity contract holds by construction.
    """
    if t <= 0:
        return []
    blocks = [(0, min(b, t))]
    while blocks[-1][1] < t:
        c0 = blocks[-1][1]
        blocks.append((c0, min(c0 + nb, t)))
    return blocks


def trace_sbr_zy(n: int, b: int, *, want_q: bool = True, use_syr2k: bool = False) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.zy.sbr_zy` (algorithm-level tags)."""
    check_blocksizes(n, b)
    trace = GemmTrace()
    i = 0
    while n - i - b >= 2:
        m = n - i - b
        w = min(b, m)
        if w < b:
            trace.record(w, b - w, m, tag="sbr_strip")
            trace.record(m, b - w, w, tag="sbr_strip")
        trace.record(m, w, m, tag="zy_aw")
        trace.record(w, w, m, tag="zy_wtaw")
        trace.record(m, w, w, tag="zy_z")
        if use_syr2k:
            trace.add(GemmRecord(m, m, w, tag="zy_syr2k", op="syr2k"))
        else:
            trace.record(m, m, w, tag="zy_zyt")
            trace.record(m, m, w, tag="zy_yzt")
        if want_q:
            trace.record(n, w, m, tag="form_q")
            trace.record(n, m, w, tag="form_q")
        i += b
    return trace


def trace_sbr_wy(
    n: int,
    b: int,
    nb: int,
    *,
    want_q: bool = True,
    q_method: str = "tree",
    mirror: bool = False,
) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.wy.sbr_wy` (algorithm-level tags).

    With ``mirror=False`` (default) the block-boundary two-sided update is
    counted as the paper's Algorithm 1 writes it — a full ``mf x mf``
    third GEMM — which is the accounting behind Table 2 and the
    performance-model figures.  ``mirror=True`` models the implementation's
    symmetry-aware schedule instead (lower-trapezoid column blocks from
    :func:`full_update_col_blocks` plus a mirror write, ~35% fewer flops);
    the numeric-fidelity tests compare the driver's GEMM stream against
    this variant.
    """
    check_blocksizes(n, b, nb)
    trace = GemmTrace()
    block_ncols: list[tuple[int, int]] = []  # (offset, accumulated columns)

    j0 = 0
    while n - j0 - b >= 2:
        M = n - j0 - b
        k = 0
        advance = False
        for r in range(0, nb, b):
            i = j0 + r
            m = n - i - b
            if m < 2:
                break
            w = min(b, m)
            if w < b:
                trace.record(w, b - w, m, tag="sbr_strip")
                trace.record(m, b - w, w, tag="sbr_strip")
            if k > 0:
                trace.record(k, w, M, tag="form_w")
                trace.record(M, w, k, tag="form_w")
            trace.record(M, w, M, tag="wy_oaw")
            k += w
            if m <= b + 1:
                _record_partial(trace, M, k, r, cn=m)
                break
            if r + b >= nb:
                mf = M - r
                trace.record(M, mf, k, tag="wy_full_right")
                trace.record(k, mf, M, tag="wy_full_left")
                if mirror:
                    # Implementation schedule: one lower-trapezoid GEMM per
                    # column block, mirrored into the upper triangle.
                    for c0, c1 in full_update_col_blocks(mf, b, nb):
                        trace.record(mf - c0, c1 - c0, k, tag="wy_full_left")
                else:
                    trace.record(mf, mf, k, tag="wy_full_left")
                advance = True
                break
            _record_partial(trace, M, k, r, cn=b)
        if k > 0:
            block_ncols.append((j0 + b, k))
        if not advance:
            break
        j0 += nb

    if want_q and block_ncols:
        trace.extend(trace_form_q(n, block_ncols, method=q_method))
    return trace


def _record_partial(trace: GemmTrace, M: int, k: int, r: int, *, cn: int) -> None:
    trace.record(M, cn, k, tag="wy_right")
    trace.record(k, cn, M, tag="wy_left")
    trace.record(M - r, cn, k, tag="wy_left")


def trace_form_q(
    n: int,
    blocks: "list[tuple[int, int]]",
    *,
    method: str = "tree",
) -> GemmTrace:
    """Shape stream of :func:`repro.sbr.formw.form_q_from_blocks`.

    ``blocks`` is a list of ``(offset, ncols)`` pairs in application order.
    """
    trace = GemmTrace()
    if not blocks:
        return trace
    if method == "forward":
        for offset, k in blocks:
            m = n - offset
            trace.record(n, k, m, tag="form_q")
            trace.record(n, m, k, tag="form_q")
        return trace
    if method != "tree":
        raise ConfigurationError(f"method must be 'tree' or 'forward', got {method!r}")

    base = min(offset for offset, _ in blocks)
    rows = n - base
    ncols = [k for _, k in blocks]

    def merge(lo: int, hi: int) -> int:
        if hi - lo == 1:
            return ncols[lo]
        mid = (lo + hi) // 2
        kl = merge(lo, mid)
        kr = merge(mid, hi)
        trace.record(kl, kr, rows, tag="formw")
        trace.record(rows, kr, kl, tag="formw")
        return kl + kr

    k_all = merge(0, len(blocks))
    trace.record(rows, rows, k_all, tag="form_q")
    return trace
