"""GEMM engine abstraction, call tracing, and symbolic shape executors.

The paper's performance argument is entirely about *GEMM shape streams*:
the ZY-based SBR issues many tall-and-skinny GEMMs with inner dimension
fixed at the bandwidth, while the WY-based SBR issues fewer, squarer GEMMs.
To study this we route every matrix multiply in the library through a
:class:`GemmEngine`:

- numeric engines (:class:`SgemmEngine`, :class:`TensorCoreEngine`,
  :class:`EcTensorCoreEngine`, :class:`Fp64Engine`) perform the arithmetic
  under the chosen precision policy, and
- every engine can **record** its calls into a :class:`GemmTrace`
  (shape, flop count, semantic tag), which feeds the calibrated device
  performance model.

:mod:`repro.gemm.symbolic` re-derives the same traces from the algorithm
structure alone (no data), so shape streams for paper-scale problems
(n = 32768) are available without paper-scale arithmetic.  Tests assert
that symbolic and recorded traces coincide at small sizes.
"""

from .trace import GemmRecord, GemmTrace
from .engine import (
    EcTensorCoreEngine,
    Fp64Engine,
    GemmEngine,
    SgemmEngine,
    TensorCoreEngine,
    make_engine,
)

__all__ = [
    "GemmRecord",
    "GemmTrace",
    "GemmEngine",
    "SgemmEngine",
    "TensorCoreEngine",
    "EcTensorCoreEngine",
    "Fp64Engine",
    "make_engine",
]
