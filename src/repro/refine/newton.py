"""Newton-type refinement of approximate symmetric eigendecompositions.

``refine_eigenpairs`` implements the Ogita–Aishima iteration (SIAM J.
Matrix Anal. Appl. 2018): given symmetric ``A`` and an approximate
eigenvector matrix ``X`` (columns near-orthonormal, near-eigenvectors),
one step computes in working precision

    R = I - X^T X                (orthogonality defect)
    S = X^T A X                  (near-diagonal)
    lam_i = S_ii / (1 - R_ii)    (refined Rayleigh quotients)
    E_ij = (S_ij + lam_j R_ij) / (lam_j - lam_i),   i != j
    E_ii = R_ii / 2
    X <- X + X E

and converges quadratically while the eigenvalue gaps are resolved by the
current accuracy.  For (near-)multiple eigenvalues the division is unsafe;
pairs whose gap falls below ``cluster_tol`` use the orthogonality-only
correction ``E_ij = R_ij / 2`` (the within-cluster choice of the original
paper — any basis of the cluster's invariant subspace is acceptable).

``rayleigh_refine`` refines one eigenpair by Rayleigh-quotient inverse
iteration — cubically convergent for symmetric matrices.
"""

from __future__ import annotations

import numpy as np
from scipy.linalg import lu_factor, lu_solve

from ..errors import ShapeError
from ..obs import spans as obs
from ..validation import as_symmetric_matrix

__all__ = ["refine_eigenpairs", "rayleigh_refine"]


def refine_eigenpairs(
    a,
    x,
    *,
    iterations: int = 2,
    cluster_tol: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Refine a full approximate eigendecomposition of a symmetric matrix.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        The matrix whose eigendecomposition is being refined.
    x : array_like, (n, n)
        Approximate eigenvector matrix (columns); e.g. the output of the
        Tensor-Core pipeline.  Must be within O(1e-1) of orthonormal.
    iterations : int
        Refinement sweeps; two take ~1e-4 initial error to ~1e-15.
    cluster_tol : float, optional
        Gap threshold below which two eigenvalues are treated as a cluster
        (default: ``n * eps * ||A||`` scaled by the current residual level).

    Returns
    -------
    lam : ndarray, (n,)
        Refined eigenvalues, ascending.
    x : ndarray, (n, n)
        Refined orthonormal eigenvectors, aligned with ``lam``.
    """
    a = as_symmetric_matrix(a, dtype=np.float64)
    x = np.array(x, dtype=np.float64, copy=True)
    n = a.shape[0]
    if x.shape != (n, n):
        raise ShapeError(f"x must be {n}x{n}, got {x.shape}")
    if iterations < 0:
        raise ShapeError(f"iterations must be >= 0, got {iterations}")

    eye = np.eye(n)
    norm_a = max(float(np.linalg.norm(a, "fro")), 1e-300)
    idx = np.arange(n)
    lam = np.diagonal(x.T @ a @ x).copy()

    for sweep in range(iterations):
        with obs.span("refine.sweep", sweep=sweep) as sweep_span:
            r = eye - x.T @ x
            s = x.T @ a @ x
            denom_diag = 1.0 - np.diagonal(r)
            lam = np.diagonal(s) / np.where(np.abs(denom_diag) > 0.1, denom_diag, 1.0)

            # Keep eigenvalue order ascending so clusters are contiguous.
            order = np.argsort(lam, kind="stable")
            if not np.array_equal(order, idx):
                lam = lam[order]
                x = x[:, order]
                r = r[np.ix_(order, order)]
                s = s[np.ix_(order, order)]

            # Cluster detection at the current error level (Ogita–Aishima
            # Algorithm 2): pairs closer than the attainable accuracy cannot be
            # separated by the Newton division this sweep.
            off = s - np.diag(np.diagonal(s))
            est = float(np.abs(off).max(initial=0.0)) + float(np.abs(r).max(initial=0.0)) * norm_a
            tol = cluster_tol if cluster_tol is not None else max(
                10.0 * est, 1e3 * np.finfo(np.float64).eps * norm_a
            )
            boundaries = np.nonzero(np.diff(lam) > tol)[0] + 1
            starts = np.concatenate([[0], boundaries])
            stops = np.concatenate([boundaries, [n]])
            cluster_id = np.repeat(np.arange(starts.size), stops - starts)

            gap = lam[np.newaxis, :] - lam[:, np.newaxis]  # lam_j - lam_i
            num = s + lam[np.newaxis, :] * r
            separated = cluster_id[np.newaxis, :] != cluster_id[:, np.newaxis]
            with np.errstate(divide="ignore", invalid="ignore"):
                e = np.where(separated, num / np.where(separated, gap, 1.0), r / 2.0)
            e[idx, idx] = np.diagonal(r) / 2.0
            x = x + x @ e

            # Within-cluster resolution: the R/2 update restores orthogonality
            # between cluster members but cannot rotate inside the (near-)
            # invariant subspace; a small dense eigensolve per cluster does.
            for lo, hi in zip(starts, stops):
                if hi - lo < 2:
                    continue
                sweep_span.count("clusters", 1)
                xc, _ = np.linalg.qr(x[:, lo:hi])
                sc = xc.T @ a @ xc
                _, u = np.linalg.eigh((sc + sc.T) / 2.0)
                x[:, lo:hi] = xc @ u

    # Final clean-up: exact Rayleigh quotients + ordering.
    g = np.einsum("ij,ij->j", x, x)
    lam = np.einsum("ij,ij->j", x, a @ x) / g
    order = np.argsort(lam, kind="stable")
    x = x[:, order]
    lam = lam[order]
    x /= np.linalg.norm(x, axis=0, keepdims=True)
    return lam, x


def rayleigh_refine(
    a,
    x0,
    *,
    iterations: int = 3,
    lam0: float | None = None,
) -> tuple[float, np.ndarray]:
    """Refine one eigenpair by Rayleigh-quotient inverse iteration.

    Parameters
    ----------
    a : array_like, (n, n) symmetric
        The matrix.
    x0 : array_like, (n,)
        Approximate eigenvector (any nonzero scaling).
    iterations : int
        Iteration count; convergence is cubic near a simple eigenvalue.
    lam0 : float, optional
        Initial shift (default: the Rayleigh quotient of ``x0``).

    Returns
    -------
    (lam, x) : refined eigenvalue and unit-norm eigenvector.
    """
    a = as_symmetric_matrix(a, dtype=np.float64)
    n = a.shape[0]
    x = np.asarray(x0, dtype=np.float64).copy()
    if x.shape != (n,):
        raise ShapeError(f"x0 must have shape ({n},), got {x.shape}")
    nrm = np.linalg.norm(x)
    if nrm == 0:
        raise ShapeError("x0 must be nonzero")
    x /= nrm
    lam = float(x @ a @ x) if lam0 is None else float(lam0)

    for _ in range(iterations):
        shifted = a - lam * np.eye(n)
        try:
            piv = lu_factor(shifted)
            y = lu_solve(piv, x)
        except Exception:
            # Shift numerically exact: x is already the eigenvector.
            break
        ynorm = np.linalg.norm(y)
        if not np.isfinite(ynorm) or ynorm == 0:
            break
        x = y / ynorm
        lam = float(x @ a @ x)
    return lam, x
