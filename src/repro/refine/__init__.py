"""Mixed-precision eigenpair refinement (the paper's "approximate-iterate"
future work, §1/§7).

The paper notes that mixed-precision factorizations usually follow an
*approximate-iterate* scheme — a fast low-precision factorization as a
preconditioner, then refinement to working accuracy — and defers the
eigenvalue version (citing Tsai, Luszczek & Dongarra 2021) to future
work.  This package implements that step:

- :func:`refine_eigenpairs` — Ogita–Aishima-style Newton refinement of a
  full approximate eigendecomposition: one iteration squares the error
  when eigenvalue gaps are resolved, so two iterations take a Tensor-Core
  (~1e-4) result to float64 working accuracy.
- :func:`rayleigh_refine` — Rayleigh-quotient inverse iteration for a
  single (or selected) eigenpair.
- :func:`refined_syevd` — the composed pipeline: Tensor-Core two-stage
  EVD for the approximation, float64 refinement on top.
"""

from .newton import refine_eigenpairs, rayleigh_refine
from .driver import refined_syevd

__all__ = ["refine_eigenpairs", "rayleigh_refine", "refined_syevd"]
