"""Composed approximate-iterate eigensolver: Tensor-Core EVD + refinement.

This is the pipeline the paper's §1 describes for mixed-precision
factorizations and §7 defers for eigenproblems: the cheap low-precision
computation provides the approximate invariant subspaces, and a few
working-precision Newton sweeps restore full accuracy.  The expensive
O(n³) band reduction runs under the Tensor-Core policy; each refinement
sweep costs a handful of n³ GEMM-equivalents in float64.
"""

from __future__ import annotations

import numpy as np

from ..eig.driver import EvdResult, syevd_2stage
from ..errors import ConfigurationError
from ..obs import spans as obs
from ..precision.modes import Precision
from .newton import refine_eigenpairs

__all__ = ["refined_syevd"]


def refined_syevd(
    a,
    *,
    b: int = 16,
    nb: int | None = None,
    precision: "Precision | str" = Precision.FP16_TC,
    refine_iterations: int = 2,
    method: str = "wy",
) -> EvdResult:
    """Eigendecomposition at float64 accuracy from a low-precision pipeline.

    Runs the two-stage solver under ``precision`` (eigenvectors included —
    the refinement needs them), then applies ``refine_iterations`` of
    Ogita–Aishima refinement in float64.

    Returns
    -------
    EvdResult
        With refined eigenvalues/eigenvectors; the ``sbr``/``tridiagonal``
        intermediates are those of the low-precision pipeline.
    """
    if refine_iterations < 0:
        raise ConfigurationError(
            f"refine_iterations must be >= 0, got {refine_iterations}"
        )
    with obs.span(
        "refined_syevd",
        precision=str(getattr(precision, "value", precision)),
        iterations=refine_iterations,
    ):
        with obs.span("base_evd"):
            base = syevd_2stage(
                a, b=b, nb=nb, method=method, precision=precision, want_vectors=True
            )
        with obs.span("refine"):
            lam, x = refine_eigenpairs(
                np.asarray(a, dtype=np.float64),
                base.eigenvectors,
                iterations=refine_iterations,
            )
    return EvdResult(
        eigenvalues=lam,
        eigenvectors=x,
        sbr=base.sbr,
        tridiagonal=base.tridiagonal,
        engine=base.engine,
    )
