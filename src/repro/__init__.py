"""repro — Fast Symmetric Eigenvalue Decomposition via WY Representation
on Tensor Core (PPoPP 2023): a complete from-scratch reproduction.

The library implements the paper's WY-based successive band reduction
(Algorithm 1), its TSQR panel with Householder-vector reconstruction
(Algorithm 3), recursive W formation (Algorithm 2), the conventional
ZY-based baseline, a full second stage (bulge chasing + divide & conquer
+ QL + bisection), Tensor-Core precision emulation (FP16/BF16/TF32 and
the error-corrected EC-TCGEMM), and an A100 performance model calibrated
to the paper's own Table 1.

Quickstart
----------
>>> import numpy as np
>>> from repro import generate_symmetric, syevd_2stage
>>> a, lam_true = generate_symmetric(256, distribution="geo", cond=1e3,
...                                  rng=np.random.default_rng(0))
>>> res = syevd_2stage(a, b=8, nb=32, precision="fp16_tc")
>>> float(np.abs(np.sort(res.eigenvalues) - lam_true).max()) < 1e-2
True

Package map
-----------
- :mod:`repro.precision` — Tensor-Core arithmetic emulation
- :mod:`repro.gemm` — GEMM engines, traces, symbolic executors
- :mod:`repro.la` — Householder/WY/QR/TSQR/LU/band kernels
- :mod:`repro.sbr` — band reduction (the paper's contribution)
- :mod:`repro.eig` — bulge chasing, D&C, QL, bisection, drivers
- :mod:`repro.matrices` — test-matrix generation (Tables 3/4 classes)
- :mod:`repro.metrics` — accuracy metrics and flop counts
- :mod:`repro.device` — calibrated A100 performance model
- :mod:`repro.obs` — telemetry: phase spans, run manifests, reports
- :mod:`repro.resilience` — failure detectors, precision-escalation
  retry, fault injection (numeric and crash)
- :mod:`repro.ckpt` — durable checkpoint/restart with ABFT checksums
- :mod:`repro.experiments` — per-table/figure reproduction drivers
"""

from .errors import (
    BudgetExceededError,
    CheckpointCorruptionError,
    CheckpointSchemaError,
    ConfigurationError,
    ConvergenceError,
    NotSymmetricError,
    NumericalBreakdownError,
    ReproError,
    SdcError,
    ShapeError,
    SimulatedCrashError,
    SingularMatrixError,
)
from .precision import Precision, ec_tcgemm, tcgemm
from .gemm import (
    EcTensorCoreEngine,
    Fp64Engine,
    GemmEngine,
    GemmRecord,
    GemmTrace,
    SgemmEngine,
    TensorCoreEngine,
    make_engine,
)
from .la import tsqr, reconstruct_wy
from .sbr import SbrResult, form_q_from_blocks, form_wy_tree, sbr_wy, sbr_zy
from .eig import (
    EvdResult,
    bulge_chase,
    eigvals_bisect,
    lobpcg,
    qdwh_eig,
    qdwh_polar,
    reduce_bandwidth,
    syevd_1stage,
    syevd_2stage,
    syevd_selected,
    tridiag_eig_dc,
    tridiag_eig_ql,
    tridiag_inverse_iteration,
)
from .refine import refine_eigenpairs, refined_syevd
from .svd import low_rank_approx, randomized_svd, svd_banded, svd_direct, svd_via_evd
from .matrices import MatrixSpec, TABLE_MATRIX_SPECS, generate_symmetric
from .metrics import backward_error, eigenvalue_error, orthogonality_error
from .device import A100Spec, DeviceSpec, PerfModel
from .resilience import (
    AbftPolicy,
    AbftReport,
    CrashFaultSpec,
    CrashInjector,
    DetectorConfig,
    EscalationLadder,
    FaultInjector,
    FaultSpec,
    ResilienceContext,
    ResilienceReport,
)
from .ckpt import (
    CheckpointConfig,
    CheckpointManager,
    CheckpointReport,
    resume,
    result_digest,
)
from . import obs
from . import resilience
from . import ckpt

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "ShapeError",
    "NotSymmetricError",
    "SingularMatrixError",
    "ConvergenceError",
    "ConfigurationError",
    "NumericalBreakdownError",
    "SdcError",
    "BudgetExceededError",
    "CheckpointCorruptionError",
    "CheckpointSchemaError",
    "SimulatedCrashError",
    "Precision",
    "tcgemm",
    "ec_tcgemm",
    "GemmEngine",
    "GemmRecord",
    "GemmTrace",
    "SgemmEngine",
    "TensorCoreEngine",
    "EcTensorCoreEngine",
    "Fp64Engine",
    "make_engine",
    "tsqr",
    "reconstruct_wy",
    "SbrResult",
    "sbr_wy",
    "sbr_zy",
    "form_wy_tree",
    "form_q_from_blocks",
    "EvdResult",
    "bulge_chase",
    "reduce_bandwidth",
    "syevd_2stage",
    "syevd_1stage",
    "syevd_selected",
    "tridiag_eig_dc",
    "tridiag_eig_ql",
    "eigvals_bisect",
    "tridiag_inverse_iteration",
    "refine_eigenpairs",
    "refined_syevd",
    "svd_via_evd",
    "svd_direct",
    "svd_banded",
    "randomized_svd",
    "low_rank_approx",
    "lobpcg",
    "qdwh_polar",
    "qdwh_eig",
    "MatrixSpec",
    "TABLE_MATRIX_SPECS",
    "generate_symmetric",
    "backward_error",
    "orthogonality_error",
    "eigenvalue_error",
    "DeviceSpec",
    "A100Spec",
    "PerfModel",
    "DetectorConfig",
    "EscalationLadder",
    "FaultInjector",
    "FaultSpec",
    "ResilienceContext",
    "ResilienceReport",
    "AbftPolicy",
    "AbftReport",
    "CrashFaultSpec",
    "CrashInjector",
    "CheckpointConfig",
    "CheckpointManager",
    "CheckpointReport",
    "resume",
    "result_digest",
    "obs",
    "resilience",
    "ckpt",
    "__version__",
]
