"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.

The numerically interesting errors carry *structured* context — which
phase, which panel, which detector, which pivot — so callers (and the
resilience layer in :mod:`repro.resilience`) can decide how to recover
without parsing message strings.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ValidationError",
    "ShapeError",
    "NotSymmetricError",
    "SingularMatrixError",
    "ConvergenceError",
    "BudgetExceededError",
    "ConfigurationError",
    "NumericalBreakdownError",
    "SdcError",
    "CheckpointCorruptionError",
    "CheckpointSchemaError",
    "SimulatedCrashError",
    "AdmissionError",
    "JobPreempted",
]


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ValidationError(ReproError, ValueError):
    """An input argument failed an up-front validation gate.

    The structured counterpart of "failing deep inside SBR": the entry
    validators reject bad inputs before any kernel runs, and ``field``
    names the check that failed so callers (and the serving layer's
    admission control) can map the failure to a client error without
    parsing message strings.

    Attributes
    ----------
    field : str or None
        Which check failed: ``"ndim"``, ``"empty"``, ``"square"``,
        ``"symmetry"``, ``"finite"``, or a routine-specific field name.
    name : str or None
        The argument that failed validation (e.g. ``"a"``, ``"d"``).
    """

    def __init__(self, message: str = "", *, field: str | None = None,
                 name: str | None = None) -> None:
        super().__init__(message)
        self.field = field
        self.name = name

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.field is not None:
            parts.append(f"field={self.field}")
        if self.name is not None:
            parts.append(f"name={self.name}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg


class ShapeError(ValidationError):
    """An array argument has an incompatible or unsupported shape."""


class NotSymmetricError(ValidationError):
    """A routine requiring a symmetric matrix received a non-symmetric one.

    ``field`` defaults to ``"symmetry"``.
    """

    def __init__(self, message: str = "", *, field: str | None = "symmetry",
                 name: str | None = None) -> None:
        super().__init__(message, field=field, name=name)


class SingularMatrixError(ReproError, ValueError):
    """A factorization encountered an (numerically) singular matrix.

    Attributes
    ----------
    column : int or None
        Offending column/pivot index within the factored block.
    panel : int or None
        Panel index within the enclosing band reduction, attached by the
        SBR drivers when the failure happened inside a panel factorization.
    """

    def __init__(self, message: str = "", *, column: int | None = None,
                 panel: int | None = None) -> None:
        super().__init__(message)
        self.column = column
        self.panel = panel

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.panel is not None:
            parts.append(f"panel {self.panel}")
        if self.column is not None:
            parts.append(f"column {self.column}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg


class ConvergenceError(ReproError, RuntimeError):
    """An iterative solver failed to converge within its iteration cap.

    Attributes
    ----------
    iterations : int or None
        Iterations completed before giving up.
    residual : float or None
        Last observed residual/off-diagonal magnitude.
    phase : str or None
        Driver phase in which the failure occurred (attached by callers
        that re-raise with context, e.g. ``syevd_2stage``).
    """

    def __init__(self, message: str = "", *, iterations: int | None = None,
                 residual: float | None = None, phase: str | None = None) -> None:
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.phase = phase

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.phase is not None:
            parts.append(f"phase={self.phase}")
        if self.iterations is not None:
            parts.append(f"iterations={self.iterations}")
        if self.residual is not None:
            parts.append(f"residual={self.residual:.3e}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg


class BudgetExceededError(ConvergenceError):
    """An iterative solver exhausted its wall-clock or iteration budget.

    Distinct from plain :class:`ConvergenceError`: the iteration was still
    making (or might still have made) progress, but the caller bounded how
    long it may run — the guard against adversarial inputs that would
    otherwise spin a serving worker indefinitely.

    Attributes
    ----------
    elapsed : float or None
        Wall-clock seconds spent when the budget tripped.
    budget : float or None
        The configured limit that was exceeded (seconds for wall-clock
        budgets, iterations for iteration budgets).
    (plus the :class:`ConvergenceError` attributes
    ``iterations``/``residual``/``phase``)
    """

    def __init__(self, message: str = "", *, iterations: int | None = None,
                 residual: float | None = None, phase: str | None = None,
                 elapsed: float | None = None,
                 budget: float | None = None) -> None:
        super().__init__(message, iterations=iterations, residual=residual,
                         phase=phase)
        self.elapsed = elapsed
        self.budget = budget

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.elapsed is not None:
            parts.append(f"elapsed={self.elapsed:.3f}s")
        if self.budget is not None:
            parts.append(f"budget={self.budget:g}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg


class ConfigurationError(ReproError, ValueError):
    """Algorithm parameters are inconsistent (e.g. ``nb`` not a multiple of ``b``)."""


class NumericalBreakdownError(ReproError, ArithmeticError):
    """A numerical-invariant monitor detected breakdown mid-computation.

    Raised by the detectors of :mod:`repro.resilience` when a monitored
    invariant fails — NaN/Inf in a GEMM output, panel-Q orthogonality
    drift, trailing-matrix norm explosion, symmetry drift, or a failed
    residual probe.  Carries enough context for the precision-escalation
    ladder to retry the failed unit.

    Attributes
    ----------
    phase : str or None
        Resilience phase in which the detector fired (e.g. ``"sbr.panel"``,
        ``"bulge"``).
    panel : int or None
        Panel index within the phase, when applicable.
    detector : str or None
        Name of the detector that fired (``"nonfinite"``, ``"magnitude"``,
        ``"orthogonality"``, ``"norm_growth"``, ``"symmetry"``,
        ``"residual"``).
    site : str or None
        Injection/monitoring site (typically the GEMM tag).
    value : float or None
        Measured invariant value.
    threshold : float or None
        Threshold the value violated (NaN detection reports ``None``).
    precision : str or None
        Precision policy active when the detector fired.
    """

    def __init__(self, message: str = "", *, phase: str | None = None,
                 panel: int | None = None, detector: str | None = None,
                 site: str | None = None, value: float | None = None,
                 threshold: float | None = None,
                 precision: str | None = None) -> None:
        super().__init__(message)
        self.phase = phase
        self.panel = panel
        self.detector = detector
        self.site = site
        self.value = value
        self.threshold = threshold
        self.precision = precision

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.phase is not None:
            parts.append(f"phase={self.phase}")
        if self.panel is not None:
            parts.append(f"panel={self.panel}")
        if self.detector is not None:
            parts.append(f"detector={self.detector}")
        if self.site:
            parts.append(f"site={self.site}")
        if self.value is not None:
            parts.append(f"value={self.value:.3e}")
        if self.threshold is not None:
            parts.append(f"threshold={self.threshold:.3e}")
        if self.precision is not None:
            parts.append(f"precision={self.precision}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg

    def to_dict(self) -> dict:
        """JSON-serializable context (used by the resilience report)."""
        return {
            "message": super().__str__(),
            "phase": self.phase,
            "panel": self.panel,
            "detector": self.detector,
            "site": self.site,
            "value": self.value,
            "threshold": self.threshold,
            "precision": self.precision,
        }


class SdcError(NumericalBreakdownError):
    """Online ABFT detected silent data corruption in a GEMM launch.

    Raised by :mod:`repro.resilience.abft` when the row/column checksum
    verification of a guarded engine launch fails — a bit flip, dropped
    lane, or emulated-hardware bug corrupted the output in flight.  In
    ``abft="detect"`` mode it propagates immediately; in ``"correct"``
    mode it is raised only when in-place patching *and* a full launch
    recompute both failed to produce a clean result (persistent damage),
    at which point the precision-escalation ladder takes over exactly as
    for any other :class:`NumericalBreakdownError`.

    Attributes
    ----------
    call_index : int or None
        0-based index of the corrupted launch among the guarded launches
        at ``site`` (aligned with :class:`~repro.resilience.FaultSpec`
        call indices).
    row, col : int or None
        Localized coordinates of the corrupted element when the
        row×column mismatch intersection isolated exactly one (``None``
        for multi-element or unlocalized damage).
    op : str or None
        Engine operation kind (``"gemm"``, ``"gemm_batched"``,
        ``"syr2k"``, ``"copy"``).
    (plus the :class:`NumericalBreakdownError` attributes; ``detector``
    is always ``"abft"``.)
    """

    def __init__(self, message: str = "", *, phase: str | None = None,
                 panel: int | None = None, site: str | None = None,
                 value: float | None = None, threshold: float | None = None,
                 precision: str | None = None, call_index: int | None = None,
                 row: int | None = None, col: int | None = None,
                 op: str | None = None) -> None:
        super().__init__(message, phase=phase, panel=panel, detector="abft",
                         site=site, value=value, threshold=threshold,
                         precision=precision)
        self.call_index = call_index
        self.row = row
        self.col = col
        self.op = op

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.call_index is not None:
            parts.append(f"call_index={self.call_index}")
        if self.row is not None:
            parts.append(f"row={self.row}")
        if self.col is not None:
            parts.append(f"col={self.col}")
        if self.op is not None:
            parts.append(f"op={self.op}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg

    def to_dict(self) -> dict:
        d = super().to_dict()
        d["message"] = Exception.__str__(self)
        d.update(call_index=self.call_index, row=self.row, col=self.col,
                 op=self.op)
        return d


class CheckpointCorruptionError(ReproError, RuntimeError):
    """A persisted checkpoint failed an integrity check at load time.

    Raised by :mod:`repro.ckpt` when a checkpoint file is torn (truncated
    mid-write), fails its CRC32 payload checksum, or fails the
    Huang–Abraham ABFT row/column checksums of a stored matrix — anything
    that would otherwise silently feed wrong numbers into a resumed run.

    Attributes
    ----------
    path : str or None
        The offending file.
    field : str or None
        The array or metadata field that failed (e.g. ``"A"``,
        ``"abft:W.row"``, ``"crc"``).
    reason : str or None
        Check that failed: ``"torn"``, ``"crc"``, ``"abft"``,
        ``"missing"``, ``"schema"``, ``"parse"``.
    """

    def __init__(self, message: str = "", *, path: str | None = None,
                 field: str | None = None, reason: str | None = None) -> None:
        super().__init__(message)
        self.path = path
        self.field = field
        self.reason = reason

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.path is not None:
            parts.append(f"path={self.path}")
        if self.field is not None:
            parts.append(f"field={self.field}")
        if self.reason is not None:
            parts.append(f"reason={self.reason}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg

    def to_dict(self) -> dict:
        """JSON-serializable context (for reports and logs)."""
        return {
            "message": Exception.__str__(self),
            "path": self.path,
            "field": self.field,
            "reason": self.reason,
        }


class CheckpointSchemaError(CheckpointCorruptionError):
    """A checkpoint was written under an incompatible schema version.

    A stale or future schema is handled like corruption (the bytes cannot
    be trusted to mean what the current code assumes), but kept as its
    own type so callers can distinguish "re-record the run" from "the
    disk lied".  ``field`` carries ``"schema"``; the offending version is
    in the message.
    """


class SimulatedCrashError(ReproError, RuntimeError):
    """A crash-fault injection site fired (test harness only).

    Raised by :class:`repro.resilience.crash.CrashInjector` to model a
    process kill / power loss at a named site.  Deliberately *not* a
    :class:`NumericalBreakdownError`: the resilience retry paths must not
    absorb it — it propagates out of the driver exactly like a real crash
    would terminate the process, leaving the checkpoint directory behind
    for a resume.

    Attributes
    ----------
    site : str or None
        The crash site that fired (e.g. ``"ckpt.save.sbr_panel.post"``).
    kind : str or None
        The crash-fault kind (``"kill"``, ``"torn_write"``,
        ``"stale_schema"``).
    """

    def __init__(self, message: str = "", *, site: str | None = None,
                 kind: str | None = None) -> None:
        super().__init__(message)
        self.site = site
        self.kind = kind

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.site is not None:
            parts.append(f"site={self.site}")
        if self.kind is not None:
            parts.append(f"kind={self.kind}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg


class AdmissionError(ReproError, RuntimeError):
    """The serving layer refused to accept a request (backpressure).

    Raised by :meth:`repro.serve.EvdService.submit` when the request
    cannot be admitted *right now*: the queue is at capacity, the circuit
    breaker is open after repeated worker failures, the worker pool has
    stalled, or the service is shutting down.  This is load shedding at
    the door — the request was never enqueued and the caller should back
    off and retry after ``retry_after`` seconds (when one is given).

    Attributes
    ----------
    reason : str or None
        Why admission was refused: ``"queue_full"``, ``"circuit_open"``,
        ``"stalled"``, ``"shutdown"``, ``"invalid"``.
    retry_after : float or None
        Suggested client backoff in seconds (``None`` when retrying
        cannot help, e.g. an invalid input).
    """

    def __init__(self, message: str = "", *, reason: str | None = None,
                 retry_after: float | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.reason is not None:
            parts.append(f"reason={self.reason}")
        if self.retry_after is not None:
            parts.append(f"retry_after={self.retry_after:.3f}s")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg


class JobPreempted(ReproError, RuntimeError):
    """A running serve job was evicted at a committed checkpoint boundary.

    Control-flow exception of the serving layer's preemption protocol:
    the scheduler requests eviction, and the job's preemption token
    raises this at the next ``ckpt.save.*.post`` site — *after* the
    checkpoint is durable — so the worker unwinds with the run directory
    in a resumable state.  Never escapes the serving layer.

    Attributes
    ----------
    reason : str or None
        Why the job was evicted: ``"priority"`` (a higher class needed
        the worker), ``"deadline"`` (the job overran its SLO),
        ``"cancel"``, ``"shutdown"``.
    site : str or None
        The checkpoint site at which the eviction took effect.
    """

    def __init__(self, message: str = "", *, reason: str | None = None,
                 site: str | None = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.site = site

    def __str__(self) -> str:
        msg = super().__str__()
        parts = []
        if self.reason is not None:
            parts.append(f"reason={self.reason}")
        if self.site is not None:
            parts.append(f"site={self.site}")
        if parts:
            return f"{msg} [{', '.join(parts)}]"
        return msg
