"""Exception hierarchy for :mod:`repro`.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ShapeError",
    "NotSymmetricError",
    "SingularMatrixError",
    "ConvergenceError",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class ShapeError(ReproError, ValueError):
    """An array argument has an incompatible or unsupported shape."""


class NotSymmetricError(ReproError, ValueError):
    """A routine requiring a symmetric matrix received a non-symmetric one."""


class SingularMatrixError(ReproError, ValueError):
    """A factorization encountered an (numerically) singular matrix."""


class ConvergenceError(ReproError, RuntimeError):
    """An iterative eigensolver failed to converge within its iteration cap."""


class ConfigurationError(ReproError, ValueError):
    """Algorithm parameters are inconsistent (e.g. ``nb`` not a multiple of ``b``)."""
