"""Error-corrected Tensor-Core GEMM (Ootomo & Yokota 2022; paper §5.3).

Given FP32 operands, write ``A = Ã + ΔA`` and ``B = B̃ + ΔB`` where the
tilde terms are the FP16 roundings.  Then

    A @ B = Ã B̃  +  Ã ΔB  +  ΔA B̃  +  ΔA ΔB

The last term is O(u_fp16^2) ≈ 2^-22 relative and is dropped (the paper
does the same).  The three retained products each run on (emulated) Tensor
Cores.  Two refinements from the original method are modelled:

1. **Residual scaling.** ΔA has magnitude ~2^-11·|A|; rounding it directly
   to FP16 would push many entries into the subnormal range and lose their
   low bits.  The residual is therefore scaled by 2^11 before FP16
   rounding and the correction GEMMs are descaled on accumulation.
2. **FP32 combination outside the Tensor Core.** The correction terms are
   added to the main product in FP32, avoiding the Tensor-Core internal
   accumulator rounding that limits the naive Markidis scheme.

The result matches a plain FP32 SGEMM to within a few FP32 ulps — property
tests assert a relative error floor near ``2^-24`` rather than ``2^-11``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .rounding import OOTOMO_SCALE, split_fp16, split_fp16_into

__all__ = ["EcOperand", "ec_prepare", "ec_tcgemm"]


def _split(x, ws, name: str):
    """Hi/lo FP16 split of one operand, through workspace buffers if given."""
    if ws is None:
        return split_fp16(x)
    hi = ws.take(f"ec_{name}_hi", x.shape, np.float32)
    lo = ws.take(f"ec_{name}_lo", x.shape, np.float32)
    f16 = ws.take(f"ec_{name}_f16", x.shape, np.float16)
    return split_fp16_into(x, hi, lo, f16)


class EcOperand:
    """A pre-split EC operand: the hi/lo FP16 decomposition, computed once.

    The SBR big-block loop multiplies the *same* trailing matrix OA
    against a fresh panel's W columns many times per block; splitting OA
    on every call is pure overhead (several full passes over an M×M
    array, comparable to the GEMM itself at small n).  ``ec_prepare``
    performs the split once and :func:`ec_tcgemm` accepts the handle in
    place of the array.  The handle is valid while the source array's
    contents are unchanged — re-prepare after mutating it.
    """

    __slots__ = ("array", "hi", "lo")

    def __init__(self, array: np.ndarray, hi: np.ndarray, lo: np.ndarray) -> None:
        self.array = array
        self.hi = hi
        self.lo = lo

    @property
    def shape(self) -> tuple:
        return self.array.shape

    @property
    def ndim(self) -> int:
        return self.array.ndim


def ec_prepare(a, *, ws=None, name: str = "prep") -> EcOperand:
    """Split ``a`` once for repeated use in :func:`ec_tcgemm`.

    With a workspace the split lives in arena buffers under
    ``ec_<name>_*`` tags — distinct from the per-call split tags, so
    later unprepared calls through the same arena do not clobber the
    handle.  A later ``ec_prepare`` with the same ``name`` reuses (and
    overwrites) the buffers, invalidating the previous handle.
    """
    a = np.asarray(a, dtype=np.float32)
    hi, lo = _split(a, ws, name)
    return EcOperand(a, hi, lo)


def ec_tcgemm(
    a, b, *, chunk_k: int | None = None, out: "np.ndarray | None" = None, ws=None
) -> np.ndarray:
    """FP32-accurate matrix product computed with emulated FP16 Tensor-Core GEMMs.

    Parameters
    ----------
    a, b : array_like
        FP32 (or convertible) matrices with compatible inner dimensions;
        both 2-D, or both 3-D stacks with an equal batch dimension.
    chunk_k : int, optional
        Chunked-accumulation granularity forwarded to the underlying
        emulated TC GEMMs (see :func:`repro.precision.tcgemm`).
    out : numpy.ndarray, optional
        FP32 result buffer to write into (must not alias the operands;
        the engine layer guards aliasing for callers).
    ws : repro.perf.Workspace, optional
        Scratch arena: the hi/lo operand splits and the two correction
        products reuse arena buffers instead of allocating six full-size
        temporaries per call — the dominant allocation cost of the SBR
        hot loop under the EC policy.

    Returns
    -------
    numpy.ndarray
        FP32 product with single-precision accuracy.
    """
    from .tcgemm import tcgemm  # local import to avoid cycle at package init

    if not isinstance(a, EcOperand):
        a = np.asarray(a, dtype=np.float32)
    if not isinstance(b, EcOperand):
        b = np.asarray(b, dtype=np.float32)
    if a.ndim != b.ndim or a.ndim not in (2, 3):
        raise ShapeError(
            f"ec_tcgemm requires both operands 2-D (or both 3-D batched), "
            f"got {a.ndim}-D and {b.ndim}-D"
        )
    if a.ndim == 3 and a.shape[0] != b.shape[0]:
        raise ShapeError(f"batch dimensions differ: {a.shape} @ {b.shape}")
    if a.shape[-1] != b.shape[-2]:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")

    a_hi, a_lo = (a.hi, a.lo) if isinstance(a, EcOperand) else _split(a, ws, "a")
    b_hi, b_lo = (b.hi, b.lo) if isinstance(b, EcOperand) else _split(b, ws, "b")

    out_shape = a.shape[:-1] + (b.shape[-1],)
    main = tcgemm(a_hi, b_hi, operand_format="fp32", chunk_k=chunk_k, out=out, ws=ws)
    if ws is None:
        corr_a = tcgemm(a_lo, b_hi, operand_format="fp32", chunk_k=chunk_k)
        corr_b = tcgemm(a_hi, b_lo, operand_format="fp32", chunk_k=chunk_k)
    else:
        corr_a = tcgemm(
            a_lo, b_hi, operand_format="fp32", chunk_k=chunk_k,
            out=ws.take("ec_corr_a", out_shape, np.float32), ws=ws,
        )
        corr_b = tcgemm(
            a_hi, b_lo, operand_format="fp32", chunk_k=chunk_k,
            out=ws.take("ec_corr_b", out_shape, np.float32), ws=ws,
        )

    inv_scale = np.float32(1.0 / OOTOMO_SCALE)
    # FP32 combination outside the (emulated) Tensor Core.  The in-place
    # form is bitwise identical to ``main + (corr_a + corr_b) * inv_scale``
    # (same operations in the same association, no extra roundings).
    if out is None:
        return main + (corr_a + corr_b) * inv_scale
    np.add(corr_a, corr_b, out=corr_a)
    corr_a *= inv_scale
    main += corr_a
    return main
