"""Error-corrected Tensor-Core GEMM (Ootomo & Yokota 2022; paper §5.3).

Given FP32 operands, write ``A = Ã + ΔA`` and ``B = B̃ + ΔB`` where the
tilde terms are the FP16 roundings.  Then

    A @ B = Ã B̃  +  Ã ΔB  +  ΔA B̃  +  ΔA ΔB

The last term is O(u_fp16^2) ≈ 2^-22 relative and is dropped (the paper
does the same).  The three retained products each run on (emulated) Tensor
Cores.  Two refinements from the original method are modelled:

1. **Residual scaling.** ΔA has magnitude ~2^-11·|A|; rounding it directly
   to FP16 would push many entries into the subnormal range and lose their
   low bits.  The residual is therefore scaled by 2^11 before FP16
   rounding and the correction GEMMs are descaled on accumulation.
2. **FP32 combination outside the Tensor Core.** The correction terms are
   added to the main product in FP32, avoiding the Tensor-Core internal
   accumulator rounding that limits the naive Markidis scheme.

The result matches a plain FP32 SGEMM to within a few FP32 ulps — property
tests assert a relative error floor near ``2^-24`` rather than ``2^-11``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .rounding import OOTOMO_SCALE, split_fp16

__all__ = ["ec_tcgemm"]


def ec_tcgemm(a, b, *, chunk_k: int | None = None) -> np.ndarray:
    """FP32-accurate matrix product computed with emulated FP16 Tensor-Core GEMMs.

    Parameters
    ----------
    a, b : array_like
        FP32 (or convertible) matrices with compatible inner dimensions.
    chunk_k : int, optional
        Chunked-accumulation granularity forwarded to the underlying
        emulated TC GEMMs (see :func:`repro.precision.tcgemm`).

    Returns
    -------
    numpy.ndarray
        FP32 product with single-precision accuracy.
    """
    from .tcgemm import tcgemm  # local import to avoid cycle at package init

    a = np.asarray(a, dtype=np.float32)
    b = np.asarray(b, dtype=np.float32)
    if a.ndim != 2 or b.ndim != 2:
        raise ShapeError(
            f"ec_tcgemm requires 2-D operands, got {a.ndim}-D and {b.ndim}-D"
        )
    if a.shape[1] != b.shape[0]:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")

    a_hi, a_lo = split_fp16(a)
    b_hi, b_lo = split_fp16(b)

    main = tcgemm(a_hi, b_hi, operand_format="fp32", chunk_k=chunk_k)
    corr_a = tcgemm(a_lo, b_hi, operand_format="fp32", chunk_k=chunk_k)
    corr_b = tcgemm(a_hi, b_lo, operand_format="fp32", chunk_k=chunk_k)

    inv_scale = np.float32(1.0 / OOTOMO_SCALE)
    # FP32 combination outside the (emulated) Tensor Core.
    return main + (corr_a + corr_b) * inv_scale
