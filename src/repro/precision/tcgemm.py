"""Emulated Tensor-Core GEMM: low-precision multiply, FP32 accumulate.

A Tensor-Core MMA instruction computes an exact product of low-precision
operands and adds it into an FP32 accumulator, rounding once per addition.
On the CPU we emulate this as

    C = fp32(round(A)) @ fp32(round(B))

i.e. operands are rounded to the target format and the product runs in
FP32.  NumPy's FP32 matmul accumulates in FP32 (BLAS sgemm), which matches
the per-addition rounding of the hardware accumulator closely enough for
the error levels studied in the paper (the dominant error source is operand
rounding, ~2^-11, four orders of magnitude above FP32 accumulation error).

``chunk_k`` optionally splits the inner dimension into chunks accumulated
sequentially in FP32, modelling the "one rounding per MMA tile" behaviour
even when the underlying BLAS uses higher-precision blocked summation.

Operands may be 3-D stacks ``(batch, m, k) @ (batch, k, n)`` — the
strided-batched form issued by :meth:`~repro.gemm.engine.GemmEngine.
gemm_batched` — every path (rounding, chunking, ``out=``) is
dimension-agnostic over the leading batch axis.
"""

from __future__ import annotations

import numpy as np

from ..errors import ShapeError
from .rounding import round_to_format

__all__ = ["tcgemm"]


def tcgemm(
    a,
    b,
    *,
    operand_format: str = "fp16",
    chunk_k: int | None = None,
    out: "np.ndarray | None" = None,
    ws=None,
) -> np.ndarray:
    """Emulated Tensor-Core matrix product ``A @ B``.

    Parameters
    ----------
    a, b : array_like
        FP32 (or convertible) matrices with ``a.shape[-1] == b.shape[-2]``;
        both 2-D, or both 3-D with an equal leading batch dimension.
    operand_format : str
        Low-precision operand format: ``"fp16"`` (default), ``"bf16"``,
        ``"tf32"`` or ``"fp32"`` (no operand rounding, useful for testing).
    chunk_k : int, optional
        If given, the inner dimension is processed in chunks of this size
        with an explicit FP32 accumulator between chunks, modelling MMA-tile
        granularity accumulation.  ``None`` (default) uses a single FP32
        matmul.
    out : numpy.ndarray, optional
        FP32 buffer of the result shape to write into (must not alias the
        operands — the engine layer guards aliasing for callers).
    ws : repro.perf.Workspace, optional
        Scratch arena for the chunked path's per-chunk product buffer
        (reused across calls instead of one temporary per chunk).

    Returns
    -------
    numpy.ndarray
        FP32 result of shape ``a.shape[:-1] + (b.shape[-1],)``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != b.ndim or a.ndim not in (2, 3):
        raise ShapeError(
            f"tcgemm requires both operands 2-D (or both 3-D batched), "
            f"got {a.ndim}-D and {b.ndim}-D"
        )
    if a.ndim == 3 and a.shape[0] != b.shape[0]:
        raise ShapeError(f"batch dimensions differ: {a.shape} @ {b.shape}")
    if a.shape[-1] != b.shape[-2]:
        raise ShapeError(f"inner dimensions differ: {a.shape} @ {b.shape}")

    ar = round_to_format(a, operand_format)
    br = round_to_format(b, operand_format)
    k = a.shape[-1]
    out_shape = a.shape[:-1] + (b.shape[-1],)

    if chunk_k is None or chunk_k >= k:
        if out is not None:
            return np.matmul(ar, br, out=out)
        return np.asarray(ar @ br, dtype=np.float32)

    if chunk_k <= 0:
        raise ValueError(f"chunk_k must be positive, got {chunk_k}")

    # In-place FP32 accumulation: one rounding per chunk, as on hardware.
    # The first chunk writes the accumulator directly; later chunks go
    # through one reused scratch buffer instead of a temporary per chunk.
    acc = out if out is not None else np.empty(out_shape, dtype=np.float32)
    np.matmul(ar[..., :, :chunk_k], br[..., :chunk_k, :], out=acc)
    if k > chunk_k:
        if ws is not None:
            scratch = ws.take("tcgemm_chunk", out_shape, np.float32)
        else:
            scratch = np.empty(out_shape, dtype=np.float32)
        for start in range(chunk_k, k, chunk_k):
            stop = min(start + chunk_k, k)
            np.matmul(ar[..., :, start:stop], br[..., start:stop, :], out=scratch)
            acc += scratch
    return acc
